//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this repository's property tests use: the
//! [`proptest!`] test harness macro, [`strategy::Strategy`] with
//! `prop_map`, [`strategy::Just`], integer-range and tuple strategies,
//! `any::<T>()` with edge-case biasing, [`prop_oneof!`] unions, and
//! [`collection::vec`]. Failing cases are reported with their values via
//! panic; there is **no shrinking** — the failing input is printed as-is.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies. Deterministic per test name so runs
    /// are reproducible; override the stream with `PROPTEST_SEED`.
    pub struct TestRng(pub(crate) rand::rngs::SmallRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            use rand::SeedableRng;
            let env: u64 =
                std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ env;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(rand::rngs::SmallRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng as _;
    use std::rc::Rc;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between strategies (the expansion of `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Rc<dyn Strategy<Value = V>>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Rc<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.0.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` to erase each member's concrete type.
    pub fn union_member<S>(s: S) -> Rc<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Rc::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards boundary values — the cases integer
                    // differential tests most need (real proptest gets the
                    // same effect from its binary-search shrinking).
                    if rng.0.random_bool(0.125) {
                        const EDGES: [i128; 5] =
                            [<$t>::MIN as i128, <$t>::MAX as i128, 0, 1, -1i128 as i128];
                        EDGES[rng.0.random_range(0..EDGES.len())] as $t
                    } else {
                        rng.0.next_u64() as $t
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of real proptest's `prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::collection;
    }
}

/// The test-harness macro: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` that generates `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                let ( $($arg,)* ) =
                    ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )* );
                $body
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::union_member($strat) ),+
        ])
    };
}

/// Assertion macros: plain panics (no shrink-and-retry machinery).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Pair(i64, i64),
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (1u8..5).prop_map(Shape::Line),
            (any::<i64>(), any::<i64>()).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn tuple_and_vec_strategies_generate(
            items in prop::collection::vec(shape(), 1..8),
            flag in any::<bool>(),
            n in 0usize..3,
        ) {
            prop_assert!(!items.is_empty() && items.len() < 8);
            prop_assert!(n < 3);
            let _ = flag;
            for it in &items {
                if let Shape::Line(w) = it {
                    prop_assert!((1..5).contains(w));
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = shape();
        let a: Vec<Shape> =
            (0..32).scan(TestRng::deterministic("x"), |r, _| Some(s.generate(r))).collect();
        let b: Vec<Shape> =
            (0..32).scan(TestRng::deterministic("x"), |r, _| Some(s.generate(r))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn any_hits_edge_values() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::deterministic("edges");
        let s = any::<i64>();
        let vals: Vec<i64> = (0..4000).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.contains(&i64::MAX));
        assert!(vals.contains(&i64::MIN));
        assert!(vals.contains(&0));
    }
}
