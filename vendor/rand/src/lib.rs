//! Offline stand-in for the `rand` crate, 0.9-style API (see
//! `vendor/README.md`).
//!
//! Deterministic by construction: the only generator is [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], which is exactly how the data
//! generators in `aqe-storage` use it. The stream differs from the real
//! rand crate's SmallRng — data generated here is self-consistent but not
//! bit-identical to a build against crates.io rand.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    /// xoroshiro128++ — small, fast, and plenty good for test-data
    /// generation (the same algorithm family the real `SmallRng` uses).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s0 = splitmix64(&mut st);
            let s1 = splitmix64(&mut st);
            SmallRng { s0, s1 }
        }
    }

    impl crate::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let (s0, mut s1) = (self.s0, self.s1);
            let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
            s1 ^= s0;
            self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s1 = s1.rotate_left(28);
            result
        }
    }
}

/// Construction from a `u64` seed (the only constructor this repo uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {
        $(impl UniformInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        })*
    };
}
impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges acceptable to [`Rng::random_range`]; yields inclusive bounds.
pub trait SampleRange<T> {
    fn inclusive_bounds(self) -> (i128, i128);
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn inclusive_bounds(self) -> (i128, i128) {
        (self.start.to_i128(), self.end.to_i128() - 1)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn inclusive_bounds(self) -> (i128, i128) {
        (self.start().to_i128(), self.end().to_i128())
    }
}

/// The generator trait: one required method, everything else derived.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (panics on an empty range,
    /// like the real crate).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.inclusive_bounds();
        assert!(lo <= hi, "cannot sample from empty range");
        let span = (hi - lo + 1) as u128;
        // span < 2^65 always holds for the 64-bit-and-smaller types above.
        let v = (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % span;
        T::from_i128(lo + v as i128)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = r.random_range(0usize..3);
            assert!(u < 3);
            let w = r.random_range(99..=49_999i64);
            assert!((99..=49_999).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.random_range(0u8..6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values should appear");
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }
}
