//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly, and a poisoned
//! lock (a panic while held) is transparently recovered, matching
//! parking_lot's semantics of not propagating poison.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning `read()` / `write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
