//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Provides the group/bench/iter API shape with a plain wall-clock
//! measurement loop: a short warm-up, then `sample_size` samples whose
//! iteration count is auto-calibrated to a per-sample time budget. Reports
//! the median and min sample, which is enough to read relative ordering of
//! the backends off a terminal.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure given to `bench_function`; `iter` does the
/// timing.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples_ns: Vec::new() }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: how many iterations fit ~5 ms?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = ((5e-3 / once.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        println!("  {name:<28} median {:>12}   min {:>12}", fmt_ns(median), fmt_ns(min));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup { sample_size: self.sample_size, _parent: std::marker::PhantomData }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }
}
