//! Workspace-level integration tests: the whole TPC-H corpus must produce
//! identical results across the compiling engine's six execution modes
//! (native machine code included — or its fallback alias on targets
//! without the emitter) and both baseline engines, single- and
//! multi-threaded.

use aqe::baselines::{execute_vectorized, execute_volcano};
use aqe::engine::exec::{ExecMode, ExecOptions};
use aqe::engine::plan::decompose;
use aqe::engine::session::Engine;
use aqe::queries::{synthetic, tpcds, tpch};
use aqe::storage::{tpcds as ds_data, tpch as tpch_data};

fn normalized(rows: &[u64], width: usize, sorted: bool) -> Vec<Vec<u64>> {
    if width == 0 {
        return vec![];
    }
    let mut out: Vec<Vec<u64>> = rows.chunks_exact(width).map(|r| r.to_vec()).collect();
    if !sorted {
        out.sort();
    }
    out
}

#[test]
fn tpch_corpus_agrees_across_all_engines_and_modes() {
    let cat = tpch_data::generate(0.01);
    for q in tpch::all(&cat) {
        let phys = decompose(&cat, &q.root, q.dicts.clone());
        let width = phys.output_tys.len();
        let sorted = phys.sorted_output;

        let volcano = normalized(
            &execute_volcano(&cat, &q.root, &phys).unwrap_or_else(|e| panic!("{}: {e}", q.name)),
            width,
            sorted,
        );
        let vector = normalized(&execute_vectorized(&cat, &q.root, &phys).unwrap(), width, sorted);
        assert_eq!(volcano, vector, "{}: baselines disagree", q.name);

        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let prepared = session.prepare_plan(phys.clone());
        for mode in [
            ExecMode::Bytecode,
            ExecMode::Unoptimized,
            ExecMode::Optimized,
            ExecMode::Native,
            ExecMode::Adaptive,
        ] {
            for threads in [1, 4] {
                let opts =
                    ExecOptions { mode, threads, cache_results: false, ..Default::default() };
                let (res, _) = session
                    .execute_with(&prepared, &opts)
                    .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", q.name));
                let got = normalized(&res.rows, width, sorted);
                assert_eq!(got, volcano, "{} {mode:?} x{threads} disagrees with baselines", q.name);
            }
        }
    }
}

#[test]
fn tpcds_corpus_agrees() {
    let cat = ds_data::generate(0.01);
    for q in tpcds::all(&cat) {
        let phys = decompose(&cat, &q.root, q.dicts.clone());
        let width = phys.output_tys.len();
        let volcano =
            normalized(&execute_volcano(&cat, &q.root, &phys).unwrap(), width, phys.sorted_output);
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let prepared = session.prepare_plan(phys.clone());
        for mode in [ExecMode::Bytecode, ExecMode::Optimized, ExecMode::Native, ExecMode::Adaptive]
        {
            let opts = ExecOptions { mode, threads: 2, cache_results: false, ..Default::default() };
            let (res, _) = session.execute_with(&prepared, &opts).unwrap();
            assert_eq!(
                normalized(&res.rows, width, phys.sorted_output),
                volcano,
                "{} {mode:?}",
                q.name
            );
        }
    }
}

#[test]
fn wide_aggregate_queries_agree_at_scale() {
    let cat = tpch_data::generate(0.002);
    for n in [10, 150] {
        let q = synthetic::wide_agg(n);
        let phys = decompose(&cat, &q.root, vec![]);
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let prepared = session.prepare_plan(phys);
        let mut results = Vec::new();
        for mode in
            [ExecMode::Bytecode, ExecMode::Unoptimized, ExecMode::Optimized, ExecMode::Native]
        {
            let opts = ExecOptions { mode, threads: 2, cache_results: false, ..Default::default() };
            let (res, _) = session.execute_with(&prepared, &opts).unwrap();
            results.push(res.rows);
        }
        for (k, r) in results.iter().enumerate().skip(1) {
            assert_eq!(&results[0], r, "wide_agg_{n} mode #{k}");
        }
    }
}

#[test]
fn sql_frontend_to_adaptive_execution_end_to_end() {
    let cat = tpch_data::generate(0.005);
    let bound = aqe::sql::plan_sql(
        &cat,
        "SELECT n_name, count(*) AS cnt FROM supplier \
         JOIN nation ON s_nationkey = n_nationkey \
         GROUP BY n_name ORDER BY cnt DESC, n_name LIMIT 3",
    )
    .unwrap();
    let phys = decompose(&cat, &bound.root, bound.dicts);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys.clone());
    let opts = ExecOptions { mode: ExecMode::Adaptive, threads: 2, ..Default::default() };
    let (res, _) = session.execute_with(&prepared, &opts).unwrap();
    assert_eq!(res.row_count(), 3);
    // Also through Volcano for agreement.
    let v = execute_volcano(&cat, &bound.root, &phys).unwrap();
    assert_eq!(res.rows, v);
}
