//! Property tests at the plan level: randomly generated filter/aggregate
//! plans over TPC-H data must produce identical results in every execution
//! mode and in the Volcano baseline (DESIGN.md §8: "random SQL-ish plans →
//! mode-equivalence").

use aqe::baselines::execute_volcano;
use aqe::engine::exec::{ExecMode, ExecOptions};
use aqe::engine::plan::{decompose, AggFunc, AggSpec, ArithOp, CmpOp, PExpr, PlanNode};
use aqe::engine::session::Engine;
use aqe::storage::{tpch, Catalog};
use proptest::prelude::*;
use std::sync::OnceLock;

fn catalog() -> &'static Catalog {
    static CAT: OnceLock<Catalog> = OnceLock::new();
    CAT.get_or_init(|| tpch::generate(0.002))
}

/// A random single-table aggregation query over lineitem's numeric columns.
#[derive(Clone, Debug)]
struct RandomQuery {
    /// Filter: col(ci) cmp constant
    filter_col: usize,
    cmp: CmpOp,
    threshold: i64,
    /// Group by returnflag?
    grouped: bool,
    /// Aggregate function selector.
    agg_sel: u8,
    /// Aggregate argument: col(a) op col(b)
    arg_a: usize,
    arg_b: usize,
    arg_op: ArithOp,
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    (
        0usize..3,
        prop_oneof![
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
            Just(CmpOp::Eq),
            Just(CmpOp::Ne)
        ],
        0i64..6000,
        any::<bool>(),
        0u8..4,
        0usize..3,
        0usize..3,
        prop_oneof![Just(ArithOp::Add), Just(ArithOp::Sub), Just(ArithOp::Mul)],
    )
        .prop_map(|(filter_col, cmp, threshold, grouped, agg_sel, arg_a, arg_b, arg_op)| {
            RandomQuery { filter_col, cmp, threshold, grouped, agg_sel, arg_a, arg_b, arg_op }
        })
}

fn build_plan(q: &RandomQuery) -> PlanNode {
    // fields: 0 qty, 1 extprice, 2 discount, 3 returnflag
    let scan = PlanNode::Scan {
        table: "lineitem".into(),
        cols: vec![4, 5, 6, 8],
        filter: Some(PExpr::cmp(
            q.cmp,
            false,
            PExpr::Col(q.filter_col),
            PExpr::ConstI(q.threshold),
        )),
    };
    let arg = PExpr::arith(q.arg_op, true, false, PExpr::Col(q.arg_a), PExpr::Col(q.arg_b));
    let agg = match q.agg_sel {
        0 => AggSpec { func: AggFunc::SumI, arg: Some(arg) },
        1 => AggSpec { func: AggFunc::MinI, arg: Some(arg) },
        2 => AggSpec { func: AggFunc::MaxI, arg: Some(arg) },
        _ => AggSpec { func: AggFunc::CountStar, arg: None },
    };
    PlanNode::HashAgg {
        input: Box::new(scan),
        group_by: if q.grouped { vec![3] } else { vec![] },
        aggs: vec![agg, AggSpec { func: AggFunc::CountStar, arg: None }],
    }
}

fn normalized(rows: &[u64], width: usize) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = rows.chunks_exact(width).map(|r| r.to_vec()).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_plans_agree_across_modes(q in query_strategy()) {
        let cat = catalog();
        let plan = build_plan(&q);
        let phys = decompose(cat, &plan, vec![]);
        let width = phys.output_tys.len();

        let reference = execute_volcano(cat, &plan, &phys)
            .map(|rows| normalized(&rows, width));
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let prepared = session.prepare_plan(phys.clone());
        for mode in [ExecMode::Bytecode, ExecMode::Unoptimized, ExecMode::Optimized, ExecMode::Adaptive] {
            let opts = ExecOptions { mode, threads: 2, cache_results: false, ..Default::default() };
            let got = session.execute_with(&prepared, &opts)
                .map(|(res, _)| normalized(&res.rows, width));
            // Both the result *and* any trap (overflow from checked
            // arithmetic) must agree with the baseline.
            match (&reference, &got) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{:?} vs volcano: {:?}", mode, q),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb, "{:?} trap mismatch: {:?}", mode, q),
                (a, b) => prop_assert!(false, "{:?}: volcano={:?} engine={:?} for {:?}", mode, a, b, q),
            }
        }
    }
}
