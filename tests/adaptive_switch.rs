//! Engine-level tests for the hot-swap machinery itself:
//!
//! 1. a large synthetic query started in `ExecMode::Adaptive` must actually
//!    *switch* backends mid-pipeline (a background compilation appears in
//!    the trace and compiled morsels follow interpreted ones), and
//! 2. every one of the six `ExecMode`s — i.e. every backend that can sit
//!    in a pipeline's `Arc<dyn PipelineBackend>` handle, the native
//!    machine-code tier included — produces identical `ResultRows` on a
//!    TPC-H subset (on targets without the emitter, `Native` runs through
//!    its fallback alias and must still agree), and
//! 3. with an irresistible native speedup model, the Fig. 7 controller
//!    actually climbs to rank 4 mid-query: the trace shows morsels on the
//!    native backend (kind 4) after interpreted ones.

use aqe::engine::exec::{ExecMode, ExecOptions, TraceEvent};
use aqe::engine::plan::decompose;
use aqe::engine::session::Engine;
use aqe::queries::{synthetic, tpch};
use aqe::storage::tpch as tpch_data;

/// Trace kind marking a background compilation (see `TraceEvent::kind`).
const KIND_COMPILE: u8 = 255;

fn normalized(rows: &[u64], width: usize, sorted: bool) -> Vec<Vec<u64>> {
    if width == 0 {
        return vec![];
    }
    let mut out: Vec<Vec<u64>> = rows.chunks_exact(width).map(|r| r.to_vec()).collect();
    if !sorted {
        out.sort();
    }
    out
}

#[test]
fn adaptive_mode_switches_backend_mid_query() {
    // A wide synthetic aggregation: expensive enough per tuple that the
    // Fig. 7 extrapolation always decides compilation pays off, and long
    // enough that the background compile lands while morsels remain.
    let cat = tpch_data::generate(0.02);
    let q = synthetic::wide_agg(120);
    let phys = decompose(&cat, &q.root, vec![]);

    let mut opts =
        ExecOptions { mode: ExecMode::Adaptive, threads: 2, trace: true, ..Default::default() };
    // Generous modeled speedup so the decision is deterministic even on a
    // slow CI machine; the *observed* switch below is what the test checks.
    opts.model.speedup_opt = 6.0;
    opts.model.speedup_unopt = 3.0;
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys.clone());
    let (rows, report) = session.execute_with(&prepared, &opts).expect("adaptive execution");

    assert!(
        report.background_compiles >= 1,
        "expected at least one background compilation, got {}",
        report.background_compiles
    );
    let compiles: Vec<&TraceEvent> =
        report.trace.iter().filter(|e| e.kind == KIND_COMPILE).collect();
    assert!(!compiles.is_empty(), "trace must contain a compilation event");

    // The switch must be *observable in executed morsels*: interpreted
    // (bytecode, kind 0) morsels first, compiled (kind 1 or 2) morsels
    // after the backend was published into the handle.
    let morsel_kinds: std::collections::BTreeSet<u8> =
        report.trace.iter().filter(|e| e.kind != KIND_COMPILE).map(|e| e.kind).collect();
    assert!(
        morsel_kinds.contains(&0),
        "query must start on the bytecode backend, kinds seen: {morsel_kinds:?}"
    );
    assert!(
        morsel_kinds.contains(&1) || morsel_kinds.contains(&2),
        "no morsel ran on a compiled backend — no switch happened; \
         kinds seen: {morsel_kinds:?}"
    );

    // Same thread, backend changes between consecutive morsels: the
    // hot-swap handle picked up the new backend on the very next morsel.
    let mut per_thread_switches = 0usize;
    for tid in report.trace.iter().map(|e| e.thread).collect::<std::collections::BTreeSet<_>>() {
        let kinds: Vec<u8> = report
            .trace
            .iter()
            .filter(|e| e.thread == tid && e.kind != KIND_COMPILE)
            .map(|e| e.kind)
            .collect();
        per_thread_switches += kinds.windows(2).filter(|w| w[0] != w[1]).count();
    }
    assert!(per_thread_switches >= 1, "at least one worker must switch backends");

    // And the switch must not have changed the answer (cache off: the
    // comparison run must really execute on the bytecode backend).
    let bc_opts = ExecOptions {
        mode: ExecMode::Bytecode,
        threads: 2,
        cache_results: false,
        ..Default::default()
    };
    let (bc_rows, _) = session.execute_with(&prepared, &bc_opts).expect("bytecode execution");
    let w = phys.output_tys.len();
    assert_eq!(
        normalized(&rows.rows, w, phys.sorted_output),
        normalized(&bc_rows.rows, w, phys.sorted_output),
        "adaptive result differs from pure bytecode result"
    );
}

#[test]
fn later_pipelines_decide_with_calibrated_cost_model() {
    // The calibration loop (sched::calibrate): pipeline 0's background
    // compile feeds its *measured* wall time per IR instruction back into
    // the per-query CostCalibrator; because the pipeline run joins its
    // compile threads before finalizing, the feedback is guaranteed to
    // land before the next pipeline constructs its controller — so every
    // later pipeline decides with a calibrated (non-default) model.
    let cat = tpch_data::generate(0.02);
    let q = synthetic::wide_agg(120);
    let phys = decompose(&cat, &q.root, vec![]);

    let mut opts =
        ExecOptions { mode: ExecMode::Adaptive, threads: 2, trace: false, ..Default::default() };
    opts.model.speedup_opt = 6.0;
    opts.model.speedup_unopt = 3.0;
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys);
    let (_, report) = session.execute_with(&prepared, &opts).expect("adaptive execution");

    assert!(report.background_compiles >= 1, "test needs at least one background compile");
    assert!(
        report.calibration.compile_observations >= 1,
        "the joined compile must have recorded its measured ctime"
    );
    assert!(report.sched.len() >= 2, "wide_agg must decompose into at least two pipelines");
    let first = &report.sched[0];
    let last = report.sched.last().unwrap();
    assert!(!first.calibrated, "pipeline 0 has nothing to calibrate from yet");
    assert!(
        last.calibrated,
        "later pipelines must decide with a model that received feedback: {report:?}"
    );
    assert_ne!(
        last.model, opts.model,
        "the calibrated model must differ from the query's starting constants"
    );
    // The compile-time constants moved toward measurements; the observed
    // per-instruction cost of this reproduction's threaded-code backend is
    // strictly positive, so the calibrated constant stays positive too.
    assert!(last.model.unopt_per_instr_s > 0.0 || last.model.opt_per_instr_s > 0.0);
}

#[test]
fn work_stealing_is_observable_in_the_sched_report() {
    // A 4-thread run over a pipeline whose workers race to the end: the
    // per-pipeline scheduler report surfaces morsel and steal counts, and
    // disabling stealing zeroes the steal counters without changing the
    // result.
    let cat = tpch_data::generate(0.02);
    let q = synthetic::wide_agg(40);
    let phys = decompose(&cat, &q.root, vec![]);

    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys);
    let steal_opts = ExecOptions {
        mode: ExecMode::Bytecode,
        threads: 4,
        min_morsel: 64,
        max_morsel: 256,
        cache_results: false,
        ..Default::default()
    };
    let (rows, report) = session.execute_with(&prepared, &steal_opts).expect("bytecode execution");
    let total_morsels: u64 = report.sched.iter().map(|s| s.morsels).sum();
    assert!(total_morsels > 0);
    let total_rows: u64 = report.sched.iter().map(|s| s.total_rows).max().unwrap();
    assert_eq!(total_rows, cat.get("lineitem").unwrap().row_count() as u64);

    let no_steal = ExecOptions { steal: false, ..steal_opts };
    let (rows2, report2) = session.execute_with(&prepared, &no_steal).expect("no-steal execution");
    assert!(report2.sched.iter().all(|s| s.steals == 0 && s.stolen_tuples == 0));
    assert_eq!(rows.rows, rows2.rows, "stealing must not change the answer");
}

#[test]
fn all_six_modes_agree_on_tpch_subset() {
    let cat = tpch_data::generate(0.005);
    let all = tpch::all(&cat);
    // A subset that covers scan+filter+agg, joins, and sorted output while
    // keeping the naive IR interpreter's runtime tolerable.
    let subset = ["q1", "q3", "q6", "q14"];
    let mut covered = 0;
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    for q in all.iter().filter(|q| subset.contains(&q.name.as_str())) {
        covered += 1;
        let phys = decompose(&cat, &q.root, q.dicts.clone());
        let width = phys.output_tys.len();
        let prepared = session.prepare_plan(phys.clone());
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for mode in [
            ExecMode::NaiveIr,
            ExecMode::Bytecode,
            ExecMode::Unoptimized,
            ExecMode::Optimized,
            ExecMode::Native,
            ExecMode::Adaptive,
        ] {
            let opts = ExecOptions { mode, threads: 2, cache_results: false, ..Default::default() };
            let (res, _) = session
                .execute_with(&prepared, &opts)
                .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", q.name));
            let got = normalized(&res.rows, width, phys.sorted_output);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(&got, want, "{} {mode:?} disagrees with NaiveIr", q.name)
                }
            }
        }
    }
    assert_eq!(covered, subset.len(), "TPC-H subset lookup failed");
}

#[test]
fn adaptive_controller_reaches_native_rank_four() {
    if !aqe::jit::native::enabled() {
        eprintln!("native emitter disabled; skipping the rank-4 switch test");
        return;
    }
    // Make the native rung irresistible relative to the threaded levels:
    // huge modelled native speedup, modest threaded speedups — over a wide
    // aggregation there is easily enough remaining work to amortize the
    // native compile cost, so extrapolation picks rank 4 directly.
    let cat = tpch_data::generate(0.02);
    let q = synthetic::wide_agg(120);
    let phys = decompose(&cat, &q.root, vec![]);

    let mut opts =
        ExecOptions { mode: ExecMode::Adaptive, threads: 2, trace: true, ..Default::default() };
    opts.model.speedup_unopt = 1.05;
    opts.model.speedup_opt = 1.1;
    opts.model.speedup_native = 20.0;
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys.clone());
    let (rows, report) = session.execute_with(&prepared, &opts).expect("adaptive execution");

    assert!(report.background_compiles >= 1, "a background compile must have landed");
    let morsel_kinds: std::collections::BTreeSet<u8> =
        report.trace.iter().filter(|e| e.kind != KIND_COMPILE).map(|e| e.kind).collect();
    assert!(morsel_kinds.contains(&0), "query starts interpreted: {morsel_kinds:?}");
    assert!(
        morsel_kinds.contains(&4),
        "no morsel ran on the native backend — the rank-4 switch did not happen; \
         kinds seen: {morsel_kinds:?}"
    );

    // The switch must not change the answer.
    let bc_opts = ExecOptions {
        mode: ExecMode::Bytecode,
        threads: 2,
        cache_results: false,
        ..Default::default()
    };
    let (bc_rows, _) = session.execute_with(&prepared, &bc_opts).expect("bytecode execution");
    let w = phys.output_tys.len();
    assert_eq!(
        normalized(&rows.rows, w, phys.sorted_output),
        normalized(&bc_rows.rows, w, phys.sorted_output),
        "native-switched result differs from pure bytecode result"
    );
}

#[test]
fn native_mode_runs_or_aliases_cleanly() {
    // `ExecMode::Native` must work on every target: real machine code
    // where the emitter exists, the optimized threaded alias elsewhere
    // (and under AQE_NATIVE=0). Either way the rows match bytecode.
    let cat = tpch_data::generate(0.01);
    let q = synthetic::wide_agg(40);
    let phys = decompose(&cat, &q.root, vec![]);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys.clone());
    let native_opts = ExecOptions {
        mode: ExecMode::Native,
        threads: 2,
        trace: true,
        cache_results: false,
        ..Default::default()
    };
    let (rows, report) = session.execute_with(&prepared, &native_opts).expect("native execution");
    let kinds: std::collections::BTreeSet<u8> =
        report.trace.iter().filter(|e| e.kind != KIND_COMPILE).map(|e| e.kind).collect();
    if aqe::jit::native::enabled() {
        assert_eq!(kinds, [4u8].into(), "every morsel must run on machine code: {kinds:?}");
    } else {
        assert_eq!(kinds, [2u8].into(), "fallback must alias to optimized: {kinds:?}");
    }
    let bc_opts = ExecOptions {
        mode: ExecMode::Bytecode,
        threads: 2,
        cache_results: false,
        ..Default::default()
    };
    let (bc_rows, _) = session.execute_with(&prepared, &bc_opts).expect("bytecode execution");
    assert_eq!(rows.rows, bc_rows.rows, "native (or alias) must agree with bytecode");
}
