//! # aqe — Adaptive Execution of Compiled Queries
//!
//! Facade crate re-exporting the full reproduction of Kohn, Leis & Neumann,
//! *Adaptive Execution of Compiled Queries* (ICDE 2018). See the individual
//! crates for the subsystems:
//!
//! * [`ir`] — SSA intermediate representation ("LLVM IR" substrate)
//! * [`vm`] — bytecode virtual machine with linear-time translation (§IV)
//! * [`jit`] — compiled backends: threaded code (unoptimized / optimized)
//!   and real x86-64 machine code (`ExecMode::Native`) (§II–III)
//! * [`storage`] — columnar storage, TPC-H / TPC-DS-lite data generators
//! * [`engine`] — the adaptive execution framework itself (§III)
//! * [`sql`] — SQL frontend (parser, binder, optimizer)
//! * [`baselines`] — Volcano-style and vectorized comparison engines
//! * [`queries`] — the evaluation query corpus
//! * [`server`] — the network front door: epoll connection multiplexing,
//!   admission control, deadlines, cooperative cancellation (§13 in
//!   DESIGN.md)
//!
//! All execution backends plug into one seam: the object-safe
//! [`vm::backend::PipelineBackend`] trait (re-exported here as
//! [`PipelineBackend`]), implemented by the bytecode VM, the naive IR
//! interpreter, both threaded-code levels, and the native machine-code
//! tier. The engine's morsel loop calls through a hot-swappable
//! `Arc<dyn PipelineBackend>` handle per pipeline, which is what lets a
//! query switch representation mid-flight — all the way to rank-4 native
//! code.
//!
//! The public execution API is the long-lived session layer
//! ([`Engine`] → [`Session`] → [`PreparedQuery`], re-exported here):
//! prepared statements retain generated code across executions, the
//! engine persists cost-model calibration across queries, and a
//! versioned result cache answers repeated identical plans without
//! running a morsel.
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for the
//! system inventory and the per-figure reproduction index.

pub use aqe_engine::exec::{ExecMode, ExecOptions, FunctionHandle};
pub use aqe_engine::session::{Engine, PreparedQuery, Session};
pub use aqe_vm::backend::PipelineBackend;

pub use aqe_baselines as baselines;
pub use aqe_engine as engine;
pub use aqe_fault as fault;
pub use aqe_ir as ir;
pub use aqe_jit as jit;
pub use aqe_queries as queries;
pub use aqe_server as server;
pub use aqe_sql as sql;
pub use aqe_storage as storage;
pub use aqe_vm as vm;
