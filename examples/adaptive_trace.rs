//! Watch adaptive execution switch modes mid-pipeline (paper Fig. 14):
//! runs TPC-H Q11 with tracing enabled and prints every compile event and a
//! per-thread summary of which execution modes processed morsels.
//!
//! ```text
//! cargo run --release --example adaptive_trace
//! ```

use aqe::engine::exec::{ExecMode, ExecOptions};
use aqe::engine::session::Engine;
use aqe::queries::tpch;
use aqe::storage::tpch as tpch_data;

fn main() {
    let sf = std::env::var("AQE_SF").ok().and_then(|s| s.parse().ok()).unwrap_or(0.2);
    println!("generating TPC-H SF {sf}…");
    let engine = Engine::new(tpch_data::generate(sf));
    let session = engine.session();
    let q = engine.with_catalog(tpch::q11);
    let prepared = session.prepare(&q.root, q.dicts.clone());

    let mut opts =
        ExecOptions { mode: ExecMode::Adaptive, threads: 4, trace: true, ..Default::default() };
    // Nudge the model so the demo compiles even at small scale factors.
    opts.model.speedup_opt = 3.0;
    let (result, report) = session.execute_with(&prepared, &opts).expect("query ok");

    println!("\npipelines:");
    for (i, label) in report.pipeline_labels.iter().enumerate() {
        println!("  p{i}: {label}");
    }
    println!("\ncompile events:");
    for e in report.trace.iter().filter(|e| e.kind == 255) {
        println!(
            "  pipeline p{} compiled in background: {:.2} ms (at t={:.2} ms)",
            e.pipeline,
            (e.end_us - e.start_us) as f64 / 1e3,
            e.start_us as f64 / 1e3
        );
    }
    println!("\nmorsels per (pipeline, mode):");
    let mut counts: std::collections::BTreeMap<(u16, u8), (u64, u64)> = Default::default();
    for e in report.trace.iter().filter(|e| e.kind != 255) {
        let c = counts.entry((e.pipeline, e.kind)).or_default();
        c.0 += 1;
        c.1 += e.tuples;
    }
    for ((p, k), (morsels, tuples)) in counts {
        let mode = match k {
            0 => "bytecode",
            1 => "unoptimized",
            2 => "optimized",
            3 => "naive-ir",
            4 => "native",
            _ => "?",
        };
        println!("  p{p} {mode:<12} {morsels:>6} morsels {tuples:>12} tuples");
    }
    println!(
        "\nresult rows: {}, total exec {:.2} ms, background compiles: {}",
        result.row_count(),
        report.exec.as_secs_f64() * 1e3,
        report.background_compiles
    );
}
