//! The paper's motivating workload (§I): a pgAdmin-style startup batch of
//! complex queries over tiny catalog tables. With up-front optimized
//! compilation, "98% of the time will be wasted on compilation"; adaptive
//! execution never compiles these queries and stays interactive.
//!
//! ```text
//! cargo run --release --example pgadmin_startup
//! ```

use aqe::engine::exec::{ExecMode, ExecOptions};
use aqe::engine::session::Engine;
use aqe::queries::meta;
use aqe::storage::meta as meta_tables;
use std::time::Instant;

fn main() {
    let catalog = meta_tables::generate(400);
    let batch = meta::startup_batch();
    println!("pgAdmin-style startup batch: {} catalog queries\n", batch.len());
    println!("{:<12} {:>12} {:>16}", "mode", "total[ms]", "compiles");

    for (mode, label) in [
        (ExecMode::Optimized, "optimized"),
        (ExecMode::Unoptimized, "unoptimized"),
        (ExecMode::Bytecode, "bytecode"),
        (ExecMode::Adaptive, "adaptive"),
    ] {
        // A fresh engine per mode: each row measures a cold startup batch.
        let engine = Engine::new(catalog.clone());
        let session = engine.session();
        let t0 = Instant::now();
        let mut compiles = 0usize;
        for q in &batch {
            let prepared = session.prepare(&q.root, q.dicts.clone());
            let opts = ExecOptions { mode, threads: 1, ..Default::default() };
            let (_, report) = session.execute_with(&prepared, &opts).expect("query ok");
            compiles += report.background_compiles
                + if matches!(mode, ExecMode::Optimized | ExecMode::Unoptimized) {
                    report.pipeline_labels.len()
                } else {
                    0
                };
        }
        println!("{:<12} {:>12.2} {:>16}", label, t0.elapsed().as_secs_f64() * 1e3, compiles);
    }
    println!(
        "\nAdaptive execution matches pure interpretation here: none of these \
         queries ever justifies compilation (paper §V-A, SF ≤ 0.1)."
    );
}
