//! The front-door server, end to end (DESIGN.md §13): spawn a server on
//! a loopback socket, talk the framed protocol through the bundled
//! client — prepare / bound execute / a deadline that expires / a cancel
//! that stops a running query — then read the admission ledger and shut
//! down cleanly.
//!
//! ```text
//! cargo run --release --example server_quickstart
//! ```

use aqe::engine::ParamValue;
use aqe::server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use aqe::{Engine, ExecMode, ExecOptions};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Arc::new(Engine::new(aqe::storage::tpch::generate(0.05)));
    // Pin the executor to the interpreter tier with the result cache off
    // so the heavy query below genuinely re-executes and runs long
    // enough for deadlines and cancels to land mid-scan; a production
    // server would keep the adaptive, cached defaults.
    let config = ServerConfig {
        exec: ExecOptions { mode: ExecMode::Bytecode, cache_results: false, ..Default::default() },
        ..Default::default()
    };
    let (handle, join) = Server::spawn(engine.clone(), config)?;
    println!("serving on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;

    // Prepare once; execute with different bind values. The second
    // binding reuses every compiled artifact of the first (§10).
    let stmt = client.prepare(
        "SELECT count(*) AS n, sum(l_extendedprice) AS v \
         FROM lineitem WHERE l_quantity < ?",
    )?;
    // Decimal parameters bind in their scaled representation (cents).
    let narrow = client.execute(&stmt, &[ParamValue::I64(500)])?;
    let wide = client.execute(&stmt, &[ParamValue::I64(4500)])?;
    println!(
        "l_quantity < 5:  {} matching rows  (queue wait {} µs)",
        narrow.i64(0, 0),
        narrow.queue_wait_us
    );
    println!(
        "l_quantity < 45: {} matching rows  (queue wait {} µs)",
        wide.i64(0, 0),
        wide.queue_wait_us
    );

    // A heavy statement for the cancellation demos.
    let aggs: Vec<String> =
        (0..24).map(|k| format!("sum(l_quantity * {} + l_extendedprice) as s{k}", k + 1)).collect();
    let heavy = client.prepare(&format!("select {} from lineitem", aggs.join(", ")))?;
    let t0 = Instant::now();
    client.execute(&heavy, &[])?;
    let full = t0.elapsed();
    println!("heavy query runs in {full:?} unopposed");

    // Deadline: the server poisons the token mid-scan and answers with
    // a typed error frame — the connection stays usable.
    let deadline_ms = (full.as_millis() as u32 / 4).max(1);
    match client.execute_with(&heavy, &[], 1, deadline_ms) {
        Err(ClientError::Server { code: ErrorCode::DeadlineExceeded, message }) => {
            println!("deadline of {deadline_ms} ms expired: {message}")
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }

    // Client-driven cancel: submit, let the morsel loop get going, then
    // race it with a cancel frame.
    let req = client.submit(&heavy, &[], 1, 0)?;
    std::thread::sleep(full / 4);
    let t0 = Instant::now();
    client.cancel(req)?;
    match client.wait(req) {
        Err(ClientError::Server { code: ErrorCode::Cancelled, .. }) => {
            println!("cancel frame stopped the query in {:?}", t0.elapsed())
        }
        other => panic!("expected a cancelled error, got {other:?}"),
    }

    // The cancel poisoned nothing durable: the same statement answers.
    let again = client.execute(&heavy, &[])?;
    println!("re-execution after cancel: {} columns, prepared state intact", again.tys.len());

    let stats = engine.server_stats();
    println!(
        "ledger: accepted {} · shed {} · cancelled {} · deadline-expired {}",
        stats.accepted, stats.shed, stats.cancelled, stats.deadline_expired
    );

    handle.shutdown();
    join.join().unwrap()?;
    println!("server drained and joined cleanly");
    Ok(())
}
