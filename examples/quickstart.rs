//! Quickstart: the long-lived `Engine` → `Session` → `PreparedQuery` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Prepares one SQL statement and executes it three times on the same
//! engine: the first run pays codegen + bytecode translation and climbs
//! the adaptive ladder; the second reuses every compiled artifact; the
//! third is answered straight from the versioned result cache. A fourth
//! section binds `?` placeholders: one compiled statement, many values.

use aqe::engine::session::Engine;
use aqe::engine::{ExecOptions, ParamValue};
use aqe::sql::prepare;
use aqe::storage::tpch;

fn main() {
    // 1. Generate (or load) data, and build the long-lived engine over it.
    println!("generating TPC-H scale factor 0.01…");
    let engine = Engine::new(tpch::generate(0.01));

    // 2. Open a session and prepare a SQL statement (parse → bind →
    //    optimize → decompose, once).
    let mut session = engine.session();
    session.set_defaults(ExecOptions { threads: 2, ..Default::default() });
    let sql = "SELECT l_returnflag, count(*) AS n, sum(l_extendedprice) AS revenue \
               FROM lineitem WHERE l_shipdate <= date '1998-09-02' \
               GROUP BY l_returnflag ORDER BY revenue DESC";
    let stmt = prepare(&session, sql).expect("valid SQL");

    // 3. Execute. The first run starts in the bytecode interpreter and
    //    compiles hot pipelines in the background (paper §III).
    let (result, cold) = session.execute(&stmt.query).expect("query ok");

    // 4. Render.
    println!("{:?}", stmt.output_names);
    let width = result.tys.len();
    let rf_dict = engine.with_catalog(|cat| {
        cat.get("lineitem")
            .unwrap()
            .column_by_name("l_returnflag")
            .unwrap()
            .as_str()
            .unwrap()
            .dict
            .clone()
    });
    for row in result.rows.chunks_exact(width) {
        let flag = &rf_dict[row[0] as usize];
        println!(
            "{flag}  n={}  revenue={}.{:02}",
            row[1] as i64,
            row[2] as i64 / 100,
            (row[2] as i64 % 100).abs()
        );
    }

    // 5. Execute again: same prepared query, same engine. Nothing is
    //    regenerated — and a third submission never runs a morsel at all.
    let no_cache = ExecOptions { threads: 2, cache_results: false, ..Default::default() };
    let (_, warm) = session.execute_with(&stmt.query, &no_cache).expect("query ok");
    let (_, cached) = session.execute(&stmt.query).expect("query ok");

    println!(
        "\ncold run:   codegen {:?}, bytecode translation {:?}, execution {:?}, \
         background compiles: {}",
        cold.codegen, cold.bc_translate, cold.exec, cold.background_compiles
    );
    println!(
        "warm run:   codegen {:?}, bytecode translation {:?}, execution {:?} \
         (starts at {:?})",
        warm.codegen,
        warm.bc_translate,
        warm.exec,
        warm.sched.iter().map(|s| s.start_level).max().unwrap()
    );
    println!("cached run: result cache hit = {}", cached.result_cache_hit);

    // 6. Parameterized statements: `?` placeholders (or `$1`, `$2`, …)
    //    compile once; every binding reuses the retained module, bytecode,
    //    and compiled backends with a fresh parameter block. Decimals bind
    //    as cents, dates as day numbers.
    let param_sql = "SELECT count(*) AS n, sum(l_extendedprice) AS revenue \
                     FROM lineitem WHERE l_quantity < ?";
    let stmt = prepare(&session, param_sql).expect("valid SQL");
    let (_, first) =
        session.execute_bound(&stmt.query, &[ParamValue::I64(2400)]).expect("query ok");
    let (_, fresh) =
        session.execute_bound(&stmt.query, &[ParamValue::I64(1000)]).expect("query ok");
    println!(
        "bound runs: first binding codegen {:?}; fresh value codegen {:?} \
         (cache hit = {}) — one compiled statement, any value",
        first.codegen, fresh.codegen, fresh.result_cache_hit
    );
}
