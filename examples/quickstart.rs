//! Quickstart: run a SQL query through the adaptive engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aqe::engine::exec::{execute_plan, ExecMode, ExecOptions};
use aqe::engine::plan::decompose;
use aqe::sql::plan_sql;
use aqe::storage::tpch;

fn main() {
    // 1. Generate (or load) data.
    println!("generating TPC-H scale factor 0.01…");
    let catalog = tpch::generate(0.01);

    // 2. Plan a SQL query.
    let sql = "SELECT l_returnflag, count(*) AS n, sum(l_extendedprice) AS revenue \
               FROM lineitem WHERE l_shipdate <= date '1998-09-02' \
               GROUP BY l_returnflag ORDER BY revenue DESC";
    let bound = plan_sql(&catalog, sql).expect("valid SQL");
    let phys = decompose(&catalog, &bound.root, bound.dicts);

    // 3. Execute adaptively: starts in the bytecode interpreter and
    //    compiles hot pipelines in the background (paper §III).
    let opts = ExecOptions { mode: ExecMode::Adaptive, threads: 2, ..Default::default() };
    let (result, report) = execute_plan(&phys, &catalog, &opts).expect("query ok");

    // 4. Render.
    println!("{:?}", bound.output_names);
    let width = result.tys.len();
    let rf_dict = catalog
        .get("lineitem")
        .unwrap()
        .column_by_name("l_returnflag")
        .unwrap()
        .as_str()
        .unwrap()
        .dict
        .clone();
    for row in result.rows.chunks_exact(width) {
        let flag = &rf_dict[row[0] as usize];
        println!(
            "{flag}  n={}  revenue={}.{:02}",
            row[1] as i64,
            row[2] as i64 / 100,
            (row[2] as i64 % 100).abs()
        );
    }
    println!(
        "\ncodegen {:?}, bytecode translation {:?}, execution {:?}, background compiles: {}",
        report.codegen, report.bc_translate, report.exec, report.background_compiles
    );
}
