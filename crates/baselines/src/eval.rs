//! Shared interpreted expression evaluation over u64-encoded values
//! (sign-extended integers / f64 bit patterns — the same representation the
//! compiling engine uses, so results compare exactly).

use aqe_engine::plan::{ArithOp, CmpOp, PExpr, PhysicalPlan};
use aqe_vm::interp::ExecError;

/// Evaluate an expression against one tuple. `dicts` resolves
/// `PExpr::DictLookup` tables.
pub fn eval(e: &PExpr, row: &[u64], plan: &PhysicalPlan) -> Result<u64, ExecError> {
    Ok(match e {
        PExpr::Col(i) => row[*i],
        PExpr::ConstI(c) => *c as u64,
        PExpr::ConstF(c) => c.to_bits(),
        PExpr::Arith { op, checked, float, a, b } => {
            let (x, y) = (eval(a, row, plan)?, eval(b, row, plan)?);
            if *float {
                let (x, y) = (f64::from_bits(x), f64::from_bits(y));
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                };
                r.to_bits()
            } else {
                let (x, y) = (x as i64, y as i64);
                let r = match (op, checked) {
                    (ArithOp::Add, true) => x.checked_add(y).ok_or(ExecError::Overflow)?,
                    (ArithOp::Sub, true) => x.checked_sub(y).ok_or(ExecError::Overflow)?,
                    (ArithOp::Mul, true) => x.checked_mul(y).ok_or(ExecError::Overflow)?,
                    (ArithOp::Add, false) => x.wrapping_add(y),
                    (ArithOp::Sub, false) => x.wrapping_sub(y),
                    (ArithOp::Mul, false) => x.wrapping_mul(y),
                    (ArithOp::Div, _) => {
                        if y == 0 {
                            return Err(ExecError::DivByZero);
                        }
                        if x == i64::MIN && y == -1 {
                            return Err(ExecError::Overflow);
                        }
                        x / y
                    }
                };
                r as u64
            }
        }
        PExpr::Cmp { op, float, a, b } => {
            let (x, y) = (eval(a, row, plan)?, eval(b, row, plan)?);
            let r = if *float {
                let (x, y) = (f64::from_bits(x), f64::from_bits(y));
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            } else {
                let (x, y) = (x as i64, y as i64);
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            };
            r as u64
        }
        PExpr::And(a, b) => eval(a, row, plan)? & eval(b, row, plan)? & 1,
        PExpr::Or(a, b) => (eval(a, row, plan)? | eval(b, row, plan)?) & 1,
        PExpr::Not(a) => (eval(a, row, plan)? ^ 1) & 1,
        PExpr::InList { v, list } => {
            let x = eval(v, row, plan)? as i64;
            list.contains(&x) as u64
        }
        PExpr::Case { cond, t, f, .. } => {
            if eval(cond, row, plan)? & 1 != 0 {
                eval(t, row, plan)?
            } else {
                eval(f, row, plan)?
            }
        }
        PExpr::DictLookup { v, table, elem_size } => {
            let code = eval(v, row, plan)? as usize;
            let d = &plan.dicts[*table];
            match elem_size {
                1 => d.bytes[code] as u64,
                _ => {
                    let b = &d.bytes[code * 4..code * 4 + 4];
                    u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64
                }
            }
        }
        PExpr::IToF(v) => ((eval(v, row, plan)? as i64) as f64).to_bits(),
        // The baselines replay fixed statements; bind parameters belong to
        // the session layer's prepared-query path.
        PExpr::Param { .. } => {
            return Err(ExecError::Setup("baseline evaluators do not bind parameters".into()))
        }
    })
}

/// Truthiness of a predicate result.
pub fn truthy(v: u64) -> bool {
    v & 1 != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::plan::PExpr as E;

    fn plan() -> PhysicalPlan {
        PhysicalPlan {
            pipelines: vec![],
            join_hts: vec![],
            aggs: vec![],
            mats: vec![],
            dicts: vec![],
            state_slots: 0,
            output_tys: vec![],
            sorted_output: false,
            params: vec![],
            param_slot: None,
        }
    }

    #[test]
    fn arithmetic_and_comparison() {
        let p = plan();
        let row = [10u64, (-3i64) as u64];
        let e = E::arith(ArithOp::Mul, true, false, E::Col(0), E::Col(1));
        assert_eq!(eval(&e, &row, &p).unwrap() as i64, -30);
        let c = E::cmp(CmpOp::Lt, false, E::Col(1), E::ConstI(0));
        assert_eq!(eval(&c, &row, &p).unwrap(), 1);
    }

    #[test]
    fn overflow_detected() {
        let p = plan();
        let row = [i64::MAX as u64];
        let e = E::arith(ArithOp::Add, true, false, E::Col(0), E::ConstI(1));
        assert_eq!(eval(&e, &row, &p), Err(ExecError::Overflow));
    }

    #[test]
    fn float_math() {
        let p = plan();
        let row = [2.5f64.to_bits()];
        let e = E::arith(ArithOp::Mul, false, true, E::Col(0), E::ConstF(4.0));
        assert_eq!(f64::from_bits(eval(&e, &row, &p).unwrap()), 10.0);
    }

    #[test]
    fn case_and_inlist() {
        let p = plan();
        let row = [7u64];
        let e = E::Case {
            cond: Box::new(E::InList { v: E::coli(0), list: vec![5, 7, 9] }),
            t: Box::new(E::ConstI(1)),
            f: Box::new(E::ConstI(0)),
            float: false,
        };
        assert_eq!(eval(&e, &row, &p).unwrap(), 1);
    }
}
