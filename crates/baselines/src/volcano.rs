//! Volcano-style iterator engine (the "PostgreSQL" baseline of Tables I/II).
//!
//! Classic textbook design: every operator is a boxed trait object with a
//! virtual `next()` returning one tuple; expressions are interpreted per
//! tuple. This is the execution model whose interpretation overhead
//! compilation eliminates (paper §I).

use crate::eval::{eval, truthy};
use aqe_engine::plan::{AggFunc, AggSpec, JoinKind, PExpr, PhysicalPlan, PlanNode, SortKey};
use aqe_engine::runtime::sort_rows;
use aqe_storage::{Catalog, Table};
use aqe_vm::interp::ExecError;
use std::collections::HashMap;
use std::sync::Arc;

type Tuple = Vec<u64>;

trait Operator {
    fn next(&mut self) -> Result<Option<Tuple>, ExecError>;
}

struct ScanOp {
    table: Arc<Table>,
    cols: Vec<usize>,
    filter: Option<PExpr>,
    plan: Arc<PhysicalPlan>,
    pos: usize,
}

impl Operator for ScanOp {
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while self.pos < self.table.row_count() {
            let r = self.pos;
            self.pos += 1;
            let tuple: Tuple = self.cols.iter().map(|&c| self.table.column(c).get_u64(r)).collect();
            match &self.filter {
                Some(p) if !truthy(eval(p, &tuple, &self.plan)?) => continue,
                _ => return Ok(Some(tuple)),
            }
        }
        Ok(None)
    }
}

struct FilterOp {
    input: Box<dyn Operator>,
    pred: PExpr,
    plan: Arc<PhysicalPlan>,
}

impl Operator for FilterOp {
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while let Some(t) = self.input.next()? {
            if truthy(eval(&self.pred, &t, &self.plan)?) {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

struct ProjectOp {
    input: Box<dyn Operator>,
    exprs: Vec<PExpr>,
    plan: Arc<PhysicalPlan>,
}

impl Operator for ProjectOp {
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        match self.input.next()? {
            None => Ok(None),
            Some(t) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(eval(e, &t, &self.plan)?);
                }
                Ok(Some(out))
            }
        }
    }
}

struct HashJoinOp {
    build: Option<Box<dyn Operator>>,
    probe: Box<dyn Operator>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    build_payload: Vec<usize>,
    kind: JoinKind,
    table: HashMap<Vec<u64>, Vec<Tuple>>,
    /// Pending matches for the current probe tuple (inner join fan-out).
    pending: Vec<Tuple>,
}

impl HashJoinOp {
    fn ensure_built(&mut self) -> Result<(), ExecError> {
        if let Some(mut b) = self.build.take() {
            while let Some(t) = b.next()? {
                let key: Vec<u64> = self.build_keys.iter().map(|&k| t[k]).collect();
                self.table.entry(key).or_default().push(t);
            }
        }
        Ok(())
    }
}

impl Operator for HashJoinOp {
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ensure_built()?;
        loop {
            if let Some(t) = self.pending.pop() {
                return Ok(Some(t));
            }
            let Some(t) = self.probe.next()? else {
                return Ok(None);
            };
            let key: Vec<u64> = self.probe_keys.iter().map(|&k| t[k]).collect();
            match (self.kind, self.table.get(&key)) {
                (JoinKind::Inner, Some(matches)) => {
                    for m in matches {
                        let mut out = t.clone();
                        out.extend(self.build_payload.iter().map(|&i| m[i]));
                        self.pending.push(out);
                    }
                }
                (JoinKind::Semi, Some(_)) | (JoinKind::Anti, None) => return Ok(Some(t)),
                _ => {}
            }
        }
    }
}

struct HashAggOp {
    input: Option<Box<dyn Operator>>,
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    plan: Arc<PhysicalPlan>,
    out: Vec<Tuple>,
}

impl Operator for HashAggOp {
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if let Some(mut input) = self.input.take() {
            let mut groups: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
            // Key-less aggregation always yields a row.
            if self.group_by.is_empty() {
                groups.insert(vec![], self.aggs.iter().map(|a| a.func.init_bits()).collect());
            }
            while let Some(t) = input.next()? {
                let key: Vec<u64> = self.group_by.iter().map(|&k| t[k]).collect();
                let accs = groups
                    .entry(key)
                    .or_insert_with(|| self.aggs.iter().map(|a| a.func.init_bits()).collect());
                for (i, a) in self.aggs.iter().enumerate() {
                    let arg = match &a.arg {
                        Some(e) => eval(e, &t, &self.plan)?,
                        None => 0,
                    };
                    accs[i] = accumulate(&a.func, accs[i], arg)?;
                }
            }
            self.out = groups
                .into_iter()
                .map(|(mut k, accs)| {
                    k.extend(accs);
                    k
                })
                .collect();
        }
        Ok(self.out.pop())
    }
}

fn accumulate(f: &AggFunc, acc: u64, arg: u64) -> Result<u64, ExecError> {
    Ok(match f {
        AggFunc::SumI => (acc as i64).checked_add(arg as i64).ok_or(ExecError::Overflow)? as u64,
        AggFunc::CountStar => (acc as i64 + 1) as u64,
        AggFunc::SumF => (f64::from_bits(acc) + f64::from_bits(arg)).to_bits(),
        AggFunc::MinI => (acc as i64).min(arg as i64) as u64,
        AggFunc::MaxI => (acc as i64).max(arg as i64) as u64,
        AggFunc::MinF => {
            let (a, b) = (f64::from_bits(acc), f64::from_bits(arg));
            (if b < a { b } else { a }).to_bits()
        }
        AggFunc::MaxF => {
            let (a, b) = (f64::from_bits(acc), f64::from_bits(arg));
            (if b > a { b } else { a }).to_bits()
        }
    })
}

struct SortOp {
    input: Option<Box<dyn Operator>>,
    keys: Vec<SortKey>,
    limit: Option<usize>,
    width: usize,
    out: std::vec::IntoIter<Tuple>,
}

impl Operator for SortOp {
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if let Some(mut input) = self.input.take() {
            let mut flat: Vec<u64> = Vec::new();
            while let Some(t) = input.next()? {
                flat.extend(t);
            }
            sort_rows(&mut flat, self.width, &self.keys, self.limit);
            let rows: Vec<Tuple> =
                flat.chunks_exact(self.width.max(1)).map(|r| r.to_vec()).collect();
            self.out = rows.into_iter();
        }
        Ok(self.out.next())
    }
}

fn build_op(node: &PlanNode, cat: &Catalog, plan: &Arc<PhysicalPlan>) -> Box<dyn Operator> {
    match node {
        PlanNode::Scan { table, cols, filter } => Box::new(ScanOp {
            table: cat.get(table).expect("unknown table").clone(),
            cols: cols.clone(),
            filter: filter.clone(),
            plan: plan.clone(),
            pos: 0,
        }),
        PlanNode::Filter { input, pred } => Box::new(FilterOp {
            input: build_op(input, cat, plan),
            pred: pred.clone(),
            plan: plan.clone(),
        }),
        PlanNode::Project { input, exprs } => Box::new(ProjectOp {
            input: build_op(input, cat, plan),
            exprs: exprs.clone(),
            plan: plan.clone(),
        }),
        PlanNode::HashJoin { build, probe, build_keys, probe_keys, build_payload, kind } => {
            Box::new(HashJoinOp {
                build: Some(build_op(build, cat, plan)),
                probe: build_op(probe, cat, plan),
                build_keys: build_keys.clone(),
                probe_keys: probe_keys.clone(),
                build_payload: build_payload.clone(),
                kind: *kind,
                table: HashMap::new(),
                pending: Vec::new(),
            })
        }
        PlanNode::HashAgg { input, group_by, aggs } => Box::new(HashAggOp {
            input: Some(build_op(input, cat, plan)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            plan: plan.clone(),
            out: Vec::new(),
        }),
        PlanNode::Sort { input, keys, limit } => {
            let width = input.output_types(cat).len();
            Box::new(SortOp {
                input: Some(build_op(input, cat, plan)),
                keys: keys.clone(),
                limit: *limit,
                width,
                out: Vec::new().into_iter(),
            })
        }
    }
}

/// Execute a plan tree tuple-at-a-time; returns flat output rows.
pub fn execute_volcano(
    cat: &Catalog,
    root: &PlanNode,
    plan: &PhysicalPlan,
) -> Result<Vec<u64>, ExecError> {
    let plan = Arc::new(plan.clone());
    let mut op = build_op(root, cat, &plan);
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.extend(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::plan::{decompose, ArithOp, CmpOp};
    use aqe_storage::tpch;

    #[test]
    fn volcano_sum_matches_host() {
        let cat = tpch::generate(0.001);
        let plan = PlanNode::HashAgg {
            input: Box::new(PlanNode::Scan {
                table: "lineitem".into(),
                cols: vec![4, 6],
                filter: Some(PExpr::cmp(CmpOp::Le, false, PExpr::Col(1), PExpr::ConstI(5))),
            }),
            group_by: vec![],
            aggs: vec![AggSpec {
                func: AggFunc::SumI,
                arg: Some(PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(0), PExpr::Col(1))),
            }],
        };
        let phys = decompose(&cat, &plan, vec![]);
        let got = execute_volcano(&cat, &plan, &phys).unwrap();

        let li = cat.get("lineitem").unwrap();
        let (q, d) =
            (li.column_by_name("l_quantity").unwrap(), li.column_by_name("l_discount").unwrap());
        let mut expect = 0i64;
        for r in 0..li.row_count() {
            let (qv, dv) = (q.get_u64(r) as i64, d.get_u64(r) as i64);
            if dv <= 5 {
                expect += qv * dv;
            }
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0] as i64, expect);
    }

    #[test]
    fn volcano_join_and_sort() {
        let cat = tpch::generate(0.001);
        let plan = PlanNode::Sort {
            input: Box::new(PlanNode::HashAgg {
                input: Box::new(PlanNode::HashJoin {
                    build: Box::new(PlanNode::Scan {
                        table: "nation".into(),
                        cols: vec![0, 2],
                        filter: None,
                    }),
                    probe: Box::new(PlanNode::Scan {
                        table: "supplier".into(),
                        cols: vec![3],
                        filter: None,
                    }),
                    build_keys: vec![0],
                    probe_keys: vec![0],
                    build_payload: vec![1], // regionkey
                    kind: JoinKind::Inner,
                }),
                group_by: vec![1],
                aggs: vec![AggSpec { func: AggFunc::CountStar, arg: None }],
            }),
            keys: vec![SortKey { field: 0, asc: true, float: false }],
            limit: None,
        };
        let phys = decompose(&cat, &plan, vec![]);
        let rows = execute_volcano(&cat, &plan, &phys).unwrap();
        // 5 regions, counts sum to supplier count.
        assert_eq!(rows.len() % 2, 0);
        let total: i64 = rows.chunks_exact(2).map(|r| r[1] as i64).sum();
        assert_eq!(total, cat.get("supplier").unwrap().row_count() as i64);
        // sorted ascending by regionkey
        let keys: Vec<i64> = rows.chunks_exact(2).map(|r| r[0] as i64).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
