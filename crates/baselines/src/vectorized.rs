//! Column-at-a-time engine (the "MonetDB" baseline of Tables I/II).
//!
//! Every operator consumes and produces fully materialised column vectors —
//! MonetDB's execution model, simplified: expressions evaluate one operator
//! at a time over whole columns, filters produce selection vectors that are
//! immediately applied, joins and aggregations loop over materialised
//! inputs.

use aqe_engine::plan::{AggFunc, ArithOp, CmpOp, JoinKind, PExpr, PhysicalPlan, PlanNode};
use aqe_engine::runtime::sort_rows;
use aqe_storage::Catalog;
use aqe_vm::interp::ExecError;
use std::collections::HashMap;

/// A materialised intermediate result: column vectors of equal length.
pub struct Chunk {
    pub cols: Vec<Vec<u64>>,
    pub len: usize,
}

impl Chunk {
    fn row(&self, r: usize) -> Vec<u64> {
        self.cols.iter().map(|c| c[r]).collect()
    }
}

/// Vectorised expression evaluation: one full column per operator node.
fn eval_vec(e: &PExpr, input: &Chunk, plan: &PhysicalPlan) -> Result<Vec<u64>, ExecError> {
    let n = input.len;
    Ok(match e {
        PExpr::Col(i) => input.cols[*i].clone(),
        PExpr::ConstI(c) => vec![*c as u64; n],
        PExpr::ConstF(c) => vec![c.to_bits(); n],
        PExpr::Arith { op, checked, float, a, b } => {
            let (x, y) = (eval_vec(a, input, plan)?, eval_vec(b, input, plan)?);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(if *float {
                    let (a, b) = (f64::from_bits(x[i]), f64::from_bits(y[i]));
                    match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => a / b,
                    }
                    .to_bits()
                } else {
                    let (a, b) = (x[i] as i64, y[i] as i64);
                    (match (op, checked) {
                        (ArithOp::Add, true) => a.checked_add(b).ok_or(ExecError::Overflow)?,
                        (ArithOp::Sub, true) => a.checked_sub(b).ok_or(ExecError::Overflow)?,
                        (ArithOp::Mul, true) => a.checked_mul(b).ok_or(ExecError::Overflow)?,
                        (ArithOp::Add, false) => a.wrapping_add(b),
                        (ArithOp::Sub, false) => a.wrapping_sub(b),
                        (ArithOp::Mul, false) => a.wrapping_mul(b),
                        (ArithOp::Div, _) => {
                            if b == 0 {
                                return Err(ExecError::DivByZero);
                            }
                            if a == i64::MIN && b == -1 {
                                return Err(ExecError::Overflow);
                            }
                            a / b
                        }
                    }) as u64
                });
            }
            out
        }
        PExpr::Cmp { op, float, a, b } => {
            let (x, y) = (eval_vec(a, input, plan)?, eval_vec(b, input, plan)?);
            (0..n)
                .map(|i| {
                    let r = if *float {
                        let (a, b) = (f64::from_bits(x[i]), f64::from_bits(y[i]));
                        match op {
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                        }
                    } else {
                        let (a, b) = (x[i] as i64, y[i] as i64);
                        match op {
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                        }
                    };
                    r as u64
                })
                .collect()
        }
        PExpr::And(a, b) => {
            let (x, y) = (eval_vec(a, input, plan)?, eval_vec(b, input, plan)?);
            (0..n).map(|i| x[i] & y[i] & 1).collect()
        }
        PExpr::Or(a, b) => {
            let (x, y) = (eval_vec(a, input, plan)?, eval_vec(b, input, plan)?);
            (0..n).map(|i| (x[i] | y[i]) & 1).collect()
        }
        PExpr::Not(a) => {
            let x = eval_vec(a, input, plan)?;
            (0..n).map(|i| (x[i] ^ 1) & 1).collect()
        }
        PExpr::InList { v, list } => {
            let x = eval_vec(v, input, plan)?;
            (0..n).map(|i| list.contains(&(x[i] as i64)) as u64).collect()
        }
        PExpr::Case { cond, t, f, .. } => {
            let (c, x, y) = (
                eval_vec(cond, input, plan)?,
                eval_vec(t, input, plan)?,
                eval_vec(f, input, plan)?,
            );
            (0..n).map(|i| if c[i] & 1 != 0 { x[i] } else { y[i] }).collect()
        }
        PExpr::DictLookup { v, table, elem_size } => {
            let x = eval_vec(v, input, plan)?;
            let d = &plan.dicts[*table];
            (0..n)
                .map(|i| {
                    let code = x[i] as usize;
                    match elem_size {
                        1 => d.bytes[code] as u64,
                        _ => {
                            let b = &d.bytes[code * 4..code * 4 + 4];
                            u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64
                        }
                    }
                })
                .collect()
        }
        PExpr::IToF(v) => {
            let x = eval_vec(v, input, plan)?;
            (0..n).map(|i| ((x[i] as i64) as f64).to_bits()).collect()
        }
        // The baselines replay fixed statements; bind parameters belong to
        // the session layer's prepared-query path.
        PExpr::Param { .. } => {
            return Err(ExecError::Setup("baseline evaluators do not bind parameters".into()))
        }
    })
}

fn apply_selection(input: Chunk, sel: &[u32]) -> Chunk {
    let cols = input.cols.iter().map(|c| sel.iter().map(|&i| c[i as usize]).collect()).collect();
    Chunk { cols, len: sel.len() }
}

fn execute_node(node: &PlanNode, cat: &Catalog, plan: &PhysicalPlan) -> Result<Chunk, ExecError> {
    match node {
        PlanNode::Scan { table, cols, filter } => {
            let t = cat.get(table).expect("unknown table");
            let n = t.row_count();
            let materialised: Vec<Vec<u64>> =
                cols.iter().map(|&c| (0..n).map(|r| t.column(c).get_u64(r)).collect()).collect();
            let chunk = Chunk { cols: materialised, len: n };
            match filter {
                None => Ok(chunk),
                Some(p) => {
                    let mask = eval_vec(p, &chunk, plan)?;
                    let sel: Vec<u32> =
                        (0..n).filter(|&i| mask[i] & 1 != 0).map(|i| i as u32).collect();
                    Ok(apply_selection(chunk, &sel))
                }
            }
        }
        PlanNode::Filter { input, pred } => {
            let chunk = execute_node(input, cat, plan)?;
            let mask = eval_vec(pred, &chunk, plan)?;
            let sel: Vec<u32> =
                (0..chunk.len).filter(|&i| mask[i] & 1 != 0).map(|i| i as u32).collect();
            Ok(apply_selection(chunk, &sel))
        }
        PlanNode::Project { input, exprs } => {
            let chunk = execute_node(input, cat, plan)?;
            let cols: Result<Vec<Vec<u64>>, ExecError> =
                exprs.iter().map(|e| eval_vec(e, &chunk, plan)).collect();
            Ok(Chunk { cols: cols?, len: chunk.len })
        }
        PlanNode::HashJoin { build, probe, build_keys, probe_keys, build_payload, kind } => {
            let b = execute_node(build, cat, plan)?;
            let p = execute_node(probe, cat, plan)?;
            let mut table: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
            for r in 0..b.len {
                let key: Vec<u64> = build_keys.iter().map(|&k| b.cols[k][r]).collect();
                table.entry(key).or_default().push(r);
            }
            let out_width =
                p.cols.len() + if *kind == JoinKind::Inner { build_payload.len() } else { 0 };
            let mut out: Vec<Vec<u64>> = vec![Vec::new(); out_width];
            for r in 0..p.len {
                let key: Vec<u64> = probe_keys.iter().map(|&k| p.cols[k][r]).collect();
                match (kind, table.get(&key)) {
                    (JoinKind::Inner, Some(matches)) => {
                        for &m in matches {
                            for (c, col) in p.cols.iter().enumerate() {
                                out[c].push(col[r]);
                            }
                            for (j, &pay) in build_payload.iter().enumerate() {
                                out[p.cols.len() + j].push(b.cols[pay][m]);
                            }
                        }
                    }
                    (JoinKind::Semi, Some(_)) | (JoinKind::Anti, None) => {
                        for (c, col) in p.cols.iter().enumerate() {
                            out[c].push(col[r]);
                        }
                    }
                    _ => {}
                }
            }
            let len = out.first().map(|c| c.len()).unwrap_or(0);
            Ok(Chunk { cols: out, len })
        }
        PlanNode::HashAgg { input, group_by, aggs } => {
            let chunk = execute_node(input, cat, plan)?;
            // Argument columns evaluated column-at-a-time first.
            let mut arg_cols: Vec<Option<Vec<u64>>> = Vec::new();
            for a in aggs {
                arg_cols.push(match &a.arg {
                    Some(e) => Some(eval_vec(e, &chunk, plan)?),
                    None => None,
                });
            }
            let mut groups: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
            if group_by.is_empty() {
                groups.insert(vec![], aggs.iter().map(|a| a.func.init_bits()).collect());
            }
            for r in 0..chunk.len {
                let key: Vec<u64> = group_by.iter().map(|&k| chunk.cols[k][r]).collect();
                let accs = groups
                    .entry(key)
                    .or_insert_with(|| aggs.iter().map(|a| a.func.init_bits()).collect());
                for (i, a) in aggs.iter().enumerate() {
                    let arg = arg_cols[i].as_ref().map(|c| c[r]).unwrap_or(0);
                    accs[i] = step(&a.func, accs[i], arg)?;
                }
            }
            let width = group_by.len() + aggs.len();
            let mut cols: Vec<Vec<u64>> = vec![Vec::new(); width];
            for (k, accs) in groups {
                for (c, v) in k.into_iter().chain(accs).enumerate() {
                    cols[c].push(v);
                }
            }
            let len = cols.first().map(|c| c.len()).unwrap_or(0);
            Ok(Chunk { cols, len })
        }
        PlanNode::Sort { input, keys, limit } => {
            let chunk = execute_node(input, cat, plan)?;
            let width = chunk.cols.len();
            let mut flat = Vec::with_capacity(chunk.len * width);
            for r in 0..chunk.len {
                flat.extend(chunk.row(r));
            }
            sort_rows(&mut flat, width, keys, *limit);
            let len = flat.len().checked_div(width).unwrap_or(0);
            let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(len); width];
            for row in flat.chunks_exact(width.max(1)) {
                for (c, &v) in row.iter().enumerate() {
                    cols[c].push(v);
                }
            }
            Ok(Chunk { cols, len })
        }
    }
}

fn step(f: &AggFunc, acc: u64, arg: u64) -> Result<u64, ExecError> {
    Ok(match f {
        AggFunc::SumI => (acc as i64).checked_add(arg as i64).ok_or(ExecError::Overflow)? as u64,
        AggFunc::CountStar => (acc as i64 + 1) as u64,
        AggFunc::SumF => (f64::from_bits(acc) + f64::from_bits(arg)).to_bits(),
        AggFunc::MinI => (acc as i64).min(arg as i64) as u64,
        AggFunc::MaxI => (acc as i64).max(arg as i64) as u64,
        AggFunc::MinF => {
            let (a, b) = (f64::from_bits(acc), f64::from_bits(arg));
            (if b < a { b } else { a }).to_bits()
        }
        AggFunc::MaxF => {
            let (a, b) = (f64::from_bits(acc), f64::from_bits(arg));
            (if b > a { b } else { a }).to_bits()
        }
    })
}

/// Execute a plan column-at-a-time; returns flat output rows.
pub fn execute_vectorized(
    cat: &Catalog,
    root: &PlanNode,
    plan: &PhysicalPlan,
) -> Result<Vec<u64>, ExecError> {
    let chunk = execute_node(root, cat, plan)?;
    let width = chunk.cols.len();
    let mut out = Vec::with_capacity(chunk.len * width);
    for r in 0..chunk.len {
        for c in 0..width {
            out.push(chunk.cols[c][r]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volcano::execute_volcano;
    use aqe_engine::plan::{decompose, AggSpec, SortKey};
    use aqe_storage::tpch;

    #[test]
    fn vectorized_agrees_with_volcano() {
        let cat = tpch::generate(0.001);
        let plan = PlanNode::Sort {
            input: Box::new(PlanNode::HashAgg {
                input: Box::new(PlanNode::Scan {
                    table: "lineitem".into(),
                    cols: vec![8, 4, 6],
                    filter: Some(PExpr::cmp(CmpOp::Gt, false, PExpr::Col(2), PExpr::ConstI(2))),
                }),
                group_by: vec![0],
                aggs: vec![
                    AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) },
                    AggSpec { func: AggFunc::CountStar, arg: None },
                    AggSpec { func: AggFunc::MaxI, arg: Some(PExpr::Col(2)) },
                ],
            }),
            keys: vec![SortKey { field: 0, asc: true, float: false }],
            limit: None,
        };
        let phys = decompose(&cat, &plan, vec![]);
        let a = execute_vectorized(&cat, &plan, &phys).unwrap();
        let b = execute_volcano(&cat, &plan, &phys).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn join_kinds_agree_with_volcano() {
        let cat = tpch::generate(0.001);
        for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti] {
            let plan = PlanNode::Sort {
                input: Box::new(PlanNode::HashJoin {
                    build: Box::new(PlanNode::Scan {
                        table: "nation".into(),
                        cols: vec![0, 2],
                        filter: Some(PExpr::cmp(CmpOp::Lt, false, PExpr::Col(1), PExpr::ConstI(3))),
                    }),
                    probe: Box::new(PlanNode::Scan {
                        table: "supplier".into(),
                        cols: vec![0, 3],
                        filter: None,
                    }),
                    build_keys: vec![0],
                    probe_keys: vec![1],
                    build_payload: if kind == JoinKind::Inner { vec![1] } else { vec![] },
                    kind,
                }),
                keys: vec![SortKey { field: 0, asc: true, float: false }],
                limit: None,
            };
            let phys = decompose(&cat, &plan, vec![]);
            let a = execute_vectorized(&cat, &plan, &phys).unwrap();
            let b = execute_volcano(&cat, &plan, &phys).unwrap();
            assert_eq!(a, b, "{kind:?}");
        }
    }
}
