//! # aqe-baselines — interpretation-based comparison engines
//!
//! Tables I and II of the paper compare HyPer against PostgreSQL
//! (Volcano-style tuple-at-a-time interpretation) and MonetDB
//! (column-at-a-time execution). Those systems cannot be embedded here, so
//! this crate provides honest architectural stand-ins that execute the
//! *same physical plan trees over the same data* as the compiling engine
//! (DESIGN.md §2, substitution 3):
//!
//! * [`volcano`] — a classic iterator engine: virtual `next()` per tuple,
//!   boxed operators, per-tuple expression interpretation;
//! * [`vectorized`] — column-at-a-time with full materialisation of
//!   intermediate results (MonetDB-style BAT algebra, simplified).
//!
//! Both return rows in the engine's u64 representation so results can be
//! compared bit-for-bit with compiled execution.
//!
//! These engines deliberately do **not** implement
//! `aqe_vm::backend::PipelineBackend`: that trait is the seam for
//! *representations of the same generated worker function* (bytecode,
//! threaded code, direct IR), which the adaptive controller may hot-swap
//! mid-pipeline. The baselines execute the plan tree by entirely different
//! architectures and exist to be compared *against* the unified engine —
//! the eval harness (`aqe-bench`) runs them side by side with every
//! `ExecMode` of the compiling engine.

pub mod eval;
pub mod vectorized;
pub mod volcano;

pub use vectorized::execute_vectorized;
pub use volcano::execute_volcano;
