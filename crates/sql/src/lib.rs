//! # aqe-sql — SQL frontend
//!
//! The "Parser" / "Semantic Analysis" / "Optimizer" stages of the paper's
//! Fig. 1. A deliberately compact frontend covering the dialect the
//! evaluation workloads need: single-block `SELECT` with inner `JOIN`
//! chains, `WHERE`, `GROUP BY`, `ORDER BY`, `LIMIT`, arithmetic,
//! comparisons, `BETWEEN`, `IN`, `LIKE` (compiled to dictionary bitmaps),
//! date literals, and the aggregates `count/sum/avg/min/max`.
//!
//! The optimizer performs predicate pushdown into scans, projection pruning
//! (only referenced columns are scanned), greedy build-side selection for
//! joins, and `avg` expansion into `sum`/`count` with a post-projection.
//!
//! [`prepare()`](prepare::prepare) is the prepared-statement entry point:
//! it plans SQL once against an engine session's catalog and returns a
//! statement whose compiled artifacts the session layer reuses across
//! executions.

pub mod binder;
pub mod lexer;
pub mod parser;
pub mod prepare;

pub use binder::{plan_sql, plan_sql_generalized, PlanError};
pub use lexer::{tokenize, Token};
pub use parser::{parse, SelectStmt};
pub use prepare::{prepare, prepare_generalized, PreparedStatement};
