//! Semantic analysis + optimization: AST → physical plan.
//!
//! Responsibilities (Fig. 1's "Semantic Analysis" and "Optimizer" boxes):
//! name resolution against the catalog, type derivation, projection pruning
//! (scans read only referenced columns), predicate pushdown into scans,
//! `avg` expansion, string-literal → dictionary-code folding, `LIKE` →
//! dictionary bitmaps, and lowering to the engine's physical plan.

use crate::lexer::tokenize;
use crate::parser::{parse, Ast, SelectStmt};
use aqe_engine::plan::{
    AggFunc, AggSpec, ArithOp, CmpOp, DictTable, FieldTy, JoinKind, PExpr, PlanNode, SortKey,
};
use aqe_storage::date::parse_date;
use aqe_storage::{Catalog, DataType};
use std::fmt;
use std::sync::Arc;

#[derive(Clone, Debug)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan error: {}", self.0)
    }
}
impl std::error::Error for PlanError {}

fn err<T>(m: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError(m.into()))
}

/// The bound query: plan + dictionaries + output names.
pub struct BoundQuery {
    pub root: PlanNode,
    pub dicts: Vec<DictTable>,
    pub output_names: Vec<String>,
}

struct TableRef {
    name: String,
    /// Referenced column indices (projection pruning) in field order.
    used_cols: Vec<usize>,
}

struct Binder<'a> {
    cat: &'a Catalog,
    tables: Vec<TableRef>,
    dicts: Vec<DictTable>,
    /// SQL-level type of each bind parameter, indexed by slot. User-written
    /// placeholders are `Other` (the caller binds representation values:
    /// decimals as hundredths, dates as day numbers); generalized literals
    /// keep the literal's type so fixed-point coercion applies identically.
    param_tys: Vec<SqlTy>,
}

impl<'a> Binder<'a> {
    /// Resolve `[table.]col` to (table index, column index, type).
    fn resolve(
        &self,
        table: &Option<String>,
        name: &str,
    ) -> Result<(usize, usize, DataType), PlanError> {
        for (ti, tr) in self.tables.iter().enumerate() {
            if let Some(t) = table {
                if *t != tr.name {
                    continue;
                }
            }
            let tab = self.cat.get(&tr.name).unwrap();
            if let Some(ci) = tab.column_index(name) {
                return Ok((ti, ci, tab.column_type(ci)));
            }
            if table.is_some() {
                return err(format!("column {name} not in {}", tr.name));
            }
        }
        err(format!("unknown column {name}"))
    }

    /// Note a column use; returns its position within the table's pruned
    /// column list.
    fn use_col(&mut self, ti: usize, ci: usize) -> usize {
        let used = &mut self.tables[ti].used_cols;
        match used.iter().position(|&c| c == ci) {
            Some(p) => p,
            None => {
                used.push(ci);
                used.len() - 1
            }
        }
    }
}

/// Collect all column references of an expression.
fn walk_cols(b: &mut Binder, ast: &Ast) -> Result<(), PlanError> {
    match ast {
        Ast::Col { table, name } => {
            let (ti, ci, _) = b.resolve(table, name)?;
            b.use_col(ti, ci);
            Ok(())
        }
        Ast::Bin { a, b: bb, .. } => {
            walk_cols(b, a)?;
            walk_cols(b, bb)
        }
        Ast::Not(a) => walk_cols(b, a),
        Ast::Between { v, lo, hi } => {
            walk_cols(b, v)?;
            walk_cols(b, lo)?;
            walk_cols(b, hi)
        }
        Ast::InList { v, list } => {
            walk_cols(b, v)?;
            list.iter().try_for_each(|e| walk_cols(b, e))
        }
        Ast::Like { v, .. } => walk_cols(b, v),
        Ast::Agg { arg, .. } => arg.as_deref().map_or(Ok(()), |a| walk_cols(b, a)),
        Ast::Case { cond, t, f } => {
            walk_cols(b, cond)?;
            walk_cols(b, t)?;
            walk_cols(b, f)
        }
        _ => Ok(()),
    }
}

/// Which tables an expression touches (by index); used for pushdown.
fn tables_of(b: &Binder, ast: &Ast, out: &mut Vec<usize>) {
    match ast {
        Ast::Col { table, name } => {
            if let Ok((ti, _, _)) = b.resolve(table, name) {
                if !out.contains(&ti) {
                    out.push(ti);
                }
            }
        }
        Ast::Bin { a, b: bb, .. } => {
            tables_of(b, a, out);
            tables_of(b, bb, out);
        }
        Ast::Not(a) | Ast::Like { v: a, .. } => tables_of(b, a, out),
        Ast::Between { v, lo, hi } => {
            tables_of(b, v, out);
            tables_of(b, lo, out);
            tables_of(b, hi, out);
        }
        Ast::InList { v, list } => {
            tables_of(b, v, out);
            list.iter().for_each(|e| tables_of(b, e, out));
        }
        Ast::Agg { arg: Some(a), .. } => tables_of(b, a, out),
        Ast::Case { cond, t, f } => {
            tables_of(b, cond, out);
            tables_of(b, t, out);
            tables_of(b, f, out);
        }
        _ => {}
    }
}

/// Simple SQL LIKE matcher (`%` wildcards only — TPC-H needs nothing more).
fn like_match(pattern: &str, s: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    let mut pos = 0;
    for (i, p) in parts.iter().enumerate() {
        if p.is_empty() {
            continue;
        }
        if i == 0 {
            if !s.starts_with(p) {
                return false;
            }
            pos = p.len();
        } else if i == parts.len() - 1 && !pattern.ends_with('%') {
            return s.len() >= pos && s[pos..].ends_with(p);
        } else {
            match s[pos..].find(p) {
                Some(at) => pos += at + p.len(),
                None => return false,
            }
        }
    }
    true
}

/// Field environment: maps (table, col) to a pipeline field index.
struct Env {
    fields: Vec<(usize, usize, FieldTy)>,
}

impl Env {
    fn index_of(&self, ti: usize, ci: usize) -> Option<(usize, FieldTy)> {
        self.fields.iter().position(|&(t, c, _)| t == ti && c == ci).map(|p| (p, self.fields[p].2))
    }
}

fn field_ty(dt: DataType) -> FieldTy {
    match dt {
        DataType::Float64 => FieldTy::F64,
        _ => FieldTy::I64,
    }
}

/// SQL-level type used for literal coercion: integer literals compared with
/// (or added to) fixed-point decimal columns are scaled to hundredths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SqlTy {
    Int,
    Dec,
    Other,
}

fn sql_ty(dt: DataType) -> SqlTy {
    match dt {
        DataType::Decimal => SqlTy::Dec,
        DataType::Int32 | DataType::Int64 => SqlTy::Int,
        _ => SqlTy::Other,
    }
}

/// Scale a plain integer expression to hundredths when the other side is a
/// fixed-point decimal.
fn coerce_dec(e: PExpr, ty: SqlTy, other: SqlTy) -> (PExpr, SqlTy) {
    if ty == SqlTy::Int && other == SqlTy::Dec {
        (PExpr::arith(ArithOp::Mul, false, false, e, PExpr::ConstI(100)), SqlTy::Dec)
    } else {
        (e, ty)
    }
}

fn ast_sql_ty(b: &Binder, ast: &Ast) -> SqlTy {
    match ast {
        Ast::Col { table, name } => {
            b.resolve(table, name).map(|(_, _, dt)| sql_ty(dt)).unwrap_or(SqlTy::Other)
        }
        Ast::Int(_) => SqlTy::Int,
        Ast::Dec(_) => SqlTy::Dec,
        Ast::Param(n) => {
            n.and_then(|k| b.param_tys.get(k as usize - 1).copied()).unwrap_or(SqlTy::Other)
        }
        Ast::Bin { op, a, b: bb } if matches!(op.as_str(), "+" | "-" | "*" | "/") => {
            let (ta, tb) = (ast_sql_ty(b, a), ast_sql_ty(b, bb));
            if ta == SqlTy::Dec || tb == SqlTy::Dec {
                SqlTy::Dec
            } else if ta == SqlTy::Int && tb == SqlTy::Int {
                SqlTy::Int
            } else {
                SqlTy::Other
            }
        }
        _ => SqlTy::Other,
    }
}

/// Lower an AST expression to a `PExpr` over the environment.
fn lower_expr(b: &mut Binder, env: &Env, ast: &Ast) -> Result<(PExpr, FieldTy), PlanError> {
    Ok(match ast {
        Ast::Col { table, name } => {
            let (ti, ci, dt) = b.resolve(table, name)?;
            let (idx, _) = env
                .index_of(ti, ci)
                .ok_or_else(|| PlanError(format!("column {name} not in scope")))?;
            (PExpr::Col(idx), field_ty(dt))
        }
        Ast::Int(v) => (PExpr::ConstI(*v), FieldTy::I64),
        Ast::Dec(v) => (PExpr::ConstI(*v), FieldTy::I64),
        Ast::DateLit(s) => (PExpr::ConstI(parse_date(s) as i64), FieldTy::I64),
        Ast::Param(n) => {
            // Normalized upstream: every placeholder carries a 1-based slot.
            let idx = n.ok_or_else(|| PlanError("unnumbered parameter".into()))? as usize - 1;
            (PExpr::Param { idx, ty: FieldTy::I64 }, FieldTy::I64)
        }
        Ast::Str(_) => return err("string literal outside comparison"),
        Ast::Like { v, pattern } => {
            let Ast::Col { table, name } = v.as_ref() else {
                return err("LIKE requires a column");
            };
            let (ti, ci, dt) = b.resolve(table, name)?;
            if dt != DataType::Str {
                return err("LIKE on non-string column");
            }
            let (idx, _) = env.index_of(ti, ci).ok_or_else(|| PlanError("scope".into()))?;
            let tab = b.cat.get(&b.tables[ti].name).unwrap();
            let bitmap = tab.column(ci).as_str().unwrap().match_bitmap(|s| like_match(pattern, s));
            b.dicts.push(DictTable { bytes: Arc::new(bitmap), elem_size: 1, state_slot: 0 });
            let tblid = b.dicts.len() - 1;
            (
                PExpr::cmp(
                    CmpOp::Ne,
                    false,
                    PExpr::DictLookup { v: Box::new(PExpr::Col(idx)), table: tblid, elem_size: 1 },
                    PExpr::ConstI(0),
                ),
                FieldTy::I64,
            )
        }
        Ast::Bin { op, a, b: bb } => {
            // String equality folds to a dictionary-code comparison.
            if matches!(op.as_str(), "=" | "<>") {
                if let (Ast::Col { table, name }, Ast::Str(s)) = (a.as_ref(), bb.as_ref()) {
                    let (ti, ci, dt) = b.resolve(table, name)?;
                    if dt == DataType::Str {
                        let code = b
                            .cat
                            .get(&b.tables[ti].name)
                            .unwrap()
                            .column(ci)
                            .as_str()
                            .unwrap()
                            .code_of(s)
                            .map(|c| c as i64)
                            .unwrap_or(-1);
                        let (idx, _) =
                            env.index_of(ti, ci).ok_or_else(|| PlanError("scope".into()))?;
                        let cmp = if op == "=" { CmpOp::Eq } else { CmpOp::Ne };
                        return Ok((
                            PExpr::cmp(cmp, false, PExpr::Col(idx), PExpr::ConstI(code)),
                            FieldTy::I64,
                        ));
                    }
                }
            }
            let (sa, sb) = (ast_sql_ty(b, a), ast_sql_ty(b, bb));
            let (pa, ta) = lower_expr(b, env, a)?;
            let (pb, tb) = lower_expr(b, env, bb)?;
            let float = ta == FieldTy::F64 || tb == FieldTy::F64;
            let coerce = |e: PExpr, t: FieldTy| {
                if float && t == FieldTy::I64 {
                    PExpr::IToF(Box::new(e))
                } else {
                    e
                }
            };
            let (pa, pb) = (coerce(pa, ta), coerce(pb, tb));
            // Fixed-point coercion for comparisons and additive arithmetic.
            let (pa, pb) = if !float
                && matches!(op.as_str(), "=" | "<>" | "<" | "<=" | ">" | ">=" | "+" | "-")
            {
                let (pa, _) = coerce_dec(pa, sa, sb);
                let (pb, _) = coerce_dec(pb, sb, sa);
                (pa, pb)
            } else {
                (pa, pb)
            };
            match op.as_str() {
                "and" => (PExpr::and(pa, pb), FieldTy::I64),
                "or" => (PExpr::or(pa, pb), FieldTy::I64),
                "=" => (PExpr::cmp(CmpOp::Eq, float, pa, pb), FieldTy::I64),
                "<>" => (PExpr::cmp(CmpOp::Ne, float, pa, pb), FieldTy::I64),
                "<" => (PExpr::cmp(CmpOp::Lt, float, pa, pb), FieldTy::I64),
                "<=" => (PExpr::cmp(CmpOp::Le, float, pa, pb), FieldTy::I64),
                ">" => (PExpr::cmp(CmpOp::Gt, float, pa, pb), FieldTy::I64),
                ">=" => (PExpr::cmp(CmpOp::Ge, float, pa, pb), FieldTy::I64),
                "+" => (
                    PExpr::arith(ArithOp::Add, !float, float, pa, pb),
                    if float { FieldTy::F64 } else { FieldTy::I64 },
                ),
                "-" => (
                    PExpr::arith(ArithOp::Sub, !float, float, pa, pb),
                    if float { FieldTy::F64 } else { FieldTy::I64 },
                ),
                "*" => (
                    PExpr::arith(ArithOp::Mul, !float, float, pa, pb),
                    if float { FieldTy::F64 } else { FieldTy::I64 },
                ),
                "/" => (
                    PExpr::arith(ArithOp::Div, false, float, pa, pb),
                    if float { FieldTy::F64 } else { FieldTy::I64 },
                ),
                other => return err(format!("unknown operator {other}")),
            }
        }
        Ast::Not(a) => {
            let (p, _) = lower_expr(b, env, a)?;
            (PExpr::Not(Box::new(p)), FieldTy::I64)
        }
        Ast::Between { v, lo, hi } => {
            let (sv, sl, sh) = (ast_sql_ty(b, v), ast_sql_ty(b, lo), ast_sql_ty(b, hi));
            let (pv, tv) = lower_expr(b, env, v)?;
            let (pl, _) = lower_expr(b, env, lo)?;
            let (ph, _) = lower_expr(b, env, hi)?;
            let (pl, _) = coerce_dec(pl, sl, sv);
            let (ph, _) = coerce_dec(ph, sh, sv);
            let float = tv == FieldTy::F64;
            (
                PExpr::and(
                    PExpr::cmp(CmpOp::Ge, float, pv.clone(), pl),
                    PExpr::cmp(CmpOp::Le, float, pv, ph),
                ),
                FieldTy::I64,
            )
        }
        Ast::InList { v, list } => {
            // String lists fold to code lists.
            if let Ast::Col { table, name } = v.as_ref() {
                let (ti, ci, dt) = b.resolve(table, name)?;
                if dt == DataType::Str {
                    let sc = b.cat.get(&b.tables[ti].name).unwrap();
                    let col = sc.column(ci).as_str().unwrap();
                    let mut codes = Vec::new();
                    for item in list {
                        let Ast::Str(s) = item else {
                            return err("mixed IN list");
                        };
                        codes.push(col.code_of(s).map(|c| c as i64).unwrap_or(-1));
                    }
                    let (idx, _) = env.index_of(ti, ci).ok_or_else(|| PlanError("scope".into()))?;
                    return Ok((
                        PExpr::InList { v: Box::new(PExpr::Col(idx)), list: codes },
                        FieldTy::I64,
                    ));
                }
            }
            let (pv, _) = lower_expr(b, env, v)?;
            let mut codes = Vec::new();
            for item in list {
                match item {
                    Ast::Int(v) => codes.push(*v),
                    Ast::Dec(v) => codes.push(*v),
                    Ast::DateLit(s) => codes.push(parse_date(s) as i64),
                    Ast::Param(_) => return err("parameters are not supported in IN lists"),
                    _ => return err("unsupported IN list element"),
                }
            }
            (PExpr::InList { v: Box::new(pv), list: codes }, FieldTy::I64)
        }
        Ast::Case { cond, t, f } => {
            let (pc, _) = lower_expr(b, env, cond)?;
            let (pt, tt) = lower_expr(b, env, t)?;
            let (pf, _) = lower_expr(b, env, f)?;
            let float = tt == FieldTy::F64;
            (
                PExpr::Case { cond: Box::new(pc), t: Box::new(pt), f: Box::new(pf), float },
                if float { FieldTy::F64 } else { FieldTy::I64 },
            )
        }
        Ast::Agg { .. } => return err("aggregate in scalar context"),
    })
}

/// Assign dense slot indices to bind parameters: `?` placeholders number in
/// appearance order, `$n` placeholders use their explicit 1-based number
/// (mixing the two styles is rejected, as is a numbering gap). Returns the
/// parameter count.
fn normalize_params(stmt: &mut SelectStmt) -> Result<usize, PlanError> {
    fn walk(
        a: &mut Ast,
        f: &mut impl FnMut(&mut Option<u32>) -> Result<(), PlanError>,
    ) -> Result<(), PlanError> {
        match a {
            Ast::Param(n) => f(n),
            Ast::Bin { a, b, .. } => {
                walk(a, f)?;
                walk(b, f)
            }
            Ast::Not(x) => walk(x, f),
            Ast::Between { v, lo, hi } => {
                walk(v, f)?;
                walk(lo, f)?;
                walk(hi, f)
            }
            Ast::InList { v, list } => {
                walk(v, f)?;
                list.iter_mut().try_for_each(|e| walk(e, f))
            }
            Ast::Like { v, .. } => walk(v, f),
            Ast::Agg { arg, .. } => arg.as_deref_mut().map_or(Ok(()), |x| walk(x, f)),
            Ast::Case { cond, t, f: fa } => {
                walk(cond, f)?;
                walk(t, f)?;
                walk(fa, f)
            }
            _ => Ok(()),
        }
    }
    let (mut next, mut max) = (0u32, 0u32);
    let mut seen: Vec<u32> = Vec::new();
    let mut positional: Option<bool> = None;
    let mut visit = |n: &mut Option<u32>| -> Result<(), PlanError> {
        let style = n.is_none();
        if positional.replace(style).is_some_and(|prev| prev != style) {
            return err("cannot mix ? and $n parameter styles");
        }
        match *n {
            None => {
                next += 1;
                *n = Some(next);
            }
            Some(k) => {
                max = max.max(k);
                if !seen.contains(&k) {
                    seen.push(k);
                }
            }
        }
        Ok(())
    };
    for (e, _) in stmt.select.iter_mut() {
        walk(e, &mut visit)?;
    }
    if let Some(w) = stmt.where_.as_mut() {
        walk(w, &mut visit)?;
    }
    for e in stmt.group_by.iter_mut() {
        walk(e, &mut visit)?;
    }
    for (e, _) in stmt.order_by.iter_mut() {
        walk(e, &mut visit)?;
    }
    if positional == Some(false) {
        for k in 1..=max {
            if !seen.contains(&k) {
                return err(format!("parameter ${k} is never used"));
            }
        }
        Ok(max as usize)
    } else {
        Ok(next as usize)
    }
}

/// Rewrite `Int`/`Dec`/`DateLit` operands of comparisons and `BETWEEN`
/// bounds into bind parameters, appending each literal's value (decimals as
/// hundredths, dates as day numbers) and SQL type. String literals stay
/// baked: they fold to catalog-dependent dictionary codes.
fn generalize_literals(ast: &mut Ast, values: &mut Vec<i64>, tys: &mut Vec<SqlTy>) {
    fn slot(a: &mut Ast, values: &mut Vec<i64>, tys: &mut Vec<SqlTy>) {
        let (v, t) = match &*a {
            Ast::Int(v) => (*v, SqlTy::Int),
            Ast::Dec(v) => (*v, SqlTy::Dec),
            Ast::DateLit(s) => (parse_date(s) as i64, SqlTy::Other),
            _ => return,
        };
        values.push(v);
        tys.push(t);
        *a = Ast::Param(Some(values.len() as u32));
    }
    match ast {
        Ast::Bin { op, a, b } if matches!(op.as_str(), "=" | "<>" | "<" | "<=" | ">" | ">=") => {
            if matches!(a.as_ref(), Ast::Str(_)) || matches!(b.as_ref(), Ast::Str(_)) {
                return;
            }
            slot(a, values, tys);
            slot(b, values, tys);
        }
        Ast::Bin { op, a, b } if matches!(op.as_str(), "and" | "or") => {
            generalize_literals(a, values, tys);
            generalize_literals(b, values, tys);
        }
        Ast::Not(a) => generalize_literals(a, values, tys),
        Ast::Between { lo, hi, .. } => {
            slot(lo, values, tys);
            slot(hi, values, tys);
        }
        _ => {}
    }
}

/// Plan a SQL string against a catalog.
pub fn plan_sql(cat: &Catalog, sql: &str) -> Result<BoundQuery, PlanError> {
    let mut stmt = parse(tokenize(sql).map_err(PlanError)?).map_err(PlanError)?;
    let n = normalize_params(&mut stmt)?;
    plan_select(cat, &stmt, vec![SqlTy::Other; n])
}

/// Plan a SQL string after generalizing its comparison literals into bind
/// parameters, so textually different statements that differ only in those
/// literals share one plan fingerprint (and therefore one retained compiled
/// state). Returns the parameterized query plus the literal values extracted
/// from this statement, in slot order, ready to bind.
pub fn plan_sql_generalized(cat: &Catalog, sql: &str) -> Result<(BoundQuery, Vec<i64>), PlanError> {
    let mut stmt = parse(tokenize(sql).map_err(PlanError)?).map_err(PlanError)?;
    if normalize_params(&mut stmt)? != 0 {
        return err("cannot generalize a statement that already contains parameters");
    }
    let mut values = Vec::new();
    let mut tys = Vec::new();
    if let Some(w) = stmt.where_.as_mut() {
        generalize_literals(w, &mut values, &mut tys);
    }
    let bq = plan_select(cat, &stmt, tys)?;
    Ok((bq, values))
}

fn plan_select(
    cat: &Catalog,
    stmt: &SelectStmt,
    param_tys: Vec<SqlTy>,
) -> Result<BoundQuery, PlanError> {
    let mut tables = vec![TableRef { name: stmt.from.clone(), used_cols: vec![] }];
    for j in &stmt.joins {
        tables.push(TableRef { name: j.table.clone(), used_cols: vec![] });
    }
    for t in &tables {
        if cat.get(&t.name).is_none() {
            return err(format!("unknown table {}", t.name));
        }
    }
    let mut b = Binder { cat, tables, dicts: vec![], param_tys };

    // 1. Collect every referenced column (projection pruning), including
    //    join keys.
    for (e, _) in &stmt.select {
        walk_cols(&mut b, e)?;
    }
    let mut join_keys = Vec::new();
    for j in &stmt.joins {
        let (lt, lc, ld) = b.resolve(&j.on_left.0, &j.on_left.1)?;
        let (rt, rc, rd) = b.resolve(&j.on_right.0, &j.on_right.1)?;
        let _ = (ld, rd);
        b.use_col(lt, lc);
        b.use_col(rt, rc);
        join_keys.push(((lt, lc), (rt, rc)));
    }
    if let Some(w) = &stmt.where_ {
        walk_cols(&mut b, w)?;
    }
    for e in &stmt.group_by {
        walk_cols(&mut b, e)?;
    }
    for (e, _) in &stmt.order_by {
        if !matches!(e, Ast::Col { .. }) || order_key_is_output(stmt, e) {
            continue;
        }
        walk_cols(&mut b, e)?;
    }

    // 2. Split WHERE into per-table conjuncts (pushdown) and residue.
    let mut conjuncts = Vec::new();
    if let Some(w) = &stmt.where_ {
        split_conjuncts(w, &mut conjuncts);
    }
    let mut pushed: Vec<Vec<Ast>> = (0..b.tables.len()).map(|_| Vec::new()).collect();
    let mut residue: Vec<Ast> = Vec::new();
    for cj in conjuncts {
        let mut ts = Vec::new();
        tables_of(&b, &cj, &mut ts);
        if ts.len() == 1 {
            pushed[ts[0]].push(cj);
        } else {
            residue.push(cj);
        }
    }

    // 3. Build scans + left-deep join tree: `from` is the probe side,
    //    joined tables build (they are the smaller dimension sides in the
    //    workloads this frontend serves).
    let mk_scan =
        |b: &mut Binder, ti: usize, filters: &[Ast]| -> Result<(PlanNode, Env), PlanError> {
            let cols = b.tables[ti].used_cols.clone();
            let tab = cat.get(&b.tables[ti].name).unwrap();
            let env = Env {
                fields: cols.iter().map(|&c| (ti, c, field_ty(tab.column_type(c)))).collect(),
            };
            let mut filter = None;
            for f in filters {
                let (p, _) = lower_expr(b, &env, f)?;
                filter = Some(match filter {
                    None => p,
                    Some(prev) => PExpr::and(prev, p),
                });
            }
            Ok((PlanNode::Scan { table: b.tables[ti].name.clone(), cols, filter }, env))
        };

    let (mut plan, mut env) = mk_scan(&mut b, 0, &pushed[0].clone())?;
    for (ji, j) in stmt.joins.iter().enumerate() {
        let ti = ji + 1;
        let (build, benv) = mk_scan(&mut b, ti, &pushed[ti].clone())?;
        let ((lt, lc), (rt, rc)) = join_keys[ji];
        // Which side of ON belongs to the new table?
        let ((bt, bc), (pt, pc)) =
            if lt == ti { ((lt, lc), (rt, rc)) } else { ((rt, rc), (lt, lc)) };
        let bkey = benv.index_of(bt, bc).ok_or_else(|| PlanError("join key".into()))?.0;
        let pkey = env
            .index_of(pt, pc)
            .ok_or_else(|| PlanError(format!("join key not in scope for {}", j.table)))?
            .0;
        // Payload: every used column of the build table.
        let payload: Vec<usize> = (0..benv.fields.len()).collect();
        env.fields.extend(benv.fields.iter().copied());
        plan = PlanNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(plan),
            build_keys: vec![bkey],
            probe_keys: vec![pkey],
            build_payload: payload,
            kind: JoinKind::Inner,
        };
    }
    for r in residue {
        let (p, _) = lower_expr(&mut b, &env, &r)?;
        plan = PlanNode::Filter { input: Box::new(plan), pred: p };
    }

    // 4. Aggregation / projection.
    let has_agg =
        stmt.select.iter().any(|(e, _)| matches!(e, Ast::Agg { .. })) || !stmt.group_by.is_empty();
    let mut output_names = Vec::new();
    if has_agg {
        // Pre-project: group keys then agg args.
        let mut pre: Vec<PExpr> = Vec::new();
        let mut pre_tys: Vec<FieldTy> = Vec::new();
        for g in &stmt.group_by {
            let (p, t) = lower_expr(&mut b, &env, g)?;
            pre.push(p);
            pre_tys.push(t);
        }
        let ngroup = pre.len();
        let mut aggs: Vec<AggSpec> = Vec::new();
        // (select index) -> result expression over [keys…, accs…]
        let mut select_out: Vec<PExpr> = Vec::new();
        for (e, alias) in &stmt.select {
            output_names.push(alias.clone().unwrap_or_else(|| e_name(e)));
            match e {
                Ast::Agg { func, arg } => {
                    let (arg_p, arg_t) = match arg {
                        Some(a) => {
                            let (p, t) = lower_expr(&mut b, &env, a)?;
                            (Some(p), t)
                        }
                        None => (None, FieldTy::I64),
                    };
                    let float = arg_t == FieldTy::F64;
                    let push_acc =
                        |pre: &mut Vec<PExpr>, aggs: &mut Vec<AggSpec>, f: AggFunc, p: PExpr| {
                            pre.push(p);
                            let idx = pre.len() - 1;
                            aggs.push(AggSpec { func: f, arg: Some(PExpr::Col(idx)) });
                            ngroup + aggs.len() - 1
                        };
                    let out = match (func.as_str(), float) {
                        ("count", _) => {
                            aggs.push(AggSpec { func: AggFunc::CountStar, arg: None });
                            PExpr::Col(ngroup + aggs.len() - 1)
                        }
                        ("sum", false) => {
                            let i = push_acc(&mut pre, &mut aggs, AggFunc::SumI, arg_p.unwrap());
                            PExpr::Col(i)
                        }
                        ("sum", true) => {
                            let i = push_acc(&mut pre, &mut aggs, AggFunc::SumF, arg_p.unwrap());
                            PExpr::Col(i)
                        }
                        ("min", false) => {
                            let i = push_acc(&mut pre, &mut aggs, AggFunc::MinI, arg_p.unwrap());
                            PExpr::Col(i)
                        }
                        ("min", true) => {
                            let i = push_acc(&mut pre, &mut aggs, AggFunc::MinF, arg_p.unwrap());
                            PExpr::Col(i)
                        }
                        ("max", false) => {
                            let i = push_acc(&mut pre, &mut aggs, AggFunc::MaxI, arg_p.unwrap());
                            PExpr::Col(i)
                        }
                        ("max", true) => {
                            let i = push_acc(&mut pre, &mut aggs, AggFunc::MaxF, arg_p.unwrap());
                            PExpr::Col(i)
                        }
                        ("avg", false) => {
                            // avg → sum / count (integer division on cents).
                            let s = push_acc(&mut pre, &mut aggs, AggFunc::SumI, arg_p.unwrap());
                            aggs.push(AggSpec { func: AggFunc::CountStar, arg: None });
                            let n = ngroup + aggs.len() - 1;
                            PExpr::arith(ArithOp::Div, false, false, PExpr::Col(s), PExpr::Col(n))
                        }
                        ("avg", true) => {
                            let s = push_acc(&mut pre, &mut aggs, AggFunc::SumF, arg_p.unwrap());
                            aggs.push(AggSpec { func: AggFunc::CountStar, arg: None });
                            let n = ngroup + aggs.len() - 1;
                            PExpr::arith(
                                ArithOp::Div,
                                false,
                                true,
                                PExpr::Col(s),
                                PExpr::IToF(Box::new(PExpr::Col(n))),
                            )
                        }
                        (other, _) => return err(format!("unknown aggregate {other}")),
                    };
                    select_out.push(out);
                }
                other => {
                    // Must match a GROUP BY key.
                    let pos = stmt
                        .group_by
                        .iter()
                        .position(|g| g == other)
                        .ok_or_else(|| PlanError("select item not in GROUP BY".into()))?;
                    select_out.push(PExpr::Col(pos));
                }
            }
        }
        plan = PlanNode::Project { input: Box::new(plan), exprs: pre };
        plan = PlanNode::HashAgg { input: Box::new(plan), group_by: (0..ngroup).collect(), aggs };
        plan = PlanNode::Project { input: Box::new(plan), exprs: select_out };
        let _ = pre_tys;
    } else {
        let mut exprs = Vec::new();
        for (e, alias) in &stmt.select {
            output_names.push(alias.clone().unwrap_or_else(|| e_name(e)));
            let (p, _) = lower_expr(&mut b, &env, e)?;
            exprs.push(p);
        }
        plan = PlanNode::Project { input: Box::new(plan), exprs };
    }

    // 5. ORDER BY over output positions (by alias or select-expr equality).
    if !stmt.order_by.is_empty() || stmt.limit.is_some() {
        let mut keys = Vec::new();
        for (e, asc) in &stmt.order_by {
            let pos = match e {
                Ast::Col { table: None, name } => stmt
                    .select
                    .iter()
                    .position(|(se, alias)| {
                        alias.as_deref() == Some(name.as_str())
                            || matches!(se, Ast::Col { name: n, .. } if n == name)
                    })
                    .ok_or_else(|| PlanError(format!("ORDER BY {name} not in SELECT")))?,
                other => stmt
                    .select
                    .iter()
                    .position(|(se, _)| se == other)
                    .ok_or_else(|| PlanError("ORDER BY expr not in SELECT".into()))?,
            };
            keys.push(SortKey { field: pos, asc: *asc, float: false });
        }
        plan = PlanNode::Sort { input: Box::new(plan), keys, limit: stmt.limit };
    }

    Ok(BoundQuery { root: plan, dicts: b.dicts, output_names })
}

fn order_key_is_output(stmt: &SelectStmt, e: &Ast) -> bool {
    if let Ast::Col { table: None, name } = e {
        stmt.select.iter().any(|(_, alias)| alias.as_deref() == Some(name.as_str()))
    } else {
        false
    }
}

fn split_conjuncts(ast: &Ast, out: &mut Vec<Ast>) {
    match ast {
        Ast::Bin { op, a, b } if op == "and" => {
            split_conjuncts(a, out);
            split_conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

fn e_name(e: &Ast) -> String {
    match e {
        Ast::Col { name, .. } => name.clone(),
        Ast::Agg { func, .. } => func.clone(),
        _ => "expr".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::exec::{ExecMode, ExecOptions, ParamValue};
    use aqe_engine::session::Engine;
    use aqe_storage::tpch;

    fn run_sql(cat: &Catalog, sql: &str, mode: ExecMode) -> Vec<u64> {
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let bound = plan_sql(cat, sql).unwrap();
        let prepared = session.prepare(&bound.root, bound.dicts);
        let opts = ExecOptions { mode, threads: 1, ..Default::default() };
        session.execute_with(&prepared, &opts).unwrap().0.rows
    }

    #[test]
    fn sql_q6_matches_reference() {
        let cat = tpch::generate(0.005);
        let rows = run_sql(
            &cat,
            "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
             WHERE l_shipdate >= date '1994-01-01' AND l_shipdate <= date '1994-12-31' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
            ExecMode::Bytecode,
        );
        // Reference
        let li = cat.get("lineitem").unwrap();
        let (q, e, d, s) = (
            li.column_by_name("l_quantity").unwrap(),
            li.column_by_name("l_extendedprice").unwrap(),
            li.column_by_name("l_discount").unwrap(),
            li.column_by_name("l_shipdate").unwrap(),
        );
        let (lo, hi) = (parse_date("1994-01-01") as i64, parse_date("1994-12-31") as i64);
        let mut expect = 0i64;
        for r in 0..li.row_count() {
            let (qv, ev, dv, sv) = (
                q.get_u64(r) as i64,
                e.get_u64(r) as i64,
                d.get_u64(r) as i64,
                s.get_u64(r) as i64,
            );
            if (lo..=hi).contains(&sv) && (5..=7).contains(&dv) && qv < 2400 {
                expect += ev * dv;
            }
        }
        assert_eq!(rows, vec![expect as u64]);
    }

    #[test]
    fn sql_join_group_order_runs_in_all_modes() {
        let cat = tpch::generate(0.005);
        let sql = "SELECT n_name, count(*) AS cnt, sum(s_acctbal) AS bal FROM supplier \
                   JOIN nation ON s_nationkey = n_nationkey \
                   WHERE s_acctbal > 0 GROUP BY n_name ORDER BY cnt DESC, n_name LIMIT 5";
        let reference = run_sql(&cat, sql, ExecMode::Bytecode);
        for mode in [ExecMode::Unoptimized, ExecMode::Optimized, ExecMode::Adaptive] {
            assert_eq!(run_sql(&cat, sql, mode), reference, "{mode:?}");
        }
        assert!(!reference.is_empty());
    }

    #[test]
    fn sql_like_and_string_eq() {
        let cat = tpch::generate(0.005);
        let rows = run_sql(
            &cat,
            "SELECT count(*) FROM part WHERE p_type LIKE '%BRASS' AND p_size < 20",
            ExecMode::Adaptive,
        );
        let part = cat.get("part").unwrap();
        let (ty, sz) = (
            part.column_by_name("p_type").unwrap().as_str().unwrap(),
            part.column_by_name("p_size").unwrap(),
        );
        let expect = (0..part.row_count())
            .filter(|&r| ty.value(r).ends_with("BRASS") && (sz.get_u64(r) as i64) < 20)
            .count() as u64;
        assert_eq!(rows, vec![expect]);
    }

    #[test]
    fn sql_avg_expansion() {
        let cat = tpch::generate(0.002);
        let rows = run_sql(&cat, "SELECT avg(l_quantity) FROM lineitem", ExecMode::Bytecode);
        let li = cat.get("lineitem").unwrap();
        let q = li.column_by_name("l_quantity").unwrap();
        let sum: i64 = (0..li.row_count()).map(|r| q.get_u64(r) as i64).sum();
        assert_eq!(rows[0] as i64, sum / li.row_count() as i64);
    }

    #[test]
    fn sql_bound_params_match_literal_plan() {
        let cat = tpch::generate(0.005);
        let expect = run_sql(
            &cat,
            "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
             WHERE l_shipdate >= date '1994-01-01' AND l_shipdate <= date '1994-12-31' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
            ExecMode::Bytecode,
        );
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let bound = plan_sql(
            &cat,
            "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
             WHERE l_shipdate >= ? AND l_shipdate <= ? \
             AND l_discount BETWEEN ? AND ? AND l_quantity < ?",
        )
        .unwrap();
        let prepared = session.prepare(&bound.root, bound.dicts);
        assert_eq!(prepared.param_types().len(), 5);
        // User-written placeholders bind representation values: day numbers
        // for dates, hundredths for decimals.
        let ps: Vec<ParamValue> =
            [parse_date("1994-01-01") as i64, parse_date("1994-12-31") as i64, 5, 7, 2400]
                .iter()
                .map(|&v| ParamValue::I64(v))
                .collect();
        let rows = session.execute_bound(&prepared, &ps).unwrap().0.rows;
        assert_eq!(rows, expect);
    }

    #[test]
    fn sql_generalization_shares_one_fingerprint() {
        let cat = tpch::generate(0.002);
        let sql_a = "SELECT count(*) FROM lineitem \
                     WHERE l_quantity < 24 AND l_discount BETWEEN 0.05 AND 0.07";
        let sql_b = "SELECT count(*) FROM lineitem \
                     WHERE l_quantity < 30 AND l_discount BETWEEN 0.02 AND 0.09";
        let (qa, va) = plan_sql_generalized(&cat, sql_a).unwrap();
        let (qb, vb) = plan_sql_generalized(&cat, sql_b).unwrap();
        assert_eq!(va, vec![24, 5, 7], "raw int, then cents");
        assert_eq!(vb, vec![30, 2, 9]);
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let pa = session.prepare(&qa.root, qa.dicts);
        let pb = session.prepare(&qb.root, qb.dicts);
        assert_eq!(pa.fingerprint(), pb.fingerprint(), "literals generalized away");
        for (p, v, sql) in [(&pa, &va, sql_a), (&pb, &vb, sql_b)] {
            let ps: Vec<ParamValue> = v.iter().map(|&x| ParamValue::I64(x)).collect();
            let rows = session.execute_bound(p, &ps).unwrap().0.rows;
            assert_eq!(rows, run_sql(&cat, sql, ExecMode::Bytecode), "{sql}");
        }
    }

    #[test]
    fn sql_param_misuse_is_rejected() {
        let cat = tpch::generate(0.001);
        let mixed = "SELECT count(*) FROM lineitem WHERE l_quantity < ? AND l_discount > $2";
        assert!(plan_sql(&cat, mixed).is_err(), "mixed styles");
        let gap = "SELECT count(*) FROM lineitem WHERE l_quantity < $2";
        assert!(plan_sql(&cat, gap).is_err(), "$1 never used");
        let inlist = "SELECT count(*) FROM lineitem WHERE l_linenumber IN (1, ?)";
        assert!(plan_sql(&cat, inlist).is_err(), "param in IN list");
    }

    #[test]
    fn sql_errors_are_reported() {
        let cat = tpch::generate(0.001);
        assert!(plan_sql(&cat, "SELECT nope FROM lineitem").is_err());
        assert!(plan_sql(&cat, "SELECT l_quantity FROM missing_table").is_err());
        assert!(plan_sql(&cat, "SELECT l_quantity, count(*) FROM lineitem").is_err());
    }

    #[test]
    fn like_matcher() {
        assert!(like_match("%BRASS", "LARGE BRASS"));
        assert!(!like_match("%BRASS", "BRASS PIN"));
        assert!(like_match("PROMO%", "PROMO TIN"));
        assert!(like_match("%special%requests%", "the special urgent requests today"));
        assert!(!like_match("%special%requests%", "special only"));
        assert!(like_match("%", "anything"));
    }
}
