//! SQL tokenizer.

use std::fmt;

#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    Ident(String),
    Int(i64),
    /// Decimal literal, scaled to hundredths (fixed-point cents).
    Dec(i64),
    Str(String),
    Sym(char),
    /// `<=`, `>=`, `<>`
    Le,
    Ge,
    Ne,
    /// Bind-variable placeholder: `?` (positional, `None`) or `$n`
    /// (1-based explicit slot, `Some(n)`).
    Param(Option<u32>),
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Dec(v) => write!(f, "{}.{:02}", v / 100, (v % 100).abs()),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(c) => write!(f, "{c}"),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
            Token::Ne => write!(f, "<>"),
            Token::Param(None) => write!(f, "?"),
            Token::Param(Some(n)) => write!(f, "${n}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize SQL text. Keywords come out as lowercase `Ident`s.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let b = sql.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err("unterminated string literal".into());
                }
                out.push(Token::Str(sql[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' {
                    i += 1;
                    let fstart = i;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let whole: i64 = sql[start..fstart - 1].parse().map_err(|_| "bad number")?;
                    let frac_str = &sql[fstart..i];
                    let frac: i64 = match frac_str.len() {
                        0 => 0,
                        1 => frac_str.parse::<i64>().map_err(|_| "bad number")? * 10,
                        _ => frac_str[..2].parse().map_err(|_| "bad number")?,
                    };
                    out.push(Token::Dec(whole * 100 + frac));
                } else {
                    out.push(Token::Int(sql[start..i].parse().map_err(|_| "bad number")?));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_ascii_lowercase()));
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::Le);
                i += 2;
            }
            '>' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::Ge);
                i += 2;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'>' => {
                out.push(Token::Ne);
                i += 2;
            }
            '?' => {
                out.push(Token::Param(None));
                i += 1;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err("expected digits after '$'".into());
                }
                let n: u32 = sql[start..j].parse().map_err(|_| "bad parameter number")?;
                if n == 0 {
                    return Err("parameter numbers are 1-based".into());
                }
                out.push(Token::Param(Some(n)));
                i = j;
            }
            '=' | '<' | '>' | '(' | ')' | ',' | '*' | '+' | '-' | '/' | '.' => {
                out.push(Token::Sym(c));
                i += 1;
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select() {
        let t = tokenize("SELECT a, sum(b) FROM t WHERE c >= 1.5 AND d <> 'x'").unwrap();
        assert!(t.contains(&Token::Ident("select".into())));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Dec(150)));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Str("x".into())));
    }

    #[test]
    fn decimal_scaling() {
        assert!(tokenize("0.05").unwrap().contains(&Token::Dec(5)));
        assert!(tokenize("24.9").unwrap().contains(&Token::Dec(2490)));
        assert!(tokenize("3").unwrap().contains(&Token::Int(3)));
    }

    #[test]
    fn placeholders() {
        let t = tokenize("where a < ? and b = $2").unwrap();
        assert!(t.contains(&Token::Param(None)));
        assert!(t.contains(&Token::Param(Some(2))));
        assert!(tokenize("$").is_err(), "bare dollar needs digits");
        assert!(tokenize("$0").is_err(), "parameter numbers are 1-based");
    }

    #[test]
    fn comments_and_errors() {
        let t = tokenize("select -- comment\n 1").unwrap();
        assert_eq!(t, vec![Token::Ident("select".into()), Token::Int(1), Token::Eof]);
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ; b").is_err());
    }
}
