//! SQL-level prepared statements: `PREPARE`-style plumbing from SQL text
//! to an engine [`PreparedQuery`].
//!
//! Planning (parse → bind → optimize → decompose) happens once, against
//! the session's catalog; the returned statement can then be executed any
//! number of times, with codegen, bytecode translation, compiled
//! backends, and cost-model calibration amortized across executions by
//! the session layer.

use crate::binder::{plan_sql, PlanError};
use aqe_engine::session::{PreparedQuery, Session};

/// A prepared SQL statement: the engine-side prepared query plus the
/// frontend's output metadata.
pub struct PreparedStatement {
    /// The engine-side handle; execute via [`Session::execute`].
    pub query: PreparedQuery,
    /// Output column names, in result order.
    pub output_names: Vec<String>,
}

/// Plan `sql` against the session's catalog and prepare it for repeated
/// execution.
pub fn prepare(session: &Session, sql: &str) -> Result<PreparedStatement, PlanError> {
    let bound = session.with_catalog(|cat| plan_sql(cat, sql))?;
    let query = session.prepare(&bound.root, bound.dicts);
    Ok(PreparedStatement { query, output_names: bound.output_names })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::session::Engine;
    use aqe_storage::tpch;

    #[test]
    fn prepared_statement_executes_repeatedly() {
        let engine = Engine::new(tpch::generate(0.002));
        let session = engine.session();
        let stmt = prepare(
            &session,
            "SELECT count(*) AS n, sum(l_quantity) AS q FROM lineitem WHERE l_quantity < 30",
        )
        .expect("valid SQL");
        assert_eq!(stmt.output_names, vec!["n", "q"]);
        let (a, first) = session.execute(&stmt.query).unwrap();
        let (b, second) = session.execute(&stmt.query).unwrap();
        assert_eq!(a.rows, b.rows);
        assert!(!first.result_cache_hit);
        assert!(second.result_cache_hit, "identical re-submission must hit the result cache");
    }

    #[test]
    fn invalid_sql_fails_at_prepare_time() {
        let engine = Engine::new(tpch::generate(0.001));
        let session = engine.session();
        assert!(prepare(&session, "SELECT nope FROM lineitem").is_err());
    }
}
