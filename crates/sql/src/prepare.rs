//! SQL-level prepared statements: `PREPARE`-style plumbing from SQL text
//! to an engine [`PreparedQuery`].
//!
//! Planning (parse → bind → optimize → decompose) happens once, against
//! the session's catalog; the returned statement can then be executed any
//! number of times, with codegen, bytecode translation, compiled
//! backends, and cost-model calibration amortized across executions by
//! the session layer.

use crate::binder::{plan_sql, plan_sql_generalized, PlanError};
use aqe_engine::exec::ParamValue;
use aqe_engine::session::{PreparedQuery, Session};

/// A prepared SQL statement: the engine-side prepared query plus the
/// frontend's output metadata.
pub struct PreparedStatement {
    /// The engine-side handle; execute via [`Session::execute`].
    pub query: PreparedQuery,
    /// Output column names, in result order.
    pub output_names: Vec<String>,
}

/// Plan `sql` against the session's catalog and prepare it for repeated
/// execution.
pub fn prepare(session: &Session, sql: &str) -> Result<PreparedStatement, PlanError> {
    let bound = session.with_catalog(|cat| plan_sql(cat, sql))?;
    let query = session.prepare(&bound.root, bound.dicts);
    Ok(PreparedStatement { query, output_names: bound.output_names })
}

/// Plan an ad-hoc SQL statement with its comparison literals generalized
/// into bind parameters. Returns the parameterized statement plus the
/// values extracted from this text, ready for
/// [`Session::execute_bound`]: textually different statements that differ
/// only in those literals produce the same fingerprint, so a re-submission
/// with fresh constants reuses the retained compiled state instead of
/// planning, generating, and compiling from scratch.
pub fn prepare_generalized(
    session: &Session,
    sql: &str,
) -> Result<(PreparedStatement, Vec<ParamValue>), PlanError> {
    let (bound, values) = session.with_catalog(|cat| plan_sql_generalized(cat, sql))?;
    let query = session.prepare(&bound.root, bound.dicts);
    let params = values.into_iter().map(ParamValue::I64).collect();
    Ok((PreparedStatement { query, output_names: bound.output_names }, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::session::Engine;
    use aqe_storage::tpch;

    #[test]
    fn prepared_statement_executes_repeatedly() {
        let engine = Engine::new(tpch::generate(0.002));
        let session = engine.session();
        let stmt = prepare(
            &session,
            "SELECT count(*) AS n, sum(l_quantity) AS q FROM lineitem WHERE l_quantity < 30",
        )
        .expect("valid SQL");
        assert_eq!(stmt.output_names, vec!["n", "q"]);
        let (a, first) = session.execute(&stmt.query).unwrap();
        let (b, second) = session.execute(&stmt.query).unwrap();
        assert_eq!(a.rows, b.rows);
        assert!(!first.result_cache_hit);
        assert!(second.result_cache_hit, "identical re-submission must hit the result cache");
    }

    #[test]
    fn generalized_statements_share_compiled_state() {
        let engine = Engine::new(tpch::generate(0.002));
        let session = engine.session();
        let (a, pa) =
            prepare_generalized(&session, "SELECT count(*) FROM lineitem WHERE l_quantity < 30")
                .unwrap();
        let (b, pb) =
            prepare_generalized(&session, "SELECT count(*) FROM lineitem WHERE l_quantity < 45")
                .unwrap();
        // Equal fingerprints tell the caller the second statement can run
        // through the first's retained compiled state with its own values.
        assert_eq!(a.query.fingerprint(), b.query.fingerprint());
        let (ra, first) = session.execute_bound(&a.query, &pa).unwrap();
        let (rb, second) = session.execute_bound(&a.query, &pb).unwrap();
        assert!(!first.result_cache_hit);
        assert!(!second.result_cache_hit, "different binding must not alias the result cache");
        assert!(second.codegen.is_zero(), "warm binding reuses the retained module");
        assert!(rb.rows[0] >= ra.rows[0], "wider predicate keeps at least as many rows");
        // Same statement, same binding: now the result cache hits.
        let (_, third) = session.execute_bound(&a.query, &pa).unwrap();
        assert!(third.result_cache_hit);
    }

    #[test]
    fn invalid_sql_fails_at_prepare_time() {
        let engine = Engine::new(tpch::generate(0.001));
        let session = engine.session();
        assert!(prepare(&session, "SELECT nope FROM lineitem").is_err());
    }
}
