//! Recursive-descent parser producing an AST.

use crate::lexer::Token;

#[derive(Clone, Debug, PartialEq)]
pub enum Ast {
    Col {
        table: Option<String>,
        name: String,
    },
    Int(i64),
    Dec(i64),
    Str(String),
    DateLit(String),
    /// Bind-variable placeholder: `?` (positional) or `$n` (explicit 1-based).
    Param(Option<u32>),
    Bin {
        op: String,
        a: Box<Ast>,
        b: Box<Ast>,
    },
    Not(Box<Ast>),
    Between {
        v: Box<Ast>,
        lo: Box<Ast>,
        hi: Box<Ast>,
    },
    InList {
        v: Box<Ast>,
        list: Vec<Ast>,
    },
    Like {
        v: Box<Ast>,
        pattern: String,
    },
    Agg {
        func: String,
        arg: Option<Box<Ast>>,
    },
    Case {
        cond: Box<Ast>,
        t: Box<Ast>,
        f: Box<Ast>,
    },
}

#[derive(Clone, Debug)]
pub struct JoinClause {
    pub table: String,
    pub on_left: (Option<String>, String),
    pub on_right: (Option<String>, String),
}

#[derive(Clone, Debug)]
pub struct SelectStmt {
    pub select: Vec<(Ast, Option<String>)>,
    pub from: String,
    pub joins: Vec<JoinClause>,
    pub where_: Option<Ast>,
    pub group_by: Vec<Ast>,
    pub order_by: Vec<(Ast, bool)>,
    pub limit: Option<usize>,
}

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, String>;

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }
    fn next(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }
    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(format!("expected {kw}, found {}", self.peek()))
        }
    }
    fn eat_sym(&mut self, c: char) -> bool {
        if *self.peek() == Token::Sym(c) {
            self.next();
            true
        } else {
            false
        }
    }
    fn expect_sym(&mut self, c: char) -> PResult<()> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}', found {}", self.peek()))
        }
    }
    fn ident(&mut self) -> PResult<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found {other}")),
        }
    }

    // expr := or_expr
    fn expr(&mut self) -> PResult<Ast> {
        self.or_expr()
    }
    fn or_expr(&mut self) -> PResult<Ast> {
        let mut a = self.and_expr()?;
        while self.eat_kw("or") {
            let b = self.and_expr()?;
            a = Ast::Bin { op: "or".into(), a: Box::new(a), b: Box::new(b) };
        }
        Ok(a)
    }
    fn and_expr(&mut self) -> PResult<Ast> {
        let mut a = self.not_expr()?;
        while self.eat_kw("and") {
            let b = self.not_expr()?;
            a = Ast::Bin { op: "and".into(), a: Box::new(a), b: Box::new(b) };
        }
        Ok(a)
    }
    fn not_expr(&mut self) -> PResult<Ast> {
        if self.eat_kw("not") {
            Ok(Ast::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }
    fn cmp_expr(&mut self) -> PResult<Ast> {
        let a = self.add_expr()?;
        // BETWEEN / IN / LIKE / comparison
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(Ast::Between { v: Box::new(a), lo: Box::new(lo), hi: Box::new(hi) });
        }
        if self.eat_kw("in") {
            self.expect_sym('(')?;
            let mut list = vec![self.expr()?];
            while self.eat_sym(',') {
                list.push(self.expr()?);
            }
            self.expect_sym(')')?;
            return Ok(Ast::InList { v: Box::new(a), list });
        }
        if self.eat_kw("like") {
            match self.next() {
                Token::Str(p) => {
                    return Ok(Ast::Like { v: Box::new(a), pattern: p });
                }
                other => return Err(format!("expected pattern, found {other}")),
            }
        }
        let op = match self.peek() {
            Token::Sym('=') => "=",
            Token::Sym('<') => "<",
            Token::Sym('>') => ">",
            Token::Le => "<=",
            Token::Ge => ">=",
            Token::Ne => "<>",
            _ => return Ok(a),
        }
        .to_string();
        self.next();
        let b = self.add_expr()?;
        Ok(Ast::Bin { op, a: Box::new(a), b: Box::new(b) })
    }
    fn add_expr(&mut self) -> PResult<Ast> {
        let mut a = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Sym('+') => "+",
                Token::Sym('-') => "-",
                _ => break,
            }
            .to_string();
            self.next();
            let b = self.mul_expr()?;
            a = Ast::Bin { op, a: Box::new(a), b: Box::new(b) };
        }
        Ok(a)
    }
    fn mul_expr(&mut self) -> PResult<Ast> {
        let mut a = self.atom()?;
        loop {
            let op = match self.peek() {
                Token::Sym('*') => "*",
                Token::Sym('/') => "/",
                _ => break,
            }
            .to_string();
            self.next();
            let b = self.atom()?;
            a = Ast::Bin { op, a: Box::new(a), b: Box::new(b) };
        }
        Ok(a)
    }
    fn atom(&mut self) -> PResult<Ast> {
        match self.next() {
            Token::Int(v) => Ok(Ast::Int(v)),
            Token::Dec(v) => Ok(Ast::Dec(v)),
            Token::Str(s) => Ok(Ast::Str(s)),
            Token::Param(n) => Ok(Ast::Param(n)),
            Token::Sym('(') => {
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Token::Ident(id) => self.ident_atom(id),
            other => Err(format!("unexpected token {other}")),
        }
    }

    fn ident_atom(&mut self, id: String) -> PResult<Ast> {
        match id.as_str() {
            "date" => match self.next() {
                Token::Str(s) => Ok(Ast::DateLit(s)),
                other => Err(format!("expected date string, found {other}")),
            },
            "case" => {
                self.expect_kw("when")?;
                let cond = self.expr()?;
                self.expect_kw("then")?;
                let t = self.expr()?;
                self.expect_kw("else")?;
                let f = self.expr()?;
                self.expect_kw("end")?;
                Ok(Ast::Case { cond: Box::new(cond), t: Box::new(t), f: Box::new(f) })
            }
            "count" | "sum" | "avg" | "min" | "max" => {
                self.expect_sym('(')?;
                let arg = if self.eat_sym('*') { None } else { Some(Box::new(self.expr()?)) };
                self.expect_sym(')')?;
                Ok(Ast::Agg { func: id, arg })
            }
            _ => {
                if self.eat_sym('.') {
                    let col = self.ident()?;
                    Ok(Ast::Col { table: Some(id), name: col })
                } else {
                    Ok(Ast::Col { table: None, name: id })
                }
            }
        }
    }

    fn select_stmt(&mut self) -> PResult<SelectStmt> {
        self.expect_kw("select")?;
        let mut select = Vec::new();
        loop {
            let e = self.expr()?;
            let alias = if self.eat_kw("as") { Some(self.ident()?) } else { None };
            select.push((e, alias));
            if !self.eat_sym(',') {
                break;
            }
        }
        self.expect_kw("from")?;
        let from = self.ident()?;
        let mut joins = Vec::new();
        while self.eat_kw("join") {
            let table = self.ident()?;
            self.expect_kw("on")?;
            let l = self.qualified()?;
            self.expect_sym('=')?;
            let r = self.qualified()?;
            joins.push(JoinClause { table, on_left: l, on_right: r });
        }
        let where_ = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((e, asc));
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(format!("expected limit count, found {other}")),
            }
        } else {
            None
        };
        if *self.peek() != Token::Eof {
            return Err(format!("trailing input at {}", self.peek()));
        }
        Ok(SelectStmt { select, from, joins, where_, group_by, order_by, limit })
    }

    fn qualified(&mut self) -> PResult<(Option<String>, String)> {
        let a = self.ident()?;
        if self.eat_sym('.') {
            Ok((Some(a), self.ident()?))
        } else {
            Ok((None, a))
        }
    }
}

/// Parse one SELECT statement.
pub fn parse(tokens: Vec<Token>) -> Result<SelectStmt, String> {
    Parser { toks: tokens, pos: 0 }.select_stmt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn p(sql: &str) -> SelectStmt {
        parse(tokenize(sql).unwrap()).unwrap()
    }

    #[test]
    fn parses_q6_shape() {
        let s = p("SELECT sum(l_extendedprice * l_discount) FROM lineitem \
                   WHERE l_shipdate >= date '1994-01-01' \
                   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24");
        assert_eq!(s.from, "lineitem");
        assert!(s.where_.is_some());
        assert_eq!(s.select.len(), 1);
    }

    #[test]
    fn parses_join_group_order_limit() {
        let s = p("SELECT n_name, count(*) AS cnt FROM supplier \
                   JOIN nation ON s_nationkey = n_nationkey \
                   GROUP BY n_name ORDER BY cnt DESC, n_name LIMIT 5");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1, "first key descending");
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.select[1].1.as_deref(), Some("cnt"));
    }

    #[test]
    fn parses_case_like_in() {
        let s = p("SELECT case when a = 1 then 2 else 3 end FROM t \
                   WHERE b LIKE '%x%' AND c IN (1, 2, 3)");
        assert!(matches!(s.select[0].0, Ast::Case { .. }));
    }

    #[test]
    fn parses_placeholders() {
        let s = p("SELECT sum(a) FROM t WHERE b < ? AND c BETWEEN $1 AND $2");
        let w = s.where_.unwrap();
        fn count_params(a: &Ast, n: &mut usize) {
            match a {
                Ast::Param(_) => *n += 1,
                Ast::Bin { a, b, .. } => {
                    count_params(a, n);
                    count_params(b, n);
                }
                Ast::Between { v, lo, hi } => {
                    count_params(v, n);
                    count_params(lo, n);
                    count_params(hi, n);
                }
                _ => {}
            }
        }
        let mut n = 0;
        count_params(&w, &mut n);
        assert_eq!(n, 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(tokenize("SELECT FROM t").unwrap()).is_err());
        assert!(parse(tokenize("SELECT a FROM t WHERE").unwrap()).is_err());
        assert!(parse(tokenize("SELECT a FROM t extra").unwrap()).is_err());
    }
}
