//! Proleptic-Gregorian date arithmetic (days since the Unix epoch), using
//! Howard Hinnant's `days_from_civil` algorithm. Dates are stored in date
//! columns as `i32` day numbers, so date predicates compile to integer
//! comparisons.

/// Days since 1970-01-01 for a calendar date.
pub fn date_to_days(year: i32, month: u32, day: u32) -> i32 {
    debug_assert!((1..=12).contains(&month) && (1..=31).contains(&day));
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe - 719_468) as i32
}

/// Inverse of [`date_to_days`].
pub fn days_to_date(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Parse `YYYY-MM-DD` into a day number. Panics on malformed input
/// (literals come from query text validated upstream).
pub fn parse_date(s: &str) -> i32 {
    let mut it = s.split('-');
    let y: i32 = it.next().unwrap().parse().expect("year");
    let m: u32 = it.next().unwrap().parse().expect("month");
    let d: u32 = it.next().unwrap().parse().expect("day");
    date_to_days(y, m, d)
}

/// Format a day number as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = days_to_date(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date_to_days(1970, 1, 1), 0);
        assert_eq!(days_to_date(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(date_to_days(1992, 1, 1), 8035);
        assert_eq!(date_to_days(1998, 12, 31), 10591);
        assert_eq!(days_to_date(date_to_days(1995, 3, 15)), (1995, 3, 15));
    }

    #[test]
    fn round_trip_every_day_for_30_years() {
        let start = date_to_days(1980, 1, 1);
        let end = date_to_days(2010, 1, 1);
        for d in start..end {
            let (y, m, dd) = days_to_date(d);
            assert_eq!(date_to_days(y, m, dd), d);
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_to_date(date_to_days(2000, 2, 29)), (2000, 2, 29));
        assert_eq!(date_to_days(1996, 3, 1) - date_to_days(1996, 2, 28), 2);
        // 1900 is not a leap year.
        assert_eq!(date_to_days(1900, 3, 1) - date_to_days(1900, 2, 28), 1);
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("1994-01-01"), date_to_days(1994, 1, 1));
        assert_eq!(format_date(parse_date("1997-07-15")), "1997-07-15");
    }
}
