//! Typed columns. Generated code addresses column data through raw base
//! pointers, so the representations are deliberately flat:
//!
//! * integers and dates: `Vec<i32>` / `Vec<i64>`,
//! * decimals: `Vec<i64>` in hundredths (scale 2) — arithmetic on them is
//!   overflow-checked in generated code, which is what exercises the
//!   paper's §IV-F overflow macro-op,
//! * floats: `Vec<f64>`,
//! * strings: dictionary-encoded `u32` codes plus a dictionary, so string
//!   predicates compile to integer comparisons or dictionary-bitmap probes.

use std::fmt;

/// Logical column types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    Int32,
    Int64,
    /// Days since 1970-01-01, stored as i32.
    Date,
    /// Fixed-point with 2 fractional digits, stored as i64 hundredths.
    Decimal,
    Float64,
    Bool,
    /// Dictionary-encoded string.
    Str,
}

impl DataType {
    /// Byte width of one element in the backing array.
    pub fn elem_size(self) -> usize {
        match self {
            DataType::Int32 | DataType::Date | DataType::Str => 4,
            DataType::Bool => 1,
            _ => 8,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::Date => "date",
            DataType::Decimal => "decimal(.,2)",
            DataType::Float64 => "float64",
            DataType::Bool => "bool",
            DataType::Str => "string",
        };
        f.write_str(s)
    }
}

/// A dictionary-encoded string column.
#[derive(Clone, Debug, Default)]
pub struct StrColumn {
    pub codes: Vec<u32>,
    pub dict: Vec<String>,
}

impl StrColumn {
    pub fn from_values<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        let mut c = StrColumn::default();
        let mut lookup = std::collections::HashMap::<String, u32>::new();
        for v in values {
            let v = v.as_ref();
            let code = *lookup.entry(v.to_string()).or_insert_with(|| {
                c.dict.push(v.to_string());
                (c.dict.len() - 1) as u32
            });
            c.codes.push(code);
        }
        c
    }

    /// Code for an exact string, if present in the dictionary.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict.iter().position(|d| d == s).map(|i| i as u32)
    }

    pub fn value(&self, row: usize) -> &str {
        &self.dict[self.codes[row] as usize]
    }

    /// Per-dictionary-entry predicate bitmap: string predicates (LIKE,
    /// prefix, set membership) are evaluated once per dictionary entry at
    /// plan time, turning the per-row check into a byte load.
    pub fn match_bitmap(&self, pred: impl Fn(&str) -> bool) -> Vec<u8> {
        self.dict.iter().map(|s| pred(s) as u8).collect()
    }
}

/// A typed column.
#[derive(Clone, Debug)]
pub enum Column {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Vec<u8>),
    Str(StrColumn),
}

impl Column {
    pub fn len(&self) -> usize {
        match self {
            Column::I32(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str(s) => s.codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base pointer of the element array handed to generated code.
    pub fn base_ptr(&self) -> *const u8 {
        match self {
            Column::I32(v) => v.as_ptr() as *const u8,
            Column::I64(v) => v.as_ptr() as *const u8,
            Column::F64(v) => v.as_ptr() as *const u8,
            Column::Bool(v) => v.as_ptr(),
            Column::Str(s) => s.codes.as_ptr() as *const u8,
        }
    }

    /// Element width in bytes.
    pub fn elem_size(&self) -> usize {
        match self {
            Column::I32(_) => 4,
            Column::I64(_) | Column::F64(_) => 8,
            Column::Bool(_) => 1,
            Column::Str(_) => 4,
        }
    }

    pub fn as_str(&self) -> Option<&StrColumn> {
        match self {
            Column::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The row value widened to a u64 bit pattern (i32/date sign-extended,
    /// f64 as bits, string as its dictionary code) — the representation rows
    /// take inside hash tables and output buffers.
    pub fn get_u64(&self, row: usize) -> u64 {
        match self {
            Column::I32(v) => v[row] as i64 as u64,
            Column::I64(v) => v[row] as u64,
            Column::F64(v) => v[row].to_bits(),
            Column::Bool(v) => v[row] as u64,
            Column::Str(s) => s.codes[row] as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_encoding_round_trips() {
        let c = StrColumn::from_values(["a", "b", "a", "c", "b"]);
        assert_eq!(c.dict.len(), 3);
        assert_eq!(c.codes, vec![0, 1, 0, 2, 1]);
        assert_eq!(c.value(3), "c");
        assert_eq!(c.code_of("b"), Some(1));
        assert_eq!(c.code_of("zzz"), None);
    }

    #[test]
    fn match_bitmap_per_dict_entry() {
        let c = StrColumn::from_values(["red socks", "blue hat", "red hat"]);
        let bm = c.match_bitmap(|s| s.starts_with("red"));
        assert_eq!(bm, vec![1, 0, 1]);
    }

    #[test]
    fn base_pointers_and_widths() {
        let c = Column::I32(vec![1, 2, 3]);
        assert_eq!(c.elem_size(), 4);
        assert_eq!(c.len(), 3);
        assert!(!c.base_ptr().is_null());
        let f = Column::F64(vec![1.5]);
        assert_eq!(f.elem_size(), 8);
        assert_eq!(f.get_u64(0), 1.5f64.to_bits());
        let i = Column::I32(vec![-5]);
        assert_eq!(i.get_u64(0) as i64, -5);
    }
}
