//! PostgreSQL-style catalog tables.
//!
//! The paper's motivating example is the pgAdmin startup workload: "dozens
//! of complex queries (up to 22 joins), all of which access only very small
//! meta data tables" — for which compilation takes 50× longer than
//! execution. This module builds small `pg_class` / `pg_namespace` /
//! `pg_inherits` / `pg_attribute` lookalikes so the example workload in
//! `examples/pgadmin_startup.rs` runs against realistic shapes.

use crate::column::{Column, DataType, StrColumn};
use crate::table::{Catalog, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build the metadata catalog with `n_relations` relations spread over a few
/// namespaces.
pub fn generate(n_relations: usize) -> Catalog {
    let mut cat = Catalog::new();
    let mut rng = SmallRng::seed_from_u64(0x9dba5e);

    let namespaces = ["pg_catalog", "public", "information_schema", "app"];
    cat.add(Table::new(
        "pg_namespace",
        vec![
            ("oid", DataType::Int32, Column::I32((0..namespaces.len() as i32).collect())),
            ("nspname", DataType::Str, Column::Str(StrColumn::from_values(namespaces))),
        ],
    ));

    let mut relname = Vec::with_capacity(n_relations);
    let mut relnamespace = Vec::with_capacity(n_relations);
    let mut relkind = Vec::with_capacity(n_relations);
    let mut relnatts = Vec::with_capacity(n_relations);
    for k in 0..n_relations {
        relname.push(format!("rel_{k}"));
        relnamespace.push(rng.random_range(0..namespaces.len() as i32));
        relkind.push(if k % 5 == 0 { "i" } else { "r" });
        relnatts.push(rng.random_range(2..24));
    }
    cat.add(Table::new(
        "pg_class",
        vec![
            ("oid", DataType::Int32, Column::I32((0..n_relations as i32).collect())),
            ("relname", DataType::Str, Column::Str(StrColumn::from_values(relname))),
            ("relnamespace", DataType::Int32, Column::I32(relnamespace)),
            ("relkind", DataType::Str, Column::Str(StrColumn::from_values(relkind))),
            ("relnatts", DataType::Int32, Column::I32(relnatts.clone())),
        ],
    ));

    // Inheritance: ~10% of relations inherit from another.
    let mut inhrelid = Vec::new();
    let mut inhparent = Vec::new();
    let mut inhseqno = Vec::new();
    for k in 0..n_relations {
        if k % 10 == 3 && k > 0 {
            inhrelid.push(k as i32);
            inhparent.push(rng.random_range(0..k as i32));
            inhseqno.push(1);
        }
    }
    cat.add(Table::new(
        "pg_inherits",
        vec![
            ("inhrelid", DataType::Int32, Column::I32(inhrelid)),
            ("inhparent", DataType::Int32, Column::I32(inhparent)),
            ("inhseqno", DataType::Int32, Column::I32(inhseqno)),
        ],
    ));

    // Attributes per relation.
    let mut attrelid = Vec::new();
    let mut attname = Vec::new();
    let mut attnum = Vec::new();
    let mut atttypid = Vec::new();
    for (k, &n) in relnatts.iter().enumerate() {
        for a in 0..n {
            attrelid.push(k as i32);
            attname.push(format!("col_{a}"));
            attnum.push(a);
            atttypid.push(rng.random_range(16..2000));
        }
    }
    cat.add(Table::new(
        "pg_attribute",
        vec![
            ("attrelid", DataType::Int32, Column::I32(attrelid)),
            ("attname", DataType::Str, Column::Str(StrColumn::from_values(attname))),
            ("attnum", DataType::Int32, Column::I32(attnum)),
            ("atttypid", DataType::Int32, Column::I32(atttypid)),
        ],
    ));

    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_tables_exist_and_are_small() {
        let cat = generate(200);
        assert_eq!(cat.get("pg_class").unwrap().row_count(), 200);
        assert!(cat.get("pg_inherits").unwrap().row_count() < 30);
        assert!(cat.get("pg_attribute").unwrap().row_count() > 400);
        assert_eq!(cat.get("pg_namespace").unwrap().row_count(), 4);
    }
}
