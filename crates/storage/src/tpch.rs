//! Deterministic TPC-H data generator.
//!
//! A from-scratch replacement for the official `dbgen` (a C program with
//! proprietary text distributions): schemas, scaling rules, key structure,
//! value ranges, and the selectivities the 22 queries exercise follow the
//! TPC-H specification; text columns are synthesized from bounded
//! vocabularies (see DESIGN.md §2, substitution 6). Generation is
//! deterministic for a given scale factor.

use crate::column::{Column, DataType, StrColumn};
use crate::date::date_to_days;
use crate::table::{Catalog, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

pub const NATIONS: [(&str, u32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIP_INSTRUCT: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const WORDS: [&str; 24] = [
    "special",
    "pending",
    "unusual",
    "express",
    "furiously",
    "slyly",
    "carefully",
    "blithely",
    "requests",
    "deposits",
    "packages",
    "accounts",
    "instructions",
    "theodolites",
    "platelets",
    "foxes",
    "ideas",
    "dependencies",
    "excuses",
    "courts",
    "dolphins",
    "warhorses",
    "sheaves",
    "pinto",
];
const PART_NAME_WORDS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
];

fn comment(rng: &mut SmallRng) -> String {
    let a = WORDS[rng.random_range(0..WORDS.len())];
    let b = WORDS[rng.random_range(0..WORDS.len())];
    let c = WORDS[rng.random_range(0..WORDS.len())];
    format!("{a} {b} {c}")
}

/// Row counts for a scale factor (the TPC-H scaling rules; lineitem is
/// ~4×orders via the per-order line count).
pub fn row_counts(sf: f64) -> (usize, usize, usize, usize, usize) {
    let part = (200_000.0 * sf).max(200.0) as usize;
    let supplier = (10_000.0 * sf).max(10.0) as usize;
    let customer = (150_000.0 * sf).max(150.0) as usize;
    let orders = customer * 10;
    (part, supplier, customer, orders, part * 4)
}

/// Generate all eight TPC-H tables at the given scale factor.
pub fn generate(sf: f64) -> Catalog {
    let mut cat = Catalog::new();
    let (n_part, n_supp, n_cust, n_orders, n_partsupp) = row_counts(sf);
    let mut rng = SmallRng::seed_from_u64(0x7c0f_fee0 ^ (sf * 1000.0) as u64);

    // region
    cat.add(Table::new(
        "region",
        vec![
            ("r_regionkey", DataType::Int32, Column::I32((0..5).collect())),
            ("r_name", DataType::Str, Column::Str(StrColumn::from_values(REGIONS))),
            (
                "r_comment",
                DataType::Str,
                Column::Str(StrColumn::from_values(
                    (0..5).map(|_| comment(&mut rng)).collect::<Vec<_>>(),
                )),
            ),
        ],
    ));

    // nation
    cat.add(Table::new(
        "nation",
        vec![
            ("n_nationkey", DataType::Int32, Column::I32((0..25).collect())),
            (
                "n_name",
                DataType::Str,
                Column::Str(StrColumn::from_values(NATIONS.iter().map(|(n, _)| *n))),
            ),
            (
                "n_regionkey",
                DataType::Int32,
                Column::I32(NATIONS.iter().map(|(_, r)| *r as i32).collect()),
            ),
            (
                "n_comment",
                DataType::Str,
                Column::Str(StrColumn::from_values(
                    (0..25).map(|_| comment(&mut rng)).collect::<Vec<_>>(),
                )),
            ),
        ],
    ));

    // supplier
    {
        let mut nationkey = Vec::with_capacity(n_supp);
        let mut acctbal = Vec::with_capacity(n_supp);
        let mut comments = Vec::with_capacity(n_supp);
        let mut names = Vec::with_capacity(n_supp);
        let mut addr = Vec::with_capacity(n_supp);
        let mut phone = Vec::with_capacity(n_supp);
        for k in 0..n_supp {
            nationkey.push(rng.random_range(0..25));
            acctbal.push(rng.random_range(-99_999..=999_999)); // -999.99..9999.99
                                                               // A fraction of suppliers carry the "Customer Complaints" marker
                                                               // (Q16 excludes them).
            comments.push(if k % 50 == 0 {
                "customer complaints pending".to_string()
            } else {
                comment(&mut rng)
            });
            names.push(format!("Supplier#{k:09}"));
            addr.push(format!("addr {}", rng.random_range(0..4096)));
            phone.push(format!("{}-{:07}", 10 + nationkey[k] % 25, rng.random_range(0..9_999_999)));
        }
        cat.add(Table::new(
            "supplier",
            vec![
                ("s_suppkey", DataType::Int32, Column::I32((0..n_supp as i32).collect())),
                ("s_name", DataType::Str, Column::Str(StrColumn::from_values(names))),
                ("s_address", DataType::Str, Column::Str(StrColumn::from_values(addr))),
                ("s_nationkey", DataType::Int32, Column::I32(nationkey)),
                ("s_phone", DataType::Str, Column::Str(StrColumn::from_values(phone))),
                ("s_acctbal", DataType::Decimal, Column::I64(acctbal)),
                ("s_comment", DataType::Str, Column::Str(StrColumn::from_values(comments))),
            ],
        ));
    }

    // part
    {
        let mut name = Vec::with_capacity(n_part);
        let mut mfgr = Vec::with_capacity(n_part);
        let mut brand = Vec::with_capacity(n_part);
        let mut ptype = Vec::with_capacity(n_part);
        let mut size = Vec::with_capacity(n_part);
        let mut container = Vec::with_capacity(n_part);
        let mut retail = Vec::with_capacity(n_part);
        let mut comments = Vec::with_capacity(n_part);
        for k in 0..n_part {
            let w1 = PART_NAME_WORDS[rng.random_range(0..PART_NAME_WORDS.len())];
            let w2 = PART_NAME_WORDS[rng.random_range(0..PART_NAME_WORDS.len())];
            name.push(format!("{w1} {w2}"));
            let m = rng.random_range(1..=5);
            mfgr.push(format!("Manufacturer#{m}"));
            brand.push(format!("Brand#{}{}", m, rng.random_range(1..=5)));
            ptype.push(format!(
                "{} {} {}",
                TYPE_SYLL1[rng.random_range(0..6)],
                TYPE_SYLL2[rng.random_range(0..5)],
                TYPE_SYLL3[rng.random_range(0..5)]
            ));
            size.push(rng.random_range(1..=50));
            container.push(format!(
                "{} {}",
                CONTAINER_1[rng.random_range(0..5)],
                CONTAINER_2[rng.random_range(0..8)]
            ));
            // 90000 + (k % 200) * 100 + ... hundredths: ~900..2100 dollars
            retail.push(90_000 + ((k as i64 % 1000) * 100) + ((k as i64 / 1000) % 100));
            comments.push(comment(&mut rng));
        }
        cat.add(Table::new(
            "part",
            vec![
                ("p_partkey", DataType::Int32, Column::I32((0..n_part as i32).collect())),
                ("p_name", DataType::Str, Column::Str(StrColumn::from_values(name))),
                ("p_mfgr", DataType::Str, Column::Str(StrColumn::from_values(mfgr))),
                ("p_brand", DataType::Str, Column::Str(StrColumn::from_values(brand))),
                ("p_type", DataType::Str, Column::Str(StrColumn::from_values(ptype))),
                ("p_size", DataType::Int32, Column::I32(size)),
                ("p_container", DataType::Str, Column::Str(StrColumn::from_values(container))),
                ("p_retailprice", DataType::Decimal, Column::I64(retail)),
                ("p_comment", DataType::Str, Column::Str(StrColumn::from_values(comments))),
            ],
        ));
    }

    // partsupp: 4 suppliers per part
    {
        let mut partkey = Vec::with_capacity(n_partsupp);
        let mut suppkey = Vec::with_capacity(n_partsupp);
        let mut avail = Vec::with_capacity(n_partsupp);
        let mut cost = Vec::with_capacity(n_partsupp);
        let mut comments = Vec::with_capacity(n_partsupp);
        for p in 0..n_part {
            for s in 0..4 {
                partkey.push(p as i32);
                suppkey.push(((p + s * (n_supp / 4 + 1)) % n_supp) as i32);
                avail.push(rng.random_range(1..=9999));
                cost.push(rng.random_range(100..=100_000)); // 1.00 .. 1000.00
                comments.push(comment(&mut rng));
            }
        }
        cat.add(Table::new(
            "partsupp",
            vec![
                ("ps_partkey", DataType::Int32, Column::I32(partkey)),
                ("ps_suppkey", DataType::Int32, Column::I32(suppkey)),
                ("ps_availqty", DataType::Int32, Column::I32(avail)),
                ("ps_supplycost", DataType::Decimal, Column::I64(cost)),
                ("ps_comment", DataType::Str, Column::Str(StrColumn::from_values(comments))),
            ],
        ));
    }

    // customer
    {
        let mut nationkey = Vec::with_capacity(n_cust);
        let mut acctbal = Vec::with_capacity(n_cust);
        let mut segment = Vec::with_capacity(n_cust);
        let mut comments = Vec::with_capacity(n_cust);
        let mut names = Vec::with_capacity(n_cust);
        let mut addr = Vec::with_capacity(n_cust);
        let mut phone = Vec::with_capacity(n_cust);
        for k in 0..n_cust {
            let nk = rng.random_range(0..25);
            nationkey.push(nk);
            acctbal.push(rng.random_range(-99_999..=999_999));
            segment.push(SEGMENTS[rng.random_range(0..5)]);
            comments.push(comment(&mut rng));
            names.push(format!("Customer#{k:09}"));
            addr.push(format!("addr {}", rng.random_range(0..4096)));
            phone.push(format!("{}-{:07}", 10 + nk, rng.random_range(0..9_999_999)));
        }
        cat.add(Table::new(
            "customer",
            vec![
                ("c_custkey", DataType::Int32, Column::I32((0..n_cust as i32).collect())),
                ("c_name", DataType::Str, Column::Str(StrColumn::from_values(names))),
                ("c_address", DataType::Str, Column::Str(StrColumn::from_values(addr))),
                ("c_nationkey", DataType::Int32, Column::I32(nationkey)),
                ("c_phone", DataType::Str, Column::Str(StrColumn::from_values(phone))),
                ("c_acctbal", DataType::Decimal, Column::I64(acctbal)),
                ("c_mktsegment", DataType::Str, Column::Str(StrColumn::from_values(segment))),
                ("c_comment", DataType::Str, Column::Str(StrColumn::from_values(comments))),
            ],
        ));
    }

    // orders + lineitem (lineitem rows depend on per-order line counts)
    {
        let start = date_to_days(1992, 1, 1);
        let end = date_to_days(1998, 8, 2);
        let cutoff = date_to_days(1995, 6, 17);

        let mut o_custkey = Vec::with_capacity(n_orders);
        let mut o_status = Vec::with_capacity(n_orders);
        let mut o_total = Vec::with_capacity(n_orders);
        let mut o_date = Vec::with_capacity(n_orders);
        let mut o_prio = Vec::with_capacity(n_orders);
        let mut o_clerk = Vec::with_capacity(n_orders);
        let mut o_ship = Vec::with_capacity(n_orders);
        let mut o_comment = Vec::with_capacity(n_orders);

        let est_lines = n_orders * 4;
        let mut l_orderkey = Vec::with_capacity(est_lines);
        let mut l_partkey = Vec::with_capacity(est_lines);
        let mut l_suppkey = Vec::with_capacity(est_lines);
        let mut l_linenumber = Vec::with_capacity(est_lines);
        let mut l_quantity = Vec::with_capacity(est_lines);
        let mut l_extprice = Vec::with_capacity(est_lines);
        let mut l_discount = Vec::with_capacity(est_lines);
        let mut l_tax = Vec::with_capacity(est_lines);
        let mut l_retflag: Vec<&str> = Vec::with_capacity(est_lines);
        let mut l_status: Vec<&str> = Vec::with_capacity(est_lines);
        let mut l_shipdate = Vec::with_capacity(est_lines);
        let mut l_commit = Vec::with_capacity(est_lines);
        let mut l_receipt = Vec::with_capacity(est_lines);
        let mut l_instruct = Vec::with_capacity(est_lines);
        let mut l_mode = Vec::with_capacity(est_lines);
        let mut l_comment_codes = Vec::with_capacity(est_lines);

        for ok in 0..n_orders {
            let odate = rng.random_range(start..=end);
            let lines = rng.random_range(1..=7usize);
            let mut total = 0i64;
            let mut any_open = false;
            for ln in 0..lines {
                let pk = rng.random_range(0..n_part as i32);
                let qty = rng.random_range(1..=50i64);
                let retail = 90_000 + ((pk as i64 % 1000) * 100) + ((pk as i64 / 1000) % 100);
                let ext = qty * retail;
                let ship = odate + rng.random_range(1..=121);
                let commit = odate + rng.random_range(30..=90);
                let receipt = ship + rng.random_range(1..=30);
                let (rf, ls) = if receipt <= cutoff {
                    (if rng.random_bool(0.5) { "R" } else { "A" }, "F")
                } else {
                    ("N", if ship > cutoff { "O" } else { "F" })
                };
                any_open |= ls == "O";
                l_orderkey.push(ok as i64);
                l_partkey.push(pk);
                l_suppkey.push(((pk as usize + ln * (n_supp / 4 + 1)) % n_supp) as i32);
                l_linenumber.push(ln as i32 + 1);
                l_quantity.push(qty * 100);
                l_extprice.push(ext);
                l_discount.push(rng.random_range(0..=10)); // 0.00 .. 0.10
                l_tax.push(rng.random_range(0..=8));
                l_retflag.push(rf);
                l_status.push(ls);
                l_shipdate.push(ship);
                l_commit.push(commit);
                l_receipt.push(receipt);
                l_instruct.push(SHIP_INSTRUCT[rng.random_range(0..4)]);
                l_mode.push(SHIP_MODES[rng.random_range(0..7)]);
                l_comment_codes.push(comment(&mut rng));
                total += ext;
            }
            o_custkey.push(rng.random_range(0..n_cust as i32));
            // Lines are only ever "F" or "O" here, so the partially-
            // fulfilled order status "P" of full TPC-H is not modelled.
            o_status.push(if any_open { "O" } else { "F" });
            o_total.push(total);
            o_date.push(odate);
            o_prio.push(PRIORITIES[rng.random_range(0..5)]);
            o_clerk
                .push(format!("Clerk#{:09}", rng.random_range(0..(1000.0 * sf).max(10.0) as u32)));
            o_ship.push(0i32);
            o_comment.push(comment(&mut rng));
        }

        cat.add(Table::new(
            "orders",
            vec![
                ("o_orderkey", DataType::Int64, Column::I64((0..n_orders as i64).collect())),
                ("o_custkey", DataType::Int32, Column::I32(o_custkey)),
                ("o_orderstatus", DataType::Str, Column::Str(StrColumn::from_values(o_status))),
                ("o_totalprice", DataType::Decimal, Column::I64(o_total)),
                ("o_orderdate", DataType::Date, Column::I32(o_date)),
                ("o_orderpriority", DataType::Str, Column::Str(StrColumn::from_values(o_prio))),
                ("o_clerk", DataType::Str, Column::Str(StrColumn::from_values(o_clerk))),
                ("o_shippriority", DataType::Int32, Column::I32(o_ship)),
                ("o_comment", DataType::Str, Column::Str(StrColumn::from_values(o_comment))),
            ],
        ));

        cat.add(Table::new(
            "lineitem",
            vec![
                ("l_orderkey", DataType::Int64, Column::I64(l_orderkey)),
                ("l_partkey", DataType::Int32, Column::I32(l_partkey)),
                ("l_suppkey", DataType::Int32, Column::I32(l_suppkey)),
                ("l_linenumber", DataType::Int32, Column::I32(l_linenumber)),
                ("l_quantity", DataType::Decimal, Column::I64(l_quantity)),
                ("l_extendedprice", DataType::Decimal, Column::I64(l_extprice)),
                ("l_discount", DataType::Decimal, Column::I64(l_discount)),
                ("l_tax", DataType::Decimal, Column::I64(l_tax)),
                ("l_returnflag", DataType::Str, Column::Str(StrColumn::from_values(l_retflag))),
                ("l_linestatus", DataType::Str, Column::Str(StrColumn::from_values(l_status))),
                ("l_shipdate", DataType::Date, Column::I32(l_shipdate)),
                ("l_commitdate", DataType::Date, Column::I32(l_commit)),
                ("l_receiptdate", DataType::Date, Column::I32(l_receipt)),
                ("l_shipinstruct", DataType::Str, Column::Str(StrColumn::from_values(l_instruct))),
                ("l_shipmode", DataType::Str, Column::Str(StrColumn::from_values(l_mode))),
                ("l_comment", DataType::Str, Column::Str(StrColumn::from_values(l_comment_codes))),
            ],
        ));
    }

    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_has_all_tables() {
        let cat = generate(0.001);
        for t in
            ["region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"]
        {
            assert!(cat.get(t).is_some(), "missing {t}");
        }
        assert_eq!(cat.get("region").unwrap().row_count(), 5);
        assert_eq!(cat.get("nation").unwrap().row_count(), 25);
    }

    #[test]
    fn scaling_rules() {
        let cat = generate(0.01);
        assert_eq!(cat.get("part").unwrap().row_count(), 2000);
        assert_eq!(cat.get("supplier").unwrap().row_count(), 100);
        assert_eq!(cat.get("customer").unwrap().row_count(), 1500);
        assert_eq!(cat.get("orders").unwrap().row_count(), 15000);
        assert_eq!(cat.get("partsupp").unwrap().row_count(), 8000);
        let li = cat.get("lineitem").unwrap().row_count();
        assert!((30_000..=105_000).contains(&li), "lineitem rows: {li}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.001);
        let b = generate(0.001);
        let (ta, tb) = (a.get("lineitem").unwrap(), b.get("lineitem").unwrap());
        assert_eq!(ta.row_count(), tb.row_count());
        for row in [0, 7, ta.row_count() - 1] {
            for col in 0..ta.column_count() {
                assert_eq!(ta.column(col).get_u64(row), tb.column(col).get_u64(row));
            }
        }
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let cat = generate(0.001);
        let li = cat.get("lineitem").unwrap();
        let n_part = cat.get("part").unwrap().row_count() as i64;
        let n_supp = cat.get("supplier").unwrap().row_count() as i64;
        let n_orders = cat.get("orders").unwrap().row_count() as i64;
        let (pk, sk, ok) = (
            li.column_by_name("l_partkey").unwrap(),
            li.column_by_name("l_suppkey").unwrap(),
            li.column_by_name("l_orderkey").unwrap(),
        );
        for r in 0..li.row_count() {
            assert!((pk.get_u64(r) as i64) < n_part);
            assert!((sk.get_u64(r) as i64) < n_supp);
            assert!((ok.get_u64(r) as i64) < n_orders);
        }
    }

    #[test]
    fn value_ranges_match_spec() {
        let cat = generate(0.001);
        let li = cat.get("lineitem").unwrap();
        let qty = li.column_by_name("l_quantity").unwrap();
        let disc = li.column_by_name("l_discount").unwrap();
        for r in 0..li.row_count() {
            let q = qty.get_u64(r) as i64;
            assert!((100..=5000).contains(&q), "qty {q}");
            let d = disc.get_u64(r) as i64;
            assert!((0..=10).contains(&d), "disc {d}");
        }
        // return flags form the standard three-value domain
        let rf = li.column_by_name("l_returnflag").unwrap().as_str().unwrap();
        for code in &rf.dict {
            assert!(["R", "A", "N"].contains(&code.as_str()));
        }
    }

    #[test]
    fn dates_are_ordered() {
        let cat = generate(0.001);
        let li = cat.get("lineitem").unwrap();
        let (ship, receipt) =
            (li.column_by_name("l_shipdate").unwrap(), li.column_by_name("l_receiptdate").unwrap());
        for r in 0..li.row_count() {
            assert!(ship.get_u64(r) as i64 <= receipt.get_u64(r) as i64);
        }
    }
}
