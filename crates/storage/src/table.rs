//! Tables and the catalog.

use crate::column::{Column, DataType};
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable in-memory table: a schema plus one column vector per field.
#[derive(Clone, Debug)]
pub struct Table {
    pub name: String,
    schema: Vec<(String, DataType)>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    pub fn new(name: impl Into<String>, fields: Vec<(&str, DataType, Column)>) -> Table {
        let mut schema = Vec::with_capacity(fields.len());
        let mut columns = Vec::with_capacity(fields.len());
        let mut rows = None;
        for (n, ty, col) in fields {
            assert_eq!(*rows.get_or_insert(col.len()), col.len(), "column {n} length mismatch");
            schema.push((n.to_string(), ty));
            columns.push(col);
        }
        Table { name: name.into(), schema, columns, rows: rows.unwrap_or(0) }
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    pub fn schema(&self) -> &[(String, DataType)] {
        &self.schema
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|(n, _)| n == name)
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    pub fn column_type(&self, idx: usize) -> DataType {
        self.schema[idx].1
    }

    /// Approximate heap size in bytes (for experiment reports).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.len() * c.elem_size()).sum()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} rows)", self.name, self.rows)
    }
}

/// One immutable epoch of the catalog: a versioned, `Arc`-shared table
/// map that can never change underneath a reader.
///
/// This is the unit the engine's concurrency story is built on: an
/// execution clones a `CatalogSnapshot` (two `Arc` bumps) at start and
/// reads it lock-free for its whole lifetime — generated code can keep
/// dereferencing column base pointers even while a concurrent mutation
/// publishes a *new* snapshot, because the old epoch's `Arc<Table>`s stay
/// alive for as long as anything references them.
///
/// Mutations are **copy-on-write builders**: [`with_added`] /
/// [`with_removed`] clone the table map (cheap — it holds `Arc<Table>`,
/// not table data), apply the change, and bump the monotonic version.
/// Long-lived consumers (the engine's prepared-statement code cache and
/// query-result cache) key their entries by [`version`], so a catalog
/// change automatically invalidates anything derived from the old
/// contents.
///
/// [`with_added`]: CatalogSnapshot::with_added
/// [`with_removed`]: CatalogSnapshot::with_removed
/// [`version`]: CatalogSnapshot::version
#[derive(Clone, Debug)]
pub struct CatalogSnapshot {
    tables: Arc<HashMap<String, Arc<Table>>>,
    version: u64,
}

impl Default for CatalogSnapshot {
    fn default() -> Self {
        CatalogSnapshot { tables: Arc::new(HashMap::new()), version: 0 }
    }
}

impl CatalogSnapshot {
    /// Monotonic mutation counter: incremented by every copy-on-write
    /// mutation. Two snapshots with the same version that share a mutation
    /// history hold the same tables.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A new snapshot with `table` inserted (or replaced) and the version
    /// bumped. `self` is unaffected — readers of the old epoch keep their
    /// view.
    pub fn with_added(&self, table: Table) -> CatalogSnapshot {
        let mut tables = (*self.tables).clone();
        tables.insert(table.name.clone(), Arc::new(table));
        CatalogSnapshot { tables: Arc::new(tables), version: self.version + 1 }
    }

    /// A new snapshot with `name` removed (version bumped only when the
    /// table existed), plus the removed table.
    pub fn with_removed(&self, name: &str) -> (CatalogSnapshot, Option<Arc<Table>>) {
        if !self.tables.contains_key(name) {
            return (self.clone(), None);
        }
        let mut tables = (*self.tables).clone();
        let removed = tables.remove(name);
        (CatalogSnapshot { tables: Arc::new(tables), version: self.version + 1 }, removed)
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// A named collection of tables: the *mutable builder* over the immutable
/// [`CatalogSnapshot`] epochs. Tables are `Arc`-shared so that queries and
/// worker threads can hold them without copying.
///
/// `Catalog` derefs to its current snapshot, so every read accessor
/// ([`get`](CatalogSnapshot::get), [`version`](CatalogSnapshot::version),
/// [`table_names`](CatalogSnapshot::table_names), …) is available on it
/// directly; [`add`] and [`remove`] build the next epoch copy-on-write.
/// [`snapshot`] hands out the current epoch for lock-free sharing.
///
/// [`add`]: Catalog::add
/// [`remove`]: Catalog::remove
/// [`snapshot`]: Catalog::snapshot
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    snap: CatalogSnapshot,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog whose current contents are `snap` (continues that epoch's
    /// version history).
    pub fn from_snapshot(snap: CatalogSnapshot) -> Catalog {
        Catalog { snap }
    }

    /// The current epoch: an immutable, cheaply clonable view that stays
    /// valid across later mutations of this catalog.
    pub fn snapshot(&self) -> CatalogSnapshot {
        self.snap.clone()
    }

    /// Insert (or replace) a table, bumping the catalog version.
    pub fn add(&mut self, table: Table) {
        self.snap = self.snap.with_added(table);
    }

    /// Remove a table by name, bumping the catalog version when the table
    /// existed.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        let (snap, removed) = self.snap.with_removed(name);
        self.snap = snap;
        removed
    }
}

impl Deref for Catalog {
    type Target = CatalogSnapshot;

    fn deref(&self) -> &CatalogSnapshot {
        &self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "t",
            vec![
                ("a", DataType::Int32, Column::I32(vec![1, 2, 3])),
                ("b", DataType::Decimal, Column::I64(vec![100, 250, 399])),
            ],
        )
    }

    #[test]
    fn table_accessors() {
        let t = t();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("zz"), None);
        assert_eq!(t.column_type(0), DataType::Int32);
        assert_eq!(t.byte_size(), 3 * 4 + 3 * 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        Table::new(
            "bad",
            vec![
                ("a", DataType::Int32, Column::I32(vec![1])),
                ("b", DataType::Int32, Column::I32(vec![1, 2])),
            ],
        );
    }

    #[test]
    fn catalog_lookup() {
        let mut c = Catalog::new();
        c.add(t());
        assert!(c.get("t").is_some());
        assert!(c.get("nope").is_none());
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn mutations_bump_the_version() {
        let mut c = Catalog::new();
        assert_eq!(c.version(), 0);
        c.add(t());
        assert_eq!(c.version(), 1);
        // Replacing an existing table is a mutation too.
        c.add(t());
        assert_eq!(c.version(), 2);
        assert!(c.remove("t").is_some());
        assert_eq!(c.version(), 3);
        // Removing a missing table is a no-op.
        assert!(c.remove("t").is_none());
        assert_eq!(c.version(), 3);
        // Clones carry the version with them.
        assert_eq!(c.clone().version(), 3);
    }

    #[test]
    fn snapshots_are_immutable_epochs() {
        let mut c = Catalog::new();
        c.add(t());
        let epoch1 = c.snapshot();
        assert_eq!(epoch1.version(), 1);

        // Mutations build new epochs; the old snapshot's view is frozen.
        c.remove("t");
        assert_eq!(c.version(), 2);
        assert!(c.get("t").is_none());
        assert!(epoch1.get("t").is_some(), "old epoch keeps the removed table alive");
        assert_eq!(epoch1.version(), 1);

        // The removed table's columns stay dereferenceable through the old
        // epoch — the property in-flight executions rely on.
        let table = epoch1.get("t").unwrap();
        assert_eq!(table.row_count(), 3);
        assert_eq!(table.column(0).len(), 3);
    }

    #[test]
    fn copy_on_write_builders_version_correctly() {
        let base = Catalog::new().snapshot();
        let one = base.with_added(t());
        assert_eq!(base.version(), 0);
        assert_eq!(one.version(), 1);
        assert!(base.get("t").is_none());
        assert!(one.get("t").is_some());

        let (two, removed) = one.with_removed("t");
        assert!(removed.is_some());
        assert_eq!(two.version(), 2);
        assert!(one.get("t").is_some(), "removal is copy-on-write");

        // Removing a missing table is a no-op that does not bump.
        let (same, none) = two.with_removed("t");
        assert!(none.is_none());
        assert_eq!(same.version(), 2);
    }

    #[test]
    fn catalog_round_trips_through_snapshots() {
        let mut c = Catalog::new();
        c.add(t());
        let rebuilt = Catalog::from_snapshot(c.snapshot());
        assert_eq!(rebuilt.version(), c.version());
        assert_eq!(rebuilt.table_names(), c.table_names());
    }
}
