//! Tables and the catalog.

use crate::column::{Column, DataType};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An immutable in-memory table: a schema plus one column vector per field.
#[derive(Clone, Debug)]
pub struct Table {
    pub name: String,
    schema: Vec<(String, DataType)>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    pub fn new(name: impl Into<String>, fields: Vec<(&str, DataType, Column)>) -> Table {
        let mut schema = Vec::with_capacity(fields.len());
        let mut columns = Vec::with_capacity(fields.len());
        let mut rows = None;
        for (n, ty, col) in fields {
            assert_eq!(*rows.get_or_insert(col.len()), col.len(), "column {n} length mismatch");
            schema.push((n.to_string(), ty));
            columns.push(col);
        }
        Table { name: name.into(), schema, columns, rows: rows.unwrap_or(0) }
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    pub fn schema(&self) -> &[(String, DataType)] {
        &self.schema
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|(n, _)| n == name)
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    pub fn column_type(&self, idx: usize) -> DataType {
        self.schema[idx].1
    }

    /// Approximate heap size in bytes (for experiment reports).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.len() * c.elem_size()).sum()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} rows)", self.name, self.rows)
    }
}

/// A named collection of tables. Tables are `Arc`-shared so that queries and
/// worker threads can hold them without copying.
///
/// Every mutation ([`add`], [`remove`]) bumps a monotonic [`version`]
/// counter. Long-lived consumers (the engine's prepared-statement code
/// cache and query-result cache) key their entries by this version, so a
/// catalog change automatically invalidates anything derived from the old
/// contents.
///
/// [`add`]: Catalog::add
/// [`remove`]: Catalog::remove
/// [`version`]: Catalog::version
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    version: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a table, bumping the catalog version.
    pub fn add(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), Arc::new(table));
        self.version += 1;
    }

    /// Remove a table by name, bumping the catalog version when the table
    /// existed.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        let removed = self.tables.remove(name);
        if removed.is_some() {
            self.version += 1;
        }
        removed
    }

    /// Monotonic mutation counter: incremented by every [`add`] and
    /// successful [`remove`]. Two catalogs with the same version that share
    /// a mutation history hold the same tables.
    ///
    /// [`add`]: Catalog::add
    /// [`remove`]: Catalog::remove
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "t",
            vec![
                ("a", DataType::Int32, Column::I32(vec![1, 2, 3])),
                ("b", DataType::Decimal, Column::I64(vec![100, 250, 399])),
            ],
        )
    }

    #[test]
    fn table_accessors() {
        let t = t();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("zz"), None);
        assert_eq!(t.column_type(0), DataType::Int32);
        assert_eq!(t.byte_size(), 3 * 4 + 3 * 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        Table::new(
            "bad",
            vec![
                ("a", DataType::Int32, Column::I32(vec![1])),
                ("b", DataType::Int32, Column::I32(vec![1, 2])),
            ],
        );
    }

    #[test]
    fn catalog_lookup() {
        let mut c = Catalog::new();
        c.add(t());
        assert!(c.get("t").is_some());
        assert!(c.get("nope").is_none());
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn mutations_bump_the_version() {
        let mut c = Catalog::new();
        assert_eq!(c.version(), 0);
        c.add(t());
        assert_eq!(c.version(), 1);
        // Replacing an existing table is a mutation too.
        c.add(t());
        assert_eq!(c.version(), 2);
        assert!(c.remove("t").is_some());
        assert_eq!(c.version(), 3);
        // Removing a missing table is a no-op.
        assert!(c.remove("t").is_none());
        assert_eq!(c.version(), 3);
        // Clones carry the version with them.
        assert_eq!(c.clone().version(), 3);
    }
}
