//! TPC-DS-style star schema (lite).
//!
//! Fig. 6 plots compilation time against query size for both TPC-H and
//! TPC-DS queries. The full 99-query, 24-table TPC-DS is out of scope; this
//! module generates the core star-schema subset (a fact table with four
//! dimensions) that the DS-style queries in `aqe-queries` run against —
//! enough to populate the second series of Fig. 6 with queries whose plans
//! have a different shape (wide aggregations over dimensional joins) than
//! TPC-H's.

use crate::column::{Column, DataType, StrColumn};
use crate::date::date_to_days;
use crate::table::{Catalog, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CATEGORIES: [&str; 8] =
    ["Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports"];
const BRANDS: usize = 50;
const STATES: [&str; 10] = ["CA", "NY", "TX", "WA", "IL", "FL", "GA", "OH", "MI", "PA"];

/// Generate the star schema at a scale factor (`sf = 1` ≈ 1.4 M fact rows).
pub fn generate(sf: f64) -> Catalog {
    let mut cat = Catalog::new();
    let mut rng = SmallRng::seed_from_u64(0xd5_d5_d5 ^ (sf * 1000.0) as u64);

    let n_items = ((18_000.0 * sf) as usize).max(100);
    let n_customers = ((100_000.0 * sf) as usize).max(100);
    let n_stores = ((12.0 * sf.max(0.5)) as usize).max(4);
    let n_sales = ((1_440_000.0 * sf) as usize).max(1000);

    // date_dim: 5 years of days.
    let d_start = date_to_days(1998, 1, 1);
    let n_days = 5 * 365;
    {
        let mut year = Vec::with_capacity(n_days);
        let mut moy = Vec::with_capacity(n_days);
        let mut dom = Vec::with_capacity(n_days);
        for d in 0..n_days {
            let (y, m, dd) = crate::date::days_to_date(d_start + d as i32);
            year.push(y);
            moy.push(m as i32);
            dom.push(dd as i32);
        }
        cat.add(Table::new(
            "date_dim",
            vec![
                ("d_date_sk", DataType::Int32, Column::I32((0..n_days as i32).collect())),
                ("d_year", DataType::Int32, Column::I32(year)),
                ("d_moy", DataType::Int32, Column::I32(moy)),
                ("d_dom", DataType::Int32, Column::I32(dom)),
            ],
        ));
    }

    // item
    {
        let mut brand = Vec::with_capacity(n_items);
        let mut brand_id = Vec::with_capacity(n_items);
        let mut category = Vec::with_capacity(n_items);
        let mut price = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            let b = rng.random_range(0..BRANDS);
            brand.push(format!("Brand#{b}"));
            brand_id.push(b as i32);
            category.push(CATEGORIES[rng.random_range(0..CATEGORIES.len())]);
            price.push(rng.random_range(99..=49_999i64)); // cents
        }
        cat.add(Table::new(
            "item",
            vec![
                ("i_item_sk", DataType::Int32, Column::I32((0..n_items as i32).collect())),
                ("i_brand_id", DataType::Int32, Column::I32(brand_id)),
                ("i_brand", DataType::Str, Column::Str(StrColumn::from_values(brand))),
                ("i_category", DataType::Str, Column::Str(StrColumn::from_values(category))),
                ("i_current_price", DataType::Decimal, Column::I64(price)),
            ],
        ));
    }

    // store
    {
        let mut state = Vec::with_capacity(n_stores);
        let mut name = Vec::with_capacity(n_stores);
        for s in 0..n_stores {
            state.push(STATES[s % STATES.len()]);
            name.push(format!("Store#{s}"));
        }
        cat.add(Table::new(
            "store",
            vec![
                ("s_store_sk", DataType::Int32, Column::I32((0..n_stores as i32).collect())),
                ("s_store_name", DataType::Str, Column::Str(StrColumn::from_values(name))),
                ("s_state", DataType::Str, Column::Str(StrColumn::from_values(state))),
            ],
        ));
    }

    // customer
    {
        let mut birth_year = Vec::with_capacity(n_customers);
        let mut state = Vec::with_capacity(n_customers);
        for _ in 0..n_customers {
            birth_year.push(rng.random_range(1930..=2000));
            state.push(STATES[rng.random_range(0..STATES.len())]);
        }
        cat.add(Table::new(
            "customer_ds",
            vec![
                ("c_customer_sk", DataType::Int32, Column::I32((0..n_customers as i32).collect())),
                ("c_birth_year", DataType::Int32, Column::I32(birth_year)),
                ("c_state", DataType::Str, Column::Str(StrColumn::from_values(state))),
            ],
        ));
    }

    // store_sales (fact)
    {
        let mut date_sk = Vec::with_capacity(n_sales);
        let mut item_sk = Vec::with_capacity(n_sales);
        let mut cust_sk = Vec::with_capacity(n_sales);
        let mut store_sk = Vec::with_capacity(n_sales);
        let mut qty = Vec::with_capacity(n_sales);
        let mut price = Vec::with_capacity(n_sales);
        let mut discount = Vec::with_capacity(n_sales);
        for _ in 0..n_sales {
            date_sk.push(rng.random_range(0..n_days as i32));
            item_sk.push(rng.random_range(0..n_items as i32));
            cust_sk.push(rng.random_range(0..n_customers as i32));
            store_sk.push(rng.random_range(0..n_stores as i32));
            qty.push(rng.random_range(1..=100i32));
            price.push(rng.random_range(99..=49_999i64));
            discount.push(rng.random_range(0..=30i64)); // 0.00 .. 0.30
        }
        cat.add(Table::new(
            "store_sales",
            vec![
                ("ss_sold_date_sk", DataType::Int32, Column::I32(date_sk)),
                ("ss_item_sk", DataType::Int32, Column::I32(item_sk)),
                ("ss_customer_sk", DataType::Int32, Column::I32(cust_sk)),
                ("ss_store_sk", DataType::Int32, Column::I32(store_sk)),
                ("ss_quantity", DataType::Int32, Column::I32(qty)),
                ("ss_sales_price", DataType::Decimal, Column::I64(price)),
                ("ss_discount", DataType::Decimal, Column::I64(discount)),
            ],
        ));
    }

    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_schema_generates() {
        let cat = generate(0.01);
        for t in ["date_dim", "item", "store", "customer_ds", "store_sales"] {
            assert!(cat.get(t).is_some(), "missing {t}");
        }
        let ss = cat.get("store_sales").unwrap();
        assert!(ss.row_count() >= 1000);
    }

    #[test]
    fn fact_foreign_keys_in_range() {
        let cat = generate(0.01);
        let ss = cat.get("store_sales").unwrap();
        let n_items = cat.get("item").unwrap().row_count() as i64;
        let isk = ss.column_by_name("ss_item_sk").unwrap();
        for r in 0..ss.row_count() {
            assert!((isk.get_u64(r) as i64) < n_items);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(0.01);
        let b = generate(0.01);
        let (ta, tb) = (a.get("store_sales").unwrap(), b.get("store_sales").unwrap());
        assert_eq!(ta.column(4).get_u64(17), tb.column(4).get_u64(17));
    }
}
