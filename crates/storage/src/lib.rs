//! # aqe-storage — columnar storage substrate
//!
//! In-memory columnar tables in the style of HyPer's relation storage: each
//! column is a dense, typed vector whose base pointer is handed to generated
//! code; strings are dictionary-encoded so that string predicates become
//! integer comparisons or precomputed dictionary-bitmap lookups.
//!
//! Also contains the deterministic data generators for the evaluation
//! workloads: TPC-H ([`tpch`]), a TPC-DS-style star schema ([`tpcds`]), and
//! the pgAdmin-style catalog tables from the paper's introduction
//! ([`meta`]).

pub mod column;
pub mod date;
pub mod meta;
pub mod table;
pub mod tpcds;
pub mod tpch;

pub use column::{Column, DataType, StrColumn};
pub use date::{date_to_days, days_to_date};
pub use table::{Catalog, CatalogSnapshot, Table};
