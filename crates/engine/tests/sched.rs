//! Scheduler-subsystem tests (DESIGN.md §5/§10):
//!
//! 1. a property test that per-worker ranges plus steals cover
//!    `0..total_rows` exactly once under random steal interleavings,
//! 2. a threaded test that a deliberately slow backend on one worker's
//!    partition still finishes via stealing — the hot region is
//!    redistributed instead of serializing the tail.

use aqe_engine::exec::{ExecMode, FunctionHandle, PipelineBackend};
use aqe_engine::sched::{Morsel, MorselDispenser, PipelineProgress};
use aqe_vm::interp::{ExecError, Frame};
use aqe_vm::rt::Registry;
use parking_lot::Mutex;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Sorted morsels must tile `0..total` exactly: no gap, no overlap, no
/// duplicate — the dispenser's core invariant.
fn assert_exact_coverage(mut morsels: Vec<Morsel>, total: u64) {
    morsels.sort_by_key(|m| m.begin);
    let mut at = 0;
    for m in &morsels {
        assert_eq!(m.begin, at, "gap or overlap at row {at}");
        assert!(m.end > m.begin, "empty morsel {m:?}");
        at = m.end;
    }
    assert_eq!(at, total, "rows {at}..{total} never dispensed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random worker counts, totals, morsel sizes, and claim interleavings
    /// (the seed drives which worker claims next, so steals interleave
    /// with front-claims in arbitrary orders): every row is dispensed
    /// exactly once.
    #[test]
    fn ranges_plus_steals_cover_rows_exactly_once(
        total in 0u64..30_000,
        workers in 1usize..7,
        min_morsel in 1u64..1500,
        steal in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let d = MorselDispenser::new(total, workers, min_morsel, min_morsel * 8, steal);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut live: Vec<usize> = (0..workers).collect();
        let mut claimed: Vec<Morsel> = Vec::new();
        while !live.is_empty() {
            let pick = rng.random_range(0..live.len());
            let w = live[pick];
            match d.claim(w) {
                Some(m) => claimed.push(m),
                None => {
                    live.swap_remove(pick);
                }
            }
        }
        let claimed_rows: u64 = claimed.iter().map(|m| m.tuples()).sum();
        if steal {
            prop_assert_eq!(claimed_rows, total);
            assert_exact_coverage(claimed, total);
        } else {
            // Without stealing each worker drains only its own static
            // partition — still exactly once, still everything.
            prop_assert_eq!(claimed_rows, total);
            assert_exact_coverage(claimed, total);
        }
    }
}

/// A backend that simulates skewed per-morsel cost: morsels whose rows lie
/// in the hot region sleep, everything else is free. Implements the real
/// `PipelineBackend` seam so the test goes through `FunctionHandle::load`
/// exactly like the engine's worker loop.
struct SkewedBackend {
    hot_end: u64,
    delay: Duration,
}

impl PipelineBackend for SkewedBackend {
    fn call(
        &self,
        args: &[u64],
        _rt: &Registry,
        _frame: &mut Frame,
    ) -> Result<Option<u64>, ExecError> {
        let begin = args[2];
        if begin < self.hot_end {
            std::thread::sleep(self.delay);
        }
        Ok(None)
    }
    fn kind(&self) -> ExecMode {
        ExecMode::Bytecode
    }
}

#[test]
fn slow_backend_on_one_worker_is_rescued_by_stealing() {
    const TOTAL: u64 = 40_000;
    const WORKERS: usize = 4;
    // The hot quarter is exactly worker 0's initial partition: with the
    // static single-cursor-free partitions and no stealing, worker 0 would
    // serialize the tail.
    let hot_end = TOTAL / WORKERS as u64;
    let d = MorselDispenser::new(TOTAL, WORKERS, 256, 1024, true);
    assert_eq!(d.initial_partition(0).end, hot_end);
    let progress = PipelineProgress::new(WORKERS);
    let handle =
        FunctionHandle::new(Arc::new(SkewedBackend { hot_end, delay: Duration::from_micros(300) }));
    let claimed: Mutex<Vec<Morsel>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for tid in 0..WORKERS {
            let d = &d;
            let progress = &progress;
            let handle = &handle;
            let claimed = &claimed;
            scope.spawn(move || {
                let rt = Registry::new();
                let mut frame = Frame::new();
                while let Some(m) = d.claim(tid) {
                    let backend = handle.load();
                    backend.call(&[0, 0, m.begin, m.end], &rt, &mut frame).unwrap();
                    progress.record(tid, m.tuples());
                    claimed.lock().push(m);
                }
            });
        }
    });

    // Every row ran exactly once, steals happened, and the slow region was
    // redistributed: worker 0 did *not* have to grind through its whole
    // partition alone (the fast workers finished their cold partitions and
    // stole the hot tail long before worker 0 could).
    assert_exact_coverage(claimed.into_inner(), TOTAL);
    assert!(d.steals() >= 1, "skewed pipeline must trigger at least one steal");
    let w0 = progress.worker(0).tuples();
    assert!(
        w0 < hot_end,
        "worker 0 processed its entire hot partition ({w0} rows) — stealing never rebalanced it"
    );
    let others: u64 = (1..WORKERS).map(|w| progress.worker(w).tuples()).sum();
    assert_eq!(w0 + others, TOTAL);
}

#[test]
fn uniform_threaded_drain_covers_exactly_once() {
    // No artificial skew, just real thread interleavings racing claim
    // against steal on a small-morsel dispenser.
    const TOTAL: u64 = 100_000;
    const WORKERS: usize = 8;
    let d = MorselDispenser::new(TOTAL, WORKERS, 16, 64, true);
    let claimed: Mutex<Vec<Morsel>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for tid in 0..WORKERS {
            let d = &d;
            let claimed = &claimed;
            scope.spawn(move || {
                let mut local = Vec::new();
                while let Some(m) = d.claim(tid) {
                    local.push(m);
                }
                claimed.lock().extend(local);
            });
        }
    });
    assert_exact_coverage(claimed.into_inner(), TOTAL);
    assert_eq!(d.remaining(), 0);
}
