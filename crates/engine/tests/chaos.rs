//! Chaos suite: deterministic fault schedules driven through the
//! differential harness. Whatever `aqe_fault` injects — failed compiles
//! at any tier, bytecode translation errors, panicking background
//! compile jobs, panicking morsel workers — an execution must end in
//! exactly one of two ways: a bit-identical result produced by a
//! degraded ladder, or a *typed* error (`ExecError::Internal`). Never an
//! abort, never a wrong answer, never a poisoned engine.

use aqe_engine::exec::{ExecMode, ExecOptions};
use aqe_engine::plan::{AggFunc, AggSpec, ArithOp, CmpOp, PExpr, PlanNode};
use aqe_engine::sched::QUARANTINE_SKIPS;
use aqe_engine::session::Engine;
use aqe_storage::{tpch, Catalog};
use aqe_vm::interp::ExecError;
use std::sync::Mutex;

/// The fault schedule is process-global: every test that arms one holds
/// this lock for its whole body.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Injected panics are expected and contained; keep them out of the
/// test log so a real panic stays visible. Installed once.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected panic"));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn all_modes() -> [ExecMode; 7] {
    [
        ExecMode::NaiveIr,
        ExecMode::Bytecode,
        ExecMode::Unoptimized,
        ExecMode::Optimized,
        ExecMode::Native,
        ExecMode::Simd,
        ExecMode::Adaptive,
    ]
}

/// A Q6-like single-group aggregation: selective filter, checked
/// arithmetic, every tier has a lowering for it.
fn q6_plan() -> PlanNode {
    PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6],
            filter: Some(PExpr::and(
                PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::ConstI(2400)),
                PExpr::cmp(CmpOp::Le, false, PExpr::Col(2), PExpr::ConstI(7)),
            )),
        }),
        group_by: vec![],
        aggs: vec![AggSpec {
            func: AggFunc::SumI,
            arg: Some(PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(1), PExpr::Col(2))),
        }],
    }
}

fn run_once(
    cat: &Catalog,
    plan: &PlanNode,
    mode: ExecMode,
    threads: usize,
) -> Result<(Vec<u64>, aqe_engine::exec::Report), ExecError> {
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(plan, vec![]);
    let opts = ExecOptions { mode, threads, cache_results: false, ..Default::default() };
    session.execute_with(&prepared, &opts).map(|(res, report)| (res.rows, report))
}

/// Oracle rows computed with no faults armed.
fn oracle(cat: &Catalog, plan: &PlanNode) -> Vec<u64> {
    assert!(!aqe_fault::armed(), "oracle must run clean");
    run_once(cat, plan, ExecMode::Bytecode, 1).expect("clean oracle run").0
}

/// Every Native and SIMD compile fails, including the W^X map: all
/// seven modes still answer, bit-identical, through degraded ladders.
#[test]
fn forced_compile_failures_degrade_not_error() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let cat = tpch::generate(0.01);
    let plan = q6_plan();
    let expect = oracle(&cat, &plan);

    let _armed = aqe_fault::arm("native_compile=err,simd_compile=err,wx_map=err", 1).unwrap();
    for mode in all_modes() {
        for threads in [1, 4] {
            let (rows, report) = run_once(&cat, &plan, mode, threads)
                .unwrap_or_else(|e| panic!("{mode:?}/{threads} must degrade, got {e}"));
            assert_eq!(rows, expect, "{mode:?}/{threads} degraded result mismatch");
            // The pinned top tiers must have recorded their fall — when
            // the native emitter is live at all (otherwise the modes
            // alias downward and nothing failed).
            if aqe_jit::native::enabled() && matches!(mode, ExecMode::Native | ExecMode::Simd) {
                assert!(report.degraded > 0, "{mode:?}/{threads} should count its degradation");
            }
        }
    }
}

/// A broken tier is quarantined: after the first failure, the next
/// `QUARANTINE_SKIPS` executions skip the compile entirely, then a probe
/// is allowed — and once the fault clears, the probe restores the tier.
#[test]
fn quarantine_skips_broken_tier_then_probe_recovers() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    if !aqe_jit::native::enabled() {
        return; // Native aliases downward: nothing to quarantine.
    }
    let cat = tpch::generate(0.005);
    let plan = q6_plan();
    let expect = oracle(&cat, &plan);

    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&plan, vec![]);
    let opts = ExecOptions {
        mode: ExecMode::Native,
        threads: 2,
        cache_results: false,
        ..Default::default()
    };

    let armed = aqe_fault::arm("native_compile=err", 1).unwrap();

    // First execution: the compile is attempted, fails, degrades.
    let (res, report) = session.execute_with(&prepared, &opts).unwrap();
    assert_eq!(res.rows, expect);
    assert!(report.degraded > 0, "first run attempts the compile and records the fall");
    assert_eq!(report.quarantine_skips, 0, "nothing was quarantined yet");
    // One entry per pipeline whose native compile was attempted.
    assert!(engine.quarantine_active() >= 1, "the broken tier is now quarantined");

    // The next QUARANTINE_SKIPS executions never reach the compiler:
    // they spend the skip budget instead of repeating the failure.
    let fired_before = aqe_fault::fired("native_compile");
    for i in 0..QUARANTINE_SKIPS {
        let (res, report) = session.execute_with(&prepared, &opts).unwrap();
        assert_eq!(res.rows, expect, "skip run {i}");
        assert_eq!(report.degraded, 0, "skip run {i} attempts no compile");
        assert!(report.quarantine_skips > 0, "skip run {i} is served from quarantine");
    }
    assert_eq!(
        aqe_fault::fired("native_compile") - fired_before,
        0,
        "the quarantined tier must not have been compiled during the skip window"
    );

    // The fault clears; the skip budget is spent; the probe recompiles
    // and the tier comes back.
    drop(armed);
    let (res, report) = session.execute_with(&prepared, &opts).unwrap();
    assert_eq!(res.rows, expect);
    assert_eq!(report.degraded, 0, "the probe compile succeeds");
    assert_eq!(engine.quarantine_active(), 0, "success clears the quarantine entry");

    // And the recovered backend serves warm from the retained slot.
    let (res, report) = session.execute_with(&prepared, &opts).unwrap();
    assert_eq!(res.rows, expect);
    assert_eq!(report.quarantine_skips, 0);
    assert_eq!(report.degraded, 0);
}

/// Morsel workers that panic mid-query are contained at the thread
/// boundary: the execution returns `ExecError::Internal`, never aborts,
/// and clean runs stay bit-identical.
#[test]
fn worker_panics_are_contained_as_typed_errors() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let cat = tpch::generate(0.01);
    let plan = q6_plan();
    let expect = oracle(&cat, &plan);

    for seed in [3u64, 11, 29] {
        let _armed = aqe_fault::arm("worker=panic:0.2", seed).unwrap();
        for _ in 0..6 {
            match run_once(&cat, &plan, ExecMode::Bytecode, 4) {
                Ok((rows, _)) => assert_eq!(rows, expect, "clean run under chaos (seed {seed})"),
                Err(ExecError::Internal { site }) => {
                    assert!(site.contains("worker"), "panic surfaced from {site}")
                }
                Err(other) => panic!("expected Internal, got {other} (seed {seed})"),
            }
        }
    }
}

/// An injected worker *error* (not panic) takes the same typed path,
/// and the very next execution on the same warm session succeeds —
/// prepared state and retained backends survive the failure.
#[test]
fn worker_error_fails_one_query_then_session_recovers() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let cat = tpch::generate(0.005);
    let plan = q6_plan();
    let expect = oracle(&cat, &plan);

    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&plan, vec![]);
    let opts = ExecOptions {
        mode: ExecMode::Optimized,
        threads: 2,
        cache_results: false,
        ..Default::default()
    };

    let _armed = aqe_fault::arm("worker=err:1", 1).unwrap();
    match session.execute_with(&prepared, &opts) {
        Err(ExecError::Internal { site }) => assert!(site.contains("injected fault at worker")),
        other => panic!("first run must fail with Internal, got {other:?}"),
    }
    // First-N spent: the same statement runs clean, warm, and correct.
    let (res, report) = session.execute_with(&prepared, &opts).unwrap();
    assert_eq!(res.rows, expect);
    assert_eq!(report.degraded, 0);
}

/// Randomized composite schedules — failing compiles at every tier,
/// panicking background compile jobs, rare worker panics — across every
/// mode and several seeds. The contract: a correct result or a typed
/// error. Nothing else.
#[test]
fn randomized_fault_schedules_never_abort_or_corrupt() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let cat = tpch::generate(0.01);
    let plan = q6_plan();
    let expect = oracle(&cat, &plan);

    const SCHEDULE: &str = "native_compile=err:0.5,simd_compile=err:0.5,wx_map=err:0.3,\
                            bc_translate=err:0.3,compile_job=panic:0.3,worker=panic:0.02";
    for seed in [1u64, 7, 42] {
        let _armed = aqe_fault::arm(SCHEDULE, seed).unwrap();
        for mode in all_modes() {
            for threads in [1, 4] {
                match run_once(&cat, &plan, mode, threads) {
                    Ok((rows, _)) => {
                        assert_eq!(rows, expect, "{mode:?}/{threads} seed {seed}");
                    }
                    Err(ExecError::Internal { .. }) => {} // contained worker panic
                    Err(other) => {
                        panic!("{mode:?}/{threads} seed {seed}: untyped escape: {other}")
                    }
                }
            }
        }
    }
}

/// Adaptive execution under panicking background compile jobs: the
/// controller's upgrade attempts die in their threads, the query
/// completes on whatever tier it holds, and the answer stays exact.
#[test]
fn adaptive_survives_panicking_compile_jobs() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();
    let cat = tpch::generate(0.05);
    let plan = q6_plan();
    let expect = oracle(&cat, &plan);

    let _armed = aqe_fault::arm("compile_job=panic:0.5", 7).unwrap();
    // Zeroed compile costs make upgrading irresistible, so the
    // controller keeps launching (and losing) compile jobs all query.
    let mut opts = ExecOptions {
        mode: ExecMode::Adaptive,
        threads: 2,
        cache_results: false,
        first_eval: std::time::Duration::from_micros(50),
        min_morsel: 256,
        ..Default::default()
    };
    opts.model.unopt_base_s = 0.0;
    opts.model.unopt_per_instr_s = 0.0;
    opts.model.opt_base_s = 0.0;
    opts.model.opt_per_instr_s = 0.0;
    opts.model.speedup_opt = 100.0;
    opts.model.speedup_unopt = 50.0;

    for _ in 0..6 {
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let prepared = session.prepare(&plan, vec![]);
        let (res, _report) = session.execute_with(&prepared, &opts).expect("adaptive completes");
        assert_eq!(res.rows, expect);
    }
}
