//! End-to-end engine tests: every execution mode — naive IR interpretation,
//! bytecode, unoptimized, optimized, native machine code, SIMD scan
//! kernels, adaptive — must produce identical results, at 1 and 4 threads,
//! matching a host-computed reference. On platforms without the native
//! emitter (or with `AQE_NATIVE=0` / `AQE_SIMD=0`) the top modes alias
//! downward and the same assertions hold through the alias.

use aqe_engine::exec::{ExecMode, ExecOptions, ParamValue};
use aqe_engine::plan::{
    decompose, AggFunc, AggSpec, ArithOp, CmpOp, FieldTy, JoinKind, PExpr, PlanNode, SortKey,
};
use aqe_engine::session::Engine;
use aqe_storage::{tpch, Catalog, Column, DataType, Table};

fn all_modes() -> [ExecMode; 7] {
    [
        ExecMode::NaiveIr,
        ExecMode::Bytecode,
        ExecMode::Unoptimized,
        ExecMode::Optimized,
        ExecMode::Native,
        ExecMode::Simd,
        ExecMode::Adaptive,
    ]
}

fn run(cat: &Catalog, plan: &PlanNode, mode: ExecMode, threads: usize) -> Vec<u64> {
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(plan, vec![]);
    let opts = ExecOptions { mode, threads, ..Default::default() };
    let (res, _report) = session.execute_with(&prepared, &opts).expect("query must succeed");
    res.rows
}

/// Sorted-row comparison for unordered outputs.
fn normalized(mut rows: Vec<u64>, width: usize) -> Vec<Vec<u64>> {
    if width == 0 {
        return vec![];
    }
    let mut out: Vec<Vec<u64>> = rows.chunks_exact(width).map(|r| r.to_vec()).collect();
    out.sort();
    rows.clear();
    out
}

#[test]
fn q6_like_sum_matches_reference_in_all_modes() {
    let cat = tpch::generate(0.01);
    let li = cat.get("lineitem").unwrap();
    // Reference: sum(extprice * discount) where qty < 24 and 5 <= disc <= 7
    let (qty, ext, disc) = (
        li.column_by_name("l_quantity").unwrap(),
        li.column_by_name("l_extendedprice").unwrap(),
        li.column_by_name("l_discount").unwrap(),
    );
    let mut expect: i64 = 0;
    for r in 0..li.row_count() {
        let (q, e, d) = (qty.get_u64(r) as i64, ext.get_u64(r) as i64, disc.get_u64(r) as i64);
        if q < 2400 && (5..=7).contains(&d) {
            expect += e * d;
        }
    }

    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6], // qty, extprice, discount
            filter: Some(PExpr::and(
                PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::ConstI(2400)),
                PExpr::and(
                    PExpr::cmp(CmpOp::Ge, false, PExpr::Col(2), PExpr::ConstI(5)),
                    PExpr::cmp(CmpOp::Le, false, PExpr::Col(2), PExpr::ConstI(7)),
                ),
            )),
        }),
        group_by: vec![],
        aggs: vec![AggSpec {
            func: AggFunc::SumI,
            arg: Some(PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(1), PExpr::Col(2))),
        }],
    };

    for mode in all_modes() {
        for threads in [1, 4] {
            let rows = run(&cat, &plan, mode, threads);
            assert_eq!(rows.len(), 1, "{mode:?}/{threads}");
            assert_eq!(rows[0] as i64, expect, "{mode:?}/{threads} sum mismatch");
        }
    }
}

#[test]
fn group_by_agg_matches_reference() {
    let cat = tpch::generate(0.01);
    let li = cat.get("lineitem").unwrap();
    let (rf, qty) =
        (li.column_by_name("l_returnflag").unwrap(), li.column_by_name("l_quantity").unwrap());
    use std::collections::HashMap;
    let mut expect: HashMap<u64, (i64, i64)> = HashMap::new();
    for r in 0..li.row_count() {
        let e = expect.entry(rf.get_u64(r)).or_default();
        e.0 += qty.get_u64(r) as i64;
        e.1 += 1;
    }

    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![8, 4], // returnflag, quantity
            filter: None,
        }),
        group_by: vec![0],
        aggs: vec![
            AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) },
            AggSpec { func: AggFunc::CountStar, arg: None },
        ],
    };

    let reference = run(&cat, &plan, ExecMode::Bytecode, 1);
    let ref_rows = normalized(reference, 3);
    assert_eq!(ref_rows.len(), expect.len());
    for row in &ref_rows {
        let (sum, cnt) = expect[&row[0]];
        assert_eq!(row[1] as i64, sum);
        assert_eq!(row[2] as i64, cnt);
    }
    for mode in all_modes() {
        for threads in [1, 4] {
            let rows = normalized(run(&cat, &plan, mode, threads), 3);
            assert_eq!(rows, ref_rows, "{mode:?}/{threads}");
        }
    }
}

#[test]
fn hash_join_matches_reference() {
    let cat = tpch::generate(0.01);
    // supplier ⋈ lineitem on suppkey, count matches and sum qty per nation.
    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::HashJoin {
            build: Box::new(PlanNode::Scan {
                table: "supplier".into(),
                cols: vec![0, 3], // suppkey, nationkey
                filter: None,
            }),
            probe: Box::new(PlanNode::Scan {
                table: "lineitem".into(),
                cols: vec![2, 4], // suppkey, quantity
                filter: None,
            }),
            build_keys: vec![0],
            probe_keys: vec![0],
            build_payload: vec![1], // nationkey
            kind: JoinKind::Inner,
        }),
        group_by: vec![2], // nationkey (appended payload)
        aggs: vec![
            AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) },
            AggSpec { func: AggFunc::CountStar, arg: None },
        ],
    };

    // Host reference.
    let li = cat.get("lineitem").unwrap();
    let su = cat.get("supplier").unwrap();
    let nk_of: Vec<i64> = (0..su.row_count())
        .map(|r| su.column_by_name("s_nationkey").unwrap().get_u64(r) as i64)
        .collect();
    use std::collections::HashMap;
    let mut expect: HashMap<u64, (i64, i64)> = HashMap::new();
    let (sk, qty) =
        (li.column_by_name("l_suppkey").unwrap(), li.column_by_name("l_quantity").unwrap());
    for r in 0..li.row_count() {
        let nk = nk_of[sk.get_u64(r) as usize] as u64;
        let e = expect.entry(nk).or_default();
        e.0 += qty.get_u64(r) as i64;
        e.1 += 1;
    }

    for mode in all_modes() {
        for threads in [1, 4] {
            let rows = normalized(run(&cat, &plan, mode, threads), 3);
            assert_eq!(rows.len(), expect.len(), "{mode:?}/{threads}");
            for row in &rows {
                let (sum, cnt) = expect[&row[0]];
                assert_eq!(row[1] as i64, sum, "{mode:?}/{threads}");
                assert_eq!(row[2] as i64, cnt, "{mode:?}/{threads}");
            }
        }
    }
}

#[test]
fn semi_and_anti_join_partition_the_probe_side() {
    let cat = tpch::generate(0.01);
    // Suppliers from nation 3 as the build side; count lineitems whose
    // supplier is / is not in that set.
    let build = PlanNode::Scan {
        table: "supplier".into(),
        cols: vec![0, 3],
        filter: Some(PExpr::cmp(CmpOp::Eq, false, PExpr::Col(1), PExpr::ConstI(3))),
    };
    let mk = |kind: JoinKind| PlanNode::HashAgg {
        input: Box::new(PlanNode::HashJoin {
            build: Box::new(build.clone()),
            probe: Box::new(PlanNode::Scan {
                table: "lineitem".into(),
                cols: vec![2],
                filter: None,
            }),
            build_keys: vec![0],
            probe_keys: vec![0],
            build_payload: vec![],
            kind,
        }),
        group_by: vec![],
        aggs: vec![AggSpec { func: AggFunc::CountStar, arg: None }],
    };
    let total = cat.get("lineitem").unwrap().row_count() as i64;
    for threads in [1, 4] {
        let semi = run(&cat, &mk(JoinKind::Semi), ExecMode::Adaptive, threads);
        let anti = run(&cat, &mk(JoinKind::Anti), ExecMode::Optimized, threads);
        assert_eq!(semi[0] as i64 + anti[0] as i64, total);
        assert!(semi[0] > 0, "some lineitems must match nation-3 suppliers");
    }
}

#[test]
fn sort_with_limit_is_ordered_and_stable_across_modes() {
    let cat = tpch::generate(0.01);
    let plan = PlanNode::Sort {
        input: Box::new(PlanNode::HashAgg {
            input: Box::new(PlanNode::Scan {
                table: "orders".into(),
                cols: vec![1, 3], // custkey, totalprice
                filter: None,
            }),
            group_by: vec![0],
            aggs: vec![AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) }],
        }),
        keys: vec![
            SortKey { field: 1, asc: false, float: false },
            SortKey { field: 0, asc: true, float: false },
        ],
        limit: Some(10),
    };
    let reference = run(&cat, &plan, ExecMode::Bytecode, 1);
    assert_eq!(reference.len(), 20);
    // descending by sum
    for w in reference.chunks_exact(2).collect::<Vec<_>>().windows(2) {
        assert!(w[0][1] as i64 >= w[1][1] as i64);
    }
    for mode in all_modes() {
        for threads in [1, 4] {
            assert_eq!(run(&cat, &plan, mode, threads), reference, "{mode:?}/{threads}");
        }
    }
}

#[test]
fn overflow_in_generated_code_is_reported() {
    let cat = tpch::generate(0.001);
    // sum(extprice * extprice * extprice) overflows i64 quickly.
    let cube = PExpr::arith(
        ArithOp::Mul,
        true,
        false,
        PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(0), PExpr::Col(0)),
        PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(0), PExpr::Col(0)),
    );
    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan { table: "lineitem".into(), cols: vec![5], filter: None }),
        group_by: vec![],
        aggs: vec![AggSpec { func: AggFunc::SumI, arg: Some(cube) }],
    };
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&plan, vec![]);
    for mode in all_modes() {
        let opts = ExecOptions { mode, threads: 2, ..Default::default() };
        let r = session.execute_with(&prepared, &opts);
        assert!(r.is_err(), "{mode:?} must report the overflow");
    }
}

#[test]
fn adaptive_mode_compiles_hot_pipelines_eventually() {
    // Force compilation to look attractive: zero compile-cost model.
    let cat = tpch::generate(0.05);
    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan { table: "lineitem".into(), cols: vec![4], filter: None }),
        group_by: vec![],
        aggs: vec![AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(0)) }],
    };
    let phys = decompose(&cat, &plan, vec![]);
    let mut opts = ExecOptions {
        mode: ExecMode::Adaptive,
        threads: 2,
        trace: true,
        first_eval: std::time::Duration::from_micros(50),
        min_morsel: 256,
        ..Default::default()
    };
    opts.model.unopt_base_s = 0.0;
    opts.model.unopt_per_instr_s = 0.0;
    opts.model.opt_base_s = 0.0;
    opts.model.opt_per_instr_s = 0.0;
    opts.model.speedup_opt = 100.0; // make compilation irresistible
    opts.model.speedup_unopt = 50.0;
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys);
    let (res, report) = session.execute_with(&prepared, &opts).unwrap();
    assert_eq!(res.row_count(), 1);
    assert!(
        report.background_compiles > 0,
        "adaptive execution should have compiled at least one pipeline"
    );
    // The trace must contain morsels in more than one execution mode.
    let modes: std::collections::HashSet<u8> =
        report.trace.iter().filter(|e| e.kind != 255).map(|e| e.kind).collect();
    assert!(!modes.is_empty());
}

/// A table built to stress the SIMD scan kernels: NaN lanes (the repo's
/// NULL stand-in for floats), int32 boundary constants, i64 extremes, and
/// a row count that is not a multiple of any lane width (nor of the
/// 64-row mask block). Every mode — kernel or scalar — must agree with a
/// host-computed reference exactly.
#[test]
fn simd_kernel_differential_nan_boundaries_odd_rows() {
    let rows = 64 * 16 + 37; // partial tail block, odd length
    let a: Vec<i32> = (0..rows)
        .map(|i| match i % 11 {
            0 => i32::MIN,
            1 => i32::MAX,
            _ => (i as i32 - 500) * 3,
        })
        .collect();
    let b: Vec<f64> =
        (0..rows).map(|i| if i % 9 == 0 { f64::NAN } else { (i as f64 - 500.0) * 0.25 }).collect();
    let c: Vec<i64> = (0..rows)
        .map(|i| match i % 7 {
            0 => i64::MIN,
            1 => i64::MAX,
            _ => (i as i64 - 500) * 1_000_000_007,
        })
        .collect();
    let mut cat = Catalog::new();
    cat.add(Table::new(
        "t",
        vec![
            ("a", DataType::Int32, Column::I32(a.clone())),
            ("b", DataType::Float64, Column::F64(b.clone())),
            ("c", DataType::Int64, Column::I64(c.clone())),
        ],
    ));

    // a < 1000 AND a >= i32::MIN (boundary, always true) AND b < 0.5
    // (NaN rows must drop) AND c >= -4e18 — all four vectorizable.
    let pred = PExpr::and(
        PExpr::and(
            PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::ConstI(1000)),
            PExpr::cmp(CmpOp::Ge, false, PExpr::Col(0), PExpr::ConstI(i32::MIN as i64)),
        ),
        PExpr::and(
            PExpr::cmp(CmpOp::Lt, true, PExpr::Col(1), PExpr::ConstF(0.5)),
            PExpr::cmp(CmpOp::Ge, false, PExpr::Col(2), PExpr::ConstI(-4_000_000_000_000_000_000)),
        ),
    );
    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "t".into(),
            cols: vec![0, 1, 2],
            filter: Some(pred),
        }),
        group_by: vec![],
        aggs: vec![
            AggSpec { func: AggFunc::CountStar, arg: None },
            AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(0)) },
            AggSpec { func: AggFunc::MinF, arg: Some(PExpr::Col(1)) },
        ],
    };

    // Host reference with the generated code's exact widening semantics.
    let (mut count, mut sum_a, mut min_b) = (0u64, 0i64, f64::INFINITY);
    for i in 0..rows {
        let pass = (a[i] as i64) < 1000
            && (a[i] as i64) >= i32::MIN as i64
            && b[i] < 0.5
            && c[i] >= -4_000_000_000_000_000_000;
        if pass {
            count += 1;
            sum_a += a[i] as i64;
            min_b = min_b.min(b[i]);
        }
    }
    assert!(count > 0 && (count as usize) < rows, "predicate must be selective");
    let reference = vec![count, sum_a as u64, min_b.to_bits()];

    for mode in all_modes() {
        for threads in [1, 4] {
            assert_eq!(run(&cat, &plan, mode, threads), reference, "{mode:?}/{threads}");
        }
    }
}

/// The parameterized twin of the differential above: the same
/// NaN/extreme/odd-tail table, but every filter constant is a bind
/// variable. One prepared query per mode is swept through bindings that
/// include lane-domain escapes (an `i32` column compared against
/// `i32::MAX + 1`), a NaN float parameter, negative zero, and the `i64`
/// extremes. All seven modes must stay bit-identical to the naive-IR
/// oracle on every binding — in particular `ExecMode::Simd`, whose
/// retained kernel skeleton re-resolves (and, out of domain, drops)
/// conjuncts per binding instead of baking the first value in.
#[test]
fn bound_q6_differential_is_bit_identical_across_all_modes() {
    let rows = 64 * 16 + 37;
    let a: Vec<i32> = (0..rows)
        .map(|i| match i % 11 {
            0 => i32::MIN,
            1 => i32::MAX,
            _ => (i as i32 - 500) * 3,
        })
        .collect();
    let b: Vec<f64> =
        (0..rows).map(|i| if i % 9 == 0 { f64::NAN } else { (i as f64 - 500.0) * 0.25 }).collect();
    let c: Vec<i64> = (0..rows)
        .map(|i| match i % 7 {
            0 => i64::MIN,
            1 => i64::MAX,
            _ => (i as i64 - 500) * 1_000_000_007,
        })
        .collect();
    let mut cat = Catalog::new();
    cat.add(Table::new(
        "t",
        vec![
            ("a", DataType::Int32, Column::I32(a.clone())),
            ("b", DataType::Float64, Column::F64(b.clone())),
            ("c", DataType::Int64, Column::I64(c.clone())),
        ],
    ));

    // a < $1 AND b < $2 AND c >= $3 — the Q6 shape with every constant
    // generalized.
    let pred = PExpr::and(
        PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::Param { idx: 0, ty: FieldTy::I64 }),
        PExpr::and(
            PExpr::cmp(CmpOp::Lt, true, PExpr::Col(1), PExpr::Param { idx: 1, ty: FieldTy::F64 }),
            PExpr::cmp(CmpOp::Ge, false, PExpr::Col(2), PExpr::Param { idx: 2, ty: FieldTy::I64 }),
        ),
    );
    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "t".into(),
            cols: vec![0, 1, 2],
            filter: Some(pred),
        }),
        group_by: vec![],
        aggs: vec![
            AggSpec { func: AggFunc::CountStar, arg: None },
            AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(0)) },
            AggSpec { func: AggFunc::MinF, arg: Some(PExpr::Col(1)) },
        ],
    };

    // Bindings chosen per the boundary corpus: in-domain, i32 lane-domain
    // escapes in both directions (the SIMD kernel must drop the conjunct,
    // not wrap it), a NaN parameter (selects nothing — IEEE, not a crash),
    // negative zero, and the i64 extremes.
    let bindings: Vec<[ParamValue; 3]> = vec![
        [ParamValue::I64(1000), ParamValue::F64(0.5), ParamValue::I64(-4_000_000_000_000_000_000)],
        [
            ParamValue::I64(i32::MAX as i64 + 1),
            ParamValue::F64(f64::INFINITY),
            ParamValue::I64(i64::MIN),
        ],
        [ParamValue::I64(i32::MIN as i64 - 1), ParamValue::F64(1e18), ParamValue::I64(i64::MIN)],
        [ParamValue::I64(0), ParamValue::F64(-0.0), ParamValue::I64(0)],
        [ParamValue::I64(i64::MAX), ParamValue::F64(f64::NAN), ParamValue::I64(i64::MAX)],
        [ParamValue::I64(-1500), ParamValue::F64(f64::MIN_POSITIVE), ParamValue::I64(0)],
    ];

    // Host reference per binding, with the generated code's exact widening
    // semantics. Bindings that select rows are checked against it; the
    // empty ones are still pinned mode-to-mode below.
    let host: Vec<Option<Vec<u64>>> = bindings
        .iter()
        .map(|p| {
            let (ParamValue::I64(p0), ParamValue::F64(p1), ParamValue::I64(p2)) =
                (&p[0], &p[1], &p[2])
            else {
                unreachable!()
            };
            let (mut count, mut sum_a, mut min_b) = (0u64, 0i64, f64::INFINITY);
            for i in 0..rows {
                if (a[i] as i64) < *p0 && b[i] < *p1 && c[i] >= *p2 {
                    count += 1;
                    sum_a += a[i] as i64;
                    min_b = min_b.min(b[i]);
                }
            }
            (count > 0).then(|| vec![count, sum_a as u64, min_b.to_bits()])
        })
        .collect();
    assert!(host.iter().filter(|h| h.is_some()).count() >= 3, "corpus must select rows somewhere");
    assert!(host.iter().any(|h| h.is_none()), "corpus must include an empty binding");

    // Oracle: the naive IR walker, one warm prepared query over all
    // bindings in sequence (a stale re-resolution would show up here).
    let oracle: Vec<Vec<u64>> = {
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let prepared = session.prepare(&plan, vec![]);
        let opts = ExecOptions {
            mode: ExecMode::NaiveIr,
            threads: 1,
            cache_results: false,
            ..Default::default()
        };
        bindings
            .iter()
            .map(|p| session.execute_bound_with(&prepared, p, &opts).expect("oracle").0.rows)
            .collect()
    };
    for (bi, h) in host.iter().enumerate() {
        if let Some(h) = h {
            assert_eq!(&oracle[bi], h, "oracle disagrees with host on binding {bi}");
        }
    }

    for mode in all_modes() {
        for threads in [1, 4] {
            let engine = Engine::new(cat.clone());
            let session = engine.session();
            let prepared = session.prepare(&plan, vec![]);
            let opts = ExecOptions { mode, threads, cache_results: false, ..Default::default() };
            for (bi, p) in bindings.iter().enumerate() {
                let (res, _) = session.execute_bound_with(&prepared, p, &opts).expect("bound run");
                assert_eq!(res.rows, oracle[bi], "{mode:?}/{threads} binding {bi}");
            }
        }
    }
}

/// When the SIMD gate is open, `ExecMode::Simd` on a vectorizable scan
/// must genuinely execute through the kernel backend (trace kind 5), not
/// silently alias to the scalar native tier — and the adaptive controller
/// must be *able* to pick it: with compile costs zeroed and an enormous
/// modelled speedup, the ladder's top backend for this scan is the kernel.
#[test]
fn simd_mode_and_adaptive_ceiling_reach_the_kernel() {
    if !aqe_engine::simd::enabled() {
        return; // AQE_SIMD=0: the mode aliases by design
    }
    let cat = tpch::generate(0.02);
    let plan = PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5],
            filter: Some(PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::ConstI(2400))),
        }),
        group_by: vec![],
        aggs: vec![AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) }],
    };
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&plan, vec![]);

    // Pinned Simd mode: the scan pipeline's morsels trace as kind 5.
    let opts = ExecOptions { mode: ExecMode::Simd, threads: 2, trace: true, ..Default::default() };
    let (_, report) = session.execute_with(&prepared, &opts).unwrap();
    assert!(
        report.trace.iter().any(|e| e.kind == 5),
        "pinned Simd mode must run morsels through the kernel backend"
    );

    // Adaptive: make upgrading irresistible and verify the controller
    // climbs all the way to the kernel tier on this scan.
    let mut opts = ExecOptions {
        mode: ExecMode::Adaptive,
        threads: 2,
        trace: true,
        first_eval: std::time::Duration::from_micros(50),
        min_morsel: 256,
        ..Default::default()
    };
    opts.model.unopt_base_s = 0.0;
    opts.model.unopt_per_instr_s = 0.0;
    opts.model.opt_base_s = 0.0;
    opts.model.opt_per_instr_s = 0.0;
    opts.model.native_base_s = 0.0;
    opts.model.native_per_instr_s = 0.0;
    opts.model.simd_base_s = 0.0;
    opts.model.simd_per_instr_s = 0.0;
    opts.model.speedup_simd = 1000.0;
    // The climb races background compilation against a short scan, and a
    // run that settles below the kernel retains that level — so each
    // attempt gets a fresh engine and redoes the whole climb. One of a
    // handful of attempts must trace through the kernel.
    let mut reached = false;
    for _ in 0..12 {
        let engine2 = Engine::new(cat.clone());
        let session2 = engine2.session();
        let prepared2 = session2.prepare(&plan, vec![]);
        let (_, report2) = session2.execute_with(&prepared2, &opts).unwrap();
        if report2.trace.iter().any(|e| e.kind == 5) {
            reached = true;
            break;
        }
    }
    assert!(reached, "adaptive controller should reach the SIMD tier on a hot vectorizable scan");
}
