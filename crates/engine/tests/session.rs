//! Tests for the long-lived `Engine` / `Session` / `PreparedQuery` API:
//!
//! * a warm prepared-query re-execution skips codegen and bytecode
//!   translation and starts at the `ExecLevel` a prior run reached;
//! * a result-cache hit returns identical `ResultRows` without running the
//!   morsel loop;
//! * a catalog mutation bumps the version and invalidates both the cached
//!   result and the retained code;
//! * a second query on the same engine decides with a calibrated
//!   (non-default) `CostModel` seeded from the `CalibrationStore`;
//! * setup failures (bad module, wrong engine) surface as `ExecError`
//!   values, and the deprecated one-shot shims still work.

use aqe_engine::exec::{ExecMode, ExecOptions, ParamValue};
use aqe_engine::plan::{
    decompose, AggFunc, AggSpec, ArithOp, CmpOp, FieldTy, PExpr, PhysicalPlan, PlanNode,
};
use aqe_engine::sched::{CostModel, ExecLevel};
use aqe_engine::session::Engine;
use aqe_storage::{tpch, Catalog, Column, DataType, Table};
use aqe_vm::interp::ExecError;
use std::time::Duration;

/// A wide aggregation over lineitem: expensive enough per tuple that the
/// Fig. 7 extrapolation (with the irresistible model below) reliably
/// compiles, and deterministic in its single output row.
fn wide_plan(aggs: usize) -> PlanNode {
    let specs = (0..aggs)
        .map(|k| AggSpec {
            func: AggFunc::SumI,
            arg: Some(PExpr::arith(
                ArithOp::Add,
                true,
                false,
                PExpr::arith(
                    ArithOp::Mul,
                    true,
                    false,
                    PExpr::Col(k % 3),
                    PExpr::ConstI(k as i64 + 1),
                ),
                PExpr::Col((k + 1) % 3),
            )),
        })
        .collect();
    PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6],
            filter: None,
        }),
        group_by: vec![],
        aggs: specs,
    }
}

/// Options that make the compile decision irresistible and immediate.
fn eager_adaptive(threads: usize) -> ExecOptions {
    let mut opts = ExecOptions {
        mode: ExecMode::Adaptive,
        threads,
        min_morsel: 256,
        first_eval: Duration::from_micros(50),
        cache_results: false,
        ..Default::default()
    };
    opts.model.unopt_base_s = 0.0;
    opts.model.unopt_per_instr_s = 0.0;
    opts.model.opt_base_s = 0.0;
    opts.model.opt_per_instr_s = 0.0;
    opts.model.speedup_unopt = 50.0;
    opts.model.speedup_opt = 100.0;
    opts
}

/// Adaptive options with the *default* cost model (runs whose feedback the
/// engine's store absorbs — fabricated models are deliberately not
/// absorbed) and a prompt first evaluation. Paired with a large
/// `wide_plan`, the default-model extrapolation reliably chooses to
/// compile: tens of bytecode instructions per tuple over ~100k rows dwarf
/// a few ms of modelled compile time at any plausible machine speed.
fn default_adaptive(threads: usize) -> ExecOptions {
    ExecOptions {
        mode: ExecMode::Adaptive,
        threads,
        min_morsel: 256,
        first_eval: Duration::from_micros(50),
        cache_results: false,
        ..Default::default()
    }
}

fn physical(cat: &Catalog, plan: &PlanNode) -> PhysicalPlan {
    decompose(cat, plan, vec![])
}

#[test]
fn warm_reexecution_skips_codegen_and_starts_at_reached_level() {
    let cat = tpch::generate(0.02);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&wide_plan(40), vec![]);
    let opts = eager_adaptive(2);

    let (rows1, cold) = session.execute_with(&prepared, &opts).expect("cold run");
    assert!(cold.codegen > Duration::ZERO, "cold run pays codegen");
    assert!(cold.bc_translate > Duration::ZERO, "cold run pays translation");
    assert!(cold.background_compiles >= 1, "the eager model must force a compile");
    assert!(cold.sched.iter().all(|s| s.start_level == ExecLevel::Interpreted));

    // What the first run reached is what the second starts from.
    let levels = prepared.levels();
    assert!(
        levels.iter().any(|&l| l > ExecLevel::Interpreted),
        "at least one pipeline must have been upgraded: {levels:?}"
    );

    let (rows2, warm) = session.execute_with(&prepared, &opts).expect("warm run");
    assert_eq!(warm.codegen, Duration::ZERO, "warm run must not regenerate IR");
    assert_eq!(warm.bc_translate, Duration::ZERO, "warm run must not re-translate");
    assert!(!warm.result_cache_hit, "caching was disabled; this really executed");
    let starts: Vec<ExecLevel> = warm.sched.iter().map(|s| s.start_level).collect();
    assert_eq!(starts, levels, "warm run starts at the previously reached levels");
    assert_eq!(rows1.rows, rows2.rows, "warm reuse must not change the answer");

    // The cold/warm split is observable: the first run built state under
    // the cold-compile latch, the second reused it latch-free.
    assert!(cold.cold_build, "the first run builds the compiled state");
    assert!(!warm.cold_build, "the warm run must not");
    assert_eq!(cold.snapshot_version, warm.snapshot_version, "same catalog epoch");
    let stats = engine.concurrency();
    assert_eq!(stats.cold_builds, 1);
    assert_eq!(stats.warm_executions, 1);
    assert_eq!(stats.executions_started, 2);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn cache_stats_surface_counts_behavior_under_load() {
    let cat = tpch::generate(0.005);
    let engine = Engine::new(cat);
    let session = engine.session();
    let prepared = session.prepare(&wide_plan(4), vec![]);
    let opts = ExecOptions { threads: 1, ..Default::default() };

    session.execute_with(&prepared, &opts).expect("miss + insert");
    session.execute_with(&prepared, &opts).expect("hit");
    session.execute_with(&prepared, &opts).expect("hit");

    let s = engine.cache_stats();
    assert_eq!(s.entries, 1);
    assert_eq!(s.insertions, 1);
    assert_eq!(s.misses, 1, "only the first submission misses");
    assert_eq!(s.hits, 2);
    assert!(s.bytes_used > 0 && s.bytes_used <= s.budget_bytes);
    assert!(s.shards > 1, "the engine's cache is sharded");

    // Invalidation shows up as occupancy, not as lost counters.
    engine.with_catalog_mut(|c| {
        c.add(Table::new("tiny", vec![("x", DataType::Int64, Column::I64(vec![1]))]))
    });
    let after = engine.cache_stats();
    assert_eq!(after.entries, 0);
    assert_eq!(after.bytes_used, 0);
    assert_eq!(after.hits, 2, "counters are engine-lifetime");
}

#[test]
fn result_cache_hit_skips_the_morsel_loop() {
    let cat = tpch::generate(0.005);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&wide_plan(4), vec![]);

    let opts = ExecOptions { threads: 2, ..Default::default() };
    let (rows1, first) = session.execute_with(&prepared, &opts).expect("first run");
    assert!(!first.result_cache_hit);
    assert!(!first.sched.is_empty(), "the first run executes pipelines");
    assert_eq!(engine.result_cache_len(), 1);

    let (rows2, second) = session.execute_with(&prepared, &opts).expect("cached run");
    assert!(second.result_cache_hit, "identical re-submission must hit");
    assert!(second.sched.is_empty(), "a cache hit runs no pipeline");
    assert_eq!(second.codegen, Duration::ZERO);
    assert_eq!(rows1.tys, rows2.tys);
    assert_eq!(rows1.rows, rows2.rows, "cache hit must return identical rows");

    // A separately prepared identical plan shares the cache entry: the key
    // is the plan fingerprint, not the statement object.
    let twin = session.prepare(&wide_plan(4), vec![]);
    assert_eq!(twin.fingerprint(), prepared.fingerprint());
    let (_, third) = session.execute_with(&twin, &opts).expect("twin run");
    assert!(third.result_cache_hit, "fingerprint-identical plans share cached results");
}

#[test]
fn catalog_mutation_bumps_version_and_invalidates_caches() {
    let cat = tpch::generate(0.005);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&wide_plan(4), vec![]);
    let opts = ExecOptions { threads: 2, ..Default::default() };

    let v0 = engine.catalog_version();
    let (rows1, _) = session.execute_with(&prepared, &opts).expect("first run");
    assert_eq!(engine.result_cache_len(), 1);

    // An unrelated mutation: the engine cannot know it is unrelated, so
    // everything derived from the old version must go.
    engine.with_catalog_mut(|c| {
        c.add(Table::new("tiny", vec![("x", DataType::Int64, Column::I64(vec![1, 2, 3]))]))
    });
    assert!(engine.catalog_version() > v0, "mutation must bump the version");
    assert_eq!(engine.result_cache_len(), 0, "stale results are purged eagerly");

    let (rows2, after) = session.execute_with(&prepared, &opts).expect("post-mutation run");
    assert!(!after.result_cache_hit, "the old cache entry must not serve the new version");
    assert!(after.codegen > Duration::ZERO, "retained code is stale after a catalog change");
    assert_eq!(rows1.rows, rows2.rows, "the data did not change, only the version");
}

#[test]
fn second_query_on_the_same_engine_is_calibrated() {
    let cat = tpch::generate(0.02);
    let engine = Engine::new(cat.clone());
    let session = engine.session();

    // Query A: a default-model run whose compiles feed measured constants
    // into the engine's calibration store (fabricated models would be
    // refused by the absorb gate).
    let a = session.prepare(&wide_plan(120), vec![]);
    let (_, rep_a) = session.execute_with(&a, &default_adaptive(2)).expect("query A");
    assert!(
        rep_a.calibration.compile_observations >= 1,
        "query A must record at least one measured compile"
    );
    assert!(!rep_a.sched[0].calibrated, "a cold engine has nothing to seed from");
    assert!(engine.calibration().absorbed() >= 1);

    // Query B: a different plan, default options — and still its *first*
    // pipeline decides with a store-seeded, non-default model.
    let b = session.prepare(&wide_plan(12), vec![]);
    let opts = ExecOptions { threads: 2, cache_results: false, ..Default::default() };
    let (_, rep_b) = session.execute_with(&b, &opts).expect("query B");
    assert!(
        rep_b.sched[0].calibrated,
        "query B's first pipeline must start from the engine's calibration store"
    );
    assert_ne!(
        rep_b.sched[0].model,
        CostModel::default(),
        "the seeded model must differ from the defaults"
    );
}

#[test]
fn module_override_queries_bypass_the_result_cache() {
    // A caller-supplied module is only trusted for its own statement: its
    // rows must never be cached under the plan's fingerprint, where an
    // honest prepare of the same plan would pick them up.
    let cat = tpch::generate(0.002);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let phys = physical(&cat, &wide_plan(3));
    let module = aqe_engine::codegen::generate(&phys, &cat);
    let with_module = session.prepare_module(phys.clone(), module);

    let (_, first) = session.execute(&with_module).expect("module run");
    assert!(!first.result_cache_hit);
    assert_eq!(engine.result_cache_len(), 0, "module-override rows must not be cached");
    let (_, again) = session.execute(&with_module).expect("module re-run");
    assert!(!again.result_cache_hit, "…nor served from the cache");

    // The honest prepare of the same plan builds its own cached entry.
    let honest = session.prepare_plan(phys);
    let (_, h1) = session.execute(&honest).expect("honest run");
    assert!(!h1.result_cache_hit);
    assert_eq!(engine.result_cache_len(), 1);
}

#[test]
fn prepared_query_rejects_a_foreign_engine() {
    let cat = tpch::generate(0.001);
    let engine_a = Engine::new(cat.clone());
    let engine_b = Engine::new(cat);
    let prepared = engine_a.session().prepare(&wide_plan(2), vec![]);
    let err = engine_b.session().execute(&prepared).unwrap_err();
    assert!(matches!(err, ExecError::Setup(_)), "got {err:?}");
}

#[test]
fn bad_module_surfaces_as_a_setup_error_not_a_panic() {
    let cat = tpch::generate(0.001);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let phys = physical(&cat, &wide_plan(2));
    // A module whose extern surface cannot be resolved against the
    // engine's runtime registry: pre-PR 3 this was an `.expect()` abort.
    let mut module = aqe_engine::codegen::generate(&phys, &cat);
    module.declare_extern("no_such_runtime_helper", vec![], None);
    let prepared = session.prepare_module(phys, module);
    let err = session.execute(&prepared).unwrap_err();
    assert!(matches!(err, ExecError::Setup(_)), "got {err:?}");
}

#[test]
fn explicit_cost_model_override_beats_the_store_seed() {
    let cat = tpch::generate(0.02);
    let engine = Engine::new(cat.clone());
    let session = engine.session();

    // Warm the store with an honest default-model run.
    let a = session.prepare(&wide_plan(120), vec![]);
    session.execute_with(&a, &default_adaptive(2)).expect("query A");
    assert!(engine.calibration().absorbed() >= 1);

    // A caller-nudged model must be used verbatim, not replaced by the
    // store's seed — nudging constants is the documented way to force (or
    // forbid) compiles deterministically.
    let absorbed_before = engine.calibration().absorbed();
    let b = session.prepare(&wide_plan(12), vec![]);
    let custom = eager_adaptive(2);
    let (_, rep) = session.execute_with(&b, &custom).expect("query B");
    assert!(
        !rep.sched[0].calibrated,
        "an explicit model is an instruction; the store must not override it"
    );
    assert_eq!(rep.sched[0].model, custom.model, "the custom constants are used verbatim");
    assert_eq!(
        engine.calibration().absorbed(),
        absorbed_before,
        "what a fabricated-model run 'learns' must not poison the store"
    );
}

#[test]
fn naive_ir_mode_never_pays_bytecode_translation() {
    let cat = tpch::generate(0.001);
    let engine = Engine::new(cat);
    let session = engine.session();
    let prepared = session.prepare(&wide_plan(3), vec![]);
    let opts = ExecOptions { mode: ExecMode::NaiveIr, ..Default::default() };
    let (_, report) = session.execute_with(&prepared, &opts).expect("naive run");
    assert_eq!(report.bc_translate, Duration::ZERO, "the IR walker needs no bytecode");
    // A later adaptive run on the same prepared query pays it exactly once.
    let adaptive = ExecOptions { cache_results: false, ..Default::default() };
    let (_, r2) = session.execute_with(&prepared, &adaptive).expect("adaptive run");
    assert!(r2.bc_translate > Duration::ZERO);
    let (_, r3) = session.execute_with(&prepared, &adaptive).expect("warm adaptive run");
    assert_eq!(r3.bc_translate, Duration::ZERO);
}

#[test]
fn dropping_a_scanned_table_errors_for_plain_prepared_queries_too() {
    // Same scenario as below but through the codegen path (`prepare`, no
    // module override): the rebuild after the mutation must fail as a
    // value before codegen dereferences the missing table.
    let cat = tpch::generate(0.001);
    let engine = Engine::new(cat);
    let session = engine.session();
    let prepared = session.prepare(&wide_plan(2), vec![]);
    session.execute(&prepared).expect("table still present");
    engine.with_catalog_mut(|c| {
        c.remove("lineitem");
    });
    let err = session.execute(&prepared).unwrap_err();
    assert!(matches!(err, ExecError::Setup(_)), "got {err:?}");
}

#[test]
fn dropping_a_scanned_table_is_a_setup_error() {
    let cat = tpch::generate(0.001);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    // A caller-supplied module is retained across catalog versions, so
    // execution reaches source resolution — which must fail as a value,
    // not a panic, once the scanned table is gone.
    let phys = physical(&cat, &wide_plan(2));
    let module = aqe_engine::codegen::generate(&phys, &cat);
    let prepared = session.prepare_module(phys, module);
    session.execute(&prepared).expect("table still present");
    engine.with_catalog_mut(|c| {
        c.remove("lineitem");
    });
    let err = session.execute(&prepared).unwrap_err();
    assert!(matches!(err, ExecError::Setup(_)), "got {err:?}");
}

/// The one-shot pattern the deprecated `execute_plan`/`execute_module`
/// shims used to paper over, written out in the session API: a throwaway
/// engine per call still works, a caller-generated module produces the
/// same rows as engine codegen, and the module path pays no codegen.
#[test]
fn one_shot_execution_through_a_throwaway_engine() {
    let cat = tpch::generate(0.002);
    let phys = physical(&cat, &wide_plan(3));
    let opts = ExecOptions { threads: 1, ..Default::default() };

    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare_plan(phys.clone());
    let (rows, report) = session.execute_with(&prepared, &opts).expect("one-shot run");
    assert_eq!(rows.row_count(), 1);
    assert!(report.codegen > Duration::ZERO);

    // Stage-timing harnesses generate IR themselves and hand it in;
    // execution must then charge them nothing for codegen.
    let module = aqe_engine::codegen::generate(&phys, &cat);
    let engine2 = Engine::new(cat.clone());
    let session2 = engine2.session();
    let with_module = session2.prepare_module(phys, module);
    let (rows2, report2) = session2.execute_with(&with_module, &opts).expect("module run");
    assert_eq!(rows.rows, rows2.rows);
    assert_eq!(report2.codegen, Duration::ZERO, "caller-supplied module pays no codegen");
}

/// A parameterized variant of [`wide_plan`]: the same wide aggregation,
/// but the scan filters on `l_quantity < $1` so the sums depend on the
/// bound value. One fingerprint, many bindings.
fn bound_plan(aggs: usize) -> PlanNode {
    let specs = (0..aggs)
        .map(|k| AggSpec {
            func: AggFunc::SumI,
            arg: Some(PExpr::arith(
                ArithOp::Add,
                true,
                false,
                PExpr::arith(
                    ArithOp::Mul,
                    true,
                    false,
                    PExpr::Col(k % 3),
                    PExpr::ConstI(k as i64 + 1),
                ),
                PExpr::Col((k + 1) % 3),
            )),
        })
        .collect();
    PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6],
            filter: Some(PExpr::cmp(
                CmpOp::Lt,
                false,
                PExpr::Col(0),
                PExpr::Param { idx: 0, ty: FieldTy::I64 },
            )),
        }),
        group_by: vec![],
        aggs: specs,
    }
}

#[test]
fn distinct_bindings_never_alias_a_result_cache_entry() {
    let cat = tpch::generate(0.005);
    let engine = Engine::new(cat);
    let session = engine.session();
    let prepared = session.prepare(&bound_plan(4), vec![]);
    let opts = ExecOptions { threads: 2, ..Default::default() };

    // Two bindings with different selectivities: different answers, so
    // serving one from the other's cache entry would be visible here.
    let (rows_a, first) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(2400)], &opts).expect("binding A");
    assert!(!first.result_cache_hit);
    let (rows_b, second) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(1000)], &opts).expect("binding B");
    assert!(!second.result_cache_hit, "a fresh binding must not hit another binding's entry");
    assert_ne!(rows_a.rows, rows_b.rows, "the two bindings must select different rows");
    assert_eq!(engine.result_cache_len(), 2, "each binding owns its own cache entry");

    // Re-submitting either binding hits exactly its own entry.
    let (ra, ha) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(2400)], &opts).expect("A again");
    assert!(ha.result_cache_hit);
    assert_eq!(ra.rows, rows_a.rows);
    let (rb, hb) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(1000)], &opts).expect("B again");
    assert!(hb.result_cache_hit);
    assert_eq!(rb.rows, rows_b.rows);
}

#[test]
fn warm_bound_execution_with_a_fresh_value_pays_no_compilation() {
    let cat = tpch::generate(0.02);
    let engine = Engine::new(cat);
    let session = engine.session();
    let prepared = session.prepare(&bound_plan(40), vec![]);
    let opts = eager_adaptive(2);

    let (_, cold) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(2400)], &opts).expect("cold bound");
    assert!(cold.codegen > Duration::ZERO, "the cold binding pays codegen");
    assert!(cold.bc_translate > Duration::ZERO);
    let levels = prepared.levels();
    assert!(
        levels.iter().any(|&l| l > ExecLevel::Interpreted),
        "the eager model must have upgraded at least one pipeline: {levels:?}"
    );

    // A *different* value on the same prepared query: all compilation
    // artifacts are keyed by the generalized plan, so nothing is rebuilt
    // and every pipeline starts at the level the first binding reached.
    let (_, warm) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(900)], &opts).expect("warm bound");
    assert_eq!(warm.codegen, Duration::ZERO, "a fresh value must not regenerate IR");
    assert_eq!(warm.bc_translate, Duration::ZERO, "…nor re-translate bytecode");
    assert!(!warm.result_cache_hit, "a fresh value really executes");
    let starts: Vec<ExecLevel> = warm.sched.iter().map(|s| s.start_level).collect();
    assert_eq!(starts, levels, "warm bound run starts at the previously reached levels");
    assert!(!warm.cold_build, "the compiled state is shared across bindings");
}

#[test]
fn catalog_mutation_invalidates_every_binding_of_a_fingerprint() {
    let cat = tpch::generate(0.005);
    let engine = Engine::new(cat);
    let session = engine.session();
    let prepared = session.prepare(&bound_plan(4), vec![]);
    let opts = ExecOptions { threads: 2, ..Default::default() };

    let (rows_a, _) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(2400)], &opts).expect("binding A");
    let (rows_b, _) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(1000)], &opts).expect("binding B");
    assert_eq!(engine.result_cache_len(), 2);

    // One mutation, all bindings gone: the key's version component means
    // no binding of the old fingerprint can ever be served again.
    engine.with_catalog_mut(|c| {
        c.add(Table::new("tiny", vec![("x", DataType::Int64, Column::I64(vec![1]))]))
    });
    assert_eq!(engine.result_cache_len(), 0, "every binding's entry must be purged");

    let (ra, after_a) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(2400)], &opts).expect("A again");
    assert!(!after_a.result_cache_hit);
    assert!(after_a.codegen > Duration::ZERO, "retained code is stale after the mutation");
    assert_eq!(ra.rows, rows_a.rows, "the data did not change, only the version");
    let (rb, after_b) =
        session.execute_bound_with(&prepared, &[ParamValue::I64(1000)], &opts).expect("B again");
    assert!(!after_b.result_cache_hit);
    assert_eq!(rb.rows, rows_b.rows);
}

#[test]
fn binding_mistakes_are_bind_errors_not_panics() {
    let cat = tpch::generate(0.001);
    let engine = Engine::new(cat);
    let session = engine.session();
    let with_params = session.prepare(&bound_plan(2), vec![]);
    let without = session.prepare(&wide_plan(2), vec![]);

    // Arity: too few, too many.
    let err = session.execute_bound(&with_params, &[]).unwrap_err();
    assert!(matches!(err, ExecError::Bind(_)), "got {err:?}");
    let err =
        session.execute_bound(&with_params, &[ParamValue::I64(1), ParamValue::I64(2)]).unwrap_err();
    assert!(matches!(err, ExecError::Bind(_)), "got {err:?}");

    // Type: the plan's slot is I64, the value is F64.
    let err = session.execute_bound(&with_params, &[ParamValue::F64(1.0)]).unwrap_err();
    assert!(matches!(err, ExecError::Bind(_)), "got {err:?}");

    // Binding values to a query that has no parameters.
    let err = session.execute_bound(&without, &[ParamValue::I64(1)]).unwrap_err();
    assert!(matches!(err, ExecError::Bind(_)), "got {err:?}");

    // And the unbound entry point on a parameterized query: the missing
    // values surface as a `Bind` error, not a read through a null block.
    let err = session.execute(&with_params).unwrap_err();
    assert!(matches!(err, ExecError::Bind(_)), "got {err:?}");

    // After all that, a correct binding still works.
    let (rows, _) = session.execute_bound(&with_params, &[ParamValue::I64(2400)]).expect("bound");
    assert_eq!(rows.row_count(), 1);
}

#[test]
fn native_mode_warms_prepared_query_to_rank_four() {
    // One up-front Native run retains rank-4 backends in the prepared
    // query (or the optimized alias where the emitter is unavailable); a
    // later adaptive run starts every pipeline at that retained level.
    let cat = tpch::generate(0.01);
    let engine = Engine::new(cat.clone());
    let session = engine.session();
    let prepared = session.prepare(&wide_plan(20), vec![]);
    let native_opts = ExecOptions {
        mode: ExecMode::Native,
        threads: 2,
        cache_results: false,
        ..Default::default()
    };
    let (rows_native, first) = session.execute_with(&prepared, &native_opts).expect("native run");
    assert!(first.upfront_compile > Duration::ZERO, "the cold native run compiles up front");

    let expect = if aqe_jit::native::enabled() { ExecLevel::Native } else { ExecLevel::Optimized };
    assert!(
        prepared.levels().iter().all(|&l| l == expect),
        "retained levels {:?}, expected all {expect:?}",
        prepared.levels()
    );

    let warm = ExecOptions {
        mode: ExecMode::Adaptive,
        threads: 2,
        cache_results: false,
        ..Default::default()
    };
    let (rows_warm, report) = session.execute_with(&prepared, &warm).expect("warm adaptive run");
    assert!(
        report.sched.iter().all(|s| s.start_level == expect),
        "warm adaptive run must start at the retained level: {:?}",
        report.sched.iter().map(|s| s.start_level).collect::<Vec<_>>()
    );
    assert_eq!(report.background_compiles, 0, "nothing above the retained level to compile to");
    assert_eq!(rows_native.rows, rows_warm.rows);
}
