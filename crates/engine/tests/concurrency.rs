//! Concurrency stress tests for the session layer (DESIGN.md §8): warm
//! executions of one shared `PreparedQuery` racing each other and a
//! concurrently mutating catalog.
//!
//! What the epoch/snapshot design must guarantee under this load:
//!
//! * **result correctness** — every successful execution returns exactly
//!   the single-threaded reference rows, no matter which catalog epoch or
//!   retained backend it picked up;
//! * **no torn snapshots** — an execution's `Report::snapshot_version`
//!   names one epoch, and the versions a thread observes are monotonic
//!   (the catalog cell only ever publishes forward);
//! * **epoch pinning** — an execution that pinned its snapshot before a
//!   table drop completes against the old epoch's (still-alive) column
//!   data instead of crashing on a dangling base pointer;
//! * **one cold build** — racing cold executions produce one compiled
//!   state under the latch, the rest reuse it;
//! * **eager invalidation** — a mutation purges every result cached for
//!   older versions.

use aqe_engine::exec::{ExecMode, ExecOptions, ParamValue};
use aqe_engine::plan::{AggFunc, AggSpec, ArithOp, CmpOp, FieldTy, PExpr, PlanNode};
use aqe_engine::session::Engine;
use aqe_storage::{tpch, Column, DataType, Table};
use aqe_vm::interp::ExecError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic single-row aggregation over lineitem, expensive enough
/// per tuple that executions overlap under outer-thread concurrency.
fn agg_plan(aggs: usize) -> PlanNode {
    let specs = (0..aggs)
        .map(|k| AggSpec {
            func: AggFunc::SumI,
            arg: Some(PExpr::arith(
                ArithOp::Add,
                true,
                false,
                PExpr::arith(
                    ArithOp::Mul,
                    true,
                    false,
                    PExpr::Col(k % 3),
                    PExpr::ConstI(k as i64 + 1),
                ),
                PExpr::Col((k + 1) % 3),
            )),
        })
        .collect();
    PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6],
            filter: None,
        }),
        group_by: vec![],
        aggs: specs,
    }
}

fn no_cache_opts() -> ExecOptions {
    ExecOptions { mode: ExecMode::Adaptive, threads: 1, cache_results: false, ..Default::default() }
}

fn scratch_table(n: i64) -> Table {
    Table::new("scratch", vec![("x", DataType::Int64, Column::I64((0..n).collect()))])
}

#[test]
fn racing_cold_executions_build_the_compiled_state_once() {
    let engine = Arc::new(Engine::new(tpch::generate(0.005)));
    let prepared = Arc::new(engine.session().prepare(&agg_plan(8), vec![]));

    let reference = {
        // A twin prepared query computes the reference without touching
        // the shared one's cold latch.
        let (rows, _) = engine
            .session()
            .execute_with(&engine.session().prepare(&agg_plan(8), vec![]), &no_cache_opts())
            .expect("reference run");
        rows.rows
    };

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let engine = engine.clone();
            let prepared = prepared.clone();
            let reference = reference.clone();
            scope.spawn(move || {
                let session = engine.session();
                let (rows, _) =
                    session.execute_with(&prepared, &no_cache_opts()).expect("racing cold run");
                assert_eq!(rows.rows, reference, "racing execution returned wrong rows");
            });
        }
    });

    let stats = engine.concurrency();
    // The twin built once; the 8 racers built the shared query's state
    // exactly once between them, no matter how the race interleaved.
    assert_eq!(stats.cold_builds, 2, "racing executions must share one cold build");
    assert!(stats.warm_executions >= 7, "losers of the build race reuse the published state");
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.executions_started, stats.executions_completed);
}

#[test]
fn stress_warm_executions_against_a_mutating_catalog() {
    const WORKERS: usize = 8;
    const RUNS_PER_WORKER: usize = 12;
    const MUTATIONS: u64 = 40;

    let engine = Arc::new(Engine::new(tpch::generate(0.005)));
    let session = engine.session();
    let prepared = Arc::new(session.prepare(&agg_plan(8), vec![]));
    let (reference, first) =
        session.execute_with(&prepared, &no_cache_opts()).expect("reference run");
    let base_version = first.snapshot_version;

    let stop = AtomicBool::new(false);
    let max_seen_version = AtomicU64::new(base_version);

    std::thread::scope(|scope| {
        // Mutator: keeps publishing new catalog epochs (an unrelated
        // table, so the prepared query stays valid at every version).
        let mutator = scope.spawn(|| {
            for i in 0..MUTATIONS {
                engine.with_catalog_mut(|c| {
                    if i % 2 == 0 {
                        c.add(scratch_table(i as i64 + 1));
                    } else {
                        c.remove("scratch");
                    }
                });
                std::thread::sleep(Duration::from_micros(200));
            }
            stop.store(true, Ordering::Release);
        });

        for _ in 0..WORKERS {
            let engine = engine.clone();
            let prepared = prepared.clone();
            let reference = &reference;
            let max_seen_version = &max_seen_version;
            scope.spawn(move || {
                let session = engine.session();
                let mut last_version = 0u64;
                for _ in 0..RUNS_PER_WORKER {
                    let (rows, report) =
                        session.execute_with(&prepared, &no_cache_opts()).expect("warm run");
                    assert_eq!(
                        rows.rows, reference.rows,
                        "an execution under concurrent mutation returned wrong rows"
                    );
                    // One snapshot per run, and only ever forward: a torn
                    // or backwards epoch would show up right here.
                    assert!(
                        report.snapshot_version >= last_version,
                        "snapshot versions must be monotonic within a thread: \
                         {} after {last_version}",
                        report.snapshot_version
                    );
                    last_version = report.snapshot_version;
                    max_seen_version.fetch_max(last_version, Ordering::Relaxed);
                }
            });
        }

        mutator.join().expect("mutator");
    });

    // Every observed epoch was one the mutator actually published.
    assert!(
        max_seen_version.load(Ordering::Relaxed) <= base_version + MUTATIONS,
        "an execution observed a version no mutation produced"
    );
    assert_eq!(engine.catalog_version(), base_version + MUTATIONS);

    let stats = engine.concurrency();
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.executions_started, stats.executions_completed);
    assert_eq!(stats.snapshot_swaps, MUTATIONS);
    assert!(
        stats.peak_in_flight >= 2,
        "the stress must actually overlap executions (peak {})",
        stats.peak_in_flight
    );
    // Mutations keep invalidating retained code, so some executions
    // rebuild — but runs between mutations must still reuse state.
    assert!(stats.warm_executions > 0, "no execution ever took the warm path");
}

#[test]
fn executions_pinned_to_an_epoch_survive_table_drops() {
    // The mutator repeatedly drops and restores the *scanned* table. An
    // execution that pinned its snapshot before a drop completes against
    // the old epoch (the snapshot's `Arc<Table>` keeps the columns
    // alive); an execution that starts inside a dropped window fails
    // cleanly with `Setup`. Nothing crashes, and every success returns
    // the reference rows.
    let engine = Arc::new(Engine::new(tpch::generate(0.002)));
    let session = engine.session();
    let prepared = Arc::new(session.prepare(&agg_plan(6), vec![]));
    let (reference, _) = session.execute_with(&prepared, &no_cache_opts()).expect("reference");
    let lineitem = engine.with_catalog(|c| c.get("lineitem").unwrap().as_ref().clone());

    let successes = AtomicU64::new(0);
    let clean_failures = AtomicU64::new(0);
    let stop_flag = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let stop = &stop_flag;
        for _ in 0..6 {
            let engine = engine.clone();
            let prepared = prepared.clone();
            let reference = &reference;
            let (successes, clean_failures) = (&successes, &clean_failures);
            scope.spawn(move || {
                let session = engine.session();
                while !stop.load(Ordering::Acquire) {
                    match session.execute_with(&prepared, &no_cache_opts()) {
                        Ok((rows, _)) => {
                            assert_eq!(rows.rows, reference.rows, "epoch-pinned run wrong rows");
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ExecError::Setup(msg)) => {
                            assert!(
                                msg.contains("lineitem"),
                                "only the dropped-table window may fail: {msg}"
                            );
                            clean_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error under table drops: {e:?}"),
                    }
                }
            });
        }

        for _ in 0..10 {
            engine.with_catalog_mut(|c| {
                c.remove("lineitem");
            });
            std::thread::sleep(Duration::from_micros(500));
            engine.with_catalog_mut(|c| c.add(lineitem.clone()));
            std::thread::sleep(Duration::from_micros(500));
        }
        stop.store(true, Ordering::Release);
    });

    assert!(successes.load(Ordering::Relaxed) > 0, "some executions must have succeeded");
    assert_eq!(engine.concurrency().in_flight, 0);
}

/// [`agg_plan`] with the scan filtered on `l_quantity < $1`: one
/// fingerprint whose answer depends on the bound value.
fn bound_agg_plan(aggs: usize) -> PlanNode {
    let specs = (0..aggs)
        .map(|k| AggSpec {
            func: AggFunc::SumI,
            arg: Some(PExpr::arith(
                ArithOp::Add,
                true,
                false,
                PExpr::arith(
                    ArithOp::Mul,
                    true,
                    false,
                    PExpr::Col(k % 3),
                    PExpr::ConstI(k as i64 + 1),
                ),
                PExpr::Col((k + 1) % 3),
            )),
        })
        .collect();
    PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6],
            filter: Some(PExpr::cmp(
                CmpOp::Lt,
                false,
                PExpr::Col(0),
                PExpr::Param { idx: 0, ty: FieldTy::I64 },
            )),
        }),
        group_by: vec![],
        aggs: specs,
    }
}

#[test]
fn concurrent_bindings_of_one_prepared_query_never_cross_results() {
    // Many threads hammer ONE shared parameterized `PreparedQuery` with
    // different bind values while a mutator publishes new catalog epochs.
    // Result caching stays ON: the dangerous failure mode is binding B
    // being served binding A's cached rows (or a pre-mutation entry
    // surviving). Every run is checked against its value's reference.
    const WORKERS: usize = 6;
    const RUNS_PER_WORKER: usize = 10;
    const BINDINGS: [i64; 3] = [900, 1700, 2400];

    let engine = Arc::new(Engine::new(tpch::generate(0.005)));
    let session = engine.session();
    let prepared = Arc::new(session.prepare(&bound_agg_plan(8), vec![]));

    // Single-threaded, cache-off references — one per binding.
    let reference: Vec<_> = BINDINGS
        .iter()
        .map(|&v| {
            let (rows, _) = session
                .execute_bound_with(&prepared, &[ParamValue::I64(v)], &no_cache_opts())
                .expect("reference run");
            rows.rows
        })
        .collect();
    assert!(
        reference.iter().zip(reference.iter().skip(1)).all(|(a, b)| a != b),
        "the bindings must produce pairwise-distinct answers for aliasing to be observable"
    );

    let cached = ExecOptions { threads: 1, ..Default::default() };
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let engine = engine.clone();
            let prepared = prepared.clone();
            let reference = &reference;
            let opts = cached.clone();
            scope.spawn(move || {
                let session = engine.session();
                for r in 0..RUNS_PER_WORKER {
                    // Each worker walks the bindings in a different order.
                    let i = (w + r) % BINDINGS.len();
                    let params = [ParamValue::I64(BINDINGS[i])];
                    let (rows, _) =
                        session.execute_bound_with(&prepared, &params, &opts).expect("bound run");
                    assert_eq!(
                        rows.rows, reference[i],
                        "binding {} returned another binding's rows",
                        BINDINGS[i]
                    );
                }
            });
        }
        // A few mutations mid-flight: each purges every binding's entries
        // for the older versions, and post-mutation runs repopulate.
        for i in 0..3 {
            std::thread::sleep(Duration::from_micros(400));
            engine.with_catalog_mut(|c| c.add(scratch_table(i + 1)));
        }
    });

    // At most one entry per binding can remain, all for the final version.
    assert!(engine.result_cache_len() <= BINDINGS.len());
    engine.with_catalog_mut(|c| {
        c.remove("scratch");
    });
    assert_eq!(engine.result_cache_len(), 0, "stale binding entries must be purged eagerly");

    let stats = engine.concurrency();
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.executions_started, stats.executions_completed);
    assert!(stats.warm_executions > 0, "bindings between mutations must share warm state");
}

#[test]
fn eager_invalidation_under_concurrent_cached_load() {
    let engine = Arc::new(Engine::new(tpch::generate(0.002)));
    let session = engine.session();
    let prepared = Arc::new(session.prepare(&agg_plan(4), vec![]));
    let cached_opts = ExecOptions { threads: 1, ..Default::default() };

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = engine.clone();
            let prepared = prepared.clone();
            let opts = cached_opts.clone();
            scope.spawn(move || {
                let session = engine.session();
                for _ in 0..8 {
                    session.execute_with(&prepared, &opts).expect("cached run");
                }
            });
        }
        // Interleave a few mutations: each purges the entries of every
        // older version.
        for i in 0..3 {
            std::thread::sleep(Duration::from_micros(300));
            engine.with_catalog_mut(|c| c.add(scratch_table(i + 1)));
        }
    });

    // Whatever survived the racing inserts is for the final version only;
    // one more mutation must purge all of it, eagerly.
    assert!(engine.result_cache_len() <= 1);
    engine.with_catalog_mut(|c| {
        c.remove("scratch");
    });
    assert_eq!(engine.result_cache_len(), 0, "stale entries must be purged eagerly");

    let cache = engine.cache_stats();
    assert!(cache.insertions >= 1, "the racing load must have populated the cache");
    assert!(cache.hits >= 1, "same-version re-submissions must have hit");
    assert_eq!(cache.entries, 0);
}
