//! Cooperative cancellation, end to end through the session layer
//! (DESIGN.md §13): a poisoned `CancelToken` must stop the morsel loop
//! within one range claim, surface as `ExecError::Cancelled`, and leave
//! every piece of durable state — the prepared query's compiled
//! artifacts, the retained slots, the result cache — exactly as a clean
//! run would have.

use aqe_engine::cancel::{CancelKind, CancelToken};
use aqe_engine::exec::{ExecMode, ExecOptions};
use aqe_engine::plan::{AggFunc, AggSpec, ArithOp, PExpr, PlanNode};
use aqe_engine::session::Engine;
use aqe_storage::{Column, DataType, Table};
use aqe_vm::interp::ExecError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic aggregation heavy enough per tuple that a bytecode
/// execution over [`big_catalog`] runs for whole seconds — plenty of
/// range claims for a cancel to land between.
fn heavy_plan(aggs: usize) -> PlanNode {
    let specs = (0..aggs)
        .map(|k| AggSpec {
            func: AggFunc::SumI,
            arg: Some(PExpr::arith(
                ArithOp::Add,
                true,
                false,
                PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(0), PExpr::ConstI(k as i64 + 1)),
                PExpr::Col(1),
            )),
        })
        .collect();
    PlanNode::HashAgg {
        input: Box::new(PlanNode::Scan { table: "big".into(), cols: vec![0, 1], filter: None }),
        group_by: vec![],
        aggs: specs,
    }
}

fn big_catalog(rows: i64) -> aqe_storage::Catalog {
    let mut cat = aqe_storage::Catalog::new();
    cat.add(Table::new(
        "big",
        vec![
            ("x", DataType::Int64, Column::I64((0..rows).map(|v| v % 1000).collect())),
            ("y", DataType::Int64, Column::I64((0..rows).map(|v| (v * 7) % 997).collect())),
        ],
    ));
    cat
}

/// Bytecode-pinned options: the slowest tier, so the uncancelled runtime
/// dwarfs every latency bound asserted below.
fn slow_opts(cancel: CancelToken) -> ExecOptions {
    ExecOptions {
        mode: ExecMode::Bytecode,
        threads: 2,
        cache_results: false,
        cancel,
        ..Default::default()
    }
}

/// Debug builds interpret bytecode an order of magnitude slower; a
/// smaller table keeps tier-1 (`cargo test -q`) fast while release runs
/// still get whole seconds of cancellable work.
#[cfg(debug_assertions)]
const ROWS: i64 = 400_000;
#[cfg(not(debug_assertions))]
const ROWS: i64 = 4_000_000;
const AGGS: usize = 24;

#[test]
fn client_cancel_stops_a_running_query_mid_pipeline() {
    let engine = Arc::new(Engine::new(big_catalog(ROWS)));
    let session = engine.session();
    let prepared = Arc::new(session.prepare(&heavy_plan(AGGS), vec![]));

    // Reference: how long the query takes when nobody stops it.
    let full_start = Instant::now();
    let (_, _) = session.execute_with(&prepared, &slow_opts(CancelToken::new())).unwrap();
    let full = full_start.elapsed();

    let token = CancelToken::new();
    let runner = {
        let engine = engine.clone();
        let prepared = prepared.clone();
        let opts = slow_opts(token.clone());
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let r = engine.session().execute_with(&prepared, &opts);
            (r, t0.elapsed())
        })
    };

    // Let the morsel loop get well into the scan, then poison the token.
    std::thread::sleep(full / 4);
    let cancelled_at = Instant::now();
    assert!(token.cancel(CancelKind::Client), "first cancel must win");
    let (result, ran_for) = runner.join().unwrap();
    let stop_latency = cancelled_at.elapsed();

    match result {
        Err(ExecError::Cancelled { reason }) => assert_eq!(reason, "client cancel"),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The loop must stop within one range claim — far faster than
    // finishing the scan. Bound generously against the measured full
    // runtime to stay robust on slow machines.
    assert!(
        stop_latency < full / 2,
        "stop latency {stop_latency:?} not clearly below full runtime {full:?}"
    );
    assert!(
        ran_for < full,
        "cancelled run ({ran_for:?}) should not take as long as a full run ({full:?})"
    );
    assert_eq!(engine.server_stats().cancelled, 1);
    assert_eq!(engine.server_stats().deadline_expired, 0);
}

#[test]
fn cancelled_query_stays_warm_and_reusable() {
    let engine = Arc::new(Engine::new(big_catalog(ROWS / 4)));
    let session = engine.session();
    let prepared = Arc::new(session.prepare(&heavy_plan(AGGS), vec![]));

    // Warm the prepared query with one clean adaptive run.
    let warm_opts = |cancel: CancelToken| ExecOptions {
        mode: ExecMode::Adaptive,
        threads: 2,
        cache_results: false,
        cancel,
        ..Default::default()
    };
    let (reference, first) =
        session.execute_with(&prepared, &warm_opts(CancelToken::new())).unwrap();
    assert!(first.cold_build, "first execution compiles");

    // Cancel a second execution mid-flight.
    let token = CancelToken::new();
    let runner = {
        let engine = engine.clone();
        let prepared = prepared.clone();
        let opts = warm_opts(token.clone());
        std::thread::spawn(move || engine.session().execute_with(&prepared, &opts))
    };
    std::thread::sleep(Duration::from_millis(30));
    token.cancel(CancelKind::Client);
    let cancelled = runner.join().unwrap();
    // The cancel may race completion of a fast warm run; only a
    // mid-flight cancel exercises the property, but either outcome must
    // leave the statement warm.
    if let Err(e) = &cancelled {
        assert!(matches!(e, ExecError::Cancelled { .. }), "unexpected error: {e:?}");
    }

    // The next execution runs warm: no cold build, zero codegen, and the
    // same rows a fresh engine would produce.
    let (rows, report) = session.execute_with(&prepared, &warm_opts(CancelToken::new())).unwrap();
    assert!(!report.cold_build, "cancelled run must not poison the prepared state");
    assert_eq!(report.codegen, Duration::ZERO, "warm reuse means zero codegen");
    assert_eq!(rows.rows, reference.rows, "rows after a cancel match the reference");
}

#[test]
fn cancelled_run_leaves_no_partial_rows_in_the_result_cache() {
    let engine = Arc::new(Engine::new(big_catalog(ROWS)));
    let session = engine.session();
    let prepared = Arc::new(session.prepare(&heavy_plan(AGGS), vec![]));
    let opts = |cancel: CancelToken| ExecOptions {
        mode: ExecMode::Bytecode,
        threads: 2,
        cache_results: true,
        cancel,
        ..Default::default()
    };

    let token = CancelToken::new();
    let runner = {
        let engine = engine.clone();
        let prepared = prepared.clone();
        let opts = opts(token.clone());
        std::thread::spawn(move || engine.session().execute_with(&prepared, &opts))
    };
    std::thread::sleep(Duration::from_millis(200));
    token.cancel(CancelKind::Client);
    let result = runner.join().unwrap();
    assert!(matches!(result, Err(ExecError::Cancelled { .. })), "got {result:?}");

    let stats = engine.cache_stats();
    assert_eq!(stats.insertions, 0, "a cancelled run must insert nothing");
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.hits, 0);
}

#[test]
fn deadline_expiry_cancels_with_its_own_kind() {
    let engine = Arc::new(Engine::new(big_catalog(ROWS)));
    let session = engine.session();
    let prepared = session.prepare(&heavy_plan(AGGS), vec![]);

    let token = CancelToken::with_deadline(Instant::now() + Duration::from_millis(100));
    let t0 = Instant::now();
    let result = session.execute_with(&prepared, &slow_opts(token.clone()));
    let elapsed = t0.elapsed();

    match result {
        Err(ExecError::Cancelled { reason }) => assert_eq!(reason, "deadline exceeded"),
        other => panic!("expected deadline cancellation, got {other:?}"),
    }
    assert_eq!(token.kind(), Some(CancelKind::Deadline), "the token self-poisoned");
    assert!(
        elapsed < Duration::from_secs(20),
        "deadline must stop the run long before completion ({elapsed:?})"
    );
    let stats = engine.server_stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.deadline_expired, 1);
}

#[test]
fn a_pre_poisoned_token_refuses_before_any_work() {
    let engine = Arc::new(Engine::new(big_catalog(1000)));
    let session = engine.session();
    let prepared = session.prepare(&heavy_plan(2), vec![]);

    let token = CancelToken::new();
    token.cancel(CancelKind::Disconnect);
    let t0 = Instant::now();
    let result = session.execute_with(&prepared, &slow_opts(token));
    match result {
        Err(ExecError::Cancelled { reason }) => assert_eq!(reason, "connection dropped"),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(t0.elapsed() < Duration::from_secs(1), "refusal happens before work");
    assert_eq!(engine.server_stats().cancelled, 1);
    // Nothing was compiled or cached for the refused run.
    assert_eq!(engine.cache_stats().insertions, 0);
}
