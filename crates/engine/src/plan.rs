//! Physical plans: expressions, operators, and the decomposition of a plan
//! tree into **pipelines** — the unit at which the paper tracks progress and
//! chooses execution modes ("The tracking and the decision to compile is not
//! done for the entire query, but for a specific query pipeline", §III).

use aqe_storage::{CatalogSnapshot, DataType};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The runtime representation type of a field flowing through a pipeline.
/// Everything is widened to 64 bits: integers/dates/decimals/string codes as
/// `i64`, floats as `f64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldTy {
    I64,
    F64,
}

/// Arithmetic operators. `checked` additions/subtractions/multiplications
/// compile to the overflow-checked pattern (the §IV-F macro op); SQL decimal
/// and integer arithmetic is checked, like HyPer's ("Any arithmetic that
/// occurs within a query is checked for overflows").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison predicates (type-directed: float or int).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A scalar expression over the current pipeline's field vector.
#[derive(Clone, Debug)]
pub enum PExpr {
    /// Field by index.
    Col(usize),
    /// Integer/decimal/date/string-code literal.
    ConstI(i64),
    ConstF(f64),
    /// Bind-variable slot `idx` of the query's parameter table. Executes
    /// as a load from the per-execution parameter block (state slot
    /// [`PhysicalPlan::param_slot`]), so one compiled plan serves every
    /// binding; the fingerprint hashes the slot index, never a value.
    Param {
        idx: usize,
        ty: FieldTy,
    },
    Arith {
        op: ArithOp,
        checked: bool,
        float: bool,
        a: Box<PExpr>,
        b: Box<PExpr>,
    },
    Cmp {
        op: CmpOp,
        float: bool,
        a: Box<PExpr>,
        b: Box<PExpr>,
    },
    And(Box<PExpr>, Box<PExpr>),
    Or(Box<PExpr>, Box<PExpr>),
    Not(Box<PExpr>),
    /// Membership in a small constant list (ints / string codes).
    InList {
        v: Box<PExpr>,
        list: Vec<i64>,
    },
    /// `CASE WHEN cond THEN t ELSE f`.
    Case {
        cond: Box<PExpr>,
        t: Box<PExpr>,
        f: Box<PExpr>,
        float: bool,
    },
    /// Plan-time dictionary lookup table: `table[field_value]`, used for
    /// LIKE/prefix predicates (u8 match bitmap) and ORDER BY on dictionary
    /// codes (u32 rank table). The table lives in a state slot.
    DictLookup {
        v: Box<PExpr>,
        table: usize,
        elem_size: u8,
    },
    /// Integer→float conversion.
    IToF(Box<PExpr>),
}

impl PExpr {
    pub fn col(i: usize) -> PExpr {
        PExpr::Col(i)
    }
    pub fn coli(i: usize) -> Box<PExpr> {
        Box::new(PExpr::Col(i))
    }
    pub fn arith(op: ArithOp, checked: bool, float: bool, a: PExpr, b: PExpr) -> PExpr {
        PExpr::Arith { op, checked, float, a: Box::new(a), b: Box::new(b) }
    }
    pub fn cmp(op: CmpOp, float: bool, a: PExpr, b: PExpr) -> PExpr {
        PExpr::Cmp { op, float, a: Box::new(a), b: Box::new(b) }
    }
    pub fn and(a: PExpr, b: PExpr) -> PExpr {
        PExpr::And(Box::new(a), Box::new(b))
    }
    pub fn or(a: PExpr, b: PExpr) -> PExpr {
        PExpr::Or(Box::new(a), Box::new(b))
    }

    /// Result representation type given the input field types.
    pub fn ty(&self, fields: &[FieldTy]) -> FieldTy {
        match self {
            PExpr::Col(i) => fields[*i],
            PExpr::ConstI(_) => FieldTy::I64,
            PExpr::ConstF(_) => FieldTy::F64,
            PExpr::Param { ty, .. } => *ty,
            PExpr::Arith { float, .. } => {
                if *float {
                    FieldTy::F64
                } else {
                    FieldTy::I64
                }
            }
            PExpr::Case { float, .. } => {
                if *float {
                    FieldTy::F64
                } else {
                    FieldTy::I64
                }
            }
            PExpr::IToF(_) => FieldTy::F64,
            _ => FieldTy::I64, // comparisons/logic produce 0/1
        }
    }
}

/// Aggregate accumulator primitives. `Avg` is expanded by the frontend into
/// `Sum` + `Count` plus a post-projection.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    /// Overflow-checked integer/decimal sum.
    SumI,
    SumF,
    CountStar,
    MinI,
    MaxI,
    MinF,
    MaxF,
}

impl AggFunc {
    pub fn result_ty(&self) -> FieldTy {
        match self {
            AggFunc::SumF | AggFunc::MinF | AggFunc::MaxF => FieldTy::F64,
            _ => FieldTy::I64,
        }
    }
    /// Initial accumulator bit pattern.
    pub fn init_bits(&self) -> u64 {
        match self {
            AggFunc::SumI | AggFunc::SumF | AggFunc::CountStar => 0,
            AggFunc::MinI => i64::MAX as u64,
            AggFunc::MaxI => i64::MIN as u64,
            AggFunc::MinF => f64::INFINITY.to_bits(),
            AggFunc::MaxF => f64::NEG_INFINITY.to_bits(),
        }
    }
}

#[derive(Clone, Debug)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Argument expression (None for COUNT(*)).
    pub arg: Option<PExpr>,
}

/// Join kinds supported by the hash join.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JoinKind {
    Inner,
    /// Probe row passes if at least one build match exists.
    Semi,
    /// Probe row passes if no build match exists.
    Anti,
}

/// Sort key: field index, ascending?, float?.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SortKey {
    pub field: usize,
    pub asc: bool,
    pub float: bool,
}

/// The physical plan tree (also interpreted directly by the Volcano and
/// vectorized baseline engines).
#[derive(Clone, Debug)]
pub enum PlanNode {
    Scan {
        table: String,
        /// Table column indices projected into the pipeline, in field order.
        cols: Vec<usize>,
        /// Optional pushed-down predicate over the projected fields.
        filter: Option<PExpr>,
    },
    Filter {
        input: Box<PlanNode>,
        pred: PExpr,
    },
    Project {
        input: Box<PlanNode>,
        exprs: Vec<PExpr>,
    },
    HashJoin {
        build: Box<PlanNode>,
        probe: Box<PlanNode>,
        /// Key field indices on each side (equal length, equal types).
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        /// Build-side field indices carried as payload (inner joins only).
        build_payload: Vec<usize>,
        kind: JoinKind,
    },
    HashAgg {
        input: Box<PlanNode>,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
    Sort {
        input: Box<PlanNode>,
        keys: Vec<SortKey>,
        limit: Option<usize>,
    },
}

impl PlanNode {
    /// Output field types of this node, resolving scans against a catalog.
    pub fn output_types(&self, cat: &CatalogSnapshot) -> Vec<FieldTy> {
        match self {
            PlanNode::Scan { table, cols, .. } => {
                let t = cat.get(table).expect("unknown table in plan");
                cols.iter()
                    .map(|&c| match t.column_type(c) {
                        DataType::Float64 => FieldTy::F64,
                        _ => FieldTy::I64,
                    })
                    .collect()
            }
            PlanNode::Filter { input, .. } => input.output_types(cat),
            PlanNode::Project { input, exprs } => {
                let inp = input.output_types(cat);
                exprs.iter().map(|e| e.ty(&inp)).collect()
            }
            PlanNode::HashJoin { build, probe, build_payload, kind, .. } => {
                let mut out = probe.output_types(cat);
                if *kind == JoinKind::Inner {
                    let b = build.output_types(cat);
                    out.extend(build_payload.iter().map(|&i| b[i]));
                }
                out
            }
            PlanNode::HashAgg { input, group_by, aggs } => {
                let inp = input.output_types(cat);
                let mut out: Vec<FieldTy> = group_by.iter().map(|&g| inp[g]).collect();
                out.extend(aggs.iter().map(|a| a.func.result_ty()));
                out
            }
            PlanNode::Sort { input, .. } => input.output_types(cat),
        }
    }

    /// Rough cardinality used only for ordering diagnostics (the adaptive
    /// engine deliberately does *not* rely on estimates — §III: "Without
    /// relying on the notoriously inaccurate cost estimates of query
    /// optimizers").
    pub fn estimate_rows(&self, cat: &CatalogSnapshot) -> usize {
        match self {
            PlanNode::Scan { table, .. } => cat.get(table).map(|t| t.row_count()).unwrap_or(0),
            PlanNode::Filter { input, .. } => input.estimate_rows(cat) / 3,
            PlanNode::Project { input, .. } => input.estimate_rows(cat),
            PlanNode::HashJoin { probe, .. } => probe.estimate_rows(cat),
            PlanNode::HashAgg { input, .. } => (input.estimate_rows(cat) / 10).max(1),
            PlanNode::Sort { input, .. } => input.estimate_rows(cat),
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline decomposition
// ---------------------------------------------------------------------------

/// Data source of a pipeline.
#[derive(Clone, Debug)]
pub enum Source {
    /// Morsel-wise scan over a base table's columns. `slot_base` is the
    /// first state slot holding the column base pointers (one per column).
    Table { table: String, cols: Vec<usize>, field_tys: Vec<FieldTy>, slot_base: usize },
    /// Morsel-wise scan over materialised rows (aggregate groups, sorted
    /// runs): `state[rows_slot]` = base pointer, `state[rows_slot+1]` = row
    /// count; rows are dense `u64` arrays of `field_tys.len()` slots.
    Rows { rows_slot: usize, field_tys: Vec<FieldTy> },
}

impl Source {
    pub fn field_tys(&self) -> &[FieldTy] {
        match self {
            Source::Table { field_tys, .. } | Source::Rows { field_tys, .. } => field_tys,
        }
    }
}

/// In-pipeline operators (consume one tuple, produce zero or more).
#[derive(Clone, Debug)]
pub enum PipeOp {
    Filter(PExpr),
    Project(Vec<PExpr>),
    Probe {
        ht: usize,
        keys: Vec<usize>,
        kind: JoinKind,
        /// Types of the payload fields appended on inner matches.
        payload_tys: Vec<FieldTy>,
    },
}

/// Pipeline terminator.
#[derive(Clone, Debug)]
pub enum Sink {
    /// Append `[keys…, payload…]` rows into join hash table `ht`.
    BuildJoin { ht: usize, keys: Vec<usize>, payload: Vec<usize> },
    /// Group into aggregate table `agg`.
    BuildAgg { agg: usize, group_by: Vec<usize>, aggs: Vec<AggSpec> },
    /// Materialise all fields into buffer `mat` (sorted by the host
    /// afterwards when `sort` is set).
    Materialize { mat: usize },
    /// Append all fields to the query output.
    Emit,
}

/// One pipeline: source → ops → sink.
#[derive(Clone, Debug)]
pub struct Pipeline {
    pub id: usize,
    pub source: Source,
    pub ops: Vec<PipeOp>,
    pub sink: Sink,
    /// Human-readable label for traces (Fig. 14 shows e.g. "scan partsupp").
    pub label: String,
}

/// A join hash table's shape.
#[derive(Clone, Debug)]
pub struct JoinHtSpec {
    pub nkeys: usize,
    pub payload: usize,
    /// State slots: `[buckets_ptr, mask]`.
    pub state_slot: usize,
}

/// An aggregate table's shape.
#[derive(Clone, Debug)]
pub struct AggSpec2 {
    pub nkeys: usize,
    pub aggs: Vec<AggFunc>,
    /// Result row slot for the post-merge scan: `[rows_ptr, row_count]`.
    pub rows_slot: usize,
}

/// A materialisation buffer's shape.
#[derive(Clone, Debug)]
pub struct MatSpec {
    pub width: usize,
    pub sort: Option<(Vec<SortKey>, Option<usize>)>,
    pub rows_slot: usize,
}

/// Dictionary lookup tables referenced by `PExpr::DictLookup`.
#[derive(Clone, Debug)]
pub struct DictTable {
    pub bytes: Arc<Vec<u8>>,
    pub elem_size: u8,
    pub state_slot: usize,
}

/// The fully decomposed query: what the engine executes.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    pub pipelines: Vec<Pipeline>,
    pub join_hts: Vec<JoinHtSpec>,
    pub aggs: Vec<AggSpec2>,
    pub mats: Vec<MatSpec>,
    pub dicts: Vec<DictTable>,
    /// Total number of u64 state slots.
    pub state_slots: usize,
    /// Output field types (the final Emit/Materialize schema).
    pub output_tys: Vec<FieldTy>,
    /// Whether output order is defined (root sort).
    pub sorted_output: bool,
    /// Parameter table: the representation type of each bind-variable
    /// slot referenced by `PExpr::Param` anywhere in the plan. Empty for
    /// non-parameterized plans.
    pub params: Vec<FieldTy>,
    /// State slot holding the base pointer of the per-execution parameter
    /// block (`params.len()` u64 values); `None` when the plan has no
    /// parameters.
    pub param_slot: Option<usize>,
}

/// Decomposes a plan tree into pipelines (HyPer-style: hash-table builds,
/// aggregations, and sorts break pipelines; Fig. 4's example becomes three
/// worker functions).
pub struct Decomposer<'a> {
    cat: &'a CatalogSnapshot,
    pipelines: Vec<Pipeline>,
    join_hts: Vec<JoinHtSpec>,
    aggs: Vec<AggSpec2>,
    mats: Vec<MatSpec>,
    pub dicts: Vec<DictTable>,
    state_slots: usize,
}

impl<'a> Decomposer<'a> {
    pub fn new(cat: &'a CatalogSnapshot) -> Self {
        Decomposer {
            cat,
            pipelines: Vec::new(),
            join_hts: Vec::new(),
            aggs: Vec::new(),
            mats: Vec::new(),
            dicts: Vec::new(),
            state_slots: 0,
        }
    }

    fn alloc_slots(&mut self, n: usize) -> usize {
        let s = self.state_slots;
        self.state_slots += n;
        s
    }

    /// Register a dictionary lookup table, returning its index for
    /// `PExpr::DictLookup`.
    pub fn add_dict(&mut self, bytes: Vec<u8>, elem_size: u8) -> usize {
        let slot = self.alloc_slots(1);
        self.dicts.push(DictTable { bytes: Arc::new(bytes), elem_size, state_slot: slot });
        self.dicts.len() - 1
    }

    /// Collect every `PExpr::Param` of the finished pipelines into a dense
    /// parameter table (the binder assigns contiguous indices; a gap left
    /// by a caller-built plan defaults to `I64`).
    fn collect_params(pipelines: &[Pipeline]) -> Vec<FieldTy> {
        fn walk(e: &PExpr, out: &mut Vec<Option<FieldTy>>) {
            match e {
                PExpr::Param { idx, ty } => {
                    if out.len() <= *idx {
                        out.resize(*idx + 1, None);
                    }
                    out[*idx] = Some(*ty);
                }
                PExpr::Arith { a, b, .. } | PExpr::Cmp { a, b, .. } => {
                    walk(a, out);
                    walk(b, out);
                }
                PExpr::And(a, b) | PExpr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                PExpr::Not(a) | PExpr::IToF(a) => walk(a, out),
                PExpr::InList { v, .. } => walk(v, out),
                PExpr::Case { cond, t, f, .. } => {
                    walk(cond, out);
                    walk(t, out);
                    walk(f, out);
                }
                PExpr::DictLookup { v, .. } => walk(v, out),
                PExpr::Col(_) | PExpr::ConstI(_) | PExpr::ConstF(_) => {}
            }
        }
        let mut tys: Vec<Option<FieldTy>> = Vec::new();
        for p in pipelines {
            for op in &p.ops {
                match op {
                    PipeOp::Filter(e) => walk(e, &mut tys),
                    PipeOp::Project(es) => es.iter().for_each(|e| walk(e, &mut tys)),
                    PipeOp::Probe { .. } => {}
                }
            }
            if let Sink::BuildAgg { aggs, .. } = &p.sink {
                for a in aggs {
                    if let Some(e) = &a.arg {
                        walk(e, &mut tys);
                    }
                }
            }
        }
        tys.into_iter().map(|t| t.unwrap_or(FieldTy::I64)).collect()
    }

    /// Decompose `root` and finish the physical plan.
    pub fn finish(mut self, root: &PlanNode) -> PhysicalPlan {
        let output_tys = root.output_types(self.cat);
        let sorted_output = matches!(root, PlanNode::Sort { .. });
        // The root pipeline: either the sort materialisation or a plain emit.
        match root {
            PlanNode::Sort { input, keys, limit } => {
                let width = input.output_types(self.cat).len();
                let rows_slot = self.alloc_slots(2);
                let mat = self.mats.len();
                self.mats.push(MatSpec { width, sort: Some((keys.clone(), *limit)), rows_slot });
                let (source, ops, label) = self.compile_stream(input);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source,
                    ops,
                    sink: Sink::Materialize { mat },
                    label,
                });
            }
            _ => {
                let (source, ops, label) = self.compile_stream(root);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source,
                    ops,
                    sink: Sink::Emit,
                    label,
                });
            }
        }
        let params = Self::collect_params(&self.pipelines);
        let param_slot = if params.is_empty() { None } else { Some(self.alloc_slots(1)) };
        PhysicalPlan {
            pipelines: self.pipelines,
            join_hts: self.join_hts,
            aggs: self.aggs,
            mats: self.mats,
            dicts: self.dicts,
            state_slots: self.state_slots,
            output_tys,
            sorted_output,
            params,
            param_slot,
        }
    }

    /// Compile a node into (source, in-pipeline ops) for the pipeline that
    /// *consumes* its output, emitting any upstream pipelines along the way.
    fn compile_stream(&mut self, node: &PlanNode) -> (Source, Vec<PipeOp>, String) {
        match node {
            PlanNode::Scan { table, cols, filter } => {
                let t = self.cat.get(table).expect("unknown table");
                let field_tys = node.output_types(self.cat);
                let mut ops = Vec::new();
                if let Some(f) = filter {
                    ops.push(PipeOp::Filter(f.clone()));
                }
                let _ = t;
                let slot_base = self.alloc_slots(cols.len());
                (
                    Source::Table {
                        table: table.clone(),
                        cols: cols.clone(),
                        field_tys,
                        slot_base,
                    },
                    ops,
                    format!("scan {table}"),
                )
            }
            PlanNode::Filter { input, pred } => {
                let (src, mut ops, label) = self.compile_stream(input);
                ops.push(PipeOp::Filter(pred.clone()));
                (src, ops, label)
            }
            PlanNode::Project { input, exprs } => {
                let (src, mut ops, label) = self.compile_stream(input);
                ops.push(PipeOp::Project(exprs.clone()));
                (src, ops, label)
            }
            PlanNode::HashJoin { build, probe, build_keys, probe_keys, build_payload, kind } => {
                // Build side becomes its own pipeline (Fig. 4: workerA/B).
                let build_tys = build.output_types(self.cat);
                let ht = self.join_hts.len();
                let state_slot = self.alloc_slots(2);
                self.join_hts.push(JoinHtSpec {
                    nkeys: build_keys.len(),
                    payload: build_payload.len(),
                    state_slot,
                });
                let (bsrc, bops, blabel) = self.compile_stream(build);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source: bsrc,
                    ops: bops,
                    sink: Sink::BuildJoin {
                        ht,
                        keys: build_keys.clone(),
                        payload: build_payload.clone(),
                    },
                    label: format!("build {blabel}"),
                });
                // Probe side continues the current pipeline.
                let (psrc, mut pops, plabel) = self.compile_stream(probe);
                pops.push(PipeOp::Probe {
                    ht,
                    keys: probe_keys.clone(),
                    kind: *kind,
                    payload_tys: build_payload.iter().map(|&i| build_tys[i]).collect(),
                });
                (psrc, pops, plabel)
            }
            PlanNode::HashAgg { input, group_by, aggs } => {
                let agg = self.aggs.len();
                let rows_slot = self.alloc_slots(2);
                self.aggs.push(AggSpec2 {
                    nkeys: group_by.len(),
                    aggs: aggs.iter().map(|a| a.func.clone()).collect(),
                    rows_slot,
                });
                let (src, ops, label) = self.compile_stream(input);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source: src,
                    ops,
                    sink: Sink::BuildAgg { agg, group_by: group_by.clone(), aggs: aggs.clone() },
                    label: format!("agg {label}"),
                });
                // The consuming pipeline scans the merged groups.
                let field_tys = node.output_types(self.cat);
                (Source::Rows { rows_slot, field_tys }, Vec::new(), "hash table scan".into())
            }
            PlanNode::Sort { input, keys, limit } => {
                // A non-root sort materialises and is rescanned.
                let width = input.output_types(self.cat).len();
                let rows_slot = self.alloc_slots(2);
                let mat = self.mats.len();
                self.mats.push(MatSpec { width, sort: Some((keys.clone(), *limit)), rows_slot });
                let (src, ops, label) = self.compile_stream(input);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source: src,
                    ops,
                    sink: Sink::Materialize { mat },
                    label: format!("sort {label}"),
                });
                let field_tys = node.output_types(self.cat);
                (Source::Rows { rows_slot, field_tys }, Vec::new(), "sorted scan".into())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plan fingerprints
// ---------------------------------------------------------------------------

/// Fixed-constant FNV-1a (64-bit). `DefaultHasher`'s algorithm is
/// explicitly unspecified across Rust releases, but fingerprints are
/// cache identities a caller may persist — so the hash function must be
/// pinned, not inherited from the standard library du jour.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Hash an `f64` by bit pattern (fingerprints must not depend on float
/// identity quirks; two plans with the same literal bits are the same plan).
fn hash_f64<H: Hasher>(h: &mut H, v: f64) {
    v.to_bits().hash(h);
}

fn hash_pexpr<H: Hasher>(h: &mut H, e: &PExpr) {
    std::mem::discriminant(e).hash(h);
    match e {
        PExpr::Col(i) => i.hash(h),
        PExpr::ConstI(v) => v.hash(h),
        PExpr::ConstF(v) => hash_f64(h, *v),
        // Parameters hash by slot, never by value: one fingerprint —
        // hence one retained module/bytecode/native buffer and one
        // result-cache fingerprint class — covers every binding.
        PExpr::Param { idx, ty } => {
            idx.hash(h);
            ty.hash(h);
        }
        PExpr::Arith { op, checked, float, a, b } => {
            op.hash(h);
            checked.hash(h);
            float.hash(h);
            hash_pexpr(h, a);
            hash_pexpr(h, b);
        }
        PExpr::Cmp { op, float, a, b } => {
            op.hash(h);
            float.hash(h);
            hash_pexpr(h, a);
            hash_pexpr(h, b);
        }
        PExpr::And(a, b) | PExpr::Or(a, b) => {
            hash_pexpr(h, a);
            hash_pexpr(h, b);
        }
        PExpr::Not(a) | PExpr::IToF(a) => hash_pexpr(h, a),
        PExpr::InList { v, list } => {
            hash_pexpr(h, v);
            list.hash(h);
        }
        PExpr::Case { cond, t, f, float } => {
            float.hash(h);
            hash_pexpr(h, cond);
            hash_pexpr(h, t);
            hash_pexpr(h, f);
        }
        PExpr::DictLookup { v, table, elem_size } => {
            hash_pexpr(h, v);
            table.hash(h);
            elem_size.hash(h);
        }
    }
}

fn hash_source<H: Hasher>(h: &mut H, s: &Source) {
    std::mem::discriminant(s).hash(h);
    match s {
        Source::Table { table, cols, field_tys, slot_base } => {
            table.hash(h);
            cols.hash(h);
            field_tys.hash(h);
            slot_base.hash(h);
        }
        Source::Rows { rows_slot, field_tys } => {
            rows_slot.hash(h);
            field_tys.hash(h);
        }
    }
}

fn hash_sink<H: Hasher>(h: &mut H, s: &Sink) {
    std::mem::discriminant(s).hash(h);
    match s {
        Sink::BuildJoin { ht, keys, payload } => {
            ht.hash(h);
            keys.hash(h);
            payload.hash(h);
        }
        Sink::BuildAgg { agg, group_by, aggs } => {
            agg.hash(h);
            group_by.hash(h);
            for a in aggs {
                a.func.hash(h);
                match &a.arg {
                    None => 0u8.hash(h),
                    Some(e) => {
                        1u8.hash(h);
                        hash_pexpr(h, e);
                    }
                }
            }
        }
        Sink::Materialize { mat } => mat.hash(h),
        Sink::Emit => {}
    }
}

impl PhysicalPlan {
    /// A stable 64-bit structural fingerprint of the plan.
    ///
    /// Two plans have equal fingerprints iff they execute the same
    /// pipelines over the same expressions, sinks, dictionary contents,
    /// and slot layout — the identity the engine's prepared-statement code
    /// cache and query-result cache key by (paired with
    /// [`CatalogSnapshot::version`](aqe_storage::CatalogSnapshot::version), since the
    /// fingerprint deliberately says nothing about the *data*). Uses a
    /// pinned FNV-1a hash, so the value is stable across processes, runs,
    /// and toolchain upgrades (on a given target architecture).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.pipelines.len().hash(&mut h);
        for p in &self.pipelines {
            p.id.hash(&mut h);
            hash_source(&mut h, &p.source);
            p.ops.len().hash(&mut h);
            for op in &p.ops {
                std::mem::discriminant(op).hash(&mut h);
                match op {
                    PipeOp::Filter(e) => hash_pexpr(&mut h, e),
                    PipeOp::Project(es) => {
                        es.len().hash(&mut h);
                        for e in es {
                            hash_pexpr(&mut h, e);
                        }
                    }
                    PipeOp::Probe { ht, keys, kind, payload_tys } => {
                        ht.hash(&mut h);
                        keys.hash(&mut h);
                        kind.hash(&mut h);
                        payload_tys.hash(&mut h);
                    }
                }
            }
            hash_sink(&mut h, &p.sink);
        }
        for spec in &self.join_hts {
            spec.nkeys.hash(&mut h);
            spec.payload.hash(&mut h);
            spec.state_slot.hash(&mut h);
        }
        for a in &self.aggs {
            a.nkeys.hash(&mut h);
            a.aggs.hash(&mut h);
            a.rows_slot.hash(&mut h);
        }
        for m in &self.mats {
            m.width.hash(&mut h);
            m.sort.hash(&mut h);
            m.rows_slot.hash(&mut h);
        }
        for d in &self.dicts {
            // Dictionary *contents* matter: two LIKE patterns produce
            // structurally identical plans that differ only in the bitmap.
            d.bytes.as_slice().hash(&mut h);
            d.elem_size.hash(&mut h);
            d.state_slot.hash(&mut h);
        }
        self.state_slots.hash(&mut h);
        self.output_tys.hash(&mut h);
        self.sorted_output.hash(&mut h);
        self.params.hash(&mut h);
        self.param_slot.hash(&mut h);
        h.finish()
    }
}

/// Convenience entry point.
pub fn decompose(cat: &CatalogSnapshot, root: &PlanNode, dicts: Vec<DictTable>) -> PhysicalPlan {
    let mut d = Decomposer::new(cat);
    d.dicts = dicts;
    // dict state slots were allocated by the caller through `Decomposer`; if
    // dicts came in pre-built, re-home their slots now.
    if !d.dicts.is_empty() {
        for i in 0..d.dicts.len() {
            let slot = d.alloc_slots(1);
            d.dicts[i].state_slot = slot;
        }
    }
    d.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_storage::{tpch, Catalog};

    fn cat() -> Catalog {
        tpch::generate(0.001)
    }

    fn li_scan() -> PlanNode {
        PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6], // quantity, extendedprice, discount
            filter: None,
        }
    }

    #[test]
    fn single_scan_agg_decomposes_into_two_pipelines() {
        let cat = cat();
        let plan = PlanNode::HashAgg {
            input: Box::new(li_scan()),
            group_by: vec![],
            aggs: vec![AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) }],
        };
        let phys = decompose(&cat, &plan, vec![]);
        // agg build pipeline + group scan/emit pipeline
        assert_eq!(phys.pipelines.len(), 2);
        assert!(matches!(phys.pipelines[0].sink, Sink::BuildAgg { .. }));
        assert!(matches!(phys.pipelines[1].sink, Sink::Emit));
        assert!(matches!(phys.pipelines[1].source, Source::Rows { .. }));
        assert_eq!(phys.aggs.len(), 1);
    }

    #[test]
    fn join_decomposes_build_before_probe() {
        let cat = cat();
        let build = PlanNode::Scan { table: "supplier".into(), cols: vec![0, 3], filter: None };
        let probe = li_scan();
        let plan = PlanNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(probe),
            build_keys: vec![0],
            probe_keys: vec![0],
            build_payload: vec![1],
            kind: JoinKind::Inner,
        };
        let phys = decompose(&cat, &plan, vec![]);
        assert_eq!(phys.pipelines.len(), 2);
        assert!(matches!(phys.pipelines[0].sink, Sink::BuildJoin { .. }));
        assert!(phys.pipelines[0].label.contains("supplier"));
        assert!(matches!(phys.pipelines[1].sink, Sink::Emit));
        assert!(
            matches!(&phys.pipelines[1].ops[..], [PipeOp::Probe { .. }]),
            "{:?}",
            phys.pipelines[1].ops
        );
    }

    #[test]
    fn q1_shape_three_pipeline_query() {
        // join + agg + sort = 4 pipelines: build, agg-input (probe), sort
        // materialise (scan of groups), final sorted emit is host-side.
        let cat = cat();
        let build = PlanNode::Scan { table: "supplier".into(), cols: vec![0], filter: None };
        let joined = PlanNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(li_scan()),
            build_keys: vec![0],
            probe_keys: vec![0],
            build_payload: vec![],
            kind: JoinKind::Semi,
        };
        let agged = PlanNode::HashAgg {
            input: Box::new(joined),
            group_by: vec![0],
            aggs: vec![AggSpec { func: AggFunc::CountStar, arg: None }],
        };
        let root = PlanNode::Sort {
            input: Box::new(agged),
            keys: vec![SortKey { field: 1, asc: false, float: false }],
            limit: Some(10),
        };
        let phys = decompose(&cat, &root, vec![]);
        assert_eq!(phys.pipelines.len(), 3);
        assert!(phys.sorted_output);
        assert_eq!(phys.output_tys.len(), 2);
    }

    #[test]
    fn fingerprint_is_stable_and_structural() {
        let cat = cat();
        let plan = |c: i64| PlanNode::HashAgg {
            input: Box::new(PlanNode::Scan {
                table: "lineitem".into(),
                cols: vec![4, 5],
                filter: Some(PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::ConstI(c))),
            }),
            group_by: vec![],
            aggs: vec![AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) }],
        };
        let a = decompose(&cat, &plan(10), vec![]);
        let b = decompose(&cat, &plan(10), vec![]);
        let c = decompose(&cat, &plan(11), vec![]);
        // Same structure → same fingerprint, across independent decompositions.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A different literal is a different query.
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Repeated calls on one plan agree (no hidden state).
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn params_generalize_the_fingerprint_and_allocate_a_slot() {
        let cat = cat();
        let plan = |rhs: PExpr| PlanNode::HashAgg {
            input: Box::new(PlanNode::Scan {
                table: "lineitem".into(),
                cols: vec![4, 5],
                filter: Some(PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), rhs)),
            }),
            group_by: vec![],
            aggs: vec![AggSpec { func: AggFunc::SumI, arg: Some(PExpr::Col(1)) }],
        };
        let p = PExpr::Param { idx: 0, ty: FieldTy::I64 };
        let a = decompose(&cat, &plan(p.clone()), vec![]);
        let b = decompose(&cat, &plan(p), vec![]);
        // The parameterized plan carries a one-entry param table and a
        // dedicated state slot for the parameter block.
        assert_eq!(a.params, vec![FieldTy::I64]);
        assert!(a.param_slot.is_some());
        assert_eq!(a.state_slots, b.state_slots);
        // One fingerprint covers every binding of the same statement…
        assert_eq!(a.fingerprint(), b.fingerprint());
        // …and is distinct from any literal-baked instance of it.
        let baked = decompose(&cat, &plan(PExpr::ConstI(10)), vec![]);
        assert!(baked.params.is_empty());
        assert!(baked.param_slot.is_none());
        assert_ne!(a.fingerprint(), baked.fingerprint());
    }

    #[test]
    fn fingerprint_sees_dictionary_contents() {
        let cat = cat();
        let scan = PlanNode::Scan { table: "lineitem".into(), cols: vec![4], filter: None };
        let with_dict = |bytes: Vec<u8>| {
            let mut d = Decomposer::new(&cat);
            d.add_dict(bytes, 1);
            d.finish(&scan)
        };
        let a = with_dict(vec![1, 0, 1]);
        let b = with_dict(vec![1, 0, 1]);
        let c = with_dict(vec![0, 1, 1]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint(), "LIKE bitmaps must distinguish plans");
    }

    #[test]
    fn expr_types() {
        let fields = [FieldTy::I64, FieldTy::F64];
        assert_eq!(PExpr::Col(0).ty(&fields), FieldTy::I64);
        assert_eq!(PExpr::Col(1).ty(&fields), FieldTy::F64);
        let e = PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(0), PExpr::ConstI(2));
        assert_eq!(e.ty(&fields), FieldTy::I64);
        assert_eq!(PExpr::IToF(PExpr::coli(0)).ty(&fields), FieldTy::F64);
        let c = PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::ConstI(10));
        assert_eq!(c.ty(&fields), FieldTy::I64);
    }
}
