//! Query execution orchestration: hot-swappable function handles (Fig. 5),
//! pipeline setup, and sink finalisation.
//!
//! "We always start executing every query using the bytecode interpreter and
//! all available threads. We then monitor the execution progress to decide
//! whether (unoptimized or optimized) compilation would be beneficial. If
//! this is the case, we start compiling on a background thread, while the
//! other threads continue the interpreted execution. Once compilation is
//! finished, all threads quickly switch to the compiled machine code."
//!
//! The *scheduling* half of that loop — who runs which rows, how progress
//! is observed, when the controller compiles, and how the cost model is
//! calibrated — lives in [`crate::sched`]; this module owns the per-query
//! state, the handle indirection, and the pipeline-end sinks.

use crate::cancel::CancelToken;
use crate::plan::{FieldTy, PhysicalPlan, Sink, Source};
use crate::runtime::{merge_agg_tables, sort_rows, JoinHt, WorkerRt};
use crate::sched::{
    AdaptiveController, ControllerCtx, CostCalibrator, MorselDispenser, PipelineProgress,
    PipelineQuarantine,
};
use crate::simd::ScanKernel;
use aqe_ir::{ExternDecl, Function};
use aqe_storage::CatalogSnapshot;
use aqe_vm::interp::{ExecError, Frame};
use aqe_vm::rt::Registry;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Execution modes & scheduler vocabulary (re-exports)
// ---------------------------------------------------------------------------

/// Re-exported from `aqe-vm`: the mode vocabulary is shared by every
/// backend implementation, so it lives next to [`PipelineBackend`].
pub use aqe_vm::backend::{ExecMode, PipelineBackend};

/// Re-exported from [`crate::sched`]: the cost model, the Fig. 7
/// extrapolation, and the calibration/report vocabulary grew out of this
/// module in PR 2 and keep their historical import paths.
pub use crate::sched::{
    extrapolate_pipeline_durations, CalibrationReport, CostModel, ExecLevel, ModeChoice,
    PipelineSchedReport,
};

// ---------------------------------------------------------------------------
// Function handles (Fig. 5)
// ---------------------------------------------------------------------------

/// "Instead of identifying a worker function by its memory address, we
/// introduce an additional handle indirection. … to change the execution
/// mode, one only needs to set a function pointer in this handle object."
///
/// The handle holds exactly one `Arc<dyn PipelineBackend>` — the *current*
/// executable representation of the worker function. Workers [`load`] it
/// once per morsel and call through it without knowing (or branching on)
/// which backend it is; a background compilation publishes a better
/// representation with [`install`], and every worker picks it up on its
/// next morsel. Swaps are monotonic in [`ExecMode::rank`], so execution
/// only ever upgrades.
///
/// [`load`]: FunctionHandle::load
/// [`install`]: FunctionHandle::install
pub struct FunctionHandle {
    /// The current backend. An uncontended RwLock read is cheap relative
    /// to a morsel's worth of work (with the real `parking_lot` it is a
    /// single atomic op; the vendored offline stand-in wraps `std::sync`
    /// and costs slightly more), and writers only ever hold the lock for
    /// the duration of an `Arc` store.
    current: RwLock<Arc<dyn PipelineBackend>>,
    /// Cached `rank()` of the current backend; the adaptive controller
    /// polls this without touching the lock.
    rank: AtomicU8,
    /// A compilation is in flight.
    compiling: AtomicBool,
}

impl FunctionHandle {
    pub fn new(initial: Arc<dyn PipelineBackend>) -> Self {
        let rank = initial.kind().rank();
        FunctionHandle {
            current: RwLock::new(initial),
            rank: AtomicU8::new(rank),
            compiling: AtomicBool::new(false),
        }
    }

    /// The function-pointer read of Fig. 5: the backend to run the next
    /// morsel with.
    pub fn load(&self) -> Arc<dyn PipelineBackend> {
        self.current.read().clone()
    }

    /// Rank of the current backend (see [`ExecMode::rank`]).
    pub fn rank(&self) -> u8 {
        self.rank.load(Ordering::Acquire)
    }

    /// Kind of the current backend.
    pub fn kind(&self) -> ExecMode {
        self.current.read().kind()
    }

    /// Atomically publish `backend` if it outranks the current one.
    /// Returns whether the swap happened; either way the in-flight
    /// compilation marker is cleared.
    pub fn install(&self, backend: Arc<dyn PipelineBackend>) -> bool {
        let rank = backend.kind().rank();
        let swapped = {
            let mut cur = self.current.write();
            if rank > cur.kind().rank() {
                *cur = backend;
                self.rank.store(rank, Ordering::Release);
                true
            } else {
                false
            }
        };
        self.compiling.store(false, Ordering::Release);
        swapped
    }

    /// Claim the right to start a (single) background compilation.
    pub fn try_begin_compile(&self) -> bool {
        !self.compiling.swap(true, Ordering::AcqRel)
    }

    /// Abandon a claimed compilation without publishing anything (the
    /// compile failed): re-opens the slot so a later decision can retry —
    /// without this, an `Err` from the compiler would leak the slot and
    /// permanently disable upgrades for the pipeline.
    pub fn cancel_compile(&self) {
        self.compiling.store(false, Ordering::Release);
    }
}

/// A pipeline's *retained* backend slot: the best compiled representation
/// any execution has published so far, kept alive across runs by the
/// session layer's prepared-query state.
///
/// Same install/load discipline as [`FunctionHandle`] — a cached atomic
/// rank for lock-free polling, an `RwLock`ed `Arc` held only for the
/// duration of a pointer copy, and rank-monotonic installs — but the slot
/// starts *empty* (rank 0) and is shared by every concurrent execution of
/// one prepared query: warm runs seed their per-run handles from it
/// without any coordination, and background compiles publish into it the
/// moment they finish, so an execution starting mid-flight of another
/// already benefits from the other's compile.
///
/// Only compiled backends (rank ≥ [`ExecMode::Unoptimized`]) are ever
/// installed; interpretation tiers live in their own compile-once latches.
#[derive(Default)]
pub struct RetainedSlot {
    slot: RwLock<Option<Arc<dyn PipelineBackend>>>,
    /// Cached rank of the occupant; 0 = empty.
    rank: AtomicU8,
}

impl RetainedSlot {
    pub fn new() -> RetainedSlot {
        RetainedSlot::default()
    }

    /// Rank of the retained backend (0 when empty) — lock-free.
    pub fn rank(&self) -> u8 {
        self.rank.load(Ordering::Acquire)
    }

    /// The retained backend, if any run has published one.
    pub fn load(&self) -> Option<Arc<dyn PipelineBackend>> {
        self.slot.read().clone()
    }

    /// Publish `backend` if it outranks the current occupant (an empty
    /// slot ranks 0). Returns whether the slot changed. Safe to race:
    /// the highest-ranked install wins regardless of arrival order.
    pub fn install(&self, backend: Arc<dyn PipelineBackend>) -> bool {
        let rank = backend.kind().rank();
        let mut cur = self.slot.write();
        let cur_rank = cur.as_ref().map_or(0, |b| b.kind().rank());
        if rank > cur_rank {
            *cur = Some(backend);
            self.rank.store(rank, Ordering::Release);
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Tracing (Fig. 14)
// ---------------------------------------------------------------------------

/// One trace event (times in µs since query start).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub thread: u16,
    pub pipeline: u16,
    /// 0 = bytecode, 1 = unoptimized, 2 = optimized, 3 = naive IR,
    /// 4 = native machine code, 255 = compilation.
    pub kind: u8,
    pub start_us: u64,
    pub end_us: u64,
    pub tuples: u64,
}

/// Full execution report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Wall time spent generating IR for this execution.
    /// `Duration::ZERO` on a warm prepared-query re-execution.
    pub codegen: Duration,
    /// Wall time spent translating IR to bytecode for this execution.
    /// `Duration::ZERO` on a warm prepared-query re-execution.
    pub bc_translate: Duration,
    /// Up-front compilations (static modes): per pipeline.
    pub upfront_compile: Duration,
    pub exec: Duration,
    pub background_compiles: usize,
    pub trace: Vec<TraceEvent>,
    /// Pipeline labels, by pipeline id (for rendering traces).
    pub pipeline_labels: Vec<String>,
    /// IR instruction count of the module.
    pub ir_instrs: usize,
    /// Per-pipeline scheduler summaries (morsels, steals, decisions, the
    /// model each controller decided with).
    pub sched: Vec<PipelineSchedReport>,
    /// What the query's cost calibrator learned (final model + counts).
    pub calibration: CalibrationReport,
    /// The result came from the engine's versioned query-result cache:
    /// no codegen, no translation, no morsel ran (and `sched` is empty).
    pub result_cache_hit: bool,
    /// Version of the immutable catalog snapshot this execution ran
    /// against. Every artifact of the run — cache key, compiled state,
    /// column base pointers — derives from this one epoch, so a torn read
    /// (mixing two catalog versions within one execution) is impossible
    /// by construction.
    pub snapshot_version: u64,
    /// This execution built the prepared query's compiled state (codegen,
    /// registry resolution) under the cold-compile latch. Warm executions
    /// reuse the published state without ever taking that latch.
    pub cold_build: bool,
    /// Executions in flight on the engine (this one included) when this
    /// execution started — the contention observability counter for the
    /// concurrency benchmark.
    pub concurrent_executions: usize,
    /// How this execution fared in the front-door server's admission
    /// controller (`None` for direct library calls): queue wait, the
    /// priority it was admitted at, and the server's cumulative shed
    /// count at dispatch time. Copied verbatim from
    /// [`ExecOptions::admission`].
    pub admission: Option<AdmissionReport>,
    /// `Some(reason)` when this execution's [`CancelToken`] was poisoned.
    /// An execution that observed the poison returns
    /// `ExecError::Cancelled` instead of a report; this field covers the
    /// complementary race — the cancel landed after the last claim, so
    /// the run completed anyway.
    pub cancelled: Option<String>,
    /// Compilations (up-front or background) that failed or panicked and
    /// were contained by ladder degradation: the execution continued one
    /// rung down instead of surfacing `ExecError::Compile`. The broken
    /// tier is quarantined (see [`crate::sched::QuarantineStore`]).
    pub degraded: u64,
    /// Tiers this execution skipped because an earlier execution
    /// quarantined them (no compile was attempted; the ladder topped out
    /// one rung lower).
    pub quarantine_skips: u64,
}

/// What the server's admission controller did to an execution before the
/// engine saw it ([`Report::admission`]). Produced by `crates/server` at
/// dispatch time and threaded through [`ExecOptions::admission`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AdmissionReport {
    /// Time between submission and dispatch onto an engine executor.
    pub queue_wait: Duration,
    /// Priority tier the request was admitted at (0 = lowest).
    pub priority: u8,
    /// The server's cumulative shed count when this request dispatched —
    /// a load signal: a fast-rising value means the request ran under
    /// active shedding.
    pub shed_at_dispatch: u64,
}

// ---------------------------------------------------------------------------
// Query state assembly & pipeline finalisation
// ---------------------------------------------------------------------------

struct QueryState {
    slots: Vec<u64>,
    join_hts: Vec<Option<JoinHt>>,
    agg_rows: Vec<Vec<u64>>, // merged group rows per agg
    mat_rows: Vec<Vec<u64>>,
    out_rows: Vec<u64>,
    /// Keep dictionaries alive for the duration.
    _dicts: Vec<Arc<Vec<u8>>>,
}

/// Execution result: dense rows of the output schema.
#[derive(Clone, Debug)]
pub struct ResultRows {
    pub tys: Vec<FieldTy>,
    pub rows: Vec<u64>,
}

impl ResultRows {
    pub fn row_count(&self) -> usize {
        if self.tys.is_empty() {
            0
        } else {
            self.rows.len() / self.tys.len()
        }
    }
}

/// A bind-variable value supplied to
/// [`Session::execute_bound`](crate::session::Session::execute_bound).
/// Decimal parameters are
/// bound in their scaled integer representation (cents), date parameters
/// as day numbers — the same representation the plan's literals use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamValue {
    I64(i64),
    F64(f64),
}

impl ParamValue {
    /// The representation type this value binds to.
    pub fn field_ty(&self) -> FieldTy {
        match self {
            ParamValue::I64(_) => FieldTy::I64,
            ParamValue::F64(_) => FieldTy::F64,
        }
    }

    /// The 64-bit pattern stored in the parameter block.
    pub fn bits(&self) -> u64 {
        match self {
            ParamValue::I64(v) => *v as u64,
            ParamValue::F64(v) => v.to_bits(),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> ParamValue {
        ParamValue::I64(v)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> ParamValue {
        ParamValue::F64(v)
    }
}

/// Execution options.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    pub mode: ExecMode,
    pub threads: usize,
    pub trace: bool,
    pub model: CostModel,
    /// Initial morsel size; grows ×2 up to `max_morsel` ("we can further
    /// refine this extrapolation by using a dynamically growing morsel
    /// size").
    pub min_morsel: usize,
    pub max_morsel: usize,
    /// Delay before the first adaptive evaluation (paper: 1 ms).
    pub first_eval: Duration,
    /// Enable LIFO half-range work stealing between workers (the
    /// single-cursor behaviour of PR 1 has no equivalent; disabling this
    /// leaves static per-worker partitions, the honest no-stealing
    /// baseline).
    pub steal: bool,
    /// Consult and populate the engine's versioned query-result cache
    /// (`session::Engine`). Disable for benchmarks that must observe a
    /// real execution on every run.
    pub cache_results: bool,
    /// This execution's cooperative cancellation token: poisoning it (or
    /// its armed deadline expiring) stops the morsel loop within one
    /// range claim and surfaces as `ExecError::Cancelled`. The default is
    /// a fresh, never-poisoned token. Note that cloning an `ExecOptions`
    /// *shares* the token — callers that cancel should install a fresh
    /// token per execution, as the server does.
    pub cancel: CancelToken,
    /// Admission-controller provenance to surface in
    /// [`Report::admission`]. Set by the server at dispatch; `None` for
    /// direct library calls.
    pub admission: Option<AdmissionReport>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Adaptive,
            threads: 1,
            trace: false,
            model: CostModel::default(),
            min_morsel: 1024,
            max_morsel: 64 * 1024,
            first_eval: Duration::from_millis(1),
            steal: true,
            cache_results: true,
            cancel: CancelToken::new(),
            admission: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline-loop core (driven by the session layer)
// ---------------------------------------------------------------------------

/// Everything one query execution needs once its artifacts (functions,
/// registry, per-pipeline handles with their initial backends) have been
/// assembled by the session layer.
pub(crate) struct QueryRun<'a> {
    pub plan: &'a PhysicalPlan,
    /// The immutable catalog epoch this execution is pinned to — cloned
    /// `Arc`s, never a lock held across the morsel loop.
    pub cat: &'a CatalogSnapshot,
    pub functions: &'a [Arc<Function>],
    pub externs: &'a Arc<Vec<ExternDecl>>,
    pub registry: &'a Arc<Registry>,
    pub handles: &'a [Arc<FunctionHandle>],
    /// Per-pipeline retained slots of the prepared query's compiled
    /// state: background compiles publish into these the moment they
    /// finish, so concurrent executions warm-start mid-flight.
    pub retained: &'a [Arc<RetainedSlot>],
    /// Per-pipeline vectorized scan kernels extracted at prepare time
    /// (`None` where the pipeline has no vectorizable filter); handed to
    /// each pipeline's controller so the adaptive ladder can top out at
    /// the SIMD tier.
    pub kernels: &'a [Option<Arc<ScanKernel>>],
    /// Per-query calibrator, possibly seeded from the engine's
    /// cross-query `CalibrationStore`.
    pub calibrator: &'a Arc<CostCalibrator>,
    pub opts: &'a ExecOptions,
    /// Bind-variable values for this execution, one `u64` bit pattern per
    /// entry of `plan.params` (`f64` parameters as `to_bits`). Empty for
    /// non-parameterized plans. The slice is installed into the plan's
    /// param state slot, so every tier — interpreted, threaded, native,
    /// SIMD — reads the same block.
    pub params: &'a [u64],
    /// Per-pipeline quarantine views (one per pipeline, same indexing as
    /// `handles`): the controller skips tiers an earlier execution
    /// quarantined and records this run's compile outcomes.
    pub quarantine: &'a [PipelineQuarantine],
}

/// Run every pipeline of the plan in order through the hot-swap handles:
/// state assembly, the morsel loops, sink finalisation, and the report's
/// execution-side fields. Code generation, translation, and up-front
/// compilation have already happened — this is the part a warm prepared
/// query repeats on every execution.
pub(crate) fn run_pipelines(
    run: QueryRun<'_>,
    report: &mut Report,
) -> Result<ResultRows, ExecError> {
    let QueryRun {
        plan,
        cat,
        functions,
        externs,
        registry,
        handles,
        retained,
        kernels,
        calibrator,
        opts,
        params,
        quarantine,
    } = run;

    // ---- state assembly ---------------------------------------------------
    let mut state = QueryState {
        slots: vec![0; plan.state_slots],
        join_hts: (0..plan.join_hts.len()).map(|_| None).collect(),
        agg_rows: vec![Vec::new(); plan.aggs.len()],
        mat_rows: vec![Vec::new(); plan.mats.len()],
        out_rows: Vec::new(),
        _dicts: plan.dicts.iter().map(|d| d.bytes.clone()).collect(),
    };
    for d in &plan.dicts {
        state.slots[d.state_slot] = d.bytes.as_ptr() as u64;
    }
    if let Some(ps) = plan.param_slot {
        if params.len() != plan.params.len() {
            return Err(ExecError::Bind(format!(
                "plan expects {} parameter(s), got {}",
                plan.params.len(),
                params.len()
            )));
        }
        // `params` borrows from the caller, which outlives the morsel
        // loops — same lifetime discipline as the dictionary slots above.
        state.slots[ps] = params.as_ptr() as u64;
    }

    let agg_shapes: Vec<(usize, Vec<crate::plan::AggFunc>)> =
        plan.aggs.iter().map(|a| (a.nkeys, a.aggs.clone())).collect();

    let exec_start = Instant::now();
    let compile_events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let background_compiles = Arc::new(AtomicUsize::new(0));

    // One reusable register-file buffer per worker for the *whole query*:
    // a pipeline whose frame spills to the heap re-uses the previous
    // pipeline's allocation instead of growing a fresh one.
    let threads = opts.threads.max(1);
    let mut frames: Vec<Frame> = (0..threads).map(|_| Frame::new()).collect();

    // ---- run pipelines in order -------------------------------------------
    for p in &plan.pipelines {
        // Cancellation checkpoint between pipelines: a query poisoned
        // while pipeline k was finalizing never starts pipeline k+1.
        opts.cancel.check()?;
        // Resolve the source: base pointers + total work.
        let total_rows = match &p.source {
            Source::Table { table, cols, slot_base, .. } => {
                let t = cat
                    .get(table)
                    .ok_or_else(|| ExecError::Setup(format!("unknown table {table}")))?;
                for (k, &c) in cols.iter().enumerate() {
                    state.slots[slot_base + k] = t.column(c).base_ptr() as u64;
                }
                t.row_count()
            }
            Source::Rows { rows_slot, field_tys } => {
                // Filled by a previous finalize step.
                let _ = field_tys;
                state.slots[*rows_slot + 1] as usize
            }
        };

        let pipeline = PipelineRun {
            pid: p.id,
            function: &functions[p.id],
            externs,
            handle: &handles[p.id],
            retained: &retained[p.id],
            kernel: kernels.get(p.id).and_then(|k| k.clone()),
            registry,
            total_rows,
            plan,
            agg_shapes: &agg_shapes,
            opts,
            exec_start,
            compile_events: &compile_events,
            background_compiles: &background_compiles,
            calibrator,
            quarantine: &quarantine[p.id],
        };
        pipeline.run(report, &mut state, &mut frames)?;
    }

    report.background_compiles += background_compiles.load(Ordering::Relaxed);
    report.exec = exec_start.elapsed();
    report.trace.extend(compile_events.lock().drain(..));
    report.trace.sort_by_key(|e| (e.thread, e.start_us));
    report.calibration = calibrator.report();

    // ---- final output ------------------------------------------------------
    let rows = std::mem::take(&mut state.out_rows);
    Ok(ResultRows { tys: plan.output_tys.clone(), rows })
}

/// Widest row any sink of the plan stages into the row buffer.
fn plan_max_row_width(plan: &PhysicalPlan) -> usize {
    let mut w = plan.output_tys.len();
    for ht in &plan.join_hts {
        w = w.max(ht.nkeys + ht.payload);
    }
    for a in &plan.aggs {
        w = w.max(a.nkeys + a.aggs.len());
    }
    for m in &plan.mats {
        w = w.max(m.width);
    }
    w
}

/// Everything one pipeline run needs (bundled so the orchestration reads
/// as: build scheduler, spawn workers, finalize controller, run the sink).
struct PipelineRun<'a> {
    pid: usize,
    function: &'a Arc<Function>,
    externs: &'a Arc<Vec<ExternDecl>>,
    handle: &'a Arc<FunctionHandle>,
    retained: &'a Arc<RetainedSlot>,
    kernel: Option<Arc<ScanKernel>>,
    registry: &'a Arc<Registry>,
    total_rows: usize,
    plan: &'a PhysicalPlan,
    agg_shapes: &'a [(usize, Vec<crate::plan::AggFunc>)],
    opts: &'a ExecOptions,
    exec_start: Instant,
    compile_events: &'a Arc<Mutex<Vec<TraceEvent>>>,
    background_compiles: &'a Arc<AtomicUsize>,
    calibrator: &'a Arc<CostCalibrator>,
    quarantine: &'a PipelineQuarantine,
}

impl PipelineRun<'_> {
    fn run(
        self,
        report: &mut Report,
        state: &mut QueryState,
        frames: &mut [Frame],
    ) -> Result<(), ExecError> {
        let opts = self.opts;
        let threads = frames.len();

        // ---- scheduler assembly (see crate::sched) ------------------------
        let dispenser = MorselDispenser::new(
            self.total_rows as u64,
            threads,
            opts.min_morsel as u64,
            opts.max_morsel as u64,
            opts.steal,
        );
        let progress = Arc::new(PipelineProgress::new(threads));
        let controller = AdaptiveController::new(ControllerCtx {
            cancel: opts.cancel.clone(),
            pid: self.pid,
            function: self.function.clone(),
            externs: self.externs.clone(),
            handle: self.handle.clone(),
            retained: Some(self.retained.clone()),
            kernel: self.kernel.clone(),
            progress: progress.clone(),
            calibrator: self.calibrator.clone(),
            compile_events: self.compile_events.clone(),
            background_compiles: self.background_compiles.clone(),
            exec_start: self.exec_start,
            total_rows: self.total_rows as u64,
            threads,
            quarantine: Some(self.quarantine.clone()),
            adaptive: opts.mode == ExecMode::Adaptive,
            first_eval: opts.first_eval,
        });

        let state_ptr = state.slots.as_ptr() as u64;
        // Workers poll only the flag (relaxed, once per morsel); the error
        // value itself is stored under the mutex on the cold path.
        let failed = AtomicBool::new(false);
        let error: Mutex<Option<ExecError>> = Mutex::new(None);

        // Worker runtimes, one per thread (created up front so finalize can
        // collect them after the scope).
        let row_buf_slots = plan_max_row_width(self.plan);
        let mut worker_rts: Vec<Box<WorkerRt>> = (0..threads)
            .map(|_| {
                WorkerRt::with_row_buf(
                    self.plan.join_hts.len(),
                    self.agg_shapes,
                    self.plan.mats.len(),
                    row_buf_slots,
                )
            })
            .collect();
        let mut thread_traces: Vec<Vec<TraceEvent>> = vec![Vec::new(); threads];

        // ---- the morsel loop ----------------------------------------------
        std::thread::scope(|scope| {
            for (tid, ((wrt, ttrace), frame)) in worker_rts
                .iter_mut()
                .zip(thread_traces.iter_mut())
                .zip(frames.iter_mut())
                .enumerate()
            {
                let dispenser = &dispenser;
                let progress = &progress;
                let controller = &controller;
                let failed = &failed;
                let error = &error;
                let handle = self.handle;
                let registry = self.registry;
                let exec_start = self.exec_start;
                let pid = self.pid;
                let cancel = &opts.cancel;
                scope.spawn(move || {
                    // Panic isolation at the thread boundary: a worker
                    // that panics (a backend bug, an injected
                    // `worker=panic` fault) must fail the *query* with a
                    // typed error, not unwind through the scope join and
                    // abort the caller. The shared locks are
                    // non-poisoning (vendored parking_lot), so the other
                    // workers drain cleanly via the `failed` flag.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let wctx = wrt.wctx_ptr();
                        // The Fig. 5 indirection, loaded once and then refreshed
                        // only when the handle's (atomic) rank says a better
                        // backend was published: the `Arc` clone + lock of a
                        // full `load()` happens once per *switch*, not once per
                        // morsel — the controller can't swap more often than
                        // the rank changes, so nothing newer can be missed.
                        let mut backend = handle.load();
                        let mut backend_rank = backend.kind().rank();
                        loop {
                            if failed.load(Ordering::Relaxed) {
                                return;
                            }
                            // The cooperative cancellation checkpoint: one
                            // atomic load per claim on the live path. A
                            // poisoned token (client cancel, expired
                            // deadline, dropped connection) stops this
                            // worker before it claims another range — never
                            // mid-morsel, so sinks only ever see whole
                            // morsels.
                            if let Err(e) = cancel.check() {
                                let mut slot = error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                failed.store(true, Ordering::Relaxed);
                                return;
                            }
                            // Injectable fault site, once per claim round
                            // (`AQE_FAULT="worker=..."`). An `err` action
                            // surfaces as a typed internal error; a `panic`
                            // action exercises the catch_unwind boundary.
                            if let Err(m) = aqe_fault::failpoint("worker") {
                                let mut slot = error.lock();
                                if slot.is_none() {
                                    *slot = Some(ExecError::Internal { site: m });
                                }
                                failed.store(true, Ordering::Relaxed);
                                return;
                            }
                            // Front of our own partition, or stolen loot once
                            // it runs dry; `None` means the pipeline is done.
                            let Some(m) = dispenser.claim(tid) else { return };
                            let t_m0 = exec_start.elapsed().as_micros() as u64;
                            let args = [wctx, state_ptr, m.begin, m.end];
                            let rank = handle.rank();
                            if rank != backend_rank {
                                backend = handle.load();
                                backend_rank = rank;
                            }
                            if let Err(e) = backend.call(&args, registry, frame) {
                                let mut slot = error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                failed.store(true, Ordering::Relaxed);
                                return;
                            }
                            progress.record(tid, m.tuples());
                            if opts.trace {
                                ttrace.push(TraceEvent {
                                    thread: tid as u16,
                                    pipeline: pid as u16,
                                    kind: backend.kind().trace_kind(),
                                    start_us: t_m0,
                                    end_us: exec_start.elapsed().as_micros() as u64,
                                    tuples: m.tuples(),
                                });
                            }
                            // ---- adaptive decision (Fig. 7) -------------------
                            controller.maybe_decide();
                        }
                    }));
                    if caught.is_err() {
                        let mut slot = error.lock();
                        if slot.is_none() {
                            *slot = Some(ExecError::Internal {
                                site: format!("morsel worker {tid} (pipeline {pid})"),
                            });
                        }
                        failed.store(true, Ordering::Relaxed);
                    }
                });
            }
        });

        // Joins in-flight compiles (no detached-thread leak: their trace
        // events and calibration feedback land before the report is read).
        let sched = controller.finalize(&dispenser);
        report.degraded += sched.degraded;
        report.quarantine_skips += self.quarantine.skips();
        report.sched.push(sched);

        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        for t in thread_traces {
            report.trace.extend(t);
        }

        self.finalize_sink(state, &mut worker_rts)
    }

    /// Pipeline finalize (the "queryStart" host side).
    fn finalize_sink(
        &self,
        state: &mut QueryState,
        worker_rts: &mut [Box<WorkerRt>],
    ) -> Result<(), ExecError> {
        let plan = self.plan;
        let pipeline = &plan.pipelines[self.pid];
        match &pipeline.sink {
            Sink::BuildJoin { ht, keys, payload } => {
                let bufs: Vec<Vec<u64>> =
                    worker_rts.iter_mut().map(|w| std::mem::take(&mut w.join_bufs[*ht])).collect();
                let table = JoinHt::build(keys.len(), payload.len(), &bufs);
                let spec = &plan.join_hts[*ht];
                state.slots[spec.state_slot] = table.buckets.as_ptr() as u64;
                state.slots[spec.state_slot + 1] = table.mask;
                state.join_hts[*ht] = Some(table);
            }
            Sink::BuildAgg { agg, .. } => {
                let spec = &plan.aggs[*agg];
                let tables: Vec<crate::runtime::AggTable> = worker_rts
                    .iter_mut()
                    .map(|w| {
                        let fresh = crate::runtime::AggTable::new(spec.nkeys, &spec.aggs);
                        std::mem::replace(&mut w.agg_tables[*agg], fresh)
                    })
                    .collect();
                let rows = merge_agg_tables(&tables, spec.nkeys, &spec.aggs)?;
                let width = spec.nkeys + spec.aggs.len();
                let nrows = rows.len().checked_div(width).unwrap_or(0);
                state.agg_rows[*agg] = rows;
                state.slots[spec.rows_slot] = state.agg_rows[*agg].as_ptr() as u64;
                state.slots[spec.rows_slot + 1] = nrows as u64;
            }
            Sink::Materialize { mat } => {
                let spec = &plan.mats[*mat];
                let mut rows: Vec<u64> = Vec::new();
                for w in worker_rts.iter_mut() {
                    rows.append(&mut w.mat_bufs[*mat]);
                }
                if let Some((keys, limit)) = &spec.sort {
                    sort_rows(&mut rows, spec.width, keys, *limit);
                }
                state.mat_rows[*mat] = rows;
                state.slots[spec.rows_slot] = state.mat_rows[*mat].as_ptr() as u64;
                state.slots[spec.rows_slot + 1] =
                    (state.mat_rows[*mat].len() / spec.width.max(1)) as u64;
            }
            Sink::Emit => {
                for w in worker_rts.iter_mut() {
                    state.out_rows.append(&mut w.out_buf);
                }
            }
        }

        // A root sort materialises; expose it as the output.
        if self.pid == plan.pipelines.len() - 1 {
            if let Sink::Materialize { mat } = &pipeline.sink {
                state.out_rows = std::mem::take(&mut state.mat_rows[*mat]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_jit::compile::{compile, OptLevel};
    use aqe_vm::naive::NaiveBackend;
    use aqe_vm::translate::{translate, TranslateOptions};

    fn identity_function() -> Function {
        use aqe_ir::{FunctionBuilder, Type};
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let p = b.param(0);
        b.ret(Some(p.into()));
        b.finish().unwrap()
    }

    #[test]
    fn handle_swaps_are_monotonic_upgrades() {
        let f = identity_function();
        let bc = translate(&f, &[], TranslateOptions::default()).unwrap();
        let h = FunctionHandle::new(Arc::new(bc));
        assert_eq!(h.kind(), ExecMode::Bytecode);
        assert!(h.try_begin_compile());
        assert!(!h.try_begin_compile(), "second compile attempt must be rejected");
        // A failed compile re-opens the slot instead of leaking it.
        h.cancel_compile();
        assert!(h.try_begin_compile(), "cancel must re-open the compile slot");

        let unopt = compile(&f, &[], OptLevel::Unoptimized).unwrap();
        assert!(h.install(Arc::new(unopt)));
        assert_eq!(h.kind(), ExecMode::Unoptimized);
        assert!(h.try_begin_compile(), "compiles allowed again after install");

        // Downgrades are refused: the handle only moves up the rank order.
        let bc2 = translate(&f, &[], TranslateOptions::default()).unwrap();
        assert!(!h.install(Arc::new(bc2)));
        assert_eq!(h.kind(), ExecMode::Unoptimized);

        let opt = compile(&f, &[], OptLevel::Optimized).unwrap();
        assert!(h.install(Arc::new(opt)));
        assert_eq!(h.kind(), ExecMode::Optimized);
        assert_eq!(h.rank(), ExecMode::Optimized.rank());
    }

    #[test]
    fn retained_slot_installs_are_rank_monotonic_from_empty() {
        let f = identity_function();
        let slot = RetainedSlot::new();
        assert_eq!(slot.rank(), 0, "a fresh slot is empty");
        assert!(slot.load().is_none());

        let opt = compile(&f, &[], OptLevel::Optimized).unwrap();
        assert!(slot.install(Arc::new(opt)));
        assert_eq!(slot.rank(), ExecMode::Optimized.rank());

        // A lower-ranked late arrival (a racing unoptimized compile) is
        // refused; the best published backend stays.
        let unopt = compile(&f, &[], OptLevel::Unoptimized).unwrap();
        assert!(!slot.install(Arc::new(unopt)));
        assert_eq!(slot.load().unwrap().kind(), ExecMode::Optimized);
    }

    #[test]
    fn every_backend_agrees_through_the_handle() {
        // The §III-B contract, exercised end-to-end through the seam the
        // engine actually uses: identical results from every backend kind
        // installed into a FunctionHandle.
        let f = identity_function();
        let shared = Arc::new(f.clone());
        let backends: Vec<Arc<dyn PipelineBackend>> = vec![
            Arc::new(NaiveBackend::new(shared)),
            Arc::new(translate(&f, &[], TranslateOptions::default()).unwrap()),
            Arc::new(compile(&f, &[], OptLevel::Unoptimized).unwrap()),
            Arc::new(compile(&f, &[], OptLevel::Optimized).unwrap()),
        ];
        let rt = Registry::new();
        let mut frame = Frame::new();
        for b in backends {
            let h = FunctionHandle::new(b);
            let got = h.load().call(&[42], &rt, &mut frame).unwrap();
            assert_eq!(got, Some(42), "backend {:?}", h.kind());
        }
    }
}
