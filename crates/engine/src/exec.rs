//! Query execution: morsel-driven parallelism, hot-swappable function
//! handles (Fig. 5), and the adaptive controller (Fig. 7).
//!
//! "We always start executing every query using the bytecode interpreter and
//! all available threads. We then monitor the execution progress to decide
//! whether (unoptimized or optimized) compilation would be beneficial. If
//! this is the case, we start compiling on a background thread, while the
//! other threads continue the interpreted execution. Once compilation is
//! finished, all threads quickly switch to the compiled machine code."

use crate::codegen;
use crate::plan::{FieldTy, PhysicalPlan, Sink, Source};
use crate::runtime::{merge_agg_tables, sort_rows, JoinHt, WorkerRt};
use aqe_ir::{Function, Module};
use aqe_jit::compile::{compile, OptLevel};
use aqe_storage::Catalog;
use aqe_vm::interp::{ExecError, Frame};
use aqe_vm::naive::NaiveBackend;
use aqe_vm::rt::Registry;
use aqe_vm::translate::{translate, TranslateOptions};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Execution modes & cost model
// ---------------------------------------------------------------------------

/// Re-exported from `aqe-vm`: the mode vocabulary is shared by every
/// backend implementation, so it lives next to [`PipelineBackend`].
pub use aqe_vm::backend::{ExecMode, PipelineBackend};

/// The empirical model behind Fig. 7's `ctime(f)` and `speedup(f)`: compile
/// time is linear in IR instruction count (Fig. 6: "the number of LLVM
/// instructions of a query correlates very well with its compilation
/// time"); speedups are global empirical factors (§V-D).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    pub unopt_base_s: f64,
    pub unopt_per_instr_s: f64,
    pub opt_base_s: f64,
    pub opt_per_instr_s: f64,
    /// Execution speedup of unoptimized / optimized code over bytecode.
    pub speedup_unopt: f64,
    pub speedup_opt: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Defaults measured on this reproduction's backends (see
        // EXPERIMENTS.md); recalibrate with `CostModel::calibrate`.
        CostModel {
            unopt_base_s: 30e-6,
            unopt_per_instr_s: 0.4e-6,
            opt_base_s: 80e-6,
            opt_per_instr_s: 4.0e-6,
            speedup_unopt: 1.5,
            speedup_opt: 2.2,
        }
    }
}

impl CostModel {
    pub fn ctime(&self, level: OptLevel, instrs: usize) -> f64 {
        match level {
            OptLevel::Unoptimized => self.unopt_base_s + self.unopt_per_instr_s * instrs as f64,
            OptLevel::Optimized => self.opt_base_s + self.opt_per_instr_s * instrs as f64,
        }
    }
    pub fn speedup(&self, level: OptLevel) -> f64 {
        match level {
            OptLevel::Unoptimized => self.speedup_unopt,
            OptLevel::Optimized => self.speedup_opt,
        }
    }
}

/// Fig. 7's decision outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModeChoice {
    DoNothing,
    Unoptimized,
    Optimized,
}

/// `extrapolatePipelineDurations` (Fig. 7, verbatim structure): given the
/// remaining tuples `n`, the number of active workers `w`, the observed
/// current processing rate `r0` (tuples/s per thread), the current mode's
/// speedup factor over bytecode, and the model, pick the cheapest plan.
pub fn extrapolate_pipeline_durations(
    model: &CostModel,
    instrs: usize,
    n: f64,
    w: f64,
    r0: f64,
    current_speedup: f64,
    unopt_available: bool,
) -> ModeChoice {
    if r0 <= 0.0 || n <= 0.0 {
        return ModeChoice::DoNothing;
    }
    let r1 = r0 * (model.speedup(OptLevel::Unoptimized) / current_speedup);
    let c1 = model.ctime(OptLevel::Unoptimized, instrs);
    let r2 = r0 * (model.speedup(OptLevel::Optimized) / current_speedup);
    let c2 = model.ctime(OptLevel::Optimized, instrs);
    let t0 = n / r0 / w;
    // While compiling, w-1 workers keep processing at the current rate.
    let t1 = c1 + (n - (w - 1.0) * r0 * c1).max(0.0) / r1 / w;
    let t2 = c2 + (n - (w - 1.0) * r0 * c2).max(0.0) / r2 / w;
    let mut best = (t0, ModeChoice::DoNothing);
    if !unopt_available && t1 < best.0 && r1 > r0 {
        best = (t1, ModeChoice::Unoptimized);
    }
    if t2 < best.0 && r2 > r0 {
        best = (t2, ModeChoice::Optimized);
    }
    best.1
}

// ---------------------------------------------------------------------------
// Function handles (Fig. 5)
// ---------------------------------------------------------------------------

/// "Instead of identifying a worker function by its memory address, we
/// introduce an additional handle indirection. … to change the execution
/// mode, one only needs to set a function pointer in this handle object."
///
/// The handle holds exactly one `Arc<dyn PipelineBackend>` — the *current*
/// executable representation of the worker function. Workers [`load`] it
/// once per morsel and call through it without knowing (or branching on)
/// which backend it is; a background compilation publishes a better
/// representation with [`install`], and every worker picks it up on its
/// next morsel. Swaps are monotonic in [`ExecMode::rank`], so execution
/// only ever upgrades.
///
/// [`load`]: FunctionHandle::load
/// [`install`]: FunctionHandle::install
pub struct FunctionHandle {
    /// The current backend. An uncontended RwLock read is cheap relative
    /// to a morsel's worth of work (with the real `parking_lot` it is a
    /// single atomic op; the vendored offline stand-in wraps `std::sync`
    /// and costs slightly more), and writers only ever hold the lock for
    /// the duration of an `Arc` store.
    current: RwLock<Arc<dyn PipelineBackend>>,
    /// Cached `rank()` of the current backend; the adaptive controller
    /// polls this without touching the lock.
    rank: AtomicU8,
    /// A compilation is in flight.
    compiling: AtomicBool,
}

impl FunctionHandle {
    pub fn new(initial: Arc<dyn PipelineBackend>) -> Self {
        let rank = initial.kind().rank();
        FunctionHandle {
            current: RwLock::new(initial),
            rank: AtomicU8::new(rank),
            compiling: AtomicBool::new(false),
        }
    }

    /// The function-pointer read of Fig. 5: the backend to run the next
    /// morsel with.
    pub fn load(&self) -> Arc<dyn PipelineBackend> {
        self.current.read().clone()
    }

    /// Rank of the current backend (see [`ExecMode::rank`]).
    pub fn rank(&self) -> u8 {
        self.rank.load(Ordering::Acquire)
    }

    /// Kind of the current backend.
    pub fn kind(&self) -> ExecMode {
        self.current.read().kind()
    }

    /// Atomically publish `backend` if it outranks the current one.
    /// Returns whether the swap happened; either way the in-flight
    /// compilation marker is cleared.
    pub fn install(&self, backend: Arc<dyn PipelineBackend>) -> bool {
        let rank = backend.kind().rank();
        let swapped = {
            let mut cur = self.current.write();
            if rank > cur.kind().rank() {
                *cur = backend;
                self.rank.store(rank, Ordering::Release);
                true
            } else {
                false
            }
        };
        self.compiling.store(false, Ordering::Release);
        swapped
    }

    /// Claim the right to start a (single) background compilation.
    pub fn try_begin_compile(&self) -> bool {
        !self.compiling.swap(true, Ordering::AcqRel)
    }
}

// ---------------------------------------------------------------------------
// Tracing (Fig. 14)
// ---------------------------------------------------------------------------

/// One trace event (times in µs since query start).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub thread: u16,
    pub pipeline: u16,
    /// 0 = bytecode, 1 = unoptimized, 2 = optimized, 255 = compilation.
    pub kind: u8,
    pub start_us: u64,
    pub end_us: u64,
    pub tuples: u64,
}

/// Full execution report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub codegen: Duration,
    pub bc_translate: Duration,
    /// Up-front compilations (static modes): per pipeline.
    pub upfront_compile: Duration,
    pub exec: Duration,
    pub background_compiles: usize,
    pub trace: Vec<TraceEvent>,
    /// Pipeline labels, by pipeline id (for rendering traces).
    pub pipeline_labels: Vec<String>,
    /// IR instruction count of the module.
    pub ir_instrs: usize,
}

// ---------------------------------------------------------------------------
// Query state assembly & pipeline finalisation
// ---------------------------------------------------------------------------

struct QueryState {
    slots: Vec<u64>,
    join_hts: Vec<Option<JoinHt>>,
    agg_rows: Vec<Vec<u64>>, // merged group rows per agg
    mat_rows: Vec<Vec<u64>>,
    out_rows: Vec<u64>,
    /// Keep dictionaries alive for the duration.
    _dicts: Vec<Arc<Vec<u8>>>,
}

/// Execution result: dense rows of the output schema.
#[derive(Clone, Debug)]
pub struct ResultRows {
    pub tys: Vec<FieldTy>,
    pub rows: Vec<u64>,
}

impl ResultRows {
    pub fn row_count(&self) -> usize {
        if self.tys.is_empty() {
            0
        } else {
            self.rows.len() / self.tys.len()
        }
    }
}

/// Execution options.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    pub mode: ExecMode,
    pub threads: usize,
    pub trace: bool,
    pub model: CostModel,
    /// Initial morsel size; grows ×2 up to `max_morsel` ("we can further
    /// refine this extrapolation by using a dynamically growing morsel
    /// size").
    pub min_morsel: usize,
    pub max_morsel: usize,
    /// Delay before the first adaptive evaluation (paper: 1 ms).
    pub first_eval: Duration,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Adaptive,
            threads: 1,
            trace: false,
            model: CostModel::default(),
            min_morsel: 1024,
            max_morsel: 64 * 1024,
            first_eval: Duration::from_millis(1),
        }
    }
}

/// Execute a physical plan. Returns the output rows and a report.
pub fn execute_plan(
    plan: &PhysicalPlan,
    cat: &Catalog,
    opts: &ExecOptions,
) -> Result<(ResultRows, Report), ExecError> {
    let mut report = Report {
        pipeline_labels: plan.pipelines.iter().map(|p| p.label.clone()).collect(),
        ..Default::default()
    };

    // ---- code generation -------------------------------------------------
    let t0 = Instant::now();
    let module = codegen::generate(plan, cat);
    report.codegen = t0.elapsed();
    report.ir_instrs = module.instruction_count();

    execute_module(plan, cat, &module, opts, report)
}

/// Execute with a pre-generated module (used by benches that time stages).
pub fn execute_module(
    plan: &PhysicalPlan,
    cat: &Catalog,
    module: &Module,
    opts: &ExecOptions,
    mut report: Report,
) -> Result<(ResultRows, Report), ExecError> {
    let registry = Arc::new(
        Registry::for_externs(&module.externs, |name| {
            codegen::runtime_fns().iter().find(|(n, _)| *n == name).map(|(_, f)| *f)
        })
        .expect("runtime registry"),
    );

    // Worker functions, shared with backends and background compilations.
    let functions: Vec<Arc<Function>> =
        module.functions.iter().map(|f| Arc::new(f.clone())).collect();

    // ---- initial backend per pipeline -------------------------------------
    // Every mode goes through the same hot-swap handle; they differ only in
    // which backend is installed before execution starts. Bytecode
    // translation is the default starting point ("we always start executing
    // every query using the bytecode interpreter") and is nearly free; the
    // naive-IR mode walks the SSA directly and skips translation.
    let t0 = Instant::now();
    let handles: Vec<Arc<FunctionHandle>> = functions
        .iter()
        .map(|f| {
            let initial: Arc<dyn PipelineBackend> = match opts.mode {
                ExecMode::NaiveIr => Arc::new(NaiveBackend::new(f.clone())),
                _ => Arc::new(
                    translate(f, &module.externs, TranslateOptions::default())
                        .expect("bytecode translation"),
                ),
            };
            Arc::new(FunctionHandle::new(initial))
        })
        .collect();
    report.bc_translate = t0.elapsed();

    // ---- up-front compilation for the static compiled modes --------------
    let t0 = Instant::now();
    let upfront_level = match opts.mode {
        ExecMode::Unoptimized => Some(OptLevel::Unoptimized),
        ExecMode::Optimized => Some(OptLevel::Optimized),
        _ => None,
    };
    if let Some(level) = upfront_level {
        for (f, h) in functions.iter().zip(&handles) {
            h.install(Arc::new(compile(f, &module.externs, level).expect("compile")));
        }
    }
    report.upfront_compile = t0.elapsed();

    // ---- state assembly ---------------------------------------------------
    let mut state = QueryState {
        slots: vec![0; plan.state_slots],
        join_hts: (0..plan.join_hts.len()).map(|_| None).collect(),
        agg_rows: vec![Vec::new(); plan.aggs.len()],
        mat_rows: vec![Vec::new(); plan.mats.len()],
        out_rows: Vec::new(),
        _dicts: plan.dicts.iter().map(|d| d.bytes.clone()).collect(),
    };
    for d in &plan.dicts {
        state.slots[d.state_slot] = d.bytes.as_ptr() as u64;
    }

    let agg_shapes: Vec<(usize, Vec<crate::plan::AggFunc>)> =
        plan.aggs.iter().map(|a| (a.nkeys, a.aggs.clone())).collect();

    let exec_start = Instant::now();
    let compile_events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let background_compiles = Arc::new(AtomicUsize::new(0));

    // ---- run pipelines in order -------------------------------------------
    for p in &plan.pipelines {
        // Resolve the source: base pointers + total work.
        let total_rows = match &p.source {
            Source::Table { table, cols, slot_base, .. } => {
                let t = cat.get(table).expect("unknown table");
                for (k, &c) in cols.iter().enumerate() {
                    state.slots[slot_base + k] = t.column(c).base_ptr() as u64;
                }
                t.row_count()
            }
            Source::Rows { rows_slot, field_tys } => {
                // Filled by a previous finalize step.
                let _ = field_tys;
                state.slots[*rows_slot + 1] as usize
            }
        };

        run_pipeline(
            p.id,
            &functions[p.id],
            module,
            &handles[p.id],
            &registry,
            total_rows,
            plan,
            &agg_shapes,
            opts,
            exec_start,
            &mut report,
            &compile_events,
            &background_compiles,
            &mut state,
        )?;
    }

    report.background_compiles = background_compiles.load(Ordering::Relaxed);
    report.exec = exec_start.elapsed();
    report.trace.extend(compile_events.lock().drain(..));
    report.trace.sort_by_key(|e| (e.thread, e.start_us));

    // ---- final output ------------------------------------------------------
    let rows = std::mem::take(&mut state.out_rows);
    Ok((ResultRows { tys: plan.output_tys.clone(), rows }, report))
}

/// Widest row any sink of the plan stages into the row buffer.
fn plan_max_row_width(plan: &PhysicalPlan) -> usize {
    let mut w = plan.output_tys.len();
    for ht in &plan.join_hts {
        w = w.max(ht.nkeys + ht.payload);
    }
    for a in &plan.aggs {
        w = w.max(a.nkeys + a.aggs.len());
    }
    for m in &plan.mats {
        w = w.max(m.width);
    }
    w
}

/// Per-pipeline progress shared between workers and the decider.
struct Progress {
    next: AtomicU64,
    done_tuples: AtomicU64,
    /// Tuples processed since the last rate reset and its start time.
    since_reset: AtomicU64,
    reset_at: Mutex<Instant>,
    deciding: AtomicBool,
}

#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    pid: usize,
    function: &Arc<Function>,
    module: &Module,
    handle: &Arc<FunctionHandle>,
    registry: &Arc<Registry>,
    total_rows: usize,
    plan: &PhysicalPlan,
    agg_shapes: &[(usize, Vec<crate::plan::AggFunc>)],
    opts: &ExecOptions,
    exec_start: Instant,
    report: &mut Report,
    compile_events: &Arc<Mutex<Vec<TraceEvent>>>,
    background_compiles: &Arc<AtomicUsize>,
    state: &mut QueryState,
) -> Result<(), ExecError> {
    let threads = opts.threads.max(1);
    let progress = Progress {
        next: AtomicU64::new(0),
        done_tuples: AtomicU64::new(0),
        since_reset: AtomicU64::new(0),
        reset_at: Mutex::new(Instant::now()),
        deciding: AtomicBool::new(false),
    };
    let pipeline_start = Instant::now();
    let instrs = function.instruction_count();
    let state_ptr = state.slots.as_ptr() as u64;
    let error: Mutex<Option<ExecError>> = Mutex::new(None);
    let adaptive = opts.mode == ExecMode::Adaptive;

    // Worker runtimes, one per thread (created up front so finalize can
    // collect them after the scope).
    let row_buf_slots = plan_max_row_width(plan);
    let mut worker_rts: Vec<Box<WorkerRt>> = (0..threads)
        .map(|_| {
            WorkerRt::with_row_buf(plan.join_hts.len(), agg_shapes, plan.mats.len(), row_buf_slots)
        })
        .collect();
    let mut thread_traces: Vec<Vec<TraceEvent>> = vec![Vec::new(); threads];

    std::thread::scope(|scope| {
        for (tid, (wrt, ttrace)) in worker_rts.iter_mut().zip(thread_traces.iter_mut()).enumerate()
        {
            let progress = &progress;
            let error = &error;
            let handle = handle.clone();
            let registry = registry.clone();
            let model = opts.model;
            let compile_events = compile_events.clone();
            let background_compiles = background_compiles.clone();
            let worker_function = if adaptive { Some(function.clone()) } else { None };
            let externs = module.externs.clone();
            scope.spawn(move || {
                let wctx = wrt.wctx_ptr();
                let mut frame = Frame::new();
                let mut morsel_size = opts.min_morsel as u64;
                let mut morsel_count = 0u64;
                loop {
                    if error.lock().is_some() {
                        return;
                    }
                    let begin = progress.next.fetch_add(morsel_size, Ordering::Relaxed);
                    if begin >= total_rows as u64 {
                        return;
                    }
                    let end = (begin + morsel_size).min(total_rows as u64);
                    let t_m0 = exec_start.elapsed().as_micros() as u64;
                    let args = [wctx, state_ptr, begin, end];
                    // The Fig. 5 indirection: pick up whatever backend is
                    // currently published and run the morsel through it —
                    // no per-mode branches here.
                    let backend = handle.load();
                    if let Err(e) = backend.call(&args, &registry, &mut frame) {
                        *error.lock() = Some(e);
                        return;
                    }
                    let tuples = end - begin;
                    progress.done_tuples.fetch_add(tuples, Ordering::Relaxed);
                    progress.since_reset.fetch_add(tuples, Ordering::Relaxed);
                    if opts.trace {
                        ttrace.push(TraceEvent {
                            thread: tid as u16,
                            pipeline: pid as u16,
                            kind: backend.kind().trace_kind(),
                            start_us: t_m0,
                            end_us: exec_start.elapsed().as_micros() as u64,
                            tuples,
                        });
                    }
                    morsel_count += 1;
                    if morsel_count.is_power_of_two() && morsel_size < opts.max_morsel as u64 {
                        morsel_size *= 2;
                    }

                    // ---- adaptive decision (Fig. 7) -----------------------
                    if adaptive
                        && pipeline_start.elapsed() >= opts.first_eval
                        && !progress.deciding.swap(true, Ordering::AcqRel)
                    {
                        let done = progress.done_tuples.load(Ordering::Relaxed);
                        let n = (total_rows as u64).saturating_sub(done) as f64;
                        let since = progress.since_reset.load(Ordering::Relaxed) as f64;
                        let elapsed = progress.reset_at.lock().elapsed().as_secs_f64();
                        let w = threads as f64;
                        let r0 = if elapsed > 0.0 { since / elapsed / w } else { 0.0 };
                        // Lock-free poll of the current backend via the
                        // cached rank — the decision path never touches
                        // the handle's lock.
                        let cur_rank = handle.rank();
                        let cur_speedup = if cur_rank == ExecMode::Optimized.rank() {
                            model.speedup(OptLevel::Optimized)
                        } else if cur_rank == ExecMode::Unoptimized.rank() {
                            model.speedup(OptLevel::Unoptimized)
                        } else {
                            1.0
                        };
                        let choice = extrapolate_pipeline_durations(
                            &model,
                            instrs,
                            n,
                            w,
                            r0,
                            cur_speedup,
                            cur_rank >= ExecMode::Unoptimized.rank(),
                        );
                        let target = match choice {
                            ModeChoice::DoNothing => None,
                            ModeChoice::Unoptimized if cur_rank < ExecMode::Unoptimized.rank() => {
                                Some(OptLevel::Unoptimized)
                            }
                            ModeChoice::Optimized if cur_rank < ExecMode::Optimized.rank() => {
                                Some(OptLevel::Optimized)
                            }
                            _ => None,
                        };
                        if let Some(level) = target {
                            if handle.try_begin_compile() {
                                // "the thread compiles the worker function
                                // and resets all processing rates" — we hand
                                // the compile to a background thread (§III:
                                // compilation is single-threaded, the other
                                // workers keep going).
                                let h = handle.clone();
                                let f = worker_function.clone().unwrap();
                                let externs = externs.clone();
                                let events = compile_events.clone();
                                let counter = background_compiles.clone();
                                let t_c0 = exec_start.elapsed().as_micros() as u64;
                                std::thread::spawn(move || {
                                    if let Ok(cf) = compile(&f, &externs, level) {
                                        let t_c1 = exec_start.elapsed().as_micros() as u64;
                                        events.lock().push(TraceEvent {
                                            thread: u16::MAX,
                                            pipeline: pid as u16,
                                            kind: 255,
                                            start_us: t_c0,
                                            end_us: t_c1,
                                            tuples: 0,
                                        });
                                        // Publish into the handle: all
                                        // workers switch on their next
                                        // morsel.
                                        if h.install(Arc::new(cf)) {
                                            counter.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                });
                                progress.since_reset.store(0, Ordering::Relaxed);
                                *progress.reset_at.lock() = Instant::now();
                            }
                        }
                        progress.deciding.store(false, Ordering::Release);
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    for t in thread_traces {
        report.trace.extend(t);
    }

    // ---- pipeline finalize (the "queryStart" host side) --------------------
    let pipeline = &plan.pipelines[pid];
    match &pipeline.sink {
        Sink::BuildJoin { ht, keys, payload } => {
            let bufs: Vec<Vec<u64>> =
                worker_rts.iter_mut().map(|w| std::mem::take(&mut w.join_bufs[*ht])).collect();
            let table = JoinHt::build(keys.len(), payload.len(), &bufs);
            let spec = &plan.join_hts[*ht];
            state.slots[spec.state_slot] = table.buckets.as_ptr() as u64;
            state.slots[spec.state_slot + 1] = table.mask;
            state.join_hts[*ht] = Some(table);
        }
        Sink::BuildAgg { agg, .. } => {
            let spec = &plan.aggs[*agg];
            let tables: Vec<crate::runtime::AggTable> = worker_rts
                .iter_mut()
                .map(|w| {
                    let fresh = crate::runtime::AggTable::new(spec.nkeys, &spec.aggs);
                    std::mem::replace(&mut w.agg_tables[*agg], fresh)
                })
                .collect();
            let rows = merge_agg_tables(&tables, spec.nkeys, &spec.aggs)?;
            let width = spec.nkeys + spec.aggs.len();
            let nrows = rows.len().checked_div(width).unwrap_or(0);
            state.agg_rows[*agg] = rows;
            state.slots[spec.rows_slot] = state.agg_rows[*agg].as_ptr() as u64;
            state.slots[spec.rows_slot + 1] = nrows as u64;
        }
        Sink::Materialize { mat } => {
            let spec = &plan.mats[*mat];
            let mut rows: Vec<u64> = Vec::new();
            for w in worker_rts.iter_mut() {
                rows.append(&mut w.mat_bufs[*mat]);
            }
            if let Some((keys, limit)) = &spec.sort {
                sort_rows(&mut rows, spec.width, keys, *limit);
            }
            state.mat_rows[*mat] = rows;
            state.slots[spec.rows_slot] = state.mat_rows[*mat].as_ptr() as u64;
            state.slots[spec.rows_slot + 1] =
                (state.mat_rows[*mat].len() / spec.width.max(1)) as u64;
        }
        Sink::Emit => {
            for w in worker_rts.iter_mut() {
                state.out_rows.append(&mut w.out_buf);
            }
        }
    }

    // A root sort materialises; expose it as the output.
    if pid == plan.pipelines.len() - 1 {
        if let Sink::Materialize { mat } = &pipeline.sink {
            state.out_rows = std::mem::take(&mut state.mat_rows[*mat]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_prefers_interpretation_for_tiny_work() {
        let m = CostModel::default();
        // 1k remaining tuples at 1M tuples/s: finishes in 1ms — never worth
        // hundreds of µs of compilation.
        let c = extrapolate_pipeline_durations(&m, 5000, 1e3, 4.0, 1e6, 1.0, false);
        assert_eq!(c, ModeChoice::DoNothing);
    }

    #[test]
    fn extrapolation_compiles_for_large_work() {
        let m = CostModel::default();
        // 100M tuples at 10M tuples/s/thread: worth compiling.
        let c = extrapolate_pipeline_durations(&m, 5000, 1e8, 4.0, 1e7, 1.0, false);
        assert_ne!(c, ModeChoice::DoNothing);
    }

    #[test]
    fn extrapolation_upgrades_from_unopt_to_opt() {
        let m = CostModel::default();
        // Already running unoptimized code (speedup factor applied); for
        // huge remaining work the optimized mode should still win.
        let c = extrapolate_pipeline_durations(&m, 2000, 1e9, 4.0, 2e7, m.speedup_unopt, true);
        assert_eq!(c, ModeChoice::Optimized);
    }

    fn identity_function() -> Function {
        use aqe_ir::{FunctionBuilder, Type};
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let p = b.param(0);
        b.ret(Some(p.into()));
        b.finish().unwrap()
    }

    #[test]
    fn handle_swaps_are_monotonic_upgrades() {
        let f = identity_function();
        let bc = translate(&f, &[], TranslateOptions::default()).unwrap();
        let h = FunctionHandle::new(Arc::new(bc));
        assert_eq!(h.kind(), ExecMode::Bytecode);
        assert!(h.try_begin_compile());
        assert!(!h.try_begin_compile(), "second compile attempt must be rejected");

        let unopt = compile(&f, &[], OptLevel::Unoptimized).unwrap();
        assert!(h.install(Arc::new(unopt)));
        assert_eq!(h.kind(), ExecMode::Unoptimized);
        assert!(h.try_begin_compile(), "compiles allowed again after install");

        // Downgrades are refused: the handle only moves up the rank order.
        let bc2 = translate(&f, &[], TranslateOptions::default()).unwrap();
        assert!(!h.install(Arc::new(bc2)));
        assert_eq!(h.kind(), ExecMode::Unoptimized);

        let opt = compile(&f, &[], OptLevel::Optimized).unwrap();
        assert!(h.install(Arc::new(opt)));
        assert_eq!(h.kind(), ExecMode::Optimized);
        assert_eq!(h.rank(), ExecMode::Optimized.rank());
    }

    #[test]
    fn every_backend_agrees_through_the_handle() {
        // The §III-B contract, exercised end-to-end through the seam the
        // engine actually uses: identical results from every backend kind
        // installed into a FunctionHandle.
        let f = identity_function();
        let shared = Arc::new(f.clone());
        let backends: Vec<Arc<dyn PipelineBackend>> = vec![
            Arc::new(NaiveBackend::new(shared)),
            Arc::new(translate(&f, &[], TranslateOptions::default()).unwrap()),
            Arc::new(compile(&f, &[], OptLevel::Unoptimized).unwrap()),
            Arc::new(compile(&f, &[], OptLevel::Optimized).unwrap()),
        ];
        let rt = Registry::new();
        let mut frame = Frame::new();
        for b in backends {
            let h = FunctionHandle::new(b);
            let got = h.load().call(&[42], &rt, &mut frame).unwrap();
            assert_eq!(got, Some(42), "backend {:?}", h.kind());
        }
    }
}
