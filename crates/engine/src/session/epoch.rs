//! The epoch cell: the one shared-state discipline of the session layer.
//!
//! Everything the engine shares between concurrent executions — the
//! catalog, a prepared query's compiled state, the calibration store's
//! read side — follows the same pattern: an immutable value behind an
//! `Arc`, published into a cell whose critical sections are a single
//! pointer copy. Readers [`get`](EpochCell::get) a clone and then work
//! lock-free on their private epoch for as long as they like; writers
//! build a complete replacement off to the side and [`set`](EpochCell::set)
//! it in one store. Nothing ever holds the cell across a morsel loop, a
//! compile, or a catalog rebuild.
//!
//! (The cell itself is an `RwLock` around a `Clone` value rather than a
//! bespoke atomic-pointer swap: with both guards held only for the
//! duration of an `Arc` clone or store, the lock is uncontendable in
//! practice, and it sidesteps the ABA/reclamation subtleties a hand-rolled
//! lock-free cell would need — the vendored `parking_lot` stand-in wraps
//! `std::sync`, whose uncontended fast path is a single atomic op.)

use parking_lot::RwLock;

/// A cell holding the current epoch of a shared value (typically an
/// `Arc<T>` or `Option<Arc<T>>`): O(1) critical sections, clone-out reads,
/// whole-value writes.
pub(crate) struct EpochCell<T: Clone> {
    cell: RwLock<T>,
}

impl<T: Clone> EpochCell<T> {
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell { cell: RwLock::new(value) }
    }

    /// Clone the current epoch out of the cell. The guard is released
    /// before this returns; the caller's copy is immune to later `set`s.
    pub fn get(&self) -> T {
        self.cell.read().clone()
    }

    /// Publish a new epoch. Readers that already `get` their copy are
    /// unaffected; the next `get` sees the new value.
    pub fn set(&self, value: T) {
        *self.cell.write() = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn readers_keep_their_epoch_across_a_set() {
        let cell = EpochCell::new(Arc::new(1));
        let pinned = cell.get();
        cell.set(Arc::new(2));
        assert_eq!(*pinned, 1, "a reader's clone is immune to later publishes");
        assert_eq!(*cell.get(), 2);
    }
}
