//! The long-lived execution API: [`Engine`] → [`Session`] → [`PreparedQuery`].
//!
//! The paper's whole premise is amortizing compilation against execution,
//! yet a one-shot execution re-runs codegen, bytecode translation, and the
//! adaptive warm-up ladder on every call and throws away the calibrator's
//! measured constants at query end. This subsystem is the
//! connection/prepared-statement lifecycle that lets all of that outlive
//! a single execution (DESIGN.md §6), built so that **concurrent traffic
//! never serializes on shared state** (DESIGN.md §8):
//!
//! * [`Engine`] — owns the catalog as an immutable, versioned
//!   [`CatalogSnapshot`] epoch swapped atomically on mutation, a
//!   cross-query [`CalibrationStore`] with snapshot reads, and a sharded,
//!   byte-budgeted result cache keyed by `(plan fingerprint, catalog
//!   version)`;
//! * [`Session`] — a per-client handle: `prepare` / `execute` plus the
//!   session's [`ExecOptions`] defaults;
//! * [`PreparedQuery`] — retains the generated module, the translated
//!   bytecode, and every backend a prior run already compiled, so a
//!   re-execution skips codegen and translation entirely and starts at
//!   the highest [`ExecLevel`] previously reached. First runs are still
//!   governed by the Fig. 7 controller — the ladder is only ever climbed
//!   once per (prepared query, catalog version).
//!
//! The concurrency discipline is uniform: an execution pins its epoch
//! (two `Arc` clones) at start and never holds an engine-wide lock across
//! the morsel loop; the only mutex a warm execution can block on is a
//! per-slot latch held for the duration of a pointer copy. Invalidation
//! is by construction, not by scanning: every cache key embeds
//! [`CatalogSnapshot::version`], which every mutation bumps.

mod cache;
mod calibration;
mod epoch;

pub use cache::CacheStats;
pub use calibration::{CalibrationStore, WorkloadShape};

use crate::cancel::CancelKind;
use crate::codegen;
use crate::exec::{
    run_pipelines, ExecMode, ExecOptions, FunctionHandle, ParamValue, PipelineBackend, QueryRun,
    Report, ResultRows, RetainedSlot,
};
use crate::plan::{decompose, DictTable, FieldTy, PhysicalPlan, PlanNode, Source};
use crate::sched::{CostCalibrator, CostModel, ExecLevel, PipelineQuarantine, QuarantineStore};
use crate::simd::{self, ScanKernel, SimdScanBackend};
use aqe_ir::{ExternDecl, Function, Module};
use aqe_jit::compile::{compile, OptLevel};
use aqe_storage::{Catalog, CatalogSnapshot, DataType};
use aqe_vm::interp::ExecError;
use aqe_vm::naive::NaiveBackend;
use aqe_vm::rt::Registry;
use aqe_vm::translate::{translate, TranslateOptions};
use cache::ResultCache;
use epoch::EpochCell;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Everything sessions share. `Arc`-held by every [`Session`] and
/// [`PreparedQuery`], so prepared statements stay valid for as long as
/// anything still references the engine.
struct EngineShared {
    /// The current catalog epoch. Executions `get` an `Arc` at start and
    /// run lock-free against it; mutations publish a copy-on-write
    /// successor. No execution ever holds a catalog-wide lock.
    catalog: EpochCell<Arc<CatalogSnapshot>>,
    /// Serializes *mutators* only (so two `with_catalog_mut` calls cannot
    /// lose each other's update); readers never touch it.
    catalog_mut: Mutex<()>,
    calibration: CalibrationStore,
    results: ResultCache,
    defaults: ExecOptions,
    stats: EngineStats,
    /// Serving-path counters ([`Engine::server_stats`]): the engine
    /// increments the cancellation outcomes itself; the front-door
    /// server increments the admission-side counters through
    /// [`Engine::server_counters`].
    server: Arc<ServerCounters>,
    /// Per-fingerprint tier quarantine: compile tiers that failed
    /// recently are skipped for a while, then probed again (ladder
    /// degradation, DESIGN.md §14).
    quarantine: Arc<QuarantineStore>,
}

/// Engine-lifetime concurrency counters (all atomics; written on the
/// execution path with relaxed ordering — observability, not
/// synchronization).
#[derive(Default)]
struct EngineStats {
    executions_started: AtomicU64,
    executions_completed: AtomicU64,
    /// Executions that built compiled state under the cold-compile latch.
    cold_builds: AtomicU64,
    /// Executions that reused published state without taking any latch.
    warm_executions: AtomicU64,
    /// Catalog epochs published by `with_catalog_mut`.
    snapshot_swaps: AtomicU64,
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
}

impl EngineStats {
    /// Enter an execution: bump started/in-flight, track the peak, and
    /// return the in-flight count including this execution.
    fn enter(&self) -> usize {
        self.executions_started.fetch_add(1, Ordering::Relaxed);
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::Relaxed);
        now
    }
}

/// Drops the in-flight count on every exit path (success, error, cache
/// hit) of one execution.
struct InFlight<'a>(&'a EngineStats);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.0.executions_completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Serving-path counters shared between the engine and the front-door
/// server (`crates/server`). The engine owns them so any embedder can
/// observe the serving surface through [`Engine::server_stats`] — the
/// same discipline as [`Engine::cache_stats`] — while the server crate
/// increments the admission-side half through
/// [`Engine::server_counters`]. All writes are relaxed atomics:
/// observability, not synchronization.
#[derive(Default)]
pub struct ServerCounters {
    accepted: AtomicU64,
    active: AtomicU64,
    queued: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    deadline_expired: AtomicU64,
    degraded: AtomicU64,
    quarantined: AtomicU64,
    overflowed: AtomicU64,
    conn_poisoned: AtomicU64,
    idle_reaped: AtomicU64,
}

impl ServerCounters {
    /// An execute request passed admission (it will run, now or queued).
    pub fn note_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered the admission wait queue.
    pub fn note_enqueued(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left the wait queue (dispatched or shed as a victim).
    pub fn note_dequeued(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// A request began executing on an engine worker.
    pub fn note_active(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// A request finished executing (any outcome).
    pub fn note_done(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Admission shed a request (the incoming one, or a queued victim
    /// displaced by higher-priority work).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative shed count (the load signal dispatched executions
    /// carry in `Report::admission::shed_at_dispatch`).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// An execution ended (or was refused at its first checkpoint)
    /// because its token was poisoned. Called by the engine itself.
    pub(crate) fn note_cancelled(&self, kind: CancelKind) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        if kind == CancelKind::Deadline {
            self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An execution's fault-containment outcome: `degraded` compiles
    /// failed and were absorbed by ladder degradation; `quarantined`
    /// tiers were skipped because of earlier failures. Called by the
    /// engine after every execution.
    pub(crate) fn note_containment(&self, degraded: u64, quarantined: u64) {
        if degraded > 0 {
            self.degraded.fetch_add(degraded, Ordering::Relaxed);
        }
        if quarantined > 0 {
            self.quarantined.fetch_add(quarantined, Ordering::Relaxed);
        }
    }

    /// A finished result overflowed its connection's outbound byte
    /// budget and was shed with a backpressure notice.
    pub fn note_overflow(&self) {
        self.overflowed.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection stopped draining even the shed notices and was
    /// poisoned (the event loop closes it).
    pub fn note_conn_poisoned(&self) {
        self.conn_poisoned.fetch_add(1, Ordering::Relaxed);
    }

    /// A quiescent connection sat past the idle window and was reaped.
    pub fn note_idle_reaped(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time view of [`ServerCounters`] ([`Engine::server_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Execute requests that passed admission.
    pub accepted: u64,
    /// Requests currently executing on engine workers.
    pub active: u64,
    /// Requests currently waiting in the admission queue.
    pub queued: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Executions that ended cancelled (any [`CancelKind`]).
    pub cancelled: u64,
    /// The subset of `cancelled` whose cause was an expired deadline.
    pub deadline_expired: u64,
    /// Compilations that failed (or panicked) and were contained by
    /// ladder degradation: the execution continued one rung down.
    pub degraded: u64,
    /// Tier skips served from the per-fingerprint quarantine (no compile
    /// attempted because an earlier execution's failure was still fresh).
    pub quarantined: u64,
    /// Results shed because they overflowed a connection's outbound
    /// byte budget (answered with a backpressure error frame).
    pub overflowed: u64,
    /// Connections poisoned for not draining past the outbound budget.
    pub conn_poisoned: u64,
    /// Connections closed by the idle reaper.
    pub idle_reaped: u64,
}

/// A point-in-time view of the engine's concurrency counters
/// ([`Engine::concurrency`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcurrencyStats {
    pub executions_started: u64,
    pub executions_completed: u64,
    /// Executions that built compiled state under a cold-compile latch.
    pub cold_builds: u64,
    /// Executions that reused published compiled state latch-free.
    pub warm_executions: u64,
    /// Catalog snapshot epochs published by mutations.
    pub snapshot_swaps: u64,
    pub in_flight: usize,
    pub peak_in_flight: usize,
}

/// The long-lived engine: catalog + caches + calibration memory.
///
/// ```no_run
/// use aqe_engine::session::Engine;
/// use aqe_storage::tpch;
///
/// let engine = Engine::new(tpch::generate(0.01));
/// let session = engine.session();
/// # let plan = unimplemented!();
/// let query = session.prepare_plan(plan);
/// let (rows, report) = session.execute(&query).unwrap();   // cold: codegen + warm-up
/// let (rows, report) = session.execute(&query).unwrap();   // warm: cached
/// ```
pub struct Engine {
    shared: Arc<EngineShared>,
}

impl Engine {
    /// An engine over `catalog` with default [`ExecOptions`] and the
    /// default result-cache budget.
    pub fn new(catalog: Catalog) -> Engine {
        Engine::with_defaults(catalog, ExecOptions::default())
    }

    /// An engine whose sessions start from `defaults`.
    pub fn with_defaults(catalog: Catalog, defaults: ExecOptions) -> Engine {
        Engine::with_result_cache_budget(catalog, defaults, cache::DEFAULT_BUDGET_BYTES)
    }

    /// An engine with an explicit result-cache byte budget (0 disables
    /// result caching entirely).
    pub fn with_result_cache_budget(
        catalog: Catalog,
        defaults: ExecOptions,
        cache_budget_bytes: usize,
    ) -> Engine {
        Engine {
            shared: Arc::new(EngineShared {
                catalog: EpochCell::new(Arc::new(catalog.snapshot())),
                catalog_mut: Mutex::new(()),
                calibration: CalibrationStore::new(),
                results: ResultCache::new(cache_budget_bytes),
                defaults,
                stats: EngineStats::default(),
                server: Arc::new(ServerCounters::default()),
                quarantine: Arc::new(QuarantineStore::new()),
            }),
        }
    }

    /// Open a session (a per-client handle; cheap, any number may exist).
    pub fn session(&self) -> Session {
        Session { shared: self.shared.clone(), defaults: self.shared.defaults.clone() }
    }

    /// Current catalog version (bumped by every mutation through
    /// [`with_catalog_mut`](Engine::with_catalog_mut)).
    pub fn catalog_version(&self) -> u64 {
        self.shared.catalog.get().version()
    }

    /// The current catalog epoch: an immutable snapshot that stays valid
    /// (tables, column base pointers and all) across later mutations.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.shared.catalog.get()
    }

    /// Read access to the catalog (a view of the current epoch).
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        let snap = self.shared.catalog.get();
        f(&Catalog::from_snapshot((*snap).clone()))
    }

    /// Mutate the catalog. The mutation runs against a copy-on-write
    /// builder and publishes a new snapshot epoch in one atomic swap —
    /// in-flight executions keep their pinned epoch; everything *derived*
    /// from older versions (cached results, retained code) is invalidated
    /// by the version bump, and unreachable result-cache entries are
    /// purged eagerly.
    pub fn with_catalog_mut<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        let _mutators = self.shared.catalog_mut.lock();
        let before = self.shared.catalog.get();
        let mut cat = Catalog::from_snapshot((*before).clone());
        let r = f(&mut cat);
        let snap = cat.snapshot();
        if snap.version() != before.version() {
            let version = snap.version();
            self.shared.catalog.set(Arc::new(snap));
            self.shared.stats.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
            self.shared.results.retain_version(version);
        }
        r
    }

    /// The engine's cross-query calibration store.
    pub fn calibration(&self) -> &CalibrationStore {
        &self.shared.calibration
    }

    /// Number of results currently cached.
    pub fn result_cache_len(&self) -> usize {
        self.shared.results.len()
    }

    /// Bytes currently pinned by cached results.
    pub fn result_cache_bytes(&self) -> usize {
        self.shared.results.bytes_used()
    }

    /// Result-cache behavior counters: entries, bytes, hit/miss/
    /// admission-rejection/eviction counts (see [`CacheStats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.results.stats()
    }

    /// The engine's concurrency counters: executions started/completed/
    /// in flight, cold builds vs latch-free warm reuses, snapshot swaps.
    pub fn concurrency(&self) -> ConcurrencyStats {
        let s = &self.shared.stats;
        ConcurrencyStats {
            executions_started: s.executions_started.load(Ordering::Relaxed),
            executions_completed: s.executions_completed.load(Ordering::Relaxed),
            cold_builds: s.cold_builds.load(Ordering::Relaxed),
            warm_executions: s.warm_executions.load(Ordering::Relaxed),
            snapshot_swaps: s.snapshot_swaps.load(Ordering::Relaxed),
            in_flight: s.in_flight.load(Ordering::Relaxed),
            peak_in_flight: s.peak_in_flight.load(Ordering::Relaxed),
        }
    }

    /// Re-bound the result cache's byte budget (0 disables it; shrinking
    /// evicts by size-weighted LRU immediately).
    pub fn set_result_cache_budget(&self, budget_bytes: usize) {
        self.shared.results.set_budget(budget_bytes);
    }

    /// The serving-path counters, for the front-door server to increment
    /// its admission-side half (accepted / queued / shed / active). The
    /// cancellation outcomes are counted by the engine itself.
    pub fn server_counters(&self) -> Arc<ServerCounters> {
        self.shared.server.clone()
    }

    /// A point-in-time view of the serving-path counters: accepted,
    /// active, queued, shed, cancelled, deadline-expired.
    pub fn server_stats(&self) -> ServerStats {
        let s = &self.shared.server;
        ServerStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            active: s.active.load(Ordering::Relaxed),
            queued: s.queued.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            deadline_expired: s.deadline_expired.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            quarantined: s.quarantined.load(Ordering::Relaxed),
            overflowed: s.overflowed.load(Ordering::Relaxed),
            conn_poisoned: s.conn_poisoned.load(Ordering::Relaxed),
            idle_reaped: s.idle_reaped.load(Ordering::Relaxed),
        }
    }

    /// Quarantine entries currently holding a live skip budget (broken
    /// tiers being avoided right now).
    pub fn quarantine_active(&self) -> usize {
        self.shared.quarantine.active()
    }
}

/// A per-client handle onto an [`Engine`]: prepares and executes queries
/// with its own [`ExecOptions`] defaults.
pub struct Session {
    shared: Arc<EngineShared>,
    defaults: ExecOptions,
}

impl Session {
    /// The options [`execute`](Session::execute) runs with.
    pub fn defaults(&self) -> &ExecOptions {
        &self.defaults
    }

    /// Replace this session's default options.
    pub fn set_defaults(&mut self, defaults: ExecOptions) {
        self.defaults = defaults;
    }

    /// Read access to the engine's catalog (e.g. for planning SQL against
    /// it — see `aqe_sql::prepare`).
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        let snap = self.shared.catalog.get();
        f(&Catalog::from_snapshot((*snap).clone()))
    }

    /// Decompose a plan tree against the engine's catalog and prepare it.
    pub fn prepare(&self, root: &PlanNode, dicts: Vec<DictTable>) -> PreparedQuery {
        let snap = self.shared.catalog.get();
        self.prepare_plan(decompose(&snap, root, dicts))
    }

    /// Prepare an already-decomposed physical plan.
    pub fn prepare_plan(&self, plan: PhysicalPlan) -> PreparedQuery {
        PreparedQuery {
            engine: self.shared.clone(),
            fingerprint: plan.fingerprint(),
            plan: Arc::new(plan),
            module: None,
            state: EpochCell::new(None),
            build: Mutex::new(()),
        }
    }

    /// Prepare a plan with a caller-generated IR module (stage-timing
    /// harnesses that measure codegen separately). The module is trusted
    /// to match the plan; it is retained verbatim across catalog versions.
    pub fn prepare_module(&self, plan: PhysicalPlan, module: Module) -> PreparedQuery {
        PreparedQuery {
            engine: self.shared.clone(),
            fingerprint: plan.fingerprint(),
            plan: Arc::new(plan),
            module: Some(Arc::new(module)),
            state: EpochCell::new(None),
            build: Mutex::new(()),
        }
    }

    /// Execute with the session's default options.
    pub fn execute(&self, query: &PreparedQuery) -> Result<(ResultRows, Report), ExecError> {
        self.execute_with(query, &self.defaults)
    }

    /// Execute a prepared query.
    ///
    /// Cold path: generate IR, translate to bytecode, run the Fig. 7
    /// ladder from the interpreter up. Warm path: reuse the retained
    /// module/bytecode/compiled backends (`Report::{codegen,
    /// bc_translate}` are zero) and start every pipeline at the highest
    /// level a prior run reached — **without blocking concurrent warm
    /// executions of the same query**: the compiled state is read through
    /// an epoch cell and the per-pipeline backends through hot-swap
    /// slots, so the only serialization left is the one-time cold-compile
    /// latch. With `opts.cache_results`, an identical plan over an
    /// unchanged catalog returns straight from the sharded result cache
    /// (`Report::result_cache_hit`) without running a single morsel.
    pub fn execute_with(
        &self,
        query: &PreparedQuery,
        opts: &ExecOptions,
    ) -> Result<(ResultRows, Report), ExecError> {
        if !query.plan.params.is_empty() {
            return Err(ExecError::Bind(format!(
                "query expects {} parameter(s); use execute_bound",
                query.plan.params.len()
            )));
        }
        self.execute_inner(query, &[], opts)
    }

    /// Execute a parameterized prepared query with bind values, using the
    /// session's default options.
    ///
    /// This is the warm path the whole binding pipeline exists for: the
    /// retained module, bytecode, compiled backends, and reached
    /// [`ExecLevel`] are all keyed by the *generalized* plan, so distinct
    /// bindings of one statement share every compilation artifact —
    /// a warm bound execution reports `codegen == bc_translate == ZERO`
    /// no matter how fresh its values are. Results are cached per
    /// `(fingerprint, param values, catalog version)`, so bindings never
    /// alias each other's rows.
    pub fn execute_bound(
        &self,
        query: &PreparedQuery,
        params: &[ParamValue],
    ) -> Result<(ResultRows, Report), ExecError> {
        self.execute_bound_with(query, params, &self.defaults)
    }

    /// [`execute_bound`](Session::execute_bound) with explicit options.
    ///
    /// Arity and type mismatches — and binding values to a query that has
    /// no parameters — are [`ExecError::Bind`] values, never panics.
    pub fn execute_bound_with(
        &self,
        query: &PreparedQuery,
        params: &[ParamValue],
        opts: &ExecOptions,
    ) -> Result<(ResultRows, Report), ExecError> {
        let want = &query.plan.params;
        if want.is_empty() && !params.is_empty() {
            return Err(ExecError::Bind(format!(
                "query has no parameters, got {} value(s)",
                params.len()
            )));
        }
        if params.len() != want.len() {
            return Err(ExecError::Bind(format!(
                "query expects {} parameter(s), got {}",
                want.len(),
                params.len()
            )));
        }
        for (i, (p, w)) in params.iter().zip(want.iter()).enumerate() {
            if p.field_ty() != *w {
                return Err(ExecError::Bind(format!(
                    "parameter ${} expects {w:?}, got {:?} ({p:?})",
                    i + 1,
                    p.field_ty()
                )));
            }
        }
        let bits: Vec<u64> = params.iter().map(ParamValue::bits).collect();
        self.execute_inner(query, &bits, opts)
    }

    fn execute_inner(
        &self,
        query: &PreparedQuery,
        params: &[u64],
        opts: &ExecOptions,
    ) -> Result<(ResultRows, Report), ExecError> {
        if !Arc::ptr_eq(&query.engine, &self.shared) {
            return Err(ExecError::Setup(
                "prepared query belongs to a different engine".to_string(),
            ));
        }
        // Pin this execution's catalog epoch: generated code dereferences
        // column base pointers, and the snapshot's `Arc`s keep them alive
        // even if a concurrent mutation publishes a newer epoch mid-run.
        // From here on, nothing in this execution reads shared catalog
        // state — no lock is held across the morsel loop.
        let snap: Arc<CatalogSnapshot> = self.shared.catalog.get();
        let version = snap.version();
        let plan = &query.plan;

        let stats = &self.shared.stats;
        let _in_flight = InFlight(stats);
        let mut report = Report {
            pipeline_labels: plan.pipelines.iter().map(|p| p.label.clone()).collect(),
            snapshot_version: version,
            concurrent_executions: stats.enter(),
            admission: opts.admission,
            ..Default::default()
        };

        // Refuse-before-work: a request whose token was poisoned while it
        // waited in an admission queue (or whose deadline expired there)
        // ends here — before touching prepared state, the compile latch,
        // or the result cache.
        if let Err(e) = opts.cancel.check() {
            if let Some(kind) = opts.cancel.kind() {
                self.shared.server.note_cancelled(kind);
            }
            return Err(e);
        }

        // ---- result cache -------------------------------------------------
        // Module-override prepares are excluded in both directions: their
        // rows reflect the caller's module, but the key would only name
        // the plan — caching them could serve wrong rows to an honest
        // prepare of the same plan (and vice versa).
        // Bind values join the key: one generalized fingerprint covers
        // every binding of a statement, so the values are what separate
        // one binding's rows from another's.
        let key = (query.fingerprint, version, params.to_vec());
        let cacheable = opts.cache_results && query.module.is_none();
        if cacheable {
            if let Some(rows) = self.shared.results.get(&key) {
                report.result_cache_hit = true;
                return Ok((rows, report));
            }
        }

        // ---- code reuse / (re)generation ---------------------------------
        // Warm executions read the published state epoch-style (an `Arc`
        // clone); only a version change funnels through the cold-compile
        // latch, and only the builder holds it.
        let state = query.state_for(&snap, stats, &mut report)?;
        report.ir_instrs = state.instrs;
        // Every mode goes through the same hot-swap handles; they differ
        // only in what is installed before execution starts. A warm
        // adaptive run starts from the best backend any prior (or
        // concurrent!) run published; the static modes pin their exact
        // level, compiling it under the per-slot latch only if no run did.
        // Per-pipeline quarantine views for this execution: tiers whose
        // compiles failed recently are skipped (static modes degrade in
        // `handles_for`; adaptive mode in the controller), and this
        // run's compile outcomes are recorded back into the store.
        let quarantine: Vec<PipelineQuarantine> = (0..plan.pipelines.len())
            .map(|pid| self.shared.quarantine.pipeline(query.fingerprint, pid))
            .collect();
        let handles = state.handles_for(opts.mode, &quarantine, &mut report)?;
        let retained: Vec<Arc<RetainedSlot>> = state.slots.iter().map(|s| s.best.clone()).collect();

        // ---- calibration seed --------------------------------------------
        // An explicitly customized cost model is an instruction, not a
        // default the store may improve on: callers that nudge constants
        // (demos forcing a compile, tests pinning decisions) keep exactly
        // what they asked for even on a warm engine — and, symmetrically,
        // what such a run "learns" is never absorbed back into the store,
        // since its model blends fabricated constants no one measured.
        let shape = WorkloadShape::new(plan.pipelines.len(), state.instrs);
        let default_model = opts.model == CostModel::default();
        let calibrator = Arc::new(if !default_model {
            CostCalibrator::new(opts.model)
        } else {
            match self.shared.calibration.seed(shape) {
                Some(model) => CostCalibrator::seeded(model),
                None => CostCalibrator::new(opts.model),
            }
        });

        // ---- the morsel loops ---------------------------------------------
        let run = run_pipelines(
            QueryRun {
                plan,
                cat: &snap,
                functions: &state.functions,
                externs: &state.externs,
                registry: &state.registry,
                handles: &handles,
                retained: &retained,
                kernels: &state.kernels,
                calibrator: &calibrator,
                opts,
                params,
                quarantine: &quarantine,
            },
            &mut report,
        );
        // Containment accounting happens on every exit path: a query
        // that later failed (or was cancelled) still degraded/skipped.
        self.shared.server.note_containment(report.degraded, report.quarantine_skips);
        let rows = match run {
            Ok(rows) => rows,
            Err(e) => {
                // A cancelled execution is still a *clean* one: count it,
                // but leave the prepared state, retained backends, and
                // result cache exactly as the run left them — the next
                // execution of this statement runs warm.
                if matches!(e, ExecError::Cancelled { .. }) {
                    if let Some(kind) = opts.cancel.kind() {
                        self.shared.server.note_cancelled(kind);
                    }
                    state.harvest(&handles);
                }
                return Err(e);
            }
        };
        report.cancelled = opts.cancel.kind().map(|k| k.reason().to_string());

        // ---- persistence: code, calibration, results ----------------------
        // Retain the backends this run published into the slots of *this*
        // state object. A concurrent catalog mutation may have published a
        // newer state in the meantime — backends compiled from the old
        // module land in the old state, which dies with its last `Arc`,
        // so they can never leak across versions.
        state.harvest(&handles);
        if default_model {
            self.shared.calibration.absorb(shape, &report.calibration);
        }
        if cacheable && self.shared.results.admits(cache::entry_bytes(&rows)) {
            self.shared.results.put(key, rows.clone());
        }
        Ok((rows, report))
    }
}

/// A prepared query: the plan plus every execution artifact worth keeping
/// between runs. Create via [`Session::prepare`]; execute any number of
/// times — concurrently from any number of threads — via
/// [`Session::execute`].
pub struct PreparedQuery {
    engine: Arc<EngineShared>,
    plan: Arc<PhysicalPlan>,
    fingerprint: u64,
    /// Caller-supplied module ([`Session::prepare_module`]); `None` means
    /// codegen runs (once per catalog version) at execution time.
    module: Option<Arc<Module>>,
    /// The published compiled state for the newest catalog version built
    /// so far. Warm executions clone the `Arc` and go; they never touch
    /// the build latch.
    state: EpochCell<Option<Arc<PreparedState>>>,
    /// The one-time cold-compile latch: serializes *builders* (one per
    /// catalog version) so racing cold executions produce one state, not
    /// N. Never taken on the warm path.
    build: Mutex<()>,
}

impl PreparedQuery {
    /// The stable plan fingerprint this query is cached under. For a
    /// parameterized query this is the *generalized* fingerprint: every
    /// binding of the statement shares it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Representation types of the query's bind-variable slots, in slot
    /// order. Empty for non-parameterized queries.
    pub fn param_types(&self) -> &[FieldTy] {
        &self.plan.params
    }

    /// The decomposed plan.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Highest [`ExecLevel`] reached so far, per pipeline — the level the
    /// next adaptive execution starts at. All-`Interpreted` before the
    /// first run.
    pub fn levels(&self) -> Vec<ExecLevel> {
        match self.state.get() {
            None => vec![ExecLevel::Interpreted; self.plan.pipelines.len()],
            Some(s) => s.slots.iter().map(|sl| ExecLevel::from_rank(sl.best.rank())).collect(),
        }
    }

    /// The compiled state for `snap`'s catalog version: the published one
    /// when fresh (warm path — an `Arc` clone, no latch), else built under
    /// the cold-compile latch. A straggler execution pinned to an *older*
    /// epoch than the published state builds privately without clobbering
    /// the newer publication.
    fn state_for(
        &self,
        snap: &CatalogSnapshot,
        stats: &EngineStats,
        report: &mut Report,
    ) -> Result<Arc<PreparedState>, ExecError> {
        let version = snap.version();
        if let Some(s) = self.state.get() {
            if s.catalog_version == version {
                stats.warm_executions.fetch_add(1, Ordering::Relaxed);
                return Ok(s);
            }
        }
        let _latch = self.build.lock();
        // Double-check: a racing cold execution may have built while this
        // one waited on the latch.
        if let Some(s) = self.state.get() {
            if s.catalog_version == version {
                stats.warm_executions.fetch_add(1, Ordering::Relaxed);
                return Ok(s);
            }
        }
        let built = Arc::new(PreparedState::build(&self.plan, self.module.as_ref(), snap, report)?);
        report.cold_build = true;
        stats.cold_builds.fetch_add(1, Ordering::Relaxed);
        let newer_published = self.state.get().is_some_and(|s| s.catalog_version > version);
        if !newer_published {
            self.state.set(Some(built.clone()));
        }
        Ok(built)
    }
}

/// Per-pipeline backend slots of one compiled state: the wait-free warm
/// path. `best` is the rank-monotonic hot-swap slot adaptive runs seed
/// from and background compiles publish into mid-flight; the four
/// per-level latches hold the exact representation a static mode pins,
/// each a compile-once mutex held across its (cold) compile so racing
/// executions of the same level compile once, and held for a pointer copy
/// on every later (warm) read.
pub(crate) struct PipelineSlots {
    best: Arc<RetainedSlot>,
    bytecode: Mutex<Option<Arc<dyn PipelineBackend>>>,
    unopt: Mutex<Option<Arc<dyn PipelineBackend>>>,
    opt: Mutex<Option<Arc<dyn PipelineBackend>>>,
    /// Native machine-code backend (rank 4). On targets without the
    /// emitter this slot stays `None` and `ExecMode::Native` aliases to
    /// the optimized threaded level.
    native: Mutex<Option<Arc<dyn PipelineBackend>>>,
    /// Vectorized scan-kernel backend (rank 5): the native (or fallback)
    /// backend wrapped in a packed-compare filter pre-pass. Stays `None`
    /// on pipelines without a vectorizable filter and `ExecMode::Simd`
    /// aliases to `Native` there.
    simd: Mutex<Option<Arc<dyn PipelineBackend>>>,
}

impl PipelineSlots {
    fn new() -> PipelineSlots {
        PipelineSlots {
            best: Arc::new(RetainedSlot::new()),
            bytecode: Mutex::new(None),
            unopt: Mutex::new(None),
            opt: Mutex::new(None),
            native: Mutex::new(None),
            simd: Mutex::new(None),
        }
    }
}

/// The retained compilation artifacts of one prepared query at one
/// catalog version: an immutable core (functions, externs, registry)
/// shared by reference, plus interior-mutable per-pipeline backend slots.
struct PreparedState {
    catalog_version: u64,
    instrs: usize,
    functions: Vec<Arc<Function>>,
    externs: Arc<Vec<ExternDecl>>,
    registry: Arc<Registry>,
    slots: Vec<PipelineSlots>,
    /// Per-pipeline vectorized filter pre-passes extracted from the plan
    /// against this catalog version (`None` where the pipeline has no
    /// vectorizable filter). Column element widths come from the catalog,
    /// so kernels are rebuilt with the rest of the state on version bumps.
    kernels: Vec<Option<Arc<ScanKernel>>>,
}

/// The plan's table scans must still line up with the (possibly mutated)
/// catalog before any pointer is taken from it: a dropped table, an
/// out-of-range column, or a type-changed column is a `Setup` error here,
/// not a panic inside codegen or a misread base pointer in the morsel
/// loop. Plans are prepared against a catalog version and not re-bound,
/// so this is the re-validation point after mutations.
fn validate_sources(plan: &PhysicalPlan, cat: &CatalogSnapshot) -> Result<(), ExecError> {
    for p in &plan.pipelines {
        if let Source::Table { table, cols, field_tys, .. } = &p.source {
            let t =
                cat.get(table).ok_or_else(|| ExecError::Setup(format!("unknown table {table}")))?;
            for (k, &c) in cols.iter().enumerate() {
                if c >= t.column_count() {
                    return Err(ExecError::Setup(format!(
                        "table {table} has {} columns, plan scans column {c}",
                        t.column_count()
                    )));
                }
                let got = match t.column_type(c) {
                    DataType::Float64 => FieldTy::F64,
                    _ => FieldTy::I64,
                };
                if got != field_tys[k] {
                    return Err(ExecError::Setup(format!(
                        "column {c} of {table} changed representation type; re-prepare the query"
                    )));
                }
            }
        }
    }
    Ok(())
}

impl PreparedState {
    /// Cold path: source re-validation, codegen (unless a module was
    /// supplied), registry resolution — each failure a value, not a panic.
    fn build(
        plan: &PhysicalPlan,
        module_override: Option<&Arc<Module>>,
        cat: &CatalogSnapshot,
        report: &mut Report,
    ) -> Result<PreparedState, ExecError> {
        validate_sources(plan, cat)?;
        let t0 = Instant::now();
        let module: Arc<Module> = match module_override {
            Some(m) => m.clone(),
            None => Arc::new(codegen::generate(plan, cat)),
        };
        if module_override.is_none() {
            report.codegen = t0.elapsed();
        }

        let registry = Arc::new(
            Registry::for_externs(&module.externs, |name| {
                codegen::runtime_fns().iter().find(|(n, _)| *n == name).map(|(_, f)| *f)
            })
            .map_err(|e| ExecError::Setup(e.to_string()))?,
        );
        let functions: Vec<Arc<Function>> =
            module.functions.iter().map(|f| Arc::new(f.clone())).collect();
        let externs: Arc<Vec<ExternDecl>> = Arc::new(module.externs.clone());

        let n = functions.len();
        let kernels = plan
            .pipelines
            .iter()
            .map(|p| ScanKernel::extract(p, cat, plan.param_slot).map(Arc::new))
            .chain(std::iter::repeat(None))
            .take(n)
            .collect();
        Ok(PreparedState {
            catalog_version: cat.version(),
            instrs: module.instruction_count(),
            functions,
            externs,
            registry,
            slots: (0..n).map(|_| PipelineSlots::new()).collect(),
            kernels,
        })
    }

    /// Pipeline `i`'s bytecode backend, translating under the slot's
    /// compile-once latch if no prior execution paid for it (timed in
    /// `Report::bc_translate`). Concurrent cold executions dedup: the
    /// second waits on the latch and finds the slot filled.
    fn bytecode_backend(
        &self,
        i: usize,
        report: &mut Report,
    ) -> Result<Arc<dyn PipelineBackend>, ExecError> {
        let mut slot = self.slots[i].bytecode.lock();
        if let Some(b) = &*slot {
            return Ok(b.clone());
        }
        let t0 = Instant::now();
        aqe_fault::failpoint("bc_translate").map_err(ExecError::Translate)?;
        let bc = translate(&self.functions[i], &self.externs, TranslateOptions::default())
            .map_err(|e| ExecError::Translate(e.to_string()))?;
        let b: Arc<dyn PipelineBackend> = Arc::new(bc);
        *slot = Some(b.clone());
        report.bc_translate += t0.elapsed();
        Ok(b)
    }

    /// The ladder's floor for pipeline `i`: bytecode, degrading to the
    /// naive IR walker if translation itself fails (the walker interprets
    /// the module directly and cannot fail to build) — the bottom rung is
    /// unconditional, so no execution ever dies on a broken translator.
    fn base_backend(&self, i: usize, report: &mut Report) -> Arc<dyn PipelineBackend> {
        match self.bytecode_backend(i, report) {
            Ok(b) => b,
            Err(_) => {
                report.degraded += 1;
                Arc::new(NaiveBackend::new(self.functions[i].clone()))
            }
        }
    }

    /// Fresh per-run hot-swap handles holding each pipeline's initial
    /// backend for `mode`. Static compiled modes reuse a prior run's
    /// backend at their exact level or compile it now (timed in
    /// `Report::upfront_compile`). A compile failure never surfaces: the
    /// pipeline degrades to the next-lower rung, the broken tier is
    /// quarantined via this execution's `quarantine` views, and
    /// `Report::degraded` counts it.
    fn handles_for(
        &self,
        mode: ExecMode,
        quarantine: &[PipelineQuarantine],
        report: &mut Report,
    ) -> Result<Vec<Arc<FunctionHandle>>, ExecError> {
        let n = self.functions.len();
        let handles = match mode {
            ExecMode::NaiveIr => self
                .functions
                .iter()
                .map(|f| {
                    let b: Arc<dyn PipelineBackend> = Arc::new(NaiveBackend::new(f.clone()));
                    Arc::new(FunctionHandle::new(b))
                })
                .collect(),
            ExecMode::Bytecode => (0..n)
                .map(|i| Arc::new(FunctionHandle::new(self.base_backend(i, report))))
                .collect(),
            ExecMode::Unoptimized | ExecMode::Optimized => {
                let level = match mode {
                    ExecMode::Unoptimized => OptLevel::Unoptimized,
                    _ => OptLevel::Optimized,
                };
                let t0 = Instant::now();
                let mut hs = Vec::with_capacity(n);
                for (i, q) in quarantine.iter().enumerate() {
                    let backend = self.threaded_backend(i, level, q, report);
                    hs.push(Arc::new(FunctionHandle::new(backend)));
                }
                report.upfront_compile = t0.elapsed();
                hs
            }
            ExecMode::Native => {
                let t0 = Instant::now();
                let mut hs = Vec::with_capacity(n);
                for (i, q) in quarantine.iter().enumerate() {
                    let backend = self.native_backend(i, q, report);
                    hs.push(Arc::new(FunctionHandle::new(backend)));
                }
                report.upfront_compile = t0.elapsed();
                hs
            }
            ExecMode::Simd => {
                let t0 = Instant::now();
                let mut hs = Vec::with_capacity(n);
                for (i, q) in quarantine.iter().enumerate() {
                    let backend = self.simd_backend(i, q, report);
                    hs.push(Arc::new(FunctionHandle::new(backend)));
                }
                report.upfront_compile = t0.elapsed();
                hs
            }
            ExecMode::Adaptive => {
                // The ladder's base rank: even a warm run needs an
                // interpreted fallback for pipelines nothing upgraded yet.
                let mut hs = Vec::with_capacity(n);
                for i in 0..n {
                    // Best backend any prior — or concurrently running
                    // — execution published; rank-monotonic, so this
                    // can only ever improve on the interpreted floor.
                    let best = match self.slots[i].best.load() {
                        Some(b) => b,
                        None => self.base_backend(i, report),
                    };
                    hs.push(Arc::new(FunctionHandle::new(best)));
                }
                hs
            }
        };
        Ok(handles)
    }

    /// Pipeline `i`'s threaded-code backend at `level`, compiling and
    /// retaining it if no prior run already did (the slot latch is held
    /// across the compile, so racing executions compile once). A compile
    /// failure — or a live quarantine on the tier — degrades to the next
    /// rung down (`Optimized` → `Unoptimized` → bytecode/naive).
    fn threaded_backend(
        &self,
        i: usize,
        level: OptLevel,
        q: &PipelineQuarantine,
        report: &mut Report,
    ) -> Arc<dyn PipelineBackend> {
        let (slot, elevel) = match level {
            OptLevel::Unoptimized => (&self.slots[i].unopt, ExecLevel::Unoptimized),
            OptLevel::Optimized => (&self.slots[i].opt, ExecLevel::Optimized),
        };
        {
            let mut guard = slot.lock();
            // A backend a prior run already paid for is always safe to
            // reuse — the quarantine only gates fresh compile attempts.
            if let Some(b) = &*guard {
                return b.clone();
            }
            if !q.blocked(elevel) {
                match compile(&self.functions[i], &self.externs, level) {
                    Ok(cf) => {
                        let b: Arc<dyn PipelineBackend> = Arc::new(cf);
                        *guard = Some(b.clone());
                        self.slots[i].best.install(b.clone());
                        q.record_success(elevel);
                        return b;
                    }
                    Err(_) => {
                        q.record_failure(elevel);
                        report.degraded += 1;
                    }
                }
            }
            // Degrade below, with the latch released so the fallback
            // compile cannot nest slot locks.
        }
        match level {
            OptLevel::Optimized => self.threaded_backend(i, OptLevel::Unoptimized, q, report),
            OptLevel::Unoptimized => self.base_backend(i, report),
        }
    }

    /// Pipeline `i`'s native machine-code backend — or, where the emitter
    /// is unavailable (non-x86-64 targets, `AQE_NATIVE=0`), the clean
    /// fallback alias: the optimized threaded backend. A genuine compile
    /// *failure* (as opposed to unavailability) degrades the same way but
    /// is counted and quarantines the tier — `Optimized` is semantically
    /// equivalent, so the query still answers correctly.
    fn native_backend(
        &self,
        i: usize,
        q: &PipelineQuarantine,
        report: &mut Report,
    ) -> Arc<dyn PipelineBackend> {
        {
            let mut guard = self.slots[i].native.lock();
            if let Some(b) = &*guard {
                return b.clone();
            }
            if aqe_jit::native::enabled() && !q.blocked(ExecLevel::Native) {
                match aqe_jit::native::compile_native(&self.functions[i], &self.externs) {
                    Ok(nf) => {
                        let b: Arc<dyn PipelineBackend> = Arc::new(nf);
                        *guard = Some(b.clone());
                        self.slots[i].best.install(b.clone());
                        q.record_success(ExecLevel::Native);
                        return b;
                    }
                    // Unavailability is an alias by design, not a fault.
                    Err(aqe_jit::native::NativeError::Unavailable(_)) => {}
                    Err(_) => {
                        q.record_failure(ExecLevel::Native);
                        report.degraded += 1;
                    }
                }
            }
            // Fall back below — with the native latch released, so the
            // fallback compile cannot nest slot locks.
        }
        self.threaded_backend(i, OptLevel::Optimized, q, report)
    }

    /// Pipeline `i`'s vectorized scan-kernel backend — the native (or its
    /// fallback) backend wrapped in the pipeline's [`ScanKernel`] — or,
    /// where no kernel was extracted or `AQE_SIMD=0`, the clean alias:
    /// the native backend itself. Lock order is simd → native (the inner
    /// compile takes the native latch); nothing takes them reversed.
    fn simd_backend(
        &self,
        i: usize,
        q: &PipelineQuarantine,
        report: &mut Report,
    ) -> Arc<dyn PipelineBackend> {
        let Some(kernel) = self.kernels.get(i).and_then(|k| k.clone()) else {
            return self.native_backend(i, q, report);
        };
        if !simd::enabled() {
            return self.native_backend(i, q, report);
        }
        {
            let mut guard = self.slots[i].simd.lock();
            if let Some(b) = &*guard {
                return b.clone();
            }
            if !q.blocked(ExecLevel::Simd) {
                // The assembly itself is a wrap and cannot fail, so the
                // injectable fault site is the only failure source here;
                // the inner backend is built by the (already contained)
                // native path.
                if aqe_fault::failpoint("simd_compile").is_ok() {
                    let inner = self.native_backend(i, q, report);
                    let b: Arc<dyn PipelineBackend> = Arc::new(SimdScanBackend::new(inner, kernel));
                    *guard = Some(b.clone());
                    self.slots[i].best.install(b.clone());
                    q.record_success(ExecLevel::Simd);
                    return b;
                }
                q.record_failure(ExecLevel::Simd);
                report.degraded += 1;
            }
        }
        self.native_backend(i, q, report)
    }

    /// After a run: retain whatever backends the controller published, so
    /// the next execution starts where this one ended. (Mid-run, finished
    /// background compiles already installed into `best`; this sweep
    /// backfills the exact-level latches for the static modes.)
    fn harvest(&self, handles: &[Arc<FunctionHandle>]) {
        for (slots, h) in self.slots.iter().zip(handles) {
            let b = h.load();
            let slot = match b.kind() {
                ExecMode::Unoptimized => &slots.unopt,
                ExecMode::Optimized => &slots.opt,
                ExecMode::Native => &slots.native,
                ExecMode::Simd => &slots.simd,
                _ => continue,
            };
            slots.best.install(b.clone());
            let mut guard = slot.lock();
            if guard.is_none() {
                *guard = Some(b);
            }
        }
    }
}
