//! The long-lived execution API: [`Engine`] → [`Session`] → [`PreparedQuery`].
//!
//! The paper's whole premise is amortizing compilation against execution,
//! yet a one-shot `execute_plan` re-runs codegen, bytecode translation,
//! and the adaptive warm-up ladder on every call and throws away the
//! calibrator's measured constants at query end. This subsystem is the
//! connection/prepared-statement lifecycle that lets all of that outlive
//! a single execution (DESIGN.md §6):
//!
//! * [`Engine`] — owns the [`Catalog`] behind its monotonic version
//!   counter, a cross-query [`CalibrationStore`], and a bounded LRU
//!   result cache keyed by `(plan fingerprint, catalog version)`;
//! * [`Session`] — a per-client handle: `prepare` / `execute` plus the
//!   session's [`ExecOptions`] defaults;
//! * [`PreparedQuery`] — retains the generated module, the translated
//!   bytecode, and every backend a prior run already compiled, so a
//!   re-execution skips codegen and translation entirely and starts at
//!   the highest [`ExecLevel`] previously reached. First runs are still
//!   governed by the Fig. 7 controller — the ladder is only ever climbed
//!   once per (prepared query, catalog version).
//!
//! Invalidation is by construction, not by scanning: every cache key
//! embeds [`Catalog::version`], which every mutation bumps.

mod cache;
mod calibration;

pub use calibration::{CalibrationStore, WorkloadShape};

use crate::codegen;
use crate::exec::{
    run_pipelines, ExecMode, ExecOptions, FunctionHandle, PipelineBackend, QueryRun, Report,
    ResultRows,
};
use crate::plan::{decompose, DictTable, FieldTy, PhysicalPlan, PlanNode, Source};
use crate::sched::{CostCalibrator, CostModel, ExecLevel};
use aqe_ir::{ExternDecl, Function, Module};
use aqe_jit::compile::{compile, OptLevel};
use aqe_storage::{Catalog, DataType};
use aqe_vm::interp::ExecError;
use aqe_vm::naive::NaiveBackend;
use aqe_vm::rt::Registry;
use aqe_vm::translate::{translate, TranslateOptions};
use cache::ResultCache;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use std::time::Instant;

/// Everything sessions share. `Arc`-held by every [`Session`] and
/// [`PreparedQuery`], so prepared statements stay valid for as long as
/// anything still references the engine.
struct EngineShared {
    catalog: RwLock<Catalog>,
    calibration: CalibrationStore,
    results: ResultCache,
    defaults: ExecOptions,
}

/// The long-lived engine: catalog + caches + calibration memory.
///
/// ```no_run
/// use aqe_engine::session::Engine;
/// use aqe_storage::tpch;
///
/// let engine = Engine::new(tpch::generate(0.01));
/// let session = engine.session();
/// # let plan = unimplemented!();
/// let query = session.prepare_plan(plan);
/// let (rows, report) = session.execute(&query).unwrap();   // cold: codegen + warm-up
/// let (rows, report) = session.execute(&query).unwrap();   // warm: cached
/// ```
pub struct Engine {
    shared: Arc<EngineShared>,
}

impl Engine {
    /// An engine over `catalog` with default [`ExecOptions`] and the
    /// default result-cache budget.
    pub fn new(catalog: Catalog) -> Engine {
        Engine::with_defaults(catalog, ExecOptions::default())
    }

    /// An engine whose sessions start from `defaults`.
    pub fn with_defaults(catalog: Catalog, defaults: ExecOptions) -> Engine {
        Engine::with_result_cache_budget(catalog, defaults, cache::DEFAULT_BUDGET_BYTES)
    }

    /// An engine with an explicit result-cache byte budget (0 disables
    /// result caching entirely).
    pub fn with_result_cache_budget(
        catalog: Catalog,
        defaults: ExecOptions,
        cache_budget_bytes: usize,
    ) -> Engine {
        Engine {
            shared: Arc::new(EngineShared {
                catalog: RwLock::new(catalog),
                calibration: CalibrationStore::new(),
                results: ResultCache::new(cache_budget_bytes),
                defaults,
            }),
        }
    }

    /// Open a session (a per-client handle; cheap, any number may exist).
    pub fn session(&self) -> Session {
        Session { shared: self.shared.clone(), defaults: self.shared.defaults.clone() }
    }

    /// Current catalog version (bumped by every mutation through
    /// [`with_catalog_mut`](Engine::with_catalog_mut)).
    pub fn catalog_version(&self) -> u64 {
        self.shared.catalog.read().version()
    }

    /// Read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.shared.catalog.read())
    }

    /// Mutate the catalog. Any mutation bumps [`Catalog::version`], which
    /// invalidates every cached result and forces prepared queries to
    /// re-generate code on their next execution; entries for older
    /// versions are purged eagerly, since their keys can never be
    /// requested again.
    pub fn with_catalog_mut<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        let (r, version) = {
            let mut cat = self.shared.catalog.write();
            let r = f(&mut cat);
            (r, cat.version())
        };
        self.shared.results.retain_version(version);
        r
    }

    /// The engine's cross-query calibration store.
    pub fn calibration(&self) -> &CalibrationStore {
        &self.shared.calibration
    }

    /// Number of results currently cached.
    pub fn result_cache_len(&self) -> usize {
        self.shared.results.len()
    }

    /// Bytes currently pinned by cached results.
    pub fn result_cache_bytes(&self) -> usize {
        self.shared.results.bytes_used()
    }

    /// Re-bound the result cache's byte budget (0 disables it; shrinking
    /// evicts by size-weighted LRU immediately).
    pub fn set_result_cache_budget(&self, budget_bytes: usize) {
        self.shared.results.set_budget(budget_bytes);
    }
}

/// A per-client handle onto an [`Engine`]: prepares and executes queries
/// with its own [`ExecOptions`] defaults.
pub struct Session {
    shared: Arc<EngineShared>,
    defaults: ExecOptions,
}

impl Session {
    /// The options [`execute`](Session::execute) runs with.
    pub fn defaults(&self) -> &ExecOptions {
        &self.defaults
    }

    /// Replace this session's default options.
    pub fn set_defaults(&mut self, defaults: ExecOptions) {
        self.defaults = defaults;
    }

    /// Read access to the engine's catalog (e.g. for planning SQL against
    /// it — see `aqe_sql::prepare`).
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.shared.catalog.read())
    }

    /// Decompose a plan tree against the engine's catalog and prepare it.
    pub fn prepare(&self, root: &PlanNode, dicts: Vec<DictTable>) -> PreparedQuery {
        let plan = {
            let cat = self.shared.catalog.read();
            decompose(&cat, root, dicts)
        };
        self.prepare_plan(plan)
    }

    /// Prepare an already-decomposed physical plan.
    pub fn prepare_plan(&self, plan: PhysicalPlan) -> PreparedQuery {
        PreparedQuery {
            engine: self.shared.clone(),
            fingerprint: plan.fingerprint(),
            plan: Arc::new(plan),
            module: None,
            compiled: Mutex::new(None),
        }
    }

    /// Prepare a plan with a caller-generated IR module (stage-timing
    /// harnesses that measure codegen separately). The module is trusted
    /// to match the plan; it is retained verbatim across catalog versions.
    pub fn prepare_module(&self, plan: PhysicalPlan, module: Module) -> PreparedQuery {
        PreparedQuery {
            engine: self.shared.clone(),
            fingerprint: plan.fingerprint(),
            plan: Arc::new(plan),
            module: Some(Arc::new(module)),
            compiled: Mutex::new(None),
        }
    }

    /// Execute with the session's default options.
    pub fn execute(&self, query: &PreparedQuery) -> Result<(ResultRows, Report), ExecError> {
        self.execute_with(query, &self.defaults)
    }

    /// Execute a prepared query.
    ///
    /// Cold path: generate IR, translate to bytecode, run the Fig. 7
    /// ladder from the interpreter up. Warm path: reuse the retained
    /// module/bytecode/compiled backends (`Report::{codegen,
    /// bc_translate}` are zero) and start every pipeline at the highest
    /// level a prior run reached. With `opts.cache_results`, an identical
    /// plan over an unchanged catalog returns straight from the result
    /// cache (`Report::result_cache_hit`) without running a single morsel.
    pub fn execute_with(
        &self,
        query: &PreparedQuery,
        opts: &ExecOptions,
    ) -> Result<(ResultRows, Report), ExecError> {
        if !Arc::ptr_eq(&query.engine, &self.shared) {
            return Err(ExecError::Setup(
                "prepared query belongs to a different engine".to_string(),
            ));
        }
        // Held for the whole execution: generated code dereferences column
        // base pointers, so the catalog must not move underneath it.
        let cat = self.shared.catalog.read();
        let version = cat.version();
        let plan = &query.plan;

        let mut report = Report {
            pipeline_labels: plan.pipelines.iter().map(|p| p.label.clone()).collect(),
            ..Default::default()
        };

        // ---- result cache -------------------------------------------------
        // Module-override prepares are excluded in both directions: their
        // rows reflect the caller's module, but the key would only name
        // the plan — caching them could serve wrong rows to an honest
        // prepare of the same plan (and vice versa).
        let key = (query.fingerprint, version);
        let cacheable = opts.cache_results && query.module.is_none();
        if cacheable {
            if let Some(rows) = self.shared.results.get(key) {
                report.result_cache_hit = true;
                return Ok((rows, report));
            }
        }

        // ---- code reuse / (re)generation ---------------------------------
        // The compiled-state lock is held only for artifact assembly, not
        // across the morsel loop: concurrent executions of one prepared
        // query proceed in parallel once each has its handles.
        let (functions, externs, registry, instrs, handles) = {
            let mut guard = query.compiled.lock();
            let stale = !matches!(&*guard, Some(s) if s.catalog_version == version);
            if stale {
                *guard = Some(CompiledState::build(
                    plan,
                    query.module.as_ref(),
                    &cat,
                    version,
                    &mut report,
                )?);
            }
            let state = guard.as_mut().expect("compiled state just ensured");
            // Every mode goes through the same hot-swap handles; they
            // differ only in what is installed before execution starts. A
            // warm adaptive run starts from the best backend any prior
            // run published; the static modes pin their exact level
            // (compiling it now only if no prior run already did).
            let handles = state.handles_for(opts.mode, &mut report)?;
            (
                state.functions.clone(),
                state.externs.clone(),
                state.registry.clone(),
                state.instrs,
                handles,
            )
        };
        report.ir_instrs = instrs;

        // ---- calibration seed --------------------------------------------
        // An explicitly customized cost model is an instruction, not a
        // default the store may improve on: callers that nudge constants
        // (demos forcing a compile, tests pinning decisions) keep exactly
        // what they asked for even on a warm engine — and, symmetrically,
        // what such a run "learns" is never absorbed back into the store,
        // since its model blends fabricated constants no one measured.
        let shape = WorkloadShape::new(plan.pipelines.len(), instrs);
        let default_model = opts.model == CostModel::default();
        let calibrator = Arc::new(if !default_model {
            CostCalibrator::new(opts.model)
        } else {
            match self.shared.calibration.seed(shape) {
                Some(model) => CostCalibrator::seeded(model),
                None => CostCalibrator::new(opts.model),
            }
        });

        // ---- the morsel loops ---------------------------------------------
        let rows = run_pipelines(
            QueryRun {
                plan,
                cat: &cat,
                functions: &functions,
                externs: &externs,
                registry: &registry,
                handles: &handles,
                calibrator: &calibrator,
                opts,
            },
            &mut report,
        )?;

        // ---- persistence: code, calibration, results ----------------------
        // Re-lock briefly to retain the backends this run published. A
        // concurrent catalog mutation may have rebuilt the state at a
        // newer version in the meantime; backends compiled from the old
        // module must not leak into it.
        {
            let mut guard = query.compiled.lock();
            if let Some(state) = guard.as_mut() {
                if state.catalog_version == version {
                    state.harvest(&handles);
                }
            }
        }
        if default_model {
            self.shared.calibration.absorb(shape, &report.calibration);
        }
        if cacheable && self.shared.results.admits(cache::entry_bytes(&rows)) {
            self.shared.results.put(key, rows.clone());
        }
        Ok((rows, report))
    }
}

/// A prepared query: the plan plus every execution artifact worth keeping
/// between runs. Create via [`Session::prepare`]; execute any number of
/// times via [`Session::execute`].
pub struct PreparedQuery {
    engine: Arc<EngineShared>,
    plan: Arc<PhysicalPlan>,
    fingerprint: u64,
    /// Caller-supplied module ([`Session::prepare_module`]); `None` means
    /// codegen runs (once per catalog version) at execution time.
    module: Option<Arc<Module>>,
    compiled: Mutex<Option<CompiledState>>,
}

impl PreparedQuery {
    /// The stable plan fingerprint this query is cached under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The decomposed plan.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Highest [`ExecLevel`] reached so far, per pipeline — the level the
    /// next adaptive execution starts at. All-`Interpreted` before the
    /// first run.
    pub fn levels(&self) -> Vec<ExecLevel> {
        match &*self.compiled.lock() {
            None => vec![ExecLevel::Interpreted; self.plan.pipelines.len()],
            Some(s) => (0..s.functions.len())
                .map(|i| {
                    if s.native[i].is_some() {
                        ExecLevel::Native
                    } else if s.opt[i].is_some() {
                        ExecLevel::Optimized
                    } else if s.unopt[i].is_some() {
                        ExecLevel::Unoptimized
                    } else {
                        ExecLevel::Interpreted
                    }
                })
                .collect(),
        }
    }
}

/// The retained compilation artifacts of one prepared query at one
/// catalog version.
struct CompiledState {
    catalog_version: u64,
    instrs: usize,
    functions: Vec<Arc<Function>>,
    externs: Arc<Vec<ExternDecl>>,
    registry: Arc<Registry>,
    /// Translated bytecode, one per pipeline — filled lazily by the first
    /// execution whose mode interprets bytecode (`NaiveIr` never pays for
    /// translation, and the static compiled modes pin their own level).
    bytecode: Vec<Option<Arc<dyn PipelineBackend>>>,
    /// Backends a prior run compiled (background or up-front), per level.
    unopt: Vec<Option<Arc<dyn PipelineBackend>>>,
    opt: Vec<Option<Arc<dyn PipelineBackend>>>,
    /// Native machine-code backends (rank 4). On targets without the
    /// emitter these slots stay `None` and `ExecMode::Native` aliases to
    /// the optimized threaded level.
    native: Vec<Option<Arc<dyn PipelineBackend>>>,
}

/// The plan's table scans must still line up with the (possibly mutated)
/// catalog before any pointer is taken from it: a dropped table, an
/// out-of-range column, or a type-changed column is a `Setup` error here,
/// not a panic inside codegen or a misread base pointer in the morsel
/// loop. Plans are prepared against a catalog version and not re-bound,
/// so this is the re-validation point after mutations.
fn validate_sources(plan: &PhysicalPlan, cat: &Catalog) -> Result<(), ExecError> {
    for p in &plan.pipelines {
        if let Source::Table { table, cols, field_tys, .. } = &p.source {
            let t =
                cat.get(table).ok_or_else(|| ExecError::Setup(format!("unknown table {table}")))?;
            for (k, &c) in cols.iter().enumerate() {
                if c >= t.column_count() {
                    return Err(ExecError::Setup(format!(
                        "table {table} has {} columns, plan scans column {c}",
                        t.column_count()
                    )));
                }
                let got = match t.column_type(c) {
                    DataType::Float64 => FieldTy::F64,
                    _ => FieldTy::I64,
                };
                if got != field_tys[k] {
                    return Err(ExecError::Setup(format!(
                        "column {c} of {table} changed representation type; re-prepare the query"
                    )));
                }
            }
        }
    }
    Ok(())
}

impl CompiledState {
    /// Cold path: source re-validation, codegen (unless a module was
    /// supplied), registry resolution — each failure a value, not a panic.
    fn build(
        plan: &PhysicalPlan,
        module_override: Option<&Arc<Module>>,
        cat: &Catalog,
        catalog_version: u64,
        report: &mut Report,
    ) -> Result<CompiledState, ExecError> {
        validate_sources(plan, cat)?;
        let t0 = Instant::now();
        let module: Arc<Module> = match module_override {
            Some(m) => m.clone(),
            None => Arc::new(codegen::generate(plan, cat)),
        };
        if module_override.is_none() {
            report.codegen = t0.elapsed();
        }

        let registry = Arc::new(
            Registry::for_externs(&module.externs, |name| {
                codegen::runtime_fns().iter().find(|(n, _)| *n == name).map(|(_, f)| *f)
            })
            .map_err(|e| ExecError::Setup(e.to_string()))?,
        );
        let functions: Vec<Arc<Function>> =
            module.functions.iter().map(|f| Arc::new(f.clone())).collect();
        let externs: Arc<Vec<ExternDecl>> = Arc::new(module.externs.clone());

        let n = functions.len();
        Ok(CompiledState {
            catalog_version,
            instrs: module.instruction_count(),
            functions,
            externs,
            registry,
            bytecode: vec![None; n],
            unopt: vec![None; n],
            opt: vec![None; n],
            native: vec![None; n],
        })
    }

    /// Translate every pipeline that does not have bytecode yet (timed in
    /// `Report::bc_translate`; a no-op — and a zero report — when a prior
    /// execution already paid for it).
    fn ensure_bytecode(&mut self, report: &mut Report) -> Result<(), ExecError> {
        if self.bytecode.iter().all(Option::is_some) {
            return Ok(());
        }
        let t0 = Instant::now();
        for (f, slot) in self.functions.iter().zip(self.bytecode.iter_mut()) {
            if slot.is_none() {
                let bc = translate(f, &self.externs, TranslateOptions::default())
                    .map_err(|e| ExecError::Translate(e.to_string()))?;
                *slot = Some(Arc::new(bc));
            }
        }
        report.bc_translate = t0.elapsed();
        Ok(())
    }

    /// Fresh per-run hot-swap handles holding each pipeline's initial
    /// backend for `mode`. Static compiled modes reuse a prior run's
    /// backend at their exact level or compile it now (timed in
    /// `Report::upfront_compile`).
    fn handles_for(
        &mut self,
        mode: ExecMode,
        report: &mut Report,
    ) -> Result<Vec<Arc<FunctionHandle>>, ExecError> {
        let n = self.functions.len();
        let handles = match mode {
            ExecMode::NaiveIr => self
                .functions
                .iter()
                .map(|f| {
                    let b: Arc<dyn PipelineBackend> = Arc::new(NaiveBackend::new(f.clone()));
                    Arc::new(FunctionHandle::new(b))
                })
                .collect(),
            ExecMode::Bytecode => {
                self.ensure_bytecode(report)?;
                self.bytecode
                    .iter()
                    .map(|b| {
                        Arc::new(FunctionHandle::new(b.clone().expect("bytecode just ensured")))
                    })
                    .collect()
            }
            ExecMode::Unoptimized | ExecMode::Optimized => {
                let level = match mode {
                    ExecMode::Unoptimized => OptLevel::Unoptimized,
                    _ => OptLevel::Optimized,
                };
                let t0 = Instant::now();
                let mut hs = Vec::with_capacity(n);
                for i in 0..n {
                    let backend = self.threaded_backend(i, level)?;
                    hs.push(Arc::new(FunctionHandle::new(backend)));
                }
                report.upfront_compile = t0.elapsed();
                hs
            }
            ExecMode::Native => {
                let t0 = Instant::now();
                let mut hs = Vec::with_capacity(n);
                for i in 0..n {
                    let backend = self.native_backend(i)?;
                    hs.push(Arc::new(FunctionHandle::new(backend)));
                }
                report.upfront_compile = t0.elapsed();
                hs
            }
            ExecMode::Adaptive => {
                // The ladder's base rank: even a warm run needs bytecode
                // as the fallback for pipelines nothing has upgraded yet.
                self.ensure_bytecode(report)?;
                (0..n)
                    .map(|i| {
                        let best = self.native[i]
                            .clone()
                            .or_else(|| self.opt[i].clone())
                            .or_else(|| self.unopt[i].clone())
                            .unwrap_or_else(|| {
                                self.bytecode[i].clone().expect("bytecode just ensured")
                            });
                        Arc::new(FunctionHandle::new(best))
                    })
                    .collect()
            }
        };
        Ok(handles)
    }

    /// Pipeline `i`'s threaded-code backend at `level`, compiling and
    /// retaining it if no prior run already did.
    fn threaded_backend(
        &mut self,
        i: usize,
        level: OptLevel,
    ) -> Result<Arc<dyn PipelineBackend>, ExecError> {
        let slot = match level {
            OptLevel::Unoptimized => &mut self.unopt[i],
            OptLevel::Optimized => &mut self.opt[i],
        };
        match slot {
            Some(b) => Ok(b.clone()),
            None => {
                let cf = compile(&self.functions[i], &self.externs, level)
                    .map_err(|e| ExecError::Compile(e.to_string()))?;
                let b: Arc<dyn PipelineBackend> = Arc::new(cf);
                *slot = Some(b.clone());
                Ok(b)
            }
        }
    }

    /// Pipeline `i`'s native machine-code backend — or, where the emitter
    /// is unavailable (non-x86-64 targets, `AQE_NATIVE=0`), the clean
    /// fallback alias: the optimized threaded backend. A genuine compile
    /// *failure* (as opposed to unavailability) also falls back rather
    /// than failing the query, since `Optimized` is semantically
    /// equivalent.
    fn native_backend(&mut self, i: usize) -> Result<Arc<dyn PipelineBackend>, ExecError> {
        if let Some(b) = &self.native[i] {
            return Ok(b.clone());
        }
        match aqe_jit::native::compile_native(&self.functions[i], &self.externs) {
            Ok(nf) => {
                let b: Arc<dyn PipelineBackend> = Arc::new(nf);
                self.native[i] = Some(b.clone());
                Ok(b)
            }
            Err(_) => self.threaded_backend(i, OptLevel::Optimized),
        }
    }

    /// After a run: retain whatever backends the controller published, so
    /// the next execution starts where this one ended.
    fn harvest(&mut self, handles: &[Arc<FunctionHandle>]) {
        for (i, h) in handles.iter().enumerate() {
            let b = h.load();
            match b.kind() {
                ExecMode::Unoptimized => self.unopt[i] = Some(b),
                ExecMode::Optimized => self.opt[i] = Some(b),
                ExecMode::Native => self.native[i] = Some(b),
                _ => {}
            }
        }
    }
}
