//! Cross-query calibration persistence.
//!
//! PR 2's `CostCalibrator` learns measured compile costs and observed
//! speedups *within* one query and throws them away at query end. The
//! [`CalibrationStore`] is the engine-lifetime accumulator above it:
//! after every execution the query's final [`CalibrationReport`] is
//! absorbed, keyed by a coarse [`WorkloadShape`], and later queries seed
//! their calibrators from the store — so a whole workload warms the cost
//! model instead of every query rediscovering the same constants
//! (ROADMAP: "Cross-query calibration persistence").
//!
//! Shapes are deliberately coarse (pipeline count × log₂ instruction
//! bucket): the constants being calibrated — per-instruction compile cost,
//! level speedups — are properties of the *hardware and backends*, only
//! mildly modulated by query size. A query with no exact shape match
//! seeds from the global blend; [`clear`](CalibrationStore::clear) is the
//! eviction hook for when data or hardware change underneath the engine.
//!
//! **Concurrency.** Every execution seeds from the store on its hot
//! path, so reads follow the engine's epoch discipline: the whole store
//! is an immutable snapshot behind an `Arc` — [`seed`] clones the `Arc`
//! and looks up lock-free, while [`absorb`]/[`clear`] rebuild the store
//! copy-on-write (serialized by a writer mutex that readers never touch)
//! and publish the successor in one swap. Absorbs are rare (one per
//! execution) and the map is small, so the clone is cheap; seeds are hot
//! and now never serialize.
//!
//! [`seed`]: CalibrationStore::seed
//! [`absorb`]: CalibrationStore::absorb

use super::epoch::EpochCell;
use crate::sched::{CalibrationReport, CostModel};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Coarse workload-shape key for calibration persistence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkloadShape {
    /// Number of pipelines in the plan.
    pub pipelines: usize,
    /// `log₂` of the module's IR instruction count.
    pub instr_bucket: u32,
}

impl WorkloadShape {
    pub fn new(pipelines: usize, instrs: usize) -> WorkloadShape {
        WorkloadShape { pipelines, instr_bucket: (instrs.max(1) as u64).ilog2() }
    }
}

#[derive(Clone, Default)]
struct Store {
    by_shape: HashMap<WorkloadShape, CostModel>,
    /// Blend over every absorbed report, the fallback seed for shapes the
    /// engine has not run yet.
    global: Option<CostModel>,
    absorbed: u64,
}

/// Engine-lifetime store of calibrated cost models, keyed by workload
/// shape. Reads are snapshot-`Arc` clones (never serialized behind a
/// map lock); writes rebuild copy-on-write.
pub struct CalibrationStore {
    snap: EpochCell<Arc<Store>>,
    /// Serializes writers only, so concurrent absorbs cannot lose each
    /// other's blend; readers never touch it.
    write: Mutex<()>,
}

/// Blend weight when absorbing a new report into an existing entry;
/// mirrors the in-query calibrator's damping.
const BLEND: f64 = 0.5;

fn blend(old: &CostModel, new: &CostModel) -> CostModel {
    let mix = |a: f64, b: f64| a * (1.0 - BLEND) + b * BLEND;
    CostModel {
        unopt_base_s: mix(old.unopt_base_s, new.unopt_base_s),
        unopt_per_instr_s: mix(old.unopt_per_instr_s, new.unopt_per_instr_s),
        opt_base_s: mix(old.opt_base_s, new.opt_base_s),
        opt_per_instr_s: mix(old.opt_per_instr_s, new.opt_per_instr_s),
        native_base_s: mix(old.native_base_s, new.native_base_s),
        native_per_instr_s: mix(old.native_per_instr_s, new.native_per_instr_s),
        simd_base_s: mix(old.simd_base_s, new.simd_base_s),
        simd_per_instr_s: mix(old.simd_per_instr_s, new.simd_per_instr_s),
        speedup_unopt: mix(old.speedup_unopt, new.speedup_unopt),
        speedup_opt: mix(old.speedup_opt, new.speedup_opt),
        speedup_native: mix(old.speedup_native, new.speedup_native),
        speedup_simd: mix(old.speedup_simd, new.speedup_simd),
    }
}

impl CalibrationStore {
    pub(crate) fn new() -> CalibrationStore {
        CalibrationStore { snap: EpochCell::new(Arc::new(Store::default())), write: Mutex::new(()) }
    }

    /// The model a query of this shape should start from: the shape's own
    /// entry, else the global blend, else `None` (cold store). Lock-free
    /// lookup over the current snapshot — the hot-path read of every
    /// execution never serializes behind writers.
    pub fn seed(&self, shape: WorkloadShape) -> Option<CostModel> {
        let s = self.snap.get();
        s.by_shape.get(&shape).copied().or(s.global)
    }

    /// Absorb what one execution learned. Reports without a single
    /// observation are ignored — they would only echo the seed back.
    /// Copy-on-write: builds the successor store off to the side and
    /// publishes it in one swap; in-flight seeds keep their snapshot.
    pub fn absorb(&self, shape: WorkloadShape, rep: &CalibrationReport) {
        if rep.compile_observations + rep.speedup_observations == 0 {
            return;
        }
        let _writers = self.write.lock();
        let mut next = (*self.snap.get()).clone();
        next.absorbed += 1;
        let entry = match next.by_shape.get(&shape) {
            Some(old) => blend(old, &rep.model),
            None => rep.model,
        };
        next.by_shape.insert(shape, entry);
        next.global = Some(match &next.global {
            Some(old) => blend(old, &rep.model),
            None => rep.model,
        });
        self.snap.set(Arc::new(next));
    }

    /// Forget everything — the eviction hook for when the data or the
    /// hardware underneath the engine changed.
    pub fn clear(&self) {
        let _writers = self.write.lock();
        self.snap.set(Arc::new(Store::default()));
    }

    /// Number of distinct workload shapes with a calibrated entry.
    pub fn len(&self) -> usize {
        self.snap.get().by_shape.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total reports absorbed since construction (or the last `clear`).
    pub fn absorbed(&self) -> u64 {
        self.snap.get().absorbed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(opt_per_instr_s: f64) -> CalibrationReport {
        CalibrationReport {
            compile_observations: 1,
            speedup_observations: 0,
            model: CostModel { opt_per_instr_s, ..CostModel::default() },
        }
    }

    #[test]
    fn cold_store_has_no_seed() {
        let s = CalibrationStore::new();
        assert!(s.seed(WorkloadShape::new(2, 1000)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn absorb_then_seed_same_shape() {
        let s = CalibrationStore::new();
        let shape = WorkloadShape::new(2, 1000);
        s.absorb(shape, &report_with(9.0e-6));
        let m = s.seed(shape).expect("seed after absorb");
        assert!((m.opt_per_instr_s - 9.0e-6).abs() < 1e-12);
        assert_eq!(s.len(), 1);
        assert_eq!(s.absorbed(), 1);
    }

    #[test]
    fn unseen_shape_falls_back_to_global_blend() {
        let s = CalibrationStore::new();
        s.absorb(WorkloadShape::new(2, 1000), &report_with(9.0e-6));
        let other = WorkloadShape::new(5, 64);
        let m = s.seed(other).expect("global fallback");
        assert!((m.opt_per_instr_s - 9.0e-6).abs() < 1e-12);
    }

    #[test]
    fn observation_free_reports_are_ignored_and_clear_evicts() {
        let s = CalibrationStore::new();
        let shape = WorkloadShape::new(1, 100);
        s.absorb(
            shape,
            &CalibrationReport {
                compile_observations: 0,
                speedup_observations: 0,
                model: CostModel::default(),
            },
        );
        assert!(s.seed(shape).is_none(), "no-observation report must not seed");
        s.absorb(shape, &report_with(9.0e-6));
        assert!(s.seed(shape).is_some());
        s.clear();
        assert!(s.seed(shape).is_none());
        assert_eq!(s.absorbed(), 0);
    }

    #[test]
    fn repeated_absorbs_blend_toward_new_measurements() {
        let s = CalibrationStore::new();
        let shape = WorkloadShape::new(2, 1000);
        s.absorb(shape, &report_with(8.0e-6));
        s.absorb(shape, &report_with(16.0e-6));
        let m = s.seed(shape).unwrap();
        assert!((m.opt_per_instr_s - 12.0e-6).abs() < 1e-12, "50/50 blend");
    }
}
