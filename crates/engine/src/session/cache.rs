//! The versioned query-result cache with a total-byte budget.
//!
//! Keys are `(plan fingerprint, catalog version)`: the fingerprint
//! identifies *what* the query computes (`PhysicalPlan::fingerprint`), the
//! catalog version identifies *which data* it computed it over. A catalog
//! mutation bumps the version, so every cached entry for the old contents
//! becomes unreachable — invalidation is a key mismatch, never a scan. The
//! uniform `ResultRows` output makes hits backend-agnostic: a result
//! produced by the bytecode interpreter serves a later native-mode
//! submission of the same plan bit-identically.
//!
//! Sizing is a single **total-byte budget** (PR 3 bounded entry *count*
//! at 32 plus an 8 MiB per-entry admission cap — a shape that let 32
//! near-cap entries pin ~256 MiB while a thousand tiny results thrashed).
//! Eviction is **size-weighted LRU**: recency orders the victims, but
//! between entries of similar recency the larger one goes first (small
//! results get a bounded recency grace — see [`Entry::score`]). Admission
//! refuses any single result over a quarter of the budget, so one giant
//! answer cannot wipe the whole cache for a miss that may never repeat.

use crate::exec::ResultRows;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: `(plan fingerprint, catalog version)`.
pub(crate) type ResultKey = (u64, u64);

/// Default total budget: 64 MiB of cached result rows.
pub(crate) const DEFAULT_BUDGET_BYTES: usize = 64 << 20;

/// Heap bytes a result occupies in the cache (rows dominate; the type
/// vector and map entry are a fixed small overhead).
pub(crate) fn entry_bytes(rows: &ResultRows) -> usize {
    rows.rows.len() * 8 + rows.tys.len() + 64
}

struct Entry {
    rows: ResultRows,
    bytes: usize,
    last_used: u64,
}

impl Entry {
    /// Size-weighted eviction score (lower evicts first): recency plus a
    /// small-size grace. The grace is capped at 8 ticks, so a tiny entry
    /// can outlive the plain LRU order only briefly, while entries above
    /// ~1/128 of the budget get no grace at all and are evicted in pure
    /// recency order.
    fn score(&self, budget: usize) -> u64 {
        let grace = (budget as u64 / (self.bytes as u64 * 128 + 1)).min(8);
        self.last_used + grace
    }
}

struct Inner {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<ResultKey, Entry>,
}

impl Inner {
    fn evict_to_budget(&mut self) {
        while self.used > self.budget && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.score(self.budget))
                .map(|(k, _)| *k)
                .expect("non-empty over-budget cache");
            if let Some(e) = self.map.remove(&victim) {
                self.used -= e.bytes;
            }
        }
    }
}

/// A byte-budgeted, size-weighted-LRU cache of query results, owned by the
/// `Engine`.
pub(crate) struct ResultCache {
    inner: Mutex<Inner>,
}

impl ResultCache {
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                budget: budget_bytes,
                used: 0,
                tick: 0,
                map: HashMap::new(),
            }),
        }
    }

    /// Whether a result of `bytes` would be admitted at all — callers
    /// check *before* cloning the rows; [`put`](ResultCache::put) is the
    /// backstop. The per-entry ceiling is a quarter of the budget.
    pub fn admits(&self, bytes: usize) -> bool {
        let g = self.inner.lock();
        g.budget > 0 && bytes <= g.budget / 4
    }

    /// Look up a result, marking the entry most-recently-used on a hit.
    pub fn get(&self, key: ResultKey) -> Option<ResultRows> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        let e = g.map.get_mut(&key)?;
        e.last_used = tick;
        Some(e.rows.clone())
    }

    /// Insert a result, evicting by size-weighted LRU until the total is
    /// back under budget. A zero budget disables the cache entirely;
    /// over-ceiling results (see [`admits`](ResultCache::admits)) are
    /// refused.
    pub fn put(&self, key: ResultKey, rows: ResultRows) {
        let bytes = entry_bytes(&rows);
        let mut g = self.inner.lock();
        if g.budget == 0 || bytes > g.budget / 4 {
            return;
        }
        g.tick += 1;
        let tick = g.tick;
        if let Some(old) = g.map.insert(key, Entry { rows, bytes, last_used: tick }) {
            g.used -= old.bytes;
        }
        g.used += bytes;
        g.evict_to_budget();
    }

    /// Drop every entry that was not produced at `version` — called after
    /// a catalog mutation, when the stale keys can never be requested
    /// again.
    pub fn retain_version(&self, version: u64) {
        let mut g = self.inner.lock();
        let mut freed = 0usize;
        g.map.retain(|&(_, v), e| {
            let keep = v == version;
            if !keep {
                freed += e.bytes;
            }
            keep
        });
        g.used -= freed;
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Bytes currently pinned by cached results.
    pub fn bytes_used(&self) -> usize {
        self.inner.lock().used
    }

    /// Re-bound the cache (0 disables it; shrinking evicts immediately).
    pub fn set_budget(&self, budget_bytes: usize) {
        let mut g = self.inner.lock();
        g.budget = budget_bytes;
        g.evict_to_budget();
        // Every entry costs at least its fixed overhead, so a zero budget
        // necessarily drained the map above.
        debug_assert!(budget_bytes > 0 || g.map.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FieldTy;

    fn rows_of(v: u64, n: usize) -> ResultRows {
        ResultRows { tys: vec![FieldTy::I64], rows: vec![v; n] }
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Budget fits four of the five same-sized entries (each under the
        // quarter-budget admission ceiling).
        let one = entry_bytes(&rows_of(0, 1000));
        let c = ResultCache::new(4 * one + one / 2);
        for k in 1..=4 {
            c.put((k, 0), rows_of(k, 1000));
        }
        assert!(c.get((1, 0)).is_some()); // touch 1 → 2 is now coldest
        c.put((5, 0), rows_of(5, 1000));
        assert_eq!(c.len(), 4);
        assert!(c.get((2, 0)).is_none(), "LRU entry must be evicted");
        for k in [1, 3, 4, 5] {
            assert!(c.get((k, 0)).is_some(), "entry {k} must survive");
        }
    }

    #[test]
    fn size_weight_prefers_evicting_the_large_entry() {
        // A tiny entry older than a large one: when space is needed the
        // large entry goes first (the tiny one is within its recency
        // grace), even though pure LRU would evict the tiny one.
        let c = ResultCache::new(100_000);
        c.put((1, 0), rows_of(1, 1)); // tiny, oldest
        c.put((2, 0), rows_of(2, 3000)); // large, newer
        for k in 3..=6 {
            c.put((k, 0), rows_of(k, 3000)); // fill until over budget
        }
        assert!(c.get((1, 0)).is_some(), "tiny old entry survives (grace)");
        assert!(c.get((2, 0)).is_none(), "large entry is the size-weighted victim");
        for k in 3..=6 {
            assert!(c.get((k, 0)).is_some(), "entry {k} must survive");
        }
    }

    #[test]
    fn bytes_are_accounted_across_replace_and_retain() {
        let c = ResultCache::new(1 << 20);
        c.put((1, 0), rows_of(1, 100));
        c.put((1, 0), rows_of(1, 200)); // replace: old bytes released
        assert_eq!(c.bytes_used(), entry_bytes(&rows_of(1, 200)));
        c.put((2, 1), rows_of(2, 50));
        c.retain_version(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes_used(), entry_bytes(&rows_of(2, 50)));
    }

    #[test]
    fn version_mismatch_is_a_miss_and_retain_purges() {
        let c = ResultCache::new(1 << 20);
        c.put((7, 0), rows_of(7, 1));
        assert!(c.get((7, 1)).is_none(), "newer catalog version must miss");
        c.retain_version(1);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = ResultCache::new(0);
        assert!(!c.admits(8));
        c.put((1, 0), rows_of(1, 1));
        assert!(c.get((1, 0)).is_none());
    }

    #[test]
    fn oversized_results_are_refused() {
        let c = ResultCache::new(4096);
        assert!(!c.admits(2048), "over a quarter of the budget");
        c.put((1, 0), rows_of(0, 1000)); // ~8 KB > 1 KB ceiling
        assert_eq!(c.len(), 0, "an over-ceiling result must not be admitted");
    }

    #[test]
    fn shrinking_the_budget_evicts_immediately() {
        let c = ResultCache::new(1 << 20);
        for k in 0..8 {
            c.put((k, 0), rows_of(k, 1000));
        }
        assert_eq!(c.len(), 8);
        let two = 2 * entry_bytes(&rows_of(0, 1000)) + 1;
        c.set_budget(two);
        assert!(c.len() <= 2, "shrink must evict down to the new budget");
        assert!(c.bytes_used() <= two);
        c.set_budget(0);
        assert_eq!(c.len(), 0);
    }
}
