//! The versioned query-result cache.
//!
//! Keys are `(plan fingerprint, catalog version)`: the fingerprint
//! identifies *what* the query computes (`PhysicalPlan::fingerprint`), the
//! catalog version identifies *which data* it computed it over. A catalog
//! mutation bumps the version, so every cached entry for the old contents
//! becomes unreachable — invalidation is a key mismatch, never a scan. The
//! uniform `ResultRows` output makes hits backend-agnostic: a result
//! produced by the bytecode interpreter serves a later optimized-mode
//! submission of the same plan bit-identically.

use crate::exec::ResultRows;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: `(plan fingerprint, catalog version)`.
pub(crate) type ResultKey = (u64, u64);

/// Admission bound: results wider than this many `u64` slots (8 MiB) are
/// never cached — the entry budget bounds *count*, this bounds the worst
/// case per entry, so an engine cannot silently pin gigabytes of rows.
pub(crate) const MAX_RESULT_SLOTS: usize = 1 << 20;

struct Entry {
    rows: ResultRows,
    last_used: u64,
}

struct Inner {
    capacity: usize,
    tick: u64,
    map: HashMap<ResultKey, Entry>,
}

/// A bounded LRU cache of query results, owned by the `Engine`.
pub(crate) struct ResultCache {
    inner: Mutex<Inner>,
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache { inner: Mutex::new(Inner { capacity, tick: 0, map: HashMap::new() }) }
    }

    /// Look up a result, marking the entry most-recently-used on a hit.
    pub fn get(&self, key: ResultKey) -> Option<ResultRows> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        let e = g.map.get_mut(&key)?;
        e.last_used = tick;
        Some(e.rows.clone())
    }

    /// Insert a result, evicting least-recently-used entries beyond the
    /// capacity. A capacity of zero disables the cache entirely; results
    /// over [`MAX_RESULT_SLOTS`] are refused (callers check the bound
    /// *before* cloning the rows — this guard is the backstop).
    pub fn put(&self, key: ResultKey, rows: ResultRows) {
        if rows.rows.len() > MAX_RESULT_SLOTS {
            return;
        }
        let mut g = self.inner.lock();
        if g.capacity == 0 {
            return;
        }
        g.tick += 1;
        let tick = g.tick;
        g.map.insert(key, Entry { rows, last_used: tick });
        while g.map.len() > g.capacity {
            // Small caches: a linear LRU scan beats maintaining an
            // intrusive list.
            let oldest = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty over-capacity cache");
            g.map.remove(&oldest);
        }
    }

    /// Drop every entry that was not produced at `version` — called after
    /// a catalog mutation, when the stale keys can never be requested
    /// again.
    pub fn retain_version(&self, version: u64) {
        self.inner.lock().map.retain(|&(_, v), _| v == version);
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn set_capacity(&self, capacity: usize) {
        let mut g = self.inner.lock();
        g.capacity = capacity;
        while g.map.len() > g.capacity {
            let oldest = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty over-capacity cache");
            g.map.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FieldTy;

    fn rows(v: u64) -> ResultRows {
        ResultRows { tys: vec![FieldTy::I64], rows: vec![v] }
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let c = ResultCache::new(2);
        c.put((1, 0), rows(1));
        c.put((2, 0), rows(2));
        assert!(c.get((1, 0)).is_some()); // touch 1 → 2 is now coldest
        c.put((3, 0), rows(3));
        assert_eq!(c.len(), 2);
        assert!(c.get((2, 0)).is_none(), "LRU entry must be evicted");
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((3, 0)).is_some());
    }

    #[test]
    fn version_mismatch_is_a_miss_and_retain_purges() {
        let c = ResultCache::new(4);
        c.put((7, 0), rows(7));
        assert!(c.get((7, 1)).is_none(), "newer catalog version must miss");
        c.retain_version(1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.put((1, 0), rows(1));
        assert!(c.get((1, 0)).is_none());
    }

    #[test]
    fn oversized_results_are_refused() {
        let c = ResultCache::new(4);
        let huge = ResultRows { tys: vec![FieldTy::I64], rows: vec![0; MAX_RESULT_SLOTS + 1] };
        c.put((1, 0), huge);
        assert_eq!(c.len(), 0, "an over-budget result must not be admitted");
    }
}
