//! The versioned query-result cache: byte-budgeted, sharded, counted.
//!
//! Keys are `(plan fingerprint, catalog version)`: the fingerprint
//! identifies *what* the query computes (`PhysicalPlan::fingerprint`), the
//! catalog version identifies *which data* it computed it over. A catalog
//! mutation bumps the version, so every cached entry for the old contents
//! becomes unreachable — invalidation is a key mismatch, never a scan. The
//! uniform `ResultRows` output makes hits backend-agnostic: a result
//! produced by the bytecode interpreter serves a later native-mode
//! submission of the same plan bit-identically.
//!
//! **Sharding.** PR 3's cache was one mutex; under concurrent traffic
//! every hit, miss, and insert of every session serialized on it. The
//! cache is now `N` independently mutexed shards (default
//! [`DEFAULT_SHARDS`]), an entry's shard chosen by its fingerprint, so
//! sessions executing *different* queries touch different locks and only
//! identical-fingerprint traffic — which shares a cache entry anyway —
//! shares a shard. The byte budget splits evenly across shards and
//! eviction is per-shard, which keeps the victim scan O(shard), at the
//! cost of the budget being enforced per fingerprint-class rather than
//! globally exactly (a skew of hot fingerprints into one shard evicts
//! within that shard while others sit under-full — bounded by design to
//! `budget/N` per shard).
//!
//! Sizing is a **total-byte budget**. Eviction is **size-weighted LRU**:
//! recency orders the victims, but between entries of similar recency the
//! larger one goes first (small results get a bounded recency grace — see
//! [`Entry::score`]). Admission refuses any single result over a quarter
//! of its shard's budget, so one giant answer cannot wipe a shard for a
//! miss that may never repeat.
//!
//! **Counters.** Hits, misses, insertions, admission rejections, and
//! evictions are engine-lifetime atomics surfaced via
//! [`ResultCache::stats`] (→ `Engine::cache_stats`), so load tests and
//! the concurrency benchmark report cache behavior directly instead of
//! inferring it from per-execution `Report::result_cache_hit` flags.

use crate::exec::ResultRows;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cache key: `(generalized plan fingerprint, catalog version, bind
/// values)`. A parameterized statement has one fingerprint across all of
/// its bindings; the bound values (bit patterns, in slot order) are what
/// keep one binding's rows from serving another's. Non-parameterized
/// queries carry an empty value vector.
pub(crate) type ResultKey = (u64, u64, Vec<u64>);

/// Default total budget: 64 MiB of cached result rows.
pub(crate) const DEFAULT_BUDGET_BYTES: usize = 64 << 20;

/// Default shard count: enough to make same-lock collisions of unrelated
/// queries rare at realistic session counts, small enough that the
/// per-shard budget (total/8) still admits multi-megabyte results.
pub(crate) const DEFAULT_SHARDS: usize = 8;

/// Heap bytes a result occupies in the cache (rows dominate; the type
/// vector and map entry are a fixed small overhead).
pub(crate) fn entry_bytes(rows: &ResultRows) -> usize {
    rows.rows.len() * 8 + rows.tys.len() + 64
}

/// Point-in-time result-cache counters (`Engine::cache_stats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Results currently cached.
    pub entries: usize,
    /// Bytes currently pinned by cached results.
    pub bytes_used: usize,
    /// Total byte budget across all shards.
    pub budget_bytes: usize,
    /// Number of mutexed shards.
    pub shards: usize,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    /// Results refused at admission (over the per-entry ceiling, or the
    /// cache is disabled).
    pub admission_rejections: u64,
    /// Entries displaced by the size-weighted LRU to stay under budget.
    pub evictions: u64,
}

struct Entry {
    rows: ResultRows,
    bytes: usize,
    last_used: u64,
}

impl Entry {
    /// Size-weighted eviction score (lower evicts first): recency plus a
    /// small-size grace. The grace is capped at 8 ticks, so a tiny entry
    /// can outlive the plain LRU order only briefly, while entries above
    /// ~1/128 of the shard budget get no grace at all and are evicted in
    /// pure recency order.
    fn score(&self, budget: usize) -> u64 {
        let grace = (budget as u64 / (self.bytes as u64 * 128 + 1)).min(8);
        self.last_used + grace
    }
}

#[derive(Default)]
struct Shard {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<ResultKey, Entry>,
}

impl Shard {
    /// Evict until under budget; returns how many entries were displaced.
    fn evict_to_budget(&mut self) -> u64 {
        let mut evicted = 0;
        while self.used > self.budget && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.score(self.budget))
                .map(|(k, _)| k.clone())
                .expect("non-empty over-budget shard");
            if let Some(e) = self.map.remove(&victim) {
                self.used -= e.bytes;
                evicted += 1;
            }
        }
        evicted
    }
}

/// A sharded, byte-budgeted, size-weighted-LRU cache of query results,
/// owned by the `Engine`.
pub(crate) struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total / shard count), mirrored here so the
    /// admission check never takes a shard lock.
    shard_budget: AtomicUsize,
    /// The catalog version of the last [`retain_version`] purge. An
    /// execution pinned to an older epoch can try to insert its result
    /// *after* the mutation that obsoleted it already purged — the
    /// insert/purge race the epoch design opens where the old
    /// catalog-wide lock closed it by blocking the mutation. Refusing
    /// keys below this floor keeps eager invalidation airtight: no
    /// stale-version entry can enter the cache once its purge ran.
    ///
    /// [`retain_version`]: ResultCache::retain_version
    min_version: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    admission_rejections: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache::with_shards(budget_bytes, DEFAULT_SHARDS)
    }

    pub fn with_shards(budget_bytes: usize, shards: usize) -> ResultCache {
        let n = shards.max(1);
        let per_shard = budget_bytes / n;
        ResultCache {
            shards: (0..n)
                .map(|_| Mutex::new(Shard { budget: per_shard, ..Shard::default() }))
                .collect(),
            shard_budget: AtomicUsize::new(per_shard),
            min_version: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &ResultKey) -> &Mutex<Shard> {
        // The fingerprint is an FNV-1a hash — already well mixed; fold the
        // high half in so shard choice uses all 64 bits.
        let idx = ((key.0 ^ (key.0 >> 32)) as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Whether a result of `bytes` would be admitted at all — callers
    /// check *before* cloning the rows; [`put`](ResultCache::put) is the
    /// backstop (which refuses silently, so the two never double-count a
    /// rejection). The per-entry ceiling is a quarter of the shard budget.
    pub fn admits(&self, bytes: usize) -> bool {
        let budget = self.shard_budget.load(Ordering::Relaxed);
        let ok = budget > 0 && bytes <= budget / 4;
        if !ok {
            self.admission_rejections.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Look up a result, marking the entry most-recently-used on a hit.
    pub fn get(&self, key: &ResultKey) -> Option<ResultRows> {
        let mut g = self.shard_of(key).lock();
        g.tick += 1;
        let tick = g.tick;
        match g.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let rows = e.rows.clone();
                drop(g);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rows)
            }
            None => {
                drop(g);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a result, evicting by size-weighted LRU until its shard is
    /// back under budget. A zero budget disables the cache entirely;
    /// over-ceiling results (see [`admits`](ResultCache::admits)) are
    /// refused.
    pub fn put(&self, key: ResultKey, rows: ResultRows) {
        let bytes = entry_bytes(&rows);
        let mut g = self.shard_of(&key).lock();
        // The floor is checked *under* the shard lock: a purge that ran
        // between an early check and this insert would otherwise let a
        // straggler from an already-purged epoch slip in (the purge holds
        // every shard lock after bumping the floor, so acquiring the lock
        // here orders this load after its `fetch_max`).
        if key.1 < self.min_version.load(Ordering::Acquire) {
            return;
        }
        if g.budget == 0 || bytes > g.budget / 4 {
            return;
        }
        g.tick += 1;
        let tick = g.tick;
        if let Some(old) = g.map.insert(key, Entry { rows, bytes, last_used: tick }) {
            g.used -= old.bytes;
        }
        g.used += bytes;
        let evicted = g.evict_to_budget();
        drop(g);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drop every entry that was not produced at `version` — called after
    /// a catalog mutation, when the stale keys can never be requested
    /// again.
    pub fn retain_version(&self, version: u64) {
        self.min_version.fetch_max(version, Ordering::AcqRel);
        for shard in &self.shards {
            let mut g = shard.lock();
            let mut freed = 0usize;
            g.map.retain(|k, e| {
                let keep = k.1 == version;
                if !keep {
                    freed += e.bytes;
                }
                keep
            });
            g.used -= freed;
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Bytes currently pinned by cached results.
    pub fn bytes_used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// Re-bound the cache (0 disables it; shrinking evicts immediately).
    pub fn set_budget(&self, budget_bytes: usize) {
        let per_shard = budget_bytes / self.shards.len();
        self.shard_budget.store(per_shard, Ordering::Relaxed);
        let mut evicted = 0;
        for shard in &self.shards {
            let mut g = shard.lock();
            g.budget = per_shard;
            evicted += g.evict_to_budget();
            // Every entry costs at least its fixed overhead, so a zero
            // budget necessarily drained the map above.
            debug_assert!(per_shard > 0 || g.map.is_empty());
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Aggregate counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes_used) = (0, 0);
        for shard in &self.shards {
            let g = shard.lock();
            entries += g.map.len();
            bytes_used += g.used;
        }
        CacheStats {
            entries,
            bytes_used,
            budget_bytes: self.shard_budget.load(Ordering::Relaxed) * self.shards.len(),
            shards: self.shards.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            admission_rejections: self.admission_rejections.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FieldTy;

    fn rows_of(v: u64, n: usize) -> ResultRows {
        ResultRows { tys: vec![FieldTy::I64], rows: vec![v; n] }
    }

    /// Unbound key (no bind values) — the shape every pre-PR 7 test used.
    fn key(fingerprint: u64, version: u64) -> ResultKey {
        (fingerprint, version, Vec::new())
    }

    /// Policy tests (LRU order, size weighting, budget accounting) pin a
    /// single shard so victim selection is deterministic across keys; the
    /// sharded tests below cover the multi-shard surface.
    fn single_shard(budget: usize) -> ResultCache {
        ResultCache::with_shards(budget, 1)
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Budget fits four of the five same-sized entries (each under the
        // quarter-budget admission ceiling).
        let one = entry_bytes(&rows_of(0, 1000));
        let c = single_shard(4 * one + one / 2);
        for k in 1..=4 {
            c.put(key(k, 0), rows_of(k, 1000));
        }
        assert!(c.get(&key(1, 0)).is_some()); // touch 1 → 2 is now coldest
        c.put(key(5, 0), rows_of(5, 1000));
        assert_eq!(c.len(), 4);
        assert!(c.get(&key(2, 0)).is_none(), "LRU entry must be evicted");
        for k in [1, 3, 4, 5] {
            assert!(c.get(&key(k, 0)).is_some(), "entry {k} must survive");
        }
    }

    #[test]
    fn size_weight_prefers_evicting_the_large_entry() {
        // A tiny entry older than a large one: when space is needed the
        // large entry goes first (the tiny one is within its recency
        // grace), even though pure LRU would evict the tiny one.
        let c = single_shard(100_000);
        c.put(key(1, 0), rows_of(1, 1)); // tiny, oldest
        c.put(key(2, 0), rows_of(2, 3000)); // large, newer
        for k in 3..=6 {
            c.put(key(k, 0), rows_of(k, 3000)); // fill until over budget
        }
        assert!(c.get(&key(1, 0)).is_some(), "tiny old entry survives (grace)");
        assert!(c.get(&key(2, 0)).is_none(), "large entry is the size-weighted victim");
        for k in 3..=6 {
            assert!(c.get(&key(k, 0)).is_some(), "entry {k} must survive");
        }
    }

    #[test]
    fn bytes_are_accounted_across_replace_and_retain() {
        let c = single_shard(1 << 20);
        c.put(key(1, 0), rows_of(1, 100));
        c.put(key(1, 0), rows_of(1, 200)); // replace: old bytes released
        assert_eq!(c.bytes_used(), entry_bytes(&rows_of(1, 200)));
        c.put(key(2, 1), rows_of(2, 50));
        c.retain_version(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes_used(), entry_bytes(&rows_of(2, 50)));
    }

    #[test]
    fn version_mismatch_is_a_miss_and_retain_purges() {
        let c = single_shard(1 << 20);
        c.put(key(7, 0), rows_of(7, 1));
        assert!(c.get(&key(7, 1)).is_none(), "newer catalog version must miss");
        c.retain_version(1);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = ResultCache::new(0);
        assert!(!c.admits(8));
        c.put(key(1, 0), rows_of(1, 1));
        assert!(c.get(&key(1, 0)).is_none());
    }

    #[test]
    fn oversized_results_are_refused() {
        let c = single_shard(4096);
        assert!(!c.admits(2048), "over a quarter of the budget");
        c.put(key(1, 0), rows_of(0, 1000)); // ~8 KB > 1 KB ceiling
        assert_eq!(c.len(), 0, "an over-ceiling result must not be admitted");
    }

    #[test]
    fn shrinking_the_budget_evicts_immediately() {
        let c = single_shard(1 << 20);
        for k in 0..8 {
            c.put(key(k, 0), rows_of(k, 1000));
        }
        assert_eq!(c.len(), 8);
        let two = 2 * entry_bytes(&rows_of(0, 1000)) + 1;
        c.set_budget(two);
        assert!(c.len() <= 2, "shrink must evict down to the new budget");
        assert!(c.bytes_used() <= two);
        c.set_budget(0);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn stale_version_inserts_are_refused_after_a_purge() {
        // The insert/purge race: an execution pinned to an old epoch
        // finishes after the mutation already purged that epoch's
        // entries. Its late insert must bounce off the version floor.
        let c = single_shard(1 << 20);
        c.retain_version(5);
        c.put(key(1, 4), rows_of(1, 10));
        assert_eq!(c.len(), 0, "a straggler from a purged epoch must be refused");
        c.put(key(1, 5), rows_of(1, 10));
        assert_eq!(c.len(), 1, "current-version inserts are unaffected");
    }

    #[test]
    fn bind_values_separate_entries_under_one_fingerprint() {
        let c = single_shard(1 << 20);
        c.put((7, 0, vec![10]), rows_of(1, 4));
        c.put((7, 0, vec![11]), rows_of(2, 4));
        c.put((7, 0, vec![10, 20]), rows_of(3, 4));
        assert_eq!(c.len(), 3, "distinct bindings must not alias");
        assert_eq!(c.get(&(7, 0, vec![10])).unwrap().rows, vec![1; 4]);
        assert_eq!(c.get(&(7, 0, vec![11])).unwrap().rows, vec![2; 4]);
        assert_eq!(c.get(&(7, 0, vec![10, 20])).unwrap().rows, vec![3; 4]);
        assert!(c.get(&key(7, 0)).is_none(), "unbound key is yet another identity");
        // A version purge drops every binding of the fingerprint at once.
        c.retain_version(1);
        assert_eq!(c.len(), 0, "catalog mutation invalidates all bindings");
    }

    #[test]
    fn sharded_cache_spreads_entries_and_sums_occupancy() {
        let c = ResultCache::new(1 << 20);
        for k in 0..64u64 {
            // Spread fingerprints across the hash space the way FNV would.
            c.put(key(k.wrapping_mul(0x9e3779b97f4a7c15), 0), rows_of(k, 10));
        }
        assert_eq!(c.len(), 64);
        assert_eq!(c.bytes_used(), 64 * entry_bytes(&rows_of(0, 10)));
        for k in 0..64u64 {
            assert!(c.get(&key(k.wrapping_mul(0x9e3779b97f4a7c15), 0)).is_some());
        }
        // Retain purges across every shard.
        c.retain_version(1);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn stats_count_hits_misses_insertions_and_rejections() {
        let c = single_shard(100_000);
        assert!(c.get(&key(1, 0)).is_none());
        c.put(key(1, 0), rows_of(1, 10));
        assert!(c.get(&key(1, 0)).is_some());
        assert!(!c.admits(usize::MAX), "over-ceiling probe");
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.admission_rejections, 1);
        assert_eq!(s.shards, 1);
        assert_eq!(s.budget_bytes, 100_000);
        assert_eq!(s.bytes_used, entry_bytes(&rows_of(1, 10)));
    }

    #[test]
    fn evictions_are_counted() {
        // Budget fits four entries (each under the quarter-budget
        // admission ceiling); six insertions force two evictions.
        let one = entry_bytes(&rows_of(0, 1000));
        let c = single_shard(4 * one + 1);
        for k in 0..6 {
            c.put(key(k, 0), rows_of(k, 1000));
        }
        let s = c.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.evictions, 2);
    }
}
