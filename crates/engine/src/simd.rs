//! Vectorized scan kernels (`ExecMode::Simd`, rank 5).
//!
//! A scan pipeline whose first operator is a filter of simple comparisons
//! (`col < const AND …`) spends most of its scalar time computing a
//! predicate that packed compares evaluate 4–8 rows at a time. This module
//! extracts such *conjuncts* from the physical plan ([`ScanKernel::extract`])
//! and wraps any compiled scalar backend in a [`SimdScanBackend`]: each
//! morsel is cut into 64-row blocks, the kernel evaluates the conjuncts
//! into a selection bitmask (`u64`, bit *i* = row passes), and only the
//! surviving row *runs* are handed to the inner scalar worker.
//!
//! ## Correctness: the superset-mask contract
//!
//! The kernel's mask is a **superset filter**: every extracted conjunct is
//! a necessary condition of the full predicate, so a cleared bit proves
//! the row fails and can be skipped, while a set bit proves nothing — the
//! inner scalar worker re-evaluates the *complete* predicate on every row
//! it is given. This has two liberating consequences:
//!
//! * Extraction may skip any conjunct it cannot vectorize (`InList`,
//!   arithmetic, out-of-lane-range constants, `Or` trees) — the mask just
//!   gets denser, never wrong.
//! * Adjacent runs may be merged across small gaps (fewer, longer inner
//!   calls): including a failing row is harmless by the same argument.
//!
//! Consequently the only semantic requirement on the mask is *no false
//! negatives*, which each lane guarantees by replicating exactly the
//! scalar comparison the generated code performs after column widening
//! (`i32`/`Date` sign-extend, `Str` code zero-extend, `i64`/`Decimal`
//! direct, `f64` with Rust/IEEE NaN semantics — NaN fails every predicate
//! except `!=`).
//!
//! ## Tiers
//!
//! [`KernelTier`] picks the implementation at kernel construction:
//! AVX2 (8×i32 / 4×i64 / 4×f64 lanes) when the CPU reports it, SSE2
//! (4×i32 / 2×f64; SSE2 has no packed 64-bit signed compare, so `i64`
//! conjuncts evaluate scalar) as the x86-64 baseline, and a pure-Rust
//! scalar fallback everywhere else. All three produce bit-identical
//! masks — the CPUID fallback test relies on it. `AQE_SIMD=0` disables
//! the mode; `AQE_SIMD_TIER=avx2|sse2|scalar` forces a tier (testing).

use crate::plan::{CmpOp, FieldTy, PExpr, PipeOp, Pipeline, Source};
use aqe_storage::{CatalogSnapshot, DataType};
use aqe_vm::backend::{ExecMode, PipelineBackend};
use aqe_vm::interp::{ExecError, Frame};
use aqe_vm::rt::Registry;
use std::sync::Arc;

/// Whether the SIMD scan-kernel mode is enabled (`AQE_SIMD=0` forces the
/// engine to alias `ExecMode::Simd` to `Native`, mirroring `AQE_NATIVE`).
pub fn enabled() -> bool {
    std::env::var("AQE_SIMD").map_or(true, |v| v != "0")
}

/// Which packed-compare implementation a kernel uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelTier {
    /// 256-bit: 8×i32, 4×i64, 4×f64 per compare.
    Avx2,
    /// 128-bit x86-64 baseline: 4×i32, 2×f64; i64 conjuncts run scalar.
    Sse2,
    /// Pure Rust, any target. Also the per-row tail path of the others.
    Scalar,
}

impl KernelTier {
    /// CPUID-detected best tier, overridable with `AQE_SIMD_TIER`.
    /// The fallback ladder is AVX2 → SSE2 → scalar: SSE2 is architectural
    /// baseline on x86-64, so only non-x86 targets land on `Scalar`.
    pub fn detect() -> KernelTier {
        if let Ok(v) = std::env::var("AQE_SIMD_TIER") {
            match v.as_str() {
                "avx2" => return KernelTier::Avx2,
                "sse2" => return KernelTier::Sse2,
                "scalar" => return KernelTier::Scalar,
                _ => {}
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                KernelTier::Avx2
            } else {
                KernelTier::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            KernelTier::Scalar
        }
    }
}

/// Physical element type of a column as the kernel compares it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Elem {
    /// 4-byte sign-extended (`Int32`, `Date`).
    I32,
    /// 4-byte zero-extended (`Str` dictionary codes).
    U32,
    /// 8-byte (`Int64`, `Decimal`).
    I64,
    /// 8-byte IEEE double.
    F64,
}

/// One vectorizable necessary condition: `column <op> constant`, with the
/// constant resolved to its lane-domain value. This is the *runtime* form
/// the packed compares consume; the retained skeleton keeps
/// [`ConjunctSpec`]s instead, so one kernel serves every parameter binding.
#[derive(Clone, Copy, Debug)]
struct Conjunct {
    /// State slot holding the column's base pointer.
    slot: usize,
    elem: Elem,
    op: CmpOp,
    /// Comparison constant, in the lane domain (`rhs_f` for `F64`).
    rhs_i: i64,
    rhs_f: f64,
}

/// Comparison right-hand side as extracted from the plan: a baked constant
/// or a bind-parameter slot whose value arrives per execution through the
/// plan's param block.
#[derive(Clone, Copy, Debug)]
enum Rhs {
    ConstI(i64),
    ConstF(f64),
    /// `params[idx]` read as `i64`.
    ParamI(usize),
    /// `params[idx]` read as an `f64` bit pattern.
    ParamF(usize),
}

/// A retained conjunct skeleton. Baked constants are lane-domain checked at
/// extraction; parameter slots are checked at [`ScanKernel::resolve`] time,
/// per binding — a value outside the lane domain just drops the conjunct
/// for that binding (sound under the superset-mask contract).
#[derive(Clone, Copy, Debug)]
struct ConjunctSpec {
    slot: usize,
    elem: Elem,
    op: CmpOp,
    rhs: Rhs,
}

/// Mask-block width: one `u64` of selection bits per evaluation.
const BLOCK: u64 = 64;

/// Runs separated by at most this many failing rows are merged into one
/// inner call — sound under the superset contract, and it trades a few
/// scalar re-evaluations for far fewer per-call frame setups.
const MERGE_GAP: u64 = 16;

/// A compiled filter pre-pass for one scan pipeline: which columns to
/// compare against which constants (or parameter slots), and at which
/// [`KernelTier`]. The kernel itself is binding-independent — it is
/// retained with the prepared query's compiled state and resolved against
/// the current parameter block on every backend call.
pub struct ScanKernel {
    specs: Vec<ConjunctSpec>,
    /// State slot holding the parameter-block pointer (`plan.param_slot`);
    /// `None` when every conjunct is a baked constant.
    param_slot: Option<usize>,
    tier: KernelTier,
}

impl std::fmt::Debug for ScanKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanKernel")
            .field("conjuncts", &self.specs.len())
            .field("tier", &self.tier)
            .finish()
    }
}

/// Flip an operator for `const <op> col` → `col <op'> const`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

impl ScanKernel {
    /// Extract a kernel from a pipeline: a table scan whose first operator
    /// is a filter with at least one vectorizable top-level conjunct.
    /// Returns `None` when the mode cannot help (non-scan source, no
    /// filter, or no comparison the lanes can express). `param_slot` is the
    /// plan's parameter-block slot; comparisons against `PExpr::Param` are
    /// extracted as parameter conjuncts resolved per binding.
    pub fn extract(
        p: &Pipeline,
        cat: &CatalogSnapshot,
        param_slot: Option<usize>,
    ) -> Option<ScanKernel> {
        let Source::Table { table, cols, slot_base, .. } = &p.source else { return None };
        let Some(PipeOp::Filter(pred)) = p.ops.first() else { return None };
        let t = cat.get(table)?;

        // Top-level And tree → necessary conditions. Anything below an Or
        // or Not is not individually necessary and is left to the scalar
        // re-evaluation.
        let mut leaves = Vec::new();
        let mut stack = vec![pred];
        while let Some(e) = stack.pop() {
            match e {
                PExpr::And(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                other => leaves.push(other),
            }
        }

        let mut specs = Vec::new();
        for leaf in leaves {
            let PExpr::Cmp { op, float, a, b } = leaf else { continue };
            let (k, op, rhs) = match (&**a, &**b) {
                (PExpr::Col(k), PExpr::ConstI(v)) if !float => (*k, *op, Rhs::ConstI(*v)),
                (PExpr::ConstI(v), PExpr::Col(k)) if !float => (*k, flip(*op), Rhs::ConstI(*v)),
                (PExpr::Col(k), PExpr::ConstF(v)) if *float => (*k, *op, Rhs::ConstF(*v)),
                (PExpr::ConstF(v), PExpr::Col(k)) if *float => (*k, flip(*op), Rhs::ConstF(*v)),
                (PExpr::Col(k), PExpr::Param { idx, ty: FieldTy::I64 }) if !float => {
                    (*k, *op, Rhs::ParamI(*idx))
                }
                (PExpr::Param { idx, ty: FieldTy::I64 }, PExpr::Col(k)) if !float => {
                    (*k, flip(*op), Rhs::ParamI(*idx))
                }
                (PExpr::Col(k), PExpr::Param { idx, ty: FieldTy::F64 }) if *float => {
                    (*k, *op, Rhs::ParamF(*idx))
                }
                (PExpr::Param { idx, ty: FieldTy::F64 }, PExpr::Col(k)) if *float => {
                    (*k, flip(*op), Rhs::ParamF(*idx))
                }
                _ => continue,
            };
            if k >= cols.len() {
                continue;
            }
            // A parameter's value is unknown until binding: its lane-domain
            // check happens at resolve time.
            let (ci, is_param) = match rhs {
                Rhs::ConstI(v) => (v, false),
                Rhs::ConstF(_) => (0, false),
                Rhs::ParamI(_) | Rhs::ParamF(_) => (0, true),
            };
            // The lane domain must hold the constant exactly, or the
            // packed compare would see a different value than the widened
            // scalar compare. Out-of-range constants are simply skipped —
            // such a conjunct is constant-true or constant-false anyway.
            let elem = match t.column_type(cols[k]) {
                DataType::Int32 | DataType::Date => {
                    if *float || (!is_param && i32::try_from(ci).is_err()) {
                        continue;
                    }
                    Elem::I32
                }
                DataType::Str => {
                    if *float || (!is_param && !(0..=u32::MAX as i64).contains(&ci)) {
                        continue;
                    }
                    Elem::U32
                }
                DataType::Int64 | DataType::Decimal => {
                    if *float {
                        continue;
                    }
                    Elem::I64
                }
                DataType::Float64 => {
                    if !*float {
                        continue;
                    }
                    Elem::F64
                }
                DataType::Bool => continue,
            };
            specs.push(ConjunctSpec { slot: slot_base + k, elem, op, rhs });
        }
        if specs.is_empty() {
            return None;
        }
        let uses_params = specs.iter().any(|s| matches!(s.rhs, Rhs::ParamI(_) | Rhs::ParamF(_)));
        if uses_params && param_slot.is_none() {
            return None;
        }
        Some(ScanKernel {
            specs,
            param_slot: if uses_params { param_slot } else { None },
            tier: KernelTier::detect(),
        })
    }

    /// The tier this kernel evaluates with.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Number of vectorized conjuncts (before per-binding resolution).
    pub fn conjunct_count(&self) -> usize {
        self.specs.len()
    }

    /// Resolve the retained skeleton against the current execution's
    /// parameter block (read from the worker state), producing the runtime
    /// conjuncts for this binding. A parameter value outside its lane
    /// domain drops that conjunct — the mask gets denser, never wrong.
    ///
    /// # Safety
    /// When the kernel has parameter conjuncts, `state[param_slot]` must
    /// hold a valid pointer to the execution's parameter block, with every
    /// referenced index in bounds (guaranteed by `run_pipelines`' arity
    /// check against `plan.params`).
    unsafe fn resolve(&self, state: *const u64) -> Vec<Conjunct> {
        let block = self.param_slot.map(|s| unsafe { *state.add(s) } as *const u64);
        let mut out = Vec::with_capacity(self.specs.len());
        for s in &self.specs {
            let (rhs_i, rhs_f) = match s.rhs {
                Rhs::ConstI(v) => (v, 0.0),
                Rhs::ConstF(v) => (0, v),
                Rhs::ParamI(idx) => {
                    let Some(b) = block else { continue };
                    (unsafe { *b.add(idx) } as i64, 0.0)
                }
                Rhs::ParamF(idx) => {
                    let Some(b) = block else { continue };
                    (0, f64::from_bits(unsafe { *b.add(idx) }))
                }
            };
            // Per-binding lane-domain check (mirrors the extraction-time
            // check for baked constants).
            let in_domain = match s.elem {
                Elem::I32 => i32::try_from(rhs_i).is_ok(),
                Elem::U32 => (0..=u32::MAX as i64).contains(&rhs_i),
                Elem::I64 | Elem::F64 => true,
            };
            if in_domain {
                out.push(Conjunct { slot: s.slot, elem: s.elem, op: s.op, rhs_i, rhs_f });
            }
        }
        out
    }

    /// Evaluate the selection mask for rows `[row, row + n)` (`n ≤ 64`);
    /// bit `i` set ⇔ row `row + i` passes every conjunct. `state` is the
    /// worker-ABI state array holding the column base pointers.
    ///
    /// # Safety
    /// The slots named by the conjuncts must hold valid base pointers of
    /// columns with at least `row + n` elements of the declared type.
    unsafe fn mask(
        conjuncts: &[Conjunct],
        tier: KernelTier,
        state: *const u64,
        row: u64,
        n: u64,
    ) -> u64 {
        debug_assert!((1..=BLOCK).contains(&n));
        let mut m = if n == BLOCK { !0u64 } else { (1u64 << n) - 1 };
        for c in conjuncts {
            if m == 0 {
                break;
            }
            let base = unsafe { *state.add(c.slot) } as *const u8;
            let cm = if n == BLOCK {
                match tier {
                    #[cfg(target_arch = "x86_64")]
                    KernelTier::Avx2 => unsafe { avx2::conjunct_mask(c, base, row) },
                    #[cfg(target_arch = "x86_64")]
                    KernelTier::Sse2 => unsafe { sse2::conjunct_mask(c, base, row) },
                    #[cfg(not(target_arch = "x86_64"))]
                    KernelTier::Avx2 | KernelTier::Sse2 => unsafe { scalar_mask(c, base, row, n) },
                    KernelTier::Scalar => unsafe { scalar_mask(c, base, row, n) },
                }
            } else {
                unsafe { scalar_mask(c, base, row, n) }
            };
            m &= cm;
        }
        m
    }
}

/// Scalar evaluation of one conjunct over up to 64 rows — the `Scalar`
/// tier and every tier's partial-block tail. Replicates the generated
/// code's widen-then-compare exactly.
///
/// # Safety
/// `base` must point at `row + n` valid elements of `c.elem`'s type.
unsafe fn scalar_mask(c: &Conjunct, base: *const u8, row: u64, n: u64) -> u64 {
    let mut m = 0u64;
    for i in 0..n {
        let r = (row + i) as usize;
        let pass = match c.elem {
            Elem::I32 => {
                let v = unsafe { (base as *const i32).add(r).read_unaligned() } as i64;
                cmp_i(c.op, v, c.rhs_i)
            }
            Elem::U32 => {
                let v = unsafe { (base as *const u32).add(r).read_unaligned() } as i64;
                cmp_i(c.op, v, c.rhs_i)
            }
            Elem::I64 => {
                let v = unsafe { (base as *const i64).add(r).read_unaligned() };
                cmp_i(c.op, v, c.rhs_i)
            }
            Elem::F64 => {
                let v = unsafe { (base as *const f64).add(r).read_unaligned() };
                cmp_f(c.op, v, c.rhs_f)
            }
        };
        m |= (pass as u64) << i;
    }
    m
}

fn cmp_i(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Rust float comparison semantics: NaN fails everything but `!=`.
fn cmp_f(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    //! 128-bit tier. SSE2 is x86-64 baseline, so no runtime feature gate
    //! is needed — only the pointer-validity contract is unsafe here.
    use super::{scalar_mask, CmpOp, Conjunct, Elem};
    use std::arch::x86_64::*;

    /// Full 64-row block of one conjunct.
    ///
    /// # Safety
    /// `base` must point at `row + 64` valid elements of `c.elem`'s type.
    pub(super) unsafe fn conjunct_mask(c: &Conjunct, base: *const u8, row: u64) -> u64 {
        unsafe {
            match c.elem {
                // No `pcmpgtq` in SSE2: evaluate i64 conjuncts scalar so
                // the mask stays bit-identical with the AVX2 tier.
                Elem::I64 => scalar_mask(c, base, row, 64),
                Elem::I32 => mask32(c, base, row, i32_bias(0)),
                // Unsigned order via sign-bit bias: `a <u b` ⇔
                // `(a ^ MIN) <s (b ^ MIN)`.
                Elem::U32 => mask32(c, base, row, i32_bias(i32::MIN)),
                Elem::F64 => mask_f64(c, base, row),
            }
        }
    }

    fn i32_bias(b: i32) -> i32 {
        b
    }

    unsafe fn mask32(c: &Conjunct, base: *const u8, row: u64, bias: i32) -> u64 {
        unsafe {
            let bias_v = _mm_set1_epi32(bias);
            let rhs = _mm_xor_si128(_mm_set1_epi32(c.rhs_i as i32), bias_v);
            let mut m = 0u64;
            let p = (base as *const i32).add(row as usize);
            for chunk in 0..16 {
                let v = _mm_loadu_si128(p.add(chunk * 4) as *const __m128i);
                let v = _mm_xor_si128(v, bias_v);
                let hit = match c.op {
                    CmpOp::Eq => _mm_cmpeq_epi32(v, rhs),
                    CmpOp::Ne => not128(_mm_cmpeq_epi32(v, rhs)),
                    CmpOp::Lt => _mm_cmplt_epi32(v, rhs),
                    CmpOp::Le => not128(_mm_cmpgt_epi32(v, rhs)),
                    CmpOp::Gt => _mm_cmpgt_epi32(v, rhs),
                    CmpOp::Ge => not128(_mm_cmplt_epi32(v, rhs)),
                };
                let bits = _mm_movemask_ps(_mm_castsi128_ps(hit)) as u64;
                m |= bits << (chunk * 4);
            }
            m
        }
    }

    unsafe fn not128(v: __m128i) -> __m128i {
        unsafe { _mm_xor_si128(v, _mm_set1_epi32(-1)) }
    }

    unsafe fn mask_f64(c: &Conjunct, base: *const u8, row: u64) -> u64 {
        unsafe {
            let rhs = _mm_set1_pd(c.rhs_f);
            let mut m = 0u64;
            let p = (base as *const f64).add(row as usize);
            for chunk in 0..32 {
                let v = _mm_loadu_pd(p.add(chunk * 2));
                // Ordered compares (NaN → false) except `cmpneq`, which is
                // unordered-true — exactly Rust's `!=`.
                let hit = match c.op {
                    CmpOp::Eq => _mm_cmpeq_pd(v, rhs),
                    CmpOp::Ne => _mm_cmpneq_pd(v, rhs),
                    CmpOp::Lt => _mm_cmplt_pd(v, rhs),
                    CmpOp::Le => _mm_cmple_pd(v, rhs),
                    CmpOp::Gt => _mm_cmpgt_pd(v, rhs),
                    CmpOp::Ge => _mm_cmpge_pd(v, rhs),
                };
                let bits = _mm_movemask_pd(hit) as u64;
                m |= bits << (chunk * 2);
            }
            m
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 256-bit tier, called only when CPUID reported AVX2.
    use super::{CmpOp, Conjunct, Elem};
    use std::arch::x86_64::*;

    /// Full 64-row block of one conjunct.
    ///
    /// # Safety
    /// `base` must point at `row + 64` valid elements of `c.elem`'s type,
    /// and the CPU must support AVX2.
    pub(super) unsafe fn conjunct_mask(c: &Conjunct, base: *const u8, row: u64) -> u64 {
        unsafe {
            match c.elem {
                Elem::I32 => mask32(c, base, row, 0),
                Elem::U32 => mask32(c, base, row, i32::MIN),
                Elem::I64 => mask64(c, base, row),
                Elem::F64 => mask_f64(c, base, row),
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mask32(c: &Conjunct, base: *const u8, row: u64, bias: i32) -> u64 {
        unsafe {
            let bias_v = _mm256_set1_epi32(bias);
            let rhs = _mm256_xor_si256(_mm256_set1_epi32(c.rhs_i as i32), bias_v);
            let mut m = 0u64;
            let p = (base as *const i32).add(row as usize);
            for chunk in 0..8 {
                let v = _mm256_loadu_si256(p.add(chunk * 8) as *const __m256i);
                let v = _mm256_xor_si256(v, bias_v);
                let hit = match c.op {
                    CmpOp::Eq => _mm256_cmpeq_epi32(v, rhs),
                    CmpOp::Ne => not256(_mm256_cmpeq_epi32(v, rhs)),
                    CmpOp::Lt => _mm256_cmpgt_epi32(rhs, v),
                    CmpOp::Le => not256(_mm256_cmpgt_epi32(v, rhs)),
                    CmpOp::Gt => _mm256_cmpgt_epi32(v, rhs),
                    CmpOp::Ge => not256(_mm256_cmpgt_epi32(rhs, v)),
                };
                let bits = _mm256_movemask_ps(_mm256_castsi256_ps(hit)) as u32 as u64;
                m |= bits << (chunk * 8);
            }
            m
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mask64(c: &Conjunct, base: *const u8, row: u64) -> u64 {
        unsafe {
            let rhs = _mm256_set1_epi64x(c.rhs_i);
            let mut m = 0u64;
            let p = (base as *const i64).add(row as usize);
            for chunk in 0..16 {
                let v = _mm256_loadu_si256(p.add(chunk * 4) as *const __m256i);
                let hit = match c.op {
                    CmpOp::Eq => _mm256_cmpeq_epi64(v, rhs),
                    CmpOp::Ne => not256(_mm256_cmpeq_epi64(v, rhs)),
                    CmpOp::Lt => _mm256_cmpgt_epi64(rhs, v),
                    CmpOp::Le => not256(_mm256_cmpgt_epi64(v, rhs)),
                    CmpOp::Gt => _mm256_cmpgt_epi64(v, rhs),
                    CmpOp::Ge => not256(_mm256_cmpgt_epi64(rhs, v)),
                };
                let bits = _mm256_movemask_pd(_mm256_castsi256_pd(hit)) as u32 as u64;
                m |= bits << (chunk * 4);
            }
            m
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mask_f64(c: &Conjunct, base: *const u8, row: u64) -> u64 {
        unsafe {
            let rhs = _mm256_set1_pd(c.rhs_f);
            let mut m = 0u64;
            let p = (base as *const f64).add(row as usize);
            for chunk in 0..16 {
                let v = _mm256_loadu_pd(p.add(chunk * 4));
                // Ordered (NaN-false) predicates; `Ne` is unordered-true.
                let hit = match c.op {
                    CmpOp::Eq => _mm256_cmp_pd::<_CMP_EQ_OQ>(v, rhs),
                    CmpOp::Ne => _mm256_cmp_pd::<_CMP_NEQ_UQ>(v, rhs),
                    CmpOp::Lt => _mm256_cmp_pd::<_CMP_LT_OS>(v, rhs),
                    CmpOp::Le => _mm256_cmp_pd::<_CMP_LE_OS>(v, rhs),
                    CmpOp::Gt => _mm256_cmp_pd::<_CMP_GT_OS>(v, rhs),
                    CmpOp::Ge => _mm256_cmp_pd::<_CMP_GE_OS>(v, rhs),
                };
                let bits = _mm256_movemask_pd(hit) as u32 as u64;
                m |= bits << (chunk * 4);
            }
            m
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn not256(v: __m256i) -> __m256i {
        _mm256_xor_si256(v, _mm256_set1_epi32(-1))
    }
}

/// A compiled scalar backend wrapped with a [`ScanKernel`] pre-pass: the
/// rank-5 backend the adaptive ladder tops out at on vectorizable scans.
pub struct SimdScanBackend {
    inner: Arc<dyn PipelineBackend>,
    kernel: Arc<ScanKernel>,
}

impl SimdScanBackend {
    pub fn new(inner: Arc<dyn PipelineBackend>, kernel: Arc<ScanKernel>) -> SimdScanBackend {
        SimdScanBackend { inner, kernel }
    }

    /// The wrapped scalar backend (`Native` where available).
    pub fn inner_kind(&self) -> ExecMode {
        self.inner.kind()
    }
}

impl PipelineBackend for SimdScanBackend {
    fn call(
        &self,
        args: &[u64],
        rt: &Registry,
        frame: &mut Frame,
    ) -> Result<Option<u64>, ExecError> {
        let [wctx, state_ptr, begin, end] = *args else {
            return Err(ExecError::Setup("simd backend expects the worker ABI".into()));
        };
        let state = state_ptr as *const u64;
        // Resolve the retained skeleton against this execution's parameter
        // block (no-op for all-constant kernels). Safety: `run_pipelines`
        // installed the block pointer and checked the arity before any
        // backend ran.
        let conjuncts = unsafe { self.kernel.resolve(state) };
        if conjuncts.is_empty() {
            // Every conjunct dropped for this binding (out-of-lane-domain
            // values): the pre-pass can't help, run the scalar inner
            // worker over the whole morsel.
            return self.inner.call(args, rt, frame);
        }
        // Pending merged run of (maybe-)passing rows, [start, end).
        let mut pend: Option<(u64, u64)> = None;
        let mut row = begin;
        while row < end {
            let n = (end - row).min(BLOCK);
            // Safety: the state slots hold this epoch's column base
            // pointers and the dispenser hands out in-bounds row ranges —
            // the same contract the scalar workers load under.
            let mut m = unsafe { ScanKernel::mask(&conjuncts, self.kernel.tier, state, row, n) };
            while m != 0 {
                let t = m.trailing_zeros() as u64;
                let ones = (!(m >> t)).trailing_zeros() as u64;
                let (s, e) = (row + t, row + t + ones);
                match pend {
                    Some((ps, pe)) if s - pe <= MERGE_GAP => pend = Some((ps, e)),
                    Some((ps, pe)) => {
                        self.inner.call(&[wctx, state_ptr, ps, pe], rt, frame)?;
                        pend = Some((s, e));
                    }
                    None => pend = Some((s, e)),
                }
                if t + ones >= 64 {
                    break;
                }
                m &= !0u64 << (t + ones);
            }
            row += n;
        }
        if let Some((ps, pe)) = pend {
            self.inner.call(&[wctx, state_ptr, ps, pe], rt, frame)?;
        }
        Ok(None)
    }

    fn kind(&self) -> ExecMode {
        ExecMode::Simd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conj(elem: Elem, op: CmpOp, rhs_i: i64, rhs_f: f64) -> Conjunct {
        Conjunct { slot: 0, elem, op, rhs_i, rhs_f }
    }

    /// Evaluate one conjunct over `len` rows with every tier and assert
    /// the masks are bit-identical, returning the scalar one.
    fn masks_agree(c: Conjunct, base: *const u8, len: u64) -> Vec<u64> {
        let state = [base as u64];
        let tiers = if cfg!(target_arch = "x86_64") {
            vec![KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2]
        } else {
            vec![KernelTier::Scalar]
        };
        let mut out = Vec::new();
        let mut row = 0;
        while row < len {
            let n = (len - row).min(64);
            let per: Vec<u64> = tiers
                .iter()
                .filter(|&&t| t != KernelTier::Avx2 || KernelTier::detect() == KernelTier::Avx2)
                .map(|&t| unsafe { ScanKernel::mask(&[c], t, state.as_ptr(), row, n) })
                .collect();
            for w in per.windows(2) {
                assert_eq!(w[0], w[1], "tiers disagree at row {row}");
            }
            out.push(per[0]);
            row += n;
        }
        out
    }

    #[test]
    fn i32_masks_identical_across_tiers_with_boundary_constants() {
        let data: Vec<i32> =
            (0..200).map(|i| if i % 7 == 0 { i32::MIN } else { i - 100 }).collect();
        for rhs in [i64::from(i32::MIN), -50, 0, 63, i64::from(i32::MAX)] {
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                let ms =
                    masks_agree(conj(Elem::I32, op, rhs, 0.0), data.as_ptr() as *const u8, 200);
                // Cross-check against the plain scalar definition.
                for (b, m) in ms.iter().enumerate() {
                    for i in 0..64u64 {
                        let r = b as u64 * 64 + i;
                        if r >= 200 {
                            break;
                        }
                        let expect = cmp_i(op, data[r as usize] as i64, rhs);
                        assert_eq!((m >> i) & 1 == 1, expect, "op {op:?} rhs {rhs} row {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn u32_zero_extension_matches_widened_compare() {
        // Codes near the unsigned boundary: as zero-extended i64 they are
        // all positive, so `u32::MAX` must compare *greater* than 1.
        let data: Vec<u32> = [0, 1, u32::MAX, 0x8000_0000, 7, 42, 3, 9].repeat(16);
        for rhs in [0i64, 1, 7, i64::from(u32::MAX)] {
            for op in [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq] {
                let ms = masks_agree(
                    conj(Elem::U32, op, rhs, 0.0),
                    data.as_ptr() as *const u8,
                    data.len() as u64,
                );
                for i in 0..64u64 {
                    let expect = cmp_i(op, data[i as usize] as i64, rhs);
                    assert_eq!((ms[0] >> i) & 1 == 1, expect, "op {op:?} rhs {rhs} lane {i}");
                }
            }
        }
    }

    #[test]
    fn i64_and_f64_masks_identical_across_tiers() {
        let di: Vec<i64> = (0..128).map(|i| (i - 64) * ((i % 5) + 1)).collect();
        for rhs in [i64::MIN, -3, 0, 100, i64::MAX] {
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
                masks_agree(conj(Elem::I64, op, rhs, 0.0), di.as_ptr() as *const u8, 128);
            }
        }
        // Floats with NaN lanes: NaN must fail everything except `!=`.
        let df: Vec<f64> =
            (0..128).map(|i| if i % 9 == 0 { f64::NAN } else { (i - 64) as f64 * 0.5 }).collect();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let ms = masks_agree(conj(Elem::F64, op, 0, 1.0), df.as_ptr() as *const u8, 128);
            for i in 0..64u64 {
                let v = df[i as usize];
                let expect = cmp_f(op, v, 1.0);
                assert_eq!((ms[0] >> i) & 1 == 1, expect, "op {op:?} lane {i} (v = {v})");
                if v.is_nan() {
                    assert_eq!(expect, op == CmpOp::Ne);
                }
            }
        }
    }

    #[test]
    fn partial_blocks_and_odd_lengths_mask_correctly() {
        // Non-multiple-of-lane-width lengths: 1, 63, 65, 130.
        let data: Vec<i32> = (0..130).collect();
        for len in [1u64, 63, 65, 130] {
            let ms =
                masks_agree(conj(Elem::I32, CmpOp::Lt, 100, 0.0), data.as_ptr() as *const u8, len);
            let total: u32 = ms.iter().map(|m| m.count_ones()).sum();
            assert_eq!(u64::from(total), len.min(100), "len {len}");
            // No bits beyond the block length.
            let last_n = (len - (ms.len() as u64 - 1) * 64) as u32;
            if last_n < 64 {
                assert_eq!(ms.last().unwrap() >> last_n, 0, "ghost bits past row {len}");
            }
        }
    }

    #[test]
    fn skeleton_resolves_per_binding_and_drops_out_of_domain_params() {
        // Kernel: col0 (i32) < $0  AND  col0 (i32) >= 5 (baked).
        let k = ScanKernel {
            specs: vec![
                ConjunctSpec { slot: 0, elem: Elem::I32, op: CmpOp::Lt, rhs: Rhs::ParamI(0) },
                ConjunctSpec { slot: 0, elem: Elem::I32, op: CmpOp::Ge, rhs: Rhs::ConstI(5) },
            ],
            param_slot: Some(1),
            tier: KernelTier::Scalar,
        };
        let data: Vec<i32> = (0..64).collect();
        let bind = |v: i64| {
            let params = [v as u64];
            let state = [data.as_ptr() as u64, params.as_ptr() as u64];
            let cs = unsafe { k.resolve(state.as_ptr()) };
            let m = unsafe { ScanKernel::mask(&cs, KernelTier::Scalar, state.as_ptr(), 0, 64) };
            (cs.len(), m.count_ones())
        };
        // In-domain binding: both conjuncts resolve; rows 5..10 pass.
        assert_eq!(bind(10), (2, 5));
        // Re-binding the same kernel flips the range without re-extraction.
        assert_eq!(bind(20), (2, 15));
        // Out-of-i32-domain binding: the param conjunct drops, the baked
        // one stays — superset mask, rows 5..64 pass.
        assert_eq!(bind(i64::from(i32::MAX) + 1), (1, 59));
    }

    #[test]
    fn detect_falls_back_cleanly_and_env_overrides() {
        // Whatever the CPU, detection must return a working tier and the
        // forced tiers must produce identical masks (asserted above); here
        // assert the ladder order is respected.
        let t = KernelTier::detect();
        #[cfg(target_arch = "x86_64")]
        assert!(t == KernelTier::Avx2 || t == KernelTier::Sse2);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(t, KernelTier::Scalar);
    }
}
