//! Code generation: pipelines → IR worker functions (paper Fig. 4).
//!
//! Every pipeline becomes one `worker(wctx, state, morsel_begin, morsel_end)`
//! function: "Each worker function requires two arguments: the state (e.g.,
//! intermediate query processing hash tables) and a morsel, which determines
//! the range of values to process." Hash-table probes and aggregate
//! accumulator updates are inlined (HyPer-style); builds, materialisation,
//! and emission go through the runtime-call ABI.

use crate::plan::{
    AggFunc, AggSpec, ArithOp, CmpOp, FieldTy, JoinKind, PExpr, PhysicalPlan, PipeOp, Pipeline,
    Sink, Source,
};
use crate::runtime::{FNV_OFFSET, FNV_PRIME, WCTX_AGG_BASE, WCTX_ROWBUF};
use aqe_ir::{
    BinOp, BlockId, CastKind, CmpPred, Constant, ExternId, FunctionBuilder, Module, OvfOp, Type,
    ValueId,
};
use aqe_storage::{CatalogSnapshot, DataType};
use std::collections::HashMap;

/// Extern indices, fixed per module (order matches `runtime_fns`).
pub const EXT_JOIN_APPEND: u32 = 0;
pub const EXT_AGG_INSERT: u32 = 1;
pub const EXT_MAT_APPEND: u32 = 2;
pub const EXT_EMIT: u32 = 3;

/// The runtime function table matching the module's extern declarations
/// (used to build the VM registry).
pub fn runtime_fns() -> Vec<(&'static str, aqe_vm::rt::RtFn)> {
    vec![
        ("rt_join_append", crate::runtime::rt_join_append as aqe_vm::rt::RtFn),
        ("rt_agg_insert", crate::runtime::rt_agg_insert as aqe_vm::rt::RtFn),
        ("rt_mat_append", crate::runtime::rt_mat_append as aqe_vm::rt::RtFn),
        ("rt_emit", crate::runtime::rt_emit as aqe_vm::rt::RtFn),
    ]
}

fn declare_externs(m: &mut Module) {
    m.declare_extern("rt_join_append", vec![Type::Ptr, Type::I64, Type::I64], None);
    m.declare_extern("rt_agg_insert", vec![Type::Ptr, Type::I64, Type::I64], Some(Type::I64));
    m.declare_extern("rt_mat_append", vec![Type::Ptr, Type::I64, Type::I64], None);
    m.declare_extern("rt_emit", vec![Type::Ptr, Type::I64], None);
}

/// Generate the module for a physical plan: one worker per pipeline, in
/// pipeline order.
pub fn generate(plan: &PhysicalPlan, cat: &CatalogSnapshot) -> Module {
    let mut module = Module::new();
    declare_externs(&mut module);
    for p in &plan.pipelines {
        let f = gen_pipeline(plan, cat, p);
        module.add_function(f);
    }
    debug_assert!(aqe_ir::verify::verify_module(&module).is_ok());
    module
}

struct Cg<'a> {
    b: FunctionBuilder,
    plan: &'a PhysicalPlan,
    cat: &'a CatalogSnapshot,
    wctx: ValueId,
    state: ValueId,
    /// Hoisted `load ptr state[slot]` values, by state slot.
    slot_ptrs: HashMap<usize, ValueId>,
    /// Hoisted row-buffer pointer (staging area).
    rowbuf: Option<ValueId>,
    /// Hoisted aggregate header pointers, by agg index.
    agg_hdrs: HashMap<usize, ValueId>,
    /// Hoisted parameter values (loaded once from the param block in the
    /// entry — loop-invariant, so inside the morsel loop a bind variable
    /// costs exactly what a baked literal in a register does).
    param_vals: HashMap<usize, ValueId>,
}

fn gen_pipeline(plan: &PhysicalPlan, cat: &CatalogSnapshot, p: &Pipeline) -> aqe_ir::Function {
    let mut b = FunctionBuilder::new(
        format!("worker_p{}", p.id),
        &[Type::Ptr, Type::Ptr, Type::I64, Type::I64],
        None,
    );
    let (wctx, state, begin, end) = (b.param(0), b.param(1), b.param(2), b.param(3));

    // Blocks of the morsel loop skeleton.
    let head = b.add_block();
    let body = b.add_block();
    let latch = b.add_block();
    let exit = b.add_block();

    let mut cg = Cg {
        b,
        plan,
        cat,
        wctx,
        state,
        slot_ptrs: HashMap::new(),
        rowbuf: None,
        agg_hdrs: HashMap::new(),
        param_vals: HashMap::new(),
    };

    // ---- entry: hoist loop-invariant pointers --------------------------
    cg.hoist(p);
    let entry_block = cg.b.current_block();
    cg.b.br(head);

    // ---- morsel loop skeleton -------------------------------------------
    cg.b.switch_to(head);
    let i = cg.b.phi(Type::I64, vec![(entry_block, begin.into())]);
    let done = cg.b.cmp(CmpPred::SGe, Type::I64, i.into(), end.into());
    cg.b.cond_br(done.into(), exit, body);

    cg.b.switch_to(body);
    let fields = cg.load_source_fields(&p.source, i);
    cg.compile_ops(&p.ops, 0, fields, &p.sink, latch);

    cg.b.switch_to(latch);
    let inext = cg.b.bin(BinOp::Add, Type::I64, i.into(), Constant::i64(1).into());
    cg.b.phi_add_incoming(i, latch, inext.into());
    cg.b.br(head);

    cg.b.switch_to(exit);
    cg.b.ret(None);

    cg.b.finish().expect("generated worker must verify")
}

impl<'a> Cg<'a> {
    fn ir_ty(ft: FieldTy) -> Type {
        match ft {
            FieldTy::I64 => Type::I64,
            FieldTy::F64 => Type::F64,
        }
    }

    /// Hoist all loop-invariant state loads into the entry block.
    fn hoist(&mut self, p: &Pipeline) {
        // Source pointers.
        match &p.source {
            Source::Table { cols, slot_base, .. } => {
                for k in 0..cols.len() {
                    self.hoist_slot(slot_base + k);
                }
            }
            Source::Rows { rows_slot, .. } => {
                self.hoist_slot(*rows_slot);
            }
        }
        // Probe hash tables.
        for op in &p.ops {
            if let PipeOp::Probe { ht, .. } = op {
                let s = self.plan.join_hts[*ht].state_slot;
                self.hoist_slot(s);
                self.hoist_slot(s + 1);
            }
        }
        // Dictionary tables and bind parameters used anywhere in this
        // pipeline.
        let mut dicts = Vec::new();
        let mut params = Vec::new();
        let mut visit = |e: &PExpr| {
            collect_dicts(e, &mut dicts);
            collect_params(e, &mut params);
        };
        match &p.source {
            Source::Table { .. } | Source::Rows { .. } => {}
        }
        for op in &p.ops {
            match op {
                PipeOp::Filter(e) => visit(e),
                PipeOp::Project(es) => es.iter().for_each(&mut visit),
                PipeOp::Probe { .. } => {}
            }
        }
        if let Sink::BuildAgg { aggs, .. } = &p.sink {
            for a in aggs {
                if let Some(e) = &a.arg {
                    visit(e);
                }
            }
        }
        for d in dicts {
            self.hoist_slot(self.plan.dicts[d].state_slot);
        }
        // Parameter values: one pointer load for the block, one typed load
        // per distinct parameter, all in the entry block.
        if !params.is_empty() {
            let slot = self.plan.param_slot.expect("plan with params must carry a param slot");
            self.hoist_slot(slot);
            params.sort_unstable_by_key(|&(idx, _)| idx);
            params.dedup_by_key(|&mut (idx, _)| idx);
            for (idx, ft) in params {
                let base = self.slot_ptr(slot);
                let g = self.b.gep(base.into(), idx as i64 * 8);
                let v = self.b.load(Self::ir_ty(ft), g.into());
                self.param_vals.insert(idx, v);
            }
        }
        // Row buffer and aggregate headers.
        match &p.sink {
            Sink::BuildJoin { .. } | Sink::Materialize { .. } | Sink::Emit => {
                self.hoist_rowbuf();
            }
            Sink::BuildAgg { agg, .. } => {
                self.hoist_rowbuf();
                let hdr = self.b.gep(self.wctx.into(), (WCTX_AGG_BASE + agg) as i64 * 8);
                let hdr = self.b.load(Type::Ptr, hdr.into());
                self.agg_hdrs.insert(*agg, hdr);
            }
        }
    }

    fn hoist_slot(&mut self, slot: usize) {
        if self.slot_ptrs.contains_key(&slot) {
            return;
        }
        let g = self.b.gep(self.state.into(), slot as i64 * 8);
        let v = self.b.load(Type::Ptr, g.into());
        self.slot_ptrs.insert(slot, v);
    }

    fn hoist_rowbuf(&mut self) {
        if self.rowbuf.is_none() {
            let g = self.b.gep(self.wctx.into(), WCTX_ROWBUF as i64 * 8);
            let v = self.b.load(Type::Ptr, g.into());
            self.rowbuf = Some(v);
        }
    }

    fn slot_ptr(&self, slot: usize) -> ValueId {
        self.slot_ptrs[&slot]
    }

    /// Load the source fields for row `i`.
    fn load_source_fields(&mut self, src: &Source, i: ValueId) -> Vec<(ValueId, FieldTy)> {
        match src {
            Source::Table { table, cols, field_tys, slot_base } => {
                let t = self.cat.get(table).expect("unknown table");
                cols.iter()
                    .enumerate()
                    .map(|(k, &c)| {
                        let base = self.slot_ptr(slot_base + k);
                        let dt = t.column_type(c);
                        let v = self.load_column_value(base, dt, i);
                        (v, field_tys[k])
                    })
                    .collect()
            }
            Source::Rows { rows_slot, field_tys } => {
                let base = self.slot_ptr(*rows_slot);
                let stride = field_tys.len() as i64 * 8;
                field_tys
                    .iter()
                    .enumerate()
                    .map(|(j, &ft)| {
                        let g = self.b.gep_indexed(base.into(), j as i64 * 8, i.into(), stride);
                        let v = self.b.load(Self::ir_ty(ft), g.into());
                        (v, ft)
                    })
                    .collect()
            }
        }
    }

    /// Load and widen one column element.
    fn load_column_value(&mut self, base: ValueId, dt: DataType, i: ValueId) -> ValueId {
        match dt {
            DataType::Int32 | DataType::Date => {
                let g = self.b.gep_indexed(base.into(), 0, i.into(), 4);
                let v = self.b.load(Type::I32, g.into());
                self.b.cast(CastKind::SExt, Type::I32, Type::I64, v.into())
            }
            DataType::Str => {
                let g = self.b.gep_indexed(base.into(), 0, i.into(), 4);
                let v = self.b.load(Type::I32, g.into());
                self.b.cast(CastKind::ZExt, Type::I32, Type::I64, v.into())
            }
            DataType::Bool => {
                let g = self.b.gep_indexed(base.into(), 0, i.into(), 1);
                let v = self.b.load(Type::I8, g.into());
                self.b.cast(CastKind::ZExt, Type::I8, Type::I64, v.into())
            }
            DataType::Int64 | DataType::Decimal => {
                let g = self.b.gep_indexed(base.into(), 0, i.into(), 8);
                self.b.load(Type::I64, g.into())
            }
            DataType::Float64 => {
                let g = self.b.gep_indexed(base.into(), 0, i.into(), 8);
                self.b.load(Type::F64, g.into())
            }
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Compile an expression to a value of its representation type
    /// (I64/F64); booleans are produced as I1 by `expr_bool`.
    fn expr(&mut self, e: &PExpr, fields: &[(ValueId, FieldTy)]) -> ValueId {
        match e {
            PExpr::Col(i) => fields[*i].0,
            PExpr::ConstI(c) => {
                // Materialise through a trivial add so the result is a value.
                self.b.bin(BinOp::Add, Type::I64, Constant::i64(*c).into(), Constant::i64(0).into())
            }
            PExpr::ConstF(c) => self.b.bin(
                BinOp::Add,
                Type::F64,
                Constant::f64(*c).into(),
                Constant::f64(0.0).into(),
            ),
            PExpr::Param { idx, .. } => self.param_vals[idx],
            PExpr::Arith { op, checked, float, a, b } => {
                let va = self.expr(a, fields);
                let vb = self.expr(b, fields);
                let ty = if *float { Type::F64 } else { Type::I64 };
                match (op, *checked && !*float) {
                    (ArithOp::Add, true) => {
                        self.b.checked_arith(OvfOp::Add, ty, va.into(), vb.into())
                    }
                    (ArithOp::Sub, true) => {
                        self.b.checked_arith(OvfOp::Sub, ty, va.into(), vb.into())
                    }
                    (ArithOp::Mul, true) => {
                        self.b.checked_arith(OvfOp::Mul, ty, va.into(), vb.into())
                    }
                    (ArithOp::Add, false) => self.b.bin(BinOp::Add, ty, va.into(), vb.into()),
                    (ArithOp::Sub, false) => self.b.bin(BinOp::Sub, ty, va.into(), vb.into()),
                    (ArithOp::Mul, false) => self.b.bin(BinOp::Mul, ty, va.into(), vb.into()),
                    (ArithOp::Div, _) => {
                        let op = if *float { BinOp::FDiv } else { BinOp::SDiv };
                        self.b.bin(op, ty, va.into(), vb.into())
                    }
                }
            }
            PExpr::IToF(v) => {
                let vi = self.expr(v, fields);
                self.b.cast(CastKind::SiToFp, Type::I64, Type::F64, vi.into())
            }
            PExpr::DictLookup { v, table, elem_size } => {
                let code = self.expr(v, fields);
                let tptr = self.slot_ptr(self.plan.dicts[*table].state_slot);
                match elem_size {
                    1 => {
                        let g = self.b.gep_indexed(tptr.into(), 0, code.into(), 1);
                        let v = self.b.load(Type::I8, g.into());
                        self.b.cast(CastKind::ZExt, Type::I8, Type::I64, v.into())
                    }
                    _ => {
                        let g = self.b.gep_indexed(tptr.into(), 0, code.into(), 4);
                        let v = self.b.load(Type::I32, g.into());
                        self.b.cast(CastKind::ZExt, Type::I32, Type::I64, v.into())
                    }
                }
            }
            PExpr::Case { cond, t, f, float } => {
                let c = self.expr_bool(cond, fields);
                let vt = self.expr(t, fields);
                let vf = self.expr(f, fields);
                let ty = if *float { Type::F64 } else { Type::I64 };
                self.b.select(ty, c.into(), vt.into(), vf.into())
            }
            // Boolean-valued expressions used as values: widen 0/1.
            PExpr::Cmp { .. }
            | PExpr::And(..)
            | PExpr::Or(..)
            | PExpr::Not(..)
            | PExpr::InList { .. } => {
                let c = self.expr_bool(e, fields);
                self.b.cast(CastKind::ZExt, Type::I1, Type::I64, c.into())
            }
        }
    }

    /// Compile a boolean expression to an I1 value.
    fn expr_bool(&mut self, e: &PExpr, fields: &[(ValueId, FieldTy)]) -> ValueId {
        match e {
            PExpr::Cmp { op, float, a, b } => {
                let va = self.expr(a, fields);
                let vb = self.expr(b, fields);
                let ty = if *float { Type::F64 } else { Type::I64 };
                let pred = match op {
                    CmpOp::Eq => CmpPred::Eq,
                    CmpOp::Ne => CmpPred::Ne,
                    CmpOp::Lt => CmpPred::SLt,
                    CmpOp::Le => CmpPred::SLe,
                    CmpOp::Gt => CmpPred::SGt,
                    CmpOp::Ge => CmpPred::SGe,
                };
                self.b.cmp(pred, ty, va.into(), vb.into())
            }
            PExpr::And(a, b) => {
                let va = self.expr_bool(a, fields);
                let vb = self.expr_bool(b, fields);
                self.b.bin(BinOp::And, Type::I1, va.into(), vb.into())
            }
            PExpr::Or(a, b) => {
                let va = self.expr_bool(a, fields);
                let vb = self.expr_bool(b, fields);
                self.b.bin(BinOp::Or, Type::I1, va.into(), vb.into())
            }
            PExpr::Not(a) => {
                let va = self.expr_bool(a, fields);
                self.b.bin(BinOp::Xor, Type::I1, va.into(), Constant::bool(true).into())
            }
            PExpr::InList { v, list } => {
                let vv = self.expr(v, fields);
                let mut acc: Option<ValueId> = None;
                for &c in list {
                    let eq = self.b.cmp(CmpPred::Eq, Type::I64, vv.into(), Constant::i64(c).into());
                    acc = Some(match acc {
                        None => eq,
                        Some(prev) => self.b.bin(BinOp::Or, Type::I1, prev.into(), eq.into()),
                    });
                }
                acc.unwrap_or_else(|| {
                    self.b.cmp(
                        CmpPred::Eq,
                        Type::I64,
                        Constant::i64(0).into(),
                        Constant::i64(1).into(),
                    )
                })
            }
            // Non-boolean expression in boolean position: value != 0.
            other => {
                let v = self.expr(other, fields);
                self.b.cmp(CmpPred::Ne, Type::I64, v.into(), Constant::i64(0).into())
            }
        }
    }

    /// FNV hash of the given key values (mirrors `runtime::hash_keys`).
    fn hash_values(&mut self, keys: &[ValueId]) -> ValueId {
        let mut h = self.b.bin(
            BinOp::Add,
            Type::I64,
            Constant::i64(FNV_OFFSET as i64).into(),
            Constant::i64(0).into(),
        );
        for &k in keys {
            let x = self.b.bin(BinOp::Xor, Type::I64, h.into(), k.into());
            h = self.b.bin(BinOp::Mul, Type::I64, x.into(), Constant::i64(FNV_PRIME as i64).into());
        }
        let hi = self.b.bin(BinOp::LShr, Type::I64, h.into(), Constant::i64(32).into());
        self.b.bin(BinOp::Xor, Type::I64, h.into(), hi.into())
    }

    /// Stage `values` into the row buffer.
    fn stage_row(&mut self, values: &[(ValueId, FieldTy)]) {
        let buf = self.rowbuf.expect("row buffer not hoisted");
        // The engine sizes each worker's row buffer to the plan's widest row.
        for (j, &(v, ft)) in values.iter().enumerate() {
            let g = self.b.gep(buf.into(), j as i64 * 8);
            self.b.store(Self::ir_ty(ft), v.into(), g.into());
        }
    }

    // ---- operators -------------------------------------------------------

    /// Compile ops `idx..` followed by the sink; `cont` is where a finished
    /// (or rejected) tuple jumps.
    fn compile_ops(
        &mut self,
        ops: &[PipeOp],
        idx: usize,
        fields: Vec<(ValueId, FieldTy)>,
        sink: &Sink,
        cont: BlockId,
    ) {
        if idx == ops.len() {
            self.compile_sink(sink, &fields, cont);
            return;
        }
        match &ops[idx] {
            PipeOp::Filter(pred) => {
                let c = self.expr_bool(pred, &fields);
                let next = self.b.add_block();
                self.b.cond_br(c.into(), next, cont);
                self.b.switch_to(next);
                self.compile_ops(ops, idx + 1, fields, sink, cont);
            }
            PipeOp::Project(exprs) => {
                let tys: Vec<FieldTy> = fields.iter().map(|&(_, t)| t).collect();
                let new_fields: Vec<(ValueId, FieldTy)> = exprs
                    .iter()
                    .map(|e| {
                        let t = e.ty(&tys);
                        (self.expr(e, &fields), t)
                    })
                    .collect();
                self.compile_ops(ops, idx + 1, new_fields, sink, cont);
            }
            PipeOp::Probe { ht, keys, kind, payload_tys } => {
                self.compile_probe(ops, idx, &fields, *ht, keys, *kind, payload_tys, sink, cont);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_probe(
        &mut self,
        ops: &[PipeOp],
        idx: usize,
        fields: &[(ValueId, FieldTy)],
        ht: usize,
        keys: &[usize],
        kind: JoinKind,
        payload_tys: &[FieldTy],
        sink: &Sink,
        cont: BlockId,
    ) {
        let spec = &self.plan.join_hts[ht];
        let key_vals: Vec<ValueId> = keys.iter().map(|&k| fields[k].0).collect();
        let h = self.hash_values(&key_vals);
        let buckets = self.slot_ptr(spec.state_slot);
        let mask_ptr = self.slot_ptr(spec.state_slot + 1);
        // mask was hoisted as a "pointer" load; reinterpret as integer.
        let mask = self.b.cast(CastKind::Bitcast, Type::Ptr, Type::I64, mask_ptr.into());
        let bidx = self.b.bin(BinOp::And, Type::I64, h.into(), mask.into());
        let g = self.b.gep_indexed(buckets.into(), 0, bidx.into(), 8);
        let entry0 = self.b.load(Type::Ptr, g.into());
        let pre = self.b.current_block();

        let chain = self.b.add_block();
        let keycheck = self.b.add_block();
        let matched = self.b.add_block();
        let next_e = self.b.add_block();
        // Where an exhausted chain goes / where a match sends the tuple:
        let (exhaust_to, match_to) = match kind {
            JoinKind::Inner | JoinKind::Semi => (cont, matched),
            JoinKind::Anti => (matched, cont),
        };

        self.b.br(chain);
        self.b.switch_to(chain);
        let entry = self.b.phi(Type::Ptr, vec![(pre, entry0.into())]);
        let is_null = self.b.cmp(CmpPred::Eq, Type::Ptr, entry.into(), Constant::null_ptr().into());
        self.b.cond_br(is_null.into(), exhaust_to, keycheck);

        self.b.switch_to(keycheck);
        let mut all_eq: Option<ValueId> = None;
        for (j, &kv) in key_vals.iter().enumerate() {
            let kg = self.b.gep(entry.into(), 8 + j as i64 * 8);
            let ek = self.b.load(Type::I64, kg.into());
            let eq = self.b.cmp(CmpPred::Eq, Type::I64, ek.into(), kv.into());
            all_eq = Some(match all_eq {
                None => eq,
                Some(p) => self.b.bin(BinOp::And, Type::I1, p.into(), eq.into()),
            });
        }
        let ok = all_eq.expect("joins have at least one key");
        self.b.cond_br(ok.into(), match_to, next_e);

        self.b.switch_to(next_e);
        let nxt = self.b.load(Type::Ptr, entry.into());
        let next_block = self.b.current_block();
        self.b.br(chain);
        self.b.phi_add_incoming(entry, next_block, nxt.into());

        self.b.switch_to(matched);
        match kind {
            JoinKind::Inner => {
                // Downstream runs once per matching entry; afterwards the
                // tuple continues with the next chain entry.
                let mut out = fields.to_vec();
                for (j, &ft) in payload_tys.iter().enumerate() {
                    let pg = self.b.gep(entry.into(), 8 + (spec.nkeys + j) as i64 * 8);
                    let v = self.b.load(Self::ir_ty(ft), pg.into());
                    out.push((v, ft));
                }
                self.compile_ops(ops, idx + 1, out, sink, next_e);
            }
            JoinKind::Semi | JoinKind::Anti => {
                // The tuple passes exactly once.
                self.compile_ops(ops, idx + 1, fields.to_vec(), sink, cont);
            }
        }
    }

    fn compile_sink(&mut self, sink: &Sink, fields: &[(ValueId, FieldTy)], cont: BlockId) {
        match sink {
            Sink::BuildJoin { ht, keys, payload } => {
                let row: Vec<(ValueId, FieldTy)> =
                    keys.iter().chain(payload.iter()).map(|&i| fields[i]).collect();
                self.stage_row(&row);
                self.b.call(
                    ExternId(EXT_JOIN_APPEND),
                    vec![
                        self.wctx.into(),
                        Constant::i64(*ht as i64).into(),
                        Constant::i64(row.len() as i64).into(),
                    ],
                    None,
                );
                self.b.br(cont);
            }
            Sink::Materialize { mat } => {
                self.stage_row(fields);
                self.b.call(
                    ExternId(EXT_MAT_APPEND),
                    vec![
                        self.wctx.into(),
                        Constant::i64(*mat as i64).into(),
                        Constant::i64(fields.len() as i64).into(),
                    ],
                    None,
                );
                self.b.br(cont);
            }
            Sink::Emit => {
                self.stage_row(fields);
                self.b.call(
                    ExternId(EXT_EMIT),
                    vec![self.wctx.into(), Constant::i64(fields.len() as i64).into()],
                    None,
                );
                self.b.br(cont);
            }
            Sink::BuildAgg { agg, group_by, aggs } => {
                self.compile_agg_sink(*agg, group_by, aggs, fields, cont);
            }
        }
    }

    fn compile_agg_sink(
        &mut self,
        agg: usize,
        group_by: &[usize],
        aggs: &[AggSpec],
        fields: &[(ValueId, FieldTy)],
        cont: BlockId,
    ) {
        let hdr = self.agg_hdrs[&agg];
        let nkeys = group_by.len();
        let entry: ValueId = if nkeys == 0 {
            // Key-less aggregation: direct pre-created group (header slot 2).
            let g = self.b.gep(hdr.into(), 16);
            self.b.load(Type::Ptr, g.into())
        } else {
            let key_vals: Vec<ValueId> = group_by.iter().map(|&k| fields[k].0).collect();
            let h = self.hash_values(&key_vals);
            // buckets/mask reload every tuple: inserts rehash.
            let bg = self.b.gep(hdr.into(), 0);
            let buckets = self.b.load(Type::Ptr, bg.into());
            let mg = self.b.gep(hdr.into(), 8);
            let mask = self.b.load(Type::I64, mg.into());
            let bidx = self.b.bin(BinOp::And, Type::I64, h.into(), mask.into());
            let eg = self.b.gep_indexed(buckets.into(), 0, bidx.into(), 8);
            let entry0 = self.b.load(Type::Ptr, eg.into());
            let pre = self.b.current_block();

            let chain = self.b.add_block();
            let keycheck = self.b.add_block();
            let miss = self.b.add_block();
            let next_e = self.b.add_block();
            let found = self.b.add_block();

            self.b.br(chain);
            self.b.switch_to(chain);
            let entry = self.b.phi(Type::Ptr, vec![(pre, entry0.into())]);
            let is_null =
                self.b.cmp(CmpPred::Eq, Type::Ptr, entry.into(), Constant::null_ptr().into());
            self.b.cond_br(is_null.into(), miss, keycheck);

            self.b.switch_to(keycheck);
            let mut all_eq: Option<ValueId> = None;
            for (j, &kv) in key_vals.iter().enumerate() {
                let kg = self.b.gep(entry.into(), 8 + j as i64 * 8);
                let ek = self.b.load(Type::I64, kg.into());
                let eq = self.b.cmp(CmpPred::Eq, Type::I64, ek.into(), kv.into());
                all_eq = Some(match all_eq {
                    None => eq,
                    Some(p) => self.b.bin(BinOp::And, Type::I1, p.into(), eq.into()),
                });
            }
            self.b.cond_br(all_eq.unwrap().into(), found, next_e);

            self.b.switch_to(next_e);
            let nxt = self.b.load(Type::Ptr, entry.into());
            let nb = self.b.current_block();
            self.b.br(chain);
            self.b.phi_add_incoming(entry, nb, nxt.into());

            self.b.switch_to(miss);
            let staged: Vec<(ValueId, FieldTy)> =
                key_vals.iter().map(|&v| (v, FieldTy::I64)).collect();
            self.stage_row(&staged);
            let new_entry = self.b.call(
                ExternId(EXT_AGG_INSERT),
                vec![self.wctx.into(), Constant::i64(agg as i64).into(), h.into()],
                Some(Type::I64),
            );
            let new_entry_p =
                self.b.cast(CastKind::Bitcast, Type::I64, Type::Ptr, new_entry.into());
            let miss_end = self.b.current_block();
            self.b.br(found);

            self.b.switch_to(found);
            self.b.phi(Type::Ptr, vec![(keycheck, entry.into()), (miss_end, new_entry_p.into())])
        };
        // `entry` points at [next, keys.., accs..]; accumulate each agg.
        let acc_base = 8 * (1 + nkeys) as i64;
        for (j, a) in aggs.iter().enumerate() {
            let off = acc_base + j as i64 * 8;
            match a.func {
                AggFunc::CountStar => {
                    let g = self.b.gep(entry.into(), off);
                    let cur = self.b.load(Type::I64, g.into());
                    let v = self.b.bin(BinOp::Add, Type::I64, cur.into(), Constant::i64(1).into());
                    let g2 = self.b.gep(entry.into(), off);
                    self.b.store(Type::I64, v.into(), g2.into());
                }
                AggFunc::SumI => {
                    let arg = self.expr(a.arg.as_ref().unwrap(), fields);
                    let g = self.b.gep(entry.into(), off);
                    let cur = self.b.load(Type::I64, g.into());
                    let v = self.b.checked_arith(OvfOp::Add, Type::I64, cur.into(), arg.into());
                    let g2 = self.b.gep(entry.into(), off);
                    self.b.store(Type::I64, v.into(), g2.into());
                }
                AggFunc::SumF => {
                    let arg = self.expr(a.arg.as_ref().unwrap(), fields);
                    let g = self.b.gep(entry.into(), off);
                    let cur = self.b.load(Type::F64, g.into());
                    let v = self.b.bin(BinOp::Add, Type::F64, cur.into(), arg.into());
                    let g2 = self.b.gep(entry.into(), off);
                    self.b.store(Type::F64, v.into(), g2.into());
                }
                AggFunc::MinI | AggFunc::MaxI => {
                    let arg = self.expr(a.arg.as_ref().unwrap(), fields);
                    let g = self.b.gep(entry.into(), off);
                    let cur = self.b.load(Type::I64, g.into());
                    let pred =
                        if matches!(a.func, AggFunc::MinI) { CmpPred::SLt } else { CmpPred::SGt };
                    let better = self.b.cmp(pred, Type::I64, arg.into(), cur.into());
                    let v = self.b.select(Type::I64, better.into(), arg.into(), cur.into());
                    let g2 = self.b.gep(entry.into(), off);
                    self.b.store(Type::I64, v.into(), g2.into());
                }
                AggFunc::MinF | AggFunc::MaxF => {
                    let arg = self.expr(a.arg.as_ref().unwrap(), fields);
                    let g = self.b.gep(entry.into(), off);
                    let cur = self.b.load(Type::F64, g.into());
                    let pred =
                        if matches!(a.func, AggFunc::MinF) { CmpPred::SLt } else { CmpPred::SGt };
                    let better = self.b.cmp(pred, Type::F64, arg.into(), cur.into());
                    let v = self.b.select(Type::F64, better.into(), arg.into(), cur.into());
                    let g2 = self.b.gep(entry.into(), off);
                    self.b.store(Type::F64, v.into(), g2.into());
                }
            }
        }
        self.b.br(cont);
    }
}

fn collect_params(e: &PExpr, out: &mut Vec<(usize, FieldTy)>) {
    match e {
        PExpr::Param { idx, ty } => out.push((*idx, *ty)),
        PExpr::Arith { a, b, .. } | PExpr::Cmp { a, b, .. } => {
            collect_params(a, out);
            collect_params(b, out);
        }
        PExpr::And(a, b) | PExpr::Or(a, b) => {
            collect_params(a, out);
            collect_params(b, out);
        }
        PExpr::Not(a) | PExpr::IToF(a) => collect_params(a, out),
        PExpr::InList { v, .. } => collect_params(v, out),
        PExpr::Case { cond, t, f, .. } => {
            collect_params(cond, out);
            collect_params(t, out);
            collect_params(f, out);
        }
        PExpr::DictLookup { v, .. } => collect_params(v, out),
        PExpr::Col(_) | PExpr::ConstI(_) | PExpr::ConstF(_) => {}
    }
}

fn collect_dicts(e: &PExpr, out: &mut Vec<usize>) {
    match e {
        PExpr::DictLookup { v, table, .. } => {
            out.push(*table);
            collect_dicts(v, out);
        }
        PExpr::Arith { a, b, .. } | PExpr::Cmp { a, b, .. } => {
            collect_dicts(a, out);
            collect_dicts(b, out);
        }
        PExpr::And(a, b) | PExpr::Or(a, b) => {
            collect_dicts(a, out);
            collect_dicts(b, out);
        }
        PExpr::Not(a) | PExpr::IToF(a) => collect_dicts(a, out),
        PExpr::InList { v, .. } => collect_dicts(v, out),
        PExpr::Case { cond, t, f, .. } => {
            collect_dicts(cond, out);
            collect_dicts(t, out);
            collect_dicts(f, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{decompose, PlanNode};
    use aqe_storage::tpch;

    #[test]
    fn q6_like_module_generates_and_verifies() {
        let cat = tpch::generate(0.001);
        // SELECT sum(extendedprice * discount) FROM lineitem WHERE ...
        let scan = PlanNode::Scan {
            table: "lineitem".into(),
            cols: vec![4, 5, 6, 10], // qty, extprice, discount, shipdate
            filter: Some(PExpr::and(
                PExpr::cmp(CmpOp::Lt, false, PExpr::Col(0), PExpr::ConstI(2400)),
                PExpr::cmp(CmpOp::Ge, false, PExpr::Col(3), PExpr::ConstI(8035)),
            )),
        };
        let agg = PlanNode::HashAgg {
            input: Box::new(scan),
            group_by: vec![],
            aggs: vec![AggSpec {
                func: AggFunc::SumI,
                arg: Some(PExpr::arith(ArithOp::Mul, true, false, PExpr::Col(1), PExpr::Col(2))),
            }],
        };
        let phys = decompose(&cat, &agg, vec![]);
        let module = generate(&phys, &cat);
        assert_eq!(module.functions.len(), 2);
        aqe_ir::verify::verify_module(&module).unwrap();
        // The agg pipeline contains the checked-mul overflow pattern.
        let txt = aqe_ir::print::print_module(&module);
        assert!(txt.contains("smul.ovf"), "{txt}");
        assert!(txt.contains("rt_emit"), "{txt}");
    }

    #[test]
    fn join_module_generates_and_verifies() {
        let cat = tpch::generate(0.001);
        let build = PlanNode::Scan { table: "supplier".into(), cols: vec![0, 3], filter: None };
        let probe = PlanNode::Scan { table: "lineitem".into(), cols: vec![2, 4], filter: None };
        let join = PlanNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(probe),
            build_keys: vec![0],
            probe_keys: vec![0],
            build_payload: vec![1],
            kind: JoinKind::Inner,
        };
        let phys = decompose(&cat, &join, vec![]);
        let module = generate(&phys, &cat);
        aqe_ir::verify::verify_module(&module).unwrap();
        assert_eq!(module.functions.len(), 2);
        let txt = aqe_ir::print::print_module(&module);
        assert!(txt.contains("rt_join_append"), "{txt}");
    }

    #[test]
    fn workers_translate_to_bytecode() {
        let cat = tpch::generate(0.001);
        let scan = PlanNode::Scan { table: "orders".into(), cols: vec![0, 3], filter: None };
        let agg = PlanNode::HashAgg {
            input: Box::new(scan),
            group_by: vec![],
            aggs: vec![AggSpec { func: AggFunc::CountStar, arg: None }],
        };
        let phys = decompose(&cat, &agg, vec![]);
        let module = generate(&phys, &cat);
        for f in &module.functions {
            let bc = aqe_vm::translate::translate(
                f,
                &module.externs,
                aqe_vm::translate::TranslateOptions::default(),
            )
            .unwrap();
            assert!(!bc.is_empty());
        }
    }
}
