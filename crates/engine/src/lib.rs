//! # aqe-engine — adaptive execution of compiled queries (the paper's §III)
//!
//! The core crate of this reproduction: a compiling, morsel-driven query
//! engine whose pipelines start in the bytecode interpreter and adaptively
//! switch to compiled code based on observed progress.
//!
//! * [`plan`] — physical plans and their decomposition into pipelines;
//! * [`codegen`] — pipelines → IR worker functions (Fig. 4);
//! * [`runtime`] — hash tables, buffers, and the runtime-call surface;
//! * [`exec`] — morsel scheduling, hot-swappable function handles (Fig. 5),
//!   and the adaptive controller (Fig. 7).

pub mod codegen;
pub mod exec;
pub mod plan;
pub mod runtime;

pub use exec::{
    execute_plan, CostModel, ExecMode, ExecOptions, Report, ResultRows, TraceEvent,
};
pub use plan::{PhysicalPlan, PlanNode};
