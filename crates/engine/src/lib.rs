//! # aqe-engine — adaptive execution of compiled queries (the paper's §III)
//!
//! The core crate of this reproduction: a compiling, morsel-driven query
//! engine whose pipelines start in the bytecode interpreter and adaptively
//! switch to compiled code based on observed progress.
//!
//! * [`plan`] — physical plans, their decomposition into pipelines, and
//!   the stable [`plan::PhysicalPlan::fingerprint`] cache identity;
//! * [`codegen`] — pipelines → IR worker functions (Fig. 4);
//! * [`runtime`] — hash tables, buffers, and the runtime-call surface;
//! * [`exec`] — the pipeline-loop core, hot-swappable function handles
//!   (Fig. 5), and pipeline sinks;
//! * [`sched`] — the morsel scheduler subsystem: work-stealing
//!   [`sched::MorselDispenser`], lock-free [`sched::PipelineProgress`],
//!   the Fig. 7 [`sched::AdaptiveController`], and per-query cost-model
//!   calibration ([`sched::CostCalibrator`]);
//! * [`session`] — the long-lived API: [`session::Engine`] (catalog
//!   version, cross-query calibration store, versioned result cache),
//!   [`session::Session`], and [`session::PreparedQuery`] (code reuse
//!   across executions).
//!
//! Execution is backend-agnostic: every morsel runs through a single
//! `Arc<dyn PipelineBackend>` per pipeline (the trait lives in
//! [`aqe_vm::backend`]), and the adaptive controller switches backends by
//! atomically publishing a better one into the pipeline's
//! [`exec::FunctionHandle`].
//!
//! Executions are cooperatively cancellable: [`cancel::CancelToken`] is a
//! shared poison flag (plus optional deadline) the morsel loop checks on
//! every range claim and the controller checks at poll cadence, surfacing
//! as `ExecError::Cancelled` without disturbing prepared state.

pub mod cancel;
pub mod codegen;
pub mod exec;
pub mod plan;
pub mod runtime;
pub mod sched;
pub mod session;
pub mod simd;

pub use cancel::{CancelKind, CancelToken};
pub use exec::{
    AdmissionReport, CostModel, ExecMode, ExecOptions, FunctionHandle, ParamValue, PipelineBackend,
    Report, ResultRows, RetainedSlot, TraceEvent,
};
pub use plan::{PhysicalPlan, PlanNode};
pub use sched::{CalibrationReport, ExecLevel, PipelineSchedReport};
pub use session::{
    CacheStats, CalibrationStore, ConcurrencyStats, Engine, PreparedQuery, ServerCounters,
    ServerStats, Session, WorkloadShape,
};
