//! Cooperative query cancellation: the per-execution [`CancelToken`].
//!
//! A running query used to be unstoppable — once `run_pipelines` entered
//! the morsel loop, nothing outside the worker threads could end it short
//! of process death. The front-door server (`crates/server`) needs three
//! things to stop a query mid-flight: a client `CANCEL` frame, a
//! per-query deadline, and a dropped connection. All three converge on
//! one mechanism: a shared poison flag plus a reason, checked
//! **cooperatively** at the natural quiescent points of an execution —
//! the morsel loop checks on every range claim (so a worker stops within
//! one claim, never mid-morsel with a half-updated aggregate buffer), the
//! pipeline loop checks between pipelines, and the adaptive controller
//! checks at its poll cadence so a doomed query stops claiming background
//! compiles.
//!
//! Cancellation is an *execution* property, not a *prepared-query*
//! property: observing a poisoned token surfaces as
//! [`ExecError::Cancelled`] from that execution only. The prepared
//! query's retained module, bytecode, compiled backends, and the engine's
//! result cache are untouched — a subsequent execution of the same
//! statement runs warm (backends that a background compile published
//! before the cancel landed are *kept*; they are paid for and valid).
//!
//! [`ExecError::Cancelled`]: aqe_vm::interp::ExecError::Cancelled

use aqe_vm::interp::ExecError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why an execution was cancelled. The first cancel wins: a token
/// poisoned by a deadline stays `Deadline` even if a client cancel frame
/// arrives a microsecond later, so counters and error frames agree on
/// one cause per execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelKind {
    /// An explicit cancel request (the protocol's `CANCEL` frame).
    Client,
    /// The execution's deadline expired (the token self-poisons on the
    /// first [`poll`](CancelToken::poll) past it).
    Deadline,
    /// The submitting connection went away; nobody is left to read the
    /// rows.
    Disconnect,
    /// The server (or embedding process) is shutting down.
    Shutdown,
}

impl CancelKind {
    /// The stable reason string carried by [`ExecError::Cancelled`] and
    /// the protocol's error frames.
    pub fn reason(self) -> &'static str {
        match self {
            CancelKind::Client => "client cancel",
            CancelKind::Deadline => "deadline exceeded",
            CancelKind::Disconnect => "connection dropped",
            CancelKind::Shutdown => "server shutting down",
        }
    }

    fn from_state(s: u8) -> Option<CancelKind> {
        match s {
            1 => Some(CancelKind::Client),
            2 => Some(CancelKind::Deadline),
            3 => Some(CancelKind::Disconnect),
            4 => Some(CancelKind::Shutdown),
            _ => None,
        }
    }

    fn state(self) -> u8 {
        match self {
            CancelKind::Client => 1,
            CancelKind::Deadline => 2,
            CancelKind::Disconnect => 3,
            CancelKind::Shutdown => 4,
        }
    }
}

struct Inner {
    /// 0 = live; otherwise the winning [`CancelKind`]'s state code.
    state: AtomicU8,
    /// Set when a deadline has been armed — the morsel loop's fast path
    /// reads one atomic and skips the clock and the lock entirely for
    /// deadline-free executions.
    has_deadline: AtomicBool,
    /// The armed deadline. Written before `has_deadline` is released;
    /// locked only on the (rare) arm and on polls of deadline-carrying
    /// tokens.
    deadline: Mutex<Option<Instant>>,
}

/// A shared cancellation token: poison it from any thread, and every
/// checkpoint of the execution(s) carrying it observes the poison on its
/// next visit. Cloning shares the token (`Arc` semantics).
///
/// One token should govern **one** execution: `ExecOptions` carries a
/// fresh token by default, and callers that cancel (the server, tests)
/// install a new token per execution. Sharing a token across executions
/// is well-defined — a cancel stops all of them — but rarely what a
/// request path wants.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.kind())
            .field("deadline", &*self.inner.deadline.lock())
            .finish()
    }
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(0),
                has_deadline: AtomicBool::new(false),
                deadline: Mutex::new(None),
            }),
        }
    }

    /// A live token that self-poisons with [`CancelKind::Deadline`] on
    /// the first poll at or past `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        let t = CancelToken::new();
        t.arm_deadline(deadline);
        t
    }

    /// Arm (or tighten) the deadline. A later deadline than the armed one
    /// is ignored — deadlines only ever shrink the budget.
    pub fn arm_deadline(&self, deadline: Instant) {
        let mut d = self.inner.deadline.lock();
        match *d {
            Some(cur) if cur <= deadline => {}
            _ => *d = Some(deadline),
        }
        self.inner.has_deadline.store(true, Ordering::Release);
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        *self.inner.deadline.lock()
    }

    /// Poison the token. The first cancel wins; returns whether this call
    /// was it.
    pub fn cancel(&self, kind: CancelKind) -> bool {
        self.inner
            .state
            .compare_exchange(0, kind.state(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Whether the token is poisoned (does **not** evaluate the deadline;
    /// see [`poll`](CancelToken::poll)).
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != 0
    }

    /// The winning cancel cause, if any.
    pub fn kind(&self) -> Option<CancelKind> {
        CancelKind::from_state(self.inner.state.load(Ordering::Acquire))
    }

    /// The checkpoint read: poisoned → its kind; armed deadline reached →
    /// self-poison with [`CancelKind::Deadline`] and report it; otherwise
    /// `None`. The live fast path is one atomic load (plus one more for
    /// deadline-free tokens) — cheap enough for once-per-morsel-claim.
    #[inline]
    pub fn poll(&self) -> Option<CancelKind> {
        let s = self.inner.state.load(Ordering::Acquire);
        if s != 0 {
            return CancelKind::from_state(s);
        }
        if self.inner.has_deadline.load(Ordering::Acquire) {
            let expired = matches!(*self.inner.deadline.lock(), Some(d) if Instant::now() >= d);
            if expired {
                self.cancel(CancelKind::Deadline);
                // Report the *winning* kind: a racing client cancel may
                // have beaten the deadline to the flag.
                return self.kind();
            }
        }
        None
    }

    /// [`poll`] as an error: `Err(ExecError::Cancelled)` when poisoned or
    /// past deadline, for `?`-style checkpoints.
    ///
    /// [`poll`]: CancelToken::poll
    #[inline]
    pub fn check(&self) -> Result<(), ExecError> {
        match self.poll() {
            None => Ok(()),
            Some(kind) => Err(ExecError::Cancelled { reason: kind.reason().to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.poll(), None);
        assert!(t.check().is_ok());
        assert!(t.cancel(CancelKind::Client));
        assert!(!t.cancel(CancelKind::Deadline), "second cancel must lose");
        assert_eq!(t.kind(), Some(CancelKind::Client));
        assert_eq!(t.poll(), Some(CancelKind::Client));
        assert_eq!(t.check(), Err(ExecError::Cancelled { reason: "client cancel".to_string() }));
    }

    #[test]
    fn clones_share_the_poison_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(u.cancel(CancelKind::Disconnect));
        assert_eq!(t.kind(), Some(CancelKind::Disconnect));
    }

    #[test]
    fn deadline_self_poisons_on_poll() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!t.is_cancelled(), "the flag is only set by a poll");
        assert_eq!(t.poll(), Some(CancelKind::Deadline));
        assert!(t.is_cancelled());
        assert_eq!(t.kind(), Some(CancelKind::Deadline));
    }

    #[test]
    fn future_deadline_stays_live_and_only_tightens() {
        let far = Instant::now() + Duration::from_secs(3600);
        let t = CancelToken::with_deadline(far);
        assert_eq!(t.poll(), None);
        let near = Instant::now() + Duration::from_secs(60);
        t.arm_deadline(near);
        assert_eq!(t.deadline(), Some(near));
        t.arm_deadline(far);
        assert_eq!(t.deadline(), Some(near), "a later deadline must not widen the budget");
    }
}
