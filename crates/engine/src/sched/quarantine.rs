//! Per-fingerprint tier quarantine: remember which compilation tiers
//! failed for which pipeline, skip them for a while, then probe again.
//!
//! Graceful ladder degradation (DESIGN.md §14) means a failed
//! Native/SIMD/threaded compile never surfaces to the caller — the
//! execution continues one rung down. But retrying a broken tier on
//! *every* execution would pay the doomed compile each time, so the
//! engine-wide [`QuarantineStore`] records each failure keyed by
//! `(plan fingerprint, pipeline, ExecLevel)` and blocks that tier for
//! the next [`QUARANTINE_SKIPS`] executions. After the skips are spent
//! the next execution probes the tier again; a successful compile
//! clears the entry, a failure re-arms it.
//!
//! Consultation happens through a per-execution [`PipelineQuarantine`]
//! view, which caches its verdict per level so one execution decrements
//! the skip budget at most once per tier no matter how many times the
//! controller asks.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use super::controller::ExecLevel;

/// Executions a failed tier is skipped for before being probed again.
pub const QUARANTINE_SKIPS: u32 = 8;

#[derive(Default)]
struct Entry {
    /// Executions left before the tier is probed again; `0` = probe now.
    remaining: u32,
    /// Total failures recorded for this key (diagnostic).
    failures: u64,
}

/// Engine-shared quarantine ledger. One per [`crate::session::Engine`],
/// shared by every session and prepared query.
#[derive(Default)]
pub struct QuarantineStore {
    map: Mutex<HashMap<(u64, usize, ExecLevel), Entry>>,
}

impl QuarantineStore {
    pub fn new() -> QuarantineStore {
        QuarantineStore::default()
    }

    /// A per-execution view for one pipeline of one plan.
    pub fn pipeline(self: &Arc<Self>, fingerprint: u64, pipeline: usize) -> PipelineQuarantine {
        PipelineQuarantine {
            inner: Arc::new(PqInner {
                store: Arc::clone(self),
                fingerprint,
                pipeline,
                cached: Default::default(),
            }),
        }
    }

    /// Quarantined keys currently holding a live skip budget.
    pub fn active(&self) -> usize {
        self.map.lock().values().filter(|e| e.remaining > 0).count()
    }

    /// Consult-and-decrement: true if the tier is still quarantined for
    /// this execution (one skip spent), false if it may be probed.
    fn consult(&self, key: (u64, usize, ExecLevel)) -> bool {
        let mut map = self.map.lock();
        match map.get_mut(&key) {
            Some(e) if e.remaining > 0 => {
                e.remaining -= 1;
                true
            }
            _ => false,
        }
    }

    fn record_failure(&self, key: (u64, usize, ExecLevel)) {
        let mut map = self.map.lock();
        let e = map.entry(key).or_default();
        e.remaining = QUARANTINE_SKIPS;
        e.failures += 1;
    }

    fn record_success(&self, key: (u64, usize, ExecLevel)) {
        self.map.lock().remove(&key);
    }
}

struct PqInner {
    store: Arc<QuarantineStore>,
    fingerprint: u64,
    pipeline: usize,
    /// Verdict cache, indexed by compiled level (see `idx`): consulting
    /// the store decrements the skip budget, so each execution must ask
    /// at most once per tier.
    cached: [OnceLock<bool>; 4],
}

/// One execution's quarantine view of one pipeline. Cheap to clone
/// (the clone shares the verdict cache) so it can ride into background
/// compile jobs.
#[derive(Clone)]
pub struct PipelineQuarantine {
    inner: Arc<PqInner>,
}

impl PipelineQuarantine {
    fn idx(level: ExecLevel) -> Option<usize> {
        match level {
            ExecLevel::Interpreted => None,
            ExecLevel::Unoptimized => Some(0),
            ExecLevel::Optimized => Some(1),
            ExecLevel::Native => Some(2),
            ExecLevel::Simd => Some(3),
        }
    }

    fn key(&self, level: ExecLevel) -> (u64, usize, ExecLevel) {
        (self.inner.fingerprint, self.inner.pipeline, level)
    }

    /// Is `level` quarantined for this execution? The first call per
    /// level consults the store (spending one skip if quarantined);
    /// repeats return the cached verdict. `Interpreted` is never
    /// blocked — the ladder always has a floor.
    pub fn blocked(&self, level: ExecLevel) -> bool {
        let Some(i) = Self::idx(level) else {
            return false;
        };
        *self.inner.cached[i].get_or_init(|| self.inner.store.consult(self.key(level)))
    }

    /// Distinct tiers this execution skipped because of quarantine.
    /// Clones share the verdict cache, so one execution's skips are
    /// counted once no matter which clone asked.
    pub fn skips(&self) -> u64 {
        self.inner.cached.iter().filter(|c| c.get().copied().unwrap_or(false)).count() as u64
    }

    /// Record that compiling to `level` failed: quarantine the tier for
    /// the next [`QUARANTINE_SKIPS`] executions.
    pub fn record_failure(&self, level: ExecLevel) {
        if Self::idx(level).is_some() {
            self.inner.store.record_failure(self.key(level));
        }
    }

    /// Record that `level` compiled successfully: clear any quarantine
    /// (a probe recovered the tier).
    pub fn record_success(&self, level: ExecLevel) {
        if Self::idx(level).is_some() {
            self.inner.store.record_success(self.key(level));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<QuarantineStore> {
        Arc::new(QuarantineStore::new())
    }

    #[test]
    fn unknown_key_is_not_blocked() {
        let s = store();
        assert!(!s.pipeline(1, 0).blocked(ExecLevel::Native));
        assert!(!s.pipeline(1, 0).blocked(ExecLevel::Interpreted));
    }

    #[test]
    fn failure_blocks_for_n_executions_then_probes() {
        let s = store();
        s.pipeline(7, 2).record_failure(ExecLevel::Native);
        for _ in 0..QUARANTINE_SKIPS {
            assert!(s.pipeline(7, 2).blocked(ExecLevel::Native));
        }
        // Budget spent: the next execution probes.
        assert!(!s.pipeline(7, 2).blocked(ExecLevel::Native));
        // Other keys were never affected.
        assert!(!s.pipeline(7, 1).blocked(ExecLevel::Native));
        assert!(!s.pipeline(8, 2).blocked(ExecLevel::Native));
        assert!(!s.pipeline(7, 2).blocked(ExecLevel::Simd));
    }

    #[test]
    fn one_execution_spends_at_most_one_skip_per_tier() {
        let s = store();
        s.pipeline(7, 0).record_failure(ExecLevel::Simd);
        let view = s.pipeline(7, 0);
        for _ in 0..100 {
            assert!(view.blocked(ExecLevel::Simd));
        }
        // Only one skip was spent despite 100 consults.
        for _ in 0..QUARANTINE_SKIPS - 1 {
            assert!(s.pipeline(7, 0).blocked(ExecLevel::Simd));
        }
        assert!(!s.pipeline(7, 0).blocked(ExecLevel::Simd));
    }

    #[test]
    fn success_clears_and_refailure_rearms() {
        let s = store();
        s.pipeline(1, 0).record_failure(ExecLevel::Optimized);
        assert_eq!(s.active(), 1);
        s.pipeline(1, 0).record_success(ExecLevel::Optimized);
        assert_eq!(s.active(), 0);
        assert!(!s.pipeline(1, 0).blocked(ExecLevel::Optimized));
        s.pipeline(1, 0).record_failure(ExecLevel::Optimized);
        assert!(s.pipeline(1, 0).blocked(ExecLevel::Optimized));
    }
}
