//! The morsel scheduler subsystem: who runs which rows, how progress is
//! observed, and when the adaptive controller upgrades a pipeline.
//!
//! PR 1 left all of this inlined in a 240-line `run_pipeline`: a single
//! shared `AtomicU64` cursor handed out morsels (one stalled worker or one
//! expensive morsel serialized the tail), the processing rate lived behind
//! a `since_reset`/`reset_at` mutex dance, the Fig. 7 decision was an
//! inline block in the worker loop, and background-compile threads were
//! detached and leaked. This module dissolves that monolith into four
//! cooperating pieces:
//!
//! * [`morsel`] — a [`MorselDispenser`] with per-worker range partitions,
//!   dynamically growing morsel sizes, and LIFO half-range work stealing;
//! * [`progress`] — lock-free per-worker [`WorkerProgress`] counters
//!   aggregated into the pipeline rate the controller extrapolates from;
//! * [`controller`] — the [`AdaptiveController`] owning the Fig. 7 loop
//!   (poll cadence, [`extrapolate_pipeline_durations`], compile claim,
//!   trace emission) with background compiles tracked via `JoinHandle`s
//!   and joined before the pipeline finalizes;
//! * [`calibrate`] — a per-query [`CostCalibrator`] feeding measured
//!   compile times and observed post-switch rates back into the
//!   [`CostModel`], so later pipelines of the same query decide with
//!   calibrated rather than default constants.
//!
//! [`MorselDispenser`]: morsel::MorselDispenser
//! [`WorkerProgress`]: progress::WorkerProgress
//! [`AdaptiveController`]: controller::AdaptiveController
//! [`extrapolate_pipeline_durations`]: controller::extrapolate_pipeline_durations
//! [`CostCalibrator`]: calibrate::CostCalibrator
//! [`CostModel`]: calibrate::CostModel

pub mod calibrate;
pub mod controller;
pub mod morsel;
pub mod progress;
pub mod quarantine;

pub use calibrate::{CalibrationReport, CostCalibrator, CostModel};
pub use controller::{
    extrapolate_pipeline_durations, AdaptiveController, ControllerCtx, ExecLevel, ModeChoice,
    PipelineSchedReport,
};
pub use morsel::{Morsel, MorselDispenser};
pub use progress::{PipelineProgress, WorkerProgress};
pub use quarantine::{PipelineQuarantine, QuarantineStore, QUARANTINE_SKIPS};
