//! Lock-free execution-progress accounting.
//!
//! PR 1 tracked the pipeline rate with a shared `since_reset: AtomicU64`
//! plus a `reset_at: Mutex<Instant>` — every rate read took a lock, and
//! only the *aggregate* rate was observable. Here each worker owns a
//! cache-line-padded [`WorkerProgress`] counter (so the hot `record` path
//! never contends), and the rate window is two atomics: the total at the
//! last reset and the reset timestamp in microseconds since pipeline
//! start. Readers race benignly against resets; rates are advisory inputs
//! to the Fig. 7 extrapolation, not accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-worker counters, padded to a cache line so neighbouring workers'
/// `fetch_add`s do not false-share.
#[repr(align(64))]
#[derive(Default)]
pub struct WorkerProgress {
    tuples: AtomicU64,
    morsels: AtomicU64,
}

impl WorkerProgress {
    pub fn tuples(&self) -> u64 {
        self.tuples.load(Ordering::Relaxed)
    }

    pub fn morsels(&self) -> u64 {
        self.morsels.load(Ordering::Relaxed)
    }
}

/// Aggregated pipeline progress: per-worker counters plus the rate window
/// the adaptive controller extrapolates from.
pub struct PipelineProgress {
    start: Instant,
    workers: Vec<WorkerProgress>,
    /// Total tuples at the last window reset.
    window_base: AtomicU64,
    /// Window start, µs since `start`.
    window_start_us: AtomicU64,
}

impl PipelineProgress {
    pub fn new(workers: usize) -> PipelineProgress {
        PipelineProgress {
            start: Instant::now(),
            workers: (0..workers).map(|_| WorkerProgress::default()).collect(),
            window_base: AtomicU64::new(0),
            window_start_us: AtomicU64::new(0),
        }
    }

    /// Record one finished morsel for `worker`.
    #[inline]
    pub fn record(&self, worker: usize, tuples: u64) {
        let w = &self.workers[worker];
        w.tuples.fetch_add(tuples, Ordering::Relaxed);
        w.morsels.fetch_add(1, Ordering::Relaxed);
    }

    /// Total tuples processed by all workers.
    pub fn total(&self) -> u64 {
        self.workers.iter().map(|w| w.tuples.load(Ordering::Relaxed)).sum()
    }

    /// Total morsels executed by all workers.
    pub fn morsels(&self) -> u64 {
        self.workers.iter().map(|w| w.morsels.load(Ordering::Relaxed)).sum()
    }

    /// The individually observable per-worker counters (what the global
    /// cursor of PR 1 could not provide).
    pub fn worker(&self, i: usize) -> &WorkerProgress {
        &self.workers[i]
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Start a new rate window (called when a compilation is claimed and
    /// again when the compiled backend is installed, so post-switch rates
    /// are measured at the new level only).
    pub fn reset_window(&self) {
        self.window_base.store(self.total(), Ordering::Relaxed);
        self.window_start_us.store(self.start.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    /// Tuples and seconds elapsed in the current window.
    pub fn window(&self) -> (u64, f64) {
        let now_us = self.start.elapsed().as_micros() as u64;
        let base = self.window_base.load(Ordering::Relaxed);
        let start_us = self.window_start_us.load(Ordering::Relaxed);
        let tuples = self.total().saturating_sub(base);
        let secs = now_us.saturating_sub(start_us) as f64 / 1e6;
        (tuples, secs)
    }

    /// Time since the pipeline's progress tracking began.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_across_workers() {
        let p = PipelineProgress::new(3);
        p.record(0, 100);
        p.record(1, 50);
        p.record(0, 25);
        assert_eq!(p.total(), 175);
        assert_eq!(p.morsels(), 3);
        assert_eq!(p.worker(0).tuples(), 125);
        assert_eq!(p.worker(0).morsels(), 2);
        assert_eq!(p.worker(2).tuples(), 0);
    }

    #[test]
    fn window_resets_exclude_prior_tuples() {
        let p = PipelineProgress::new(1);
        p.record(0, 1000);
        p.reset_window();
        p.record(0, 10);
        let (tuples, _) = p.window();
        assert_eq!(tuples, 10);
    }

    #[test]
    fn window_seconds_advance() {
        let p = PipelineProgress::new(1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (_, secs) = p.window();
        assert!(secs > 0.0);
    }
}
