//! Cost-model feedback calibration (the "measured inputs" half of the
//! Fig. 7 loop).
//!
//! The extrapolation is only as good as its constants: `ctime(f)` assumes
//! a per-instruction compile cost and `speedup(f)` assumes global
//! empirical factors, both measured once on a developer machine
//! (EXPERIMENTS.md). A [`CostCalibrator`] is shared by every pipeline of
//! one query execution; whenever a background compilation finishes it
//! records the *measured* wall time per IR instruction, and whenever a
//! pipeline observes its post-switch processing rate it records the
//! *measured* speedup. Later pipelines of the same query snapshot the
//! blended model, so their Fig. 7 decisions use calibrated rather than
//! default constants — the mid-query feedback loop that distinguishes
//! adaptive engines from static heuristics.

use crate::sched::controller::ExecLevel;
use parking_lot::Mutex;
use std::time::Duration;

/// The empirical model behind Fig. 7's `ctime(f)` and `speedup(f)`: compile
/// time is linear in IR instruction count (Fig. 6: "the number of LLVM
/// instructions of a query correlates very well with its compilation
/// time"); speedups are global empirical factors (§V-D).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    pub unopt_base_s: f64,
    pub unopt_per_instr_s: f64,
    pub opt_base_s: f64,
    pub opt_per_instr_s: f64,
    pub native_base_s: f64,
    pub native_per_instr_s: f64,
    /// Reaching the SIMD tier costs a native compile plus the (cheap)
    /// kernel wrap, so its constants sit just above the native ones.
    pub simd_base_s: f64,
    pub simd_per_instr_s: f64,
    /// Execution speedup of unoptimized / optimized threaded code, native
    /// machine code, and kernel-fronted native code over bytecode.
    pub speedup_unopt: f64,
    pub speedup_opt: f64,
    pub speedup_native: f64,
    /// Only meaningful on pipelines with a vectorizable filter — the
    /// controller never proposes the SIMD level elsewhere. Selective
    /// filters skip most scalar work, hence the distinctly higher default;
    /// the calibrator pulls it down fast on non-selective scans.
    pub speedup_simd: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Defaults measured on this reproduction's backends (see
        // EXPERIMENTS.md); recalibrated mid-query by `CostCalibrator`.
        CostModel {
            unopt_base_s: 30e-6,
            unopt_per_instr_s: 0.4e-6,
            opt_base_s: 80e-6,
            opt_per_instr_s: 4.0e-6,
            // Native runs the whole optimized pipeline plus instruction
            // emission and an mmap/mprotect round trip.
            native_base_s: 150e-6,
            native_per_instr_s: 5.0e-6,
            simd_base_s: 160e-6,
            simd_per_instr_s: 5.0e-6,
            speedup_unopt: 1.5,
            speedup_opt: 2.2,
            speedup_native: 6.0,
            speedup_simd: 9.0,
        }
    }
}

impl CostModel {
    /// Modelled compile time for reaching `level` (zero for the level the
    /// engine starts at — interpretation needs no compilation).
    pub fn ctime(&self, level: ExecLevel, instrs: usize) -> f64 {
        match level {
            ExecLevel::Interpreted => 0.0,
            ExecLevel::Unoptimized => self.unopt_base_s + self.unopt_per_instr_s * instrs as f64,
            ExecLevel::Optimized => self.opt_base_s + self.opt_per_instr_s * instrs as f64,
            ExecLevel::Native => self.native_base_s + self.native_per_instr_s * instrs as f64,
            ExecLevel::Simd => self.simd_base_s + self.simd_per_instr_s * instrs as f64,
        }
    }
    /// Modelled execution speedup of `level` over bytecode.
    pub fn speedup(&self, level: ExecLevel) -> f64 {
        match level {
            ExecLevel::Interpreted => 1.0,
            ExecLevel::Unoptimized => self.speedup_unopt,
            ExecLevel::Optimized => self.speedup_opt,
            ExecLevel::Native => self.speedup_native,
            ExecLevel::Simd => self.speedup_simd,
        }
    }
}

/// What one query execution learned about its cost model (surfaced in
/// `Report::calibration`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CalibrationReport {
    /// Background compilations whose measured wall time was fed back.
    pub compile_observations: u32,
    /// Post-switch rate observations fed back.
    pub speedup_observations: u32,
    /// The model after all feedback (equals the query's starting model
    /// when no observation was made).
    pub model: CostModel,
}

struct Inner {
    model: CostModel,
    compile_obs: u32,
    speedup_obs: u32,
    /// The starting model itself came from earlier feedback (a
    /// cross-query `CalibrationStore` seed), so the query counts as
    /// calibrated before its first own observation.
    seeded: bool,
}

/// Per-query cost-model feedback accumulator, shared (via `Arc`) by every
/// pipeline's [`AdaptiveController`](super::AdaptiveController) and by the
/// background compile threads.
pub struct CostCalibrator {
    inner: Mutex<Inner>,
}

/// Blend weight for new observations. One observation moves the constant
/// halfway to the measurement — fast enough that the second pipeline of a
/// query already decides with calibrated inputs, damped enough that one
/// noisy window cannot wreck the model.
const BLEND: f64 = 0.5;

/// Observed speedups are clamped: an upgrade can never be modelled as a
/// slowdown (floor just above 1.0 keeps rank monotonicity meaningful), and
/// a single lucky window cannot promise absurd gains.
const SPEEDUP_FLOOR: f64 = 1.05;
const SPEEDUP_CEIL: f64 = 64.0;

fn blend(old: f64, observed: f64) -> f64 {
    old * (1.0 - BLEND) + observed * BLEND
}

impl CostCalibrator {
    pub fn new(model: CostModel) -> CostCalibrator {
        CostCalibrator {
            inner: Mutex::new(Inner { model, compile_obs: 0, speedup_obs: 0, seeded: false }),
        }
    }

    /// A calibrator whose starting model was learned by *earlier queries*
    /// (the engine's cross-query `CalibrationStore`): [`is_calibrated`]
    /// holds from the first pipeline on, so `Report::sched[0].calibrated`
    /// distinguishes a store-warmed query from a cold one.
    ///
    /// [`is_calibrated`]: CostCalibrator::is_calibrated
    pub fn seeded(model: CostModel) -> CostCalibrator {
        CostCalibrator {
            inner: Mutex::new(Inner { model, compile_obs: 0, speedup_obs: 0, seeded: true }),
        }
    }

    /// Snapshot of the current (possibly calibrated) model — what a
    /// pipeline's controller decides with.
    pub fn model(&self) -> CostModel {
        self.inner.lock().model
    }

    /// Whether any feedback has been recorded yet — or the starting
    /// model was already seeded from cross-query feedback.
    pub fn is_calibrated(&self) -> bool {
        let g = self.inner.lock();
        g.seeded || g.compile_obs + g.speedup_obs > 0
    }

    /// Feed back a measured background-compile wall time: the cost above
    /// the modelled base is attributed to the per-instruction constant.
    pub fn record_compile(&self, level: ExecLevel, instrs: usize, measured: Duration) {
        if instrs == 0 {
            return;
        }
        let secs = measured.as_secs_f64();
        let mut g = self.inner.lock();
        let (base, per) = match level {
            ExecLevel::Interpreted => return, // nothing was compiled
            ExecLevel::Unoptimized => (g.model.unopt_base_s, &mut g.model.unopt_per_instr_s),
            ExecLevel::Optimized => (g.model.opt_base_s, &mut g.model.opt_per_instr_s),
            ExecLevel::Native => (g.model.native_base_s, &mut g.model.native_per_instr_s),
            ExecLevel::Simd => (g.model.simd_base_s, &mut g.model.simd_per_instr_s),
        };
        let observed_per = (secs - base).max(0.0) / instrs as f64;
        *per = blend(*per, observed_per);
        g.compile_obs += 1;
    }

    /// Feed back an observed post-switch speedup over bytecode at `level`.
    pub fn record_speedup(&self, level: ExecLevel, observed: f64) {
        if !observed.is_finite() || observed <= 0.0 {
            return;
        }
        let observed = observed.clamp(SPEEDUP_FLOOR, SPEEDUP_CEIL);
        let mut g = self.inner.lock();
        match level {
            ExecLevel::Interpreted => return, // not a switch target
            ExecLevel::Unoptimized => {
                g.model.speedup_unopt = blend(g.model.speedup_unopt, observed)
            }
            ExecLevel::Optimized => g.model.speedup_opt = blend(g.model.speedup_opt, observed),
            ExecLevel::Native => g.model.speedup_native = blend(g.model.speedup_native, observed),
            ExecLevel::Simd => g.model.speedup_simd = blend(g.model.speedup_simd, observed),
        }
        g.speedup_obs += 1;
    }

    pub fn report(&self) -> CalibrationReport {
        let g = self.inner.lock();
        CalibrationReport {
            compile_observations: g.compile_obs,
            speedup_observations: g.speedup_obs,
            model: g.model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctime_is_linear_in_instrs() {
        let m = CostModel::default();
        let a = m.ctime(ExecLevel::Optimized, 1000);
        let b = m.ctime(ExecLevel::Optimized, 2000);
        assert!((b - a - m.opt_per_instr_s * 1000.0).abs() < 1e-12);
    }

    #[test]
    fn compile_feedback_moves_per_instr_constant() {
        let c = CostCalibrator::new(CostModel::default());
        assert!(!c.is_calibrated());
        // 10k instrs measured at 100 ms: vastly above the default model.
        c.record_compile(ExecLevel::Optimized, 10_000, Duration::from_millis(100));
        assert!(c.is_calibrated());
        let m = c.model();
        assert!(m.opt_per_instr_s > CostModel::default().opt_per_instr_s);
        assert_eq!(c.report().compile_observations, 1);
        // Unopt constants untouched.
        assert_eq!(m.unopt_per_instr_s, CostModel::default().unopt_per_instr_s);
    }

    #[test]
    fn speedup_feedback_is_clamped_and_blended() {
        let c = CostCalibrator::new(CostModel::default());
        c.record_speedup(ExecLevel::Optimized, 0.2); // an "upgrade" can't model as a slowdown
        let m = c.model();
        assert!(m.speedup_opt >= SPEEDUP_FLOOR * BLEND);
        assert!(m.speedup_opt < CostModel::default().speedup_opt);
        c.record_speedup(ExecLevel::Unoptimized, f64::NAN); // ignored
        assert_eq!(c.report().speedup_observations, 1);
    }

    #[test]
    fn seeded_calibrator_reports_calibrated_before_any_observation() {
        let c = CostCalibrator::seeded(CostModel::default());
        assert!(c.is_calibrated());
        assert_eq!(c.report().compile_observations, 0);
    }

    #[test]
    fn native_feedback_moves_native_constants_only() {
        let c = CostCalibrator::new(CostModel::default());
        c.record_compile(ExecLevel::Native, 10_000, Duration::from_millis(200));
        c.record_speedup(ExecLevel::Native, 10.0);
        let m = c.model();
        assert!(m.native_per_instr_s > CostModel::default().native_per_instr_s);
        assert!(m.speedup_native > CostModel::default().speedup_native);
        assert_eq!(m.opt_per_instr_s, CostModel::default().opt_per_instr_s);
        assert_eq!(m.speedup_opt, CostModel::default().speedup_opt);
        // Interpreted is not a compile target: both feedback kinds ignore it.
        c.record_compile(ExecLevel::Interpreted, 1000, Duration::from_secs(1));
        c.record_speedup(ExecLevel::Interpreted, 3.0);
        assert_eq!(c.report().compile_observations, 1);
        assert_eq!(c.report().speedup_observations, 1);
    }

    #[test]
    fn zero_instr_compile_is_ignored() {
        let c = CostCalibrator::new(CostModel::default());
        c.record_compile(ExecLevel::Unoptimized, 0, Duration::from_secs(1));
        assert!(!c.is_calibrated());
    }
}
