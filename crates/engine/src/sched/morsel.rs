//! Morsel dispensing: per-worker range partitions with LIFO half-range
//! work stealing.
//!
//! PR 1's scheduler was a single shared `AtomicU64` cursor: correct, but a
//! worker stalled inside `call` (or one expensive morsel) serialized the
//! tail, and per-worker rates were unobservable because every worker drew
//! from the same pool. The dispenser instead gives each worker a contiguous
//! partition of `0..total_rows`. A worker claims morsels from the *front*
//! of its own range; when the range runs dry it steals the *upper half* of
//! the largest remaining range (LIFO with respect to the victim's claim
//! order — the thief takes the rows the victim would have reached last)
//! and installs the loot as its new range, which later thieves may split
//! again.
//!
//! Every range is one `AtomicU64` packing `(start, end)` as two `u32`s, so
//! both the owner's front-claim and a thief's back-steal are single CAS
//! transitions on the same word: rows move between slots without ever
//! being duplicated or dropped (the property test in
//! `crates/engine/tests/sched.rs` exercises exactly this invariant under
//! random interleavings).

use std::sync::atomic::{AtomicU64, Ordering};

/// One contiguous row range handed to a worker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Morsel {
    pub begin: u64,
    pub end: u64,
}

impl Morsel {
    pub fn tuples(&self) -> u64 {
        self.end - self.begin
    }
}

#[inline]
fn pack(start: u64, end: u64) -> u64 {
    (start << 32) | end
}

#[inline]
fn unpack(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xffff_ffff)
}

/// Per-worker dispenser slot. Padded to a cache line so one worker's claim
/// CAS does not false-share with its neighbours' hot loops.
#[repr(align(64))]
struct Slot {
    /// Packed `(start, end)` of the remaining range; empty when
    /// `start >= end`.
    range: AtomicU64,
    /// Current morsel size. Written only by the owning worker (relaxed);
    /// reset to the minimum when a stolen range is installed so fresh loot
    /// stays stealable.
    morsel_size: AtomicU64,
    /// Morsels claimed by the owner from this slot (drives the ×2 growth
    /// schedule).
    morsels: AtomicU64,
}

/// Work-stealing morsel dispenser over `0..total_rows`.
pub struct MorselDispenser {
    slots: Vec<Slot>,
    total: u64,
    min_morsel: u64,
    max_morsel: u64,
    steal_enabled: bool,
    steals: AtomicU64,
    stolen_tuples: AtomicU64,
}

impl MorselDispenser {
    /// Partition `0..total_rows` evenly across `workers` slots.
    ///
    /// Ranges are packed as two `u32`s, so a single pipeline is limited to
    /// `u32::MAX` rows — beyond any scale this repository generates; the
    /// constructor asserts rather than silently corrupting ranges.
    pub fn new(
        total_rows: u64,
        workers: usize,
        min_morsel: u64,
        max_morsel: u64,
        steal: bool,
    ) -> MorselDispenser {
        assert!(workers > 0, "dispenser needs at least one worker");
        assert!(total_rows <= u32::MAX as u64, "pipeline exceeds the u32 morsel-range limit");
        let w = workers as u64;
        let min_morsel = min_morsel.max(1);
        let max_morsel = max_morsel.max(min_morsel);
        let slots = (0..w)
            .map(|i| Slot {
                range: AtomicU64::new(pack(total_rows * i / w, total_rows * (i + 1) / w)),
                morsel_size: AtomicU64::new(min_morsel),
                morsels: AtomicU64::new(0),
            })
            .collect();
        MorselDispenser {
            slots,
            total: total_rows,
            min_morsel,
            max_morsel,
            steal_enabled: steal,
            steals: AtomicU64::new(0),
            stolen_tuples: AtomicU64::new(0),
        }
    }

    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    pub fn total_rows(&self) -> u64 {
        self.total
    }

    /// Successful steal transitions so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Tuples moved between workers by stealing.
    pub fn stolen_tuples(&self) -> u64 {
        self.stolen_tuples.load(Ordering::Relaxed)
    }

    /// The initial static partition of `worker` (for tests and reports).
    pub fn initial_partition(&self, worker: usize) -> Morsel {
        let w = self.slots.len() as u64;
        let i = worker as u64;
        Morsel { begin: self.total * i / w, end: self.total * (i + 1) / w }
    }

    /// Rows not yet claimed by any worker (racy snapshot).
    pub fn remaining(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                let (b, e) = unpack(s.range.load(Ordering::Acquire));
                e.saturating_sub(b)
            })
            .sum()
    }

    /// Claim the next morsel for `worker`: from the front of its own range,
    /// or — once that runs dry and stealing is enabled — from the upper
    /// half of the fullest other range. Returns `None` only when no rows
    /// remain anywhere this worker is allowed to draw from.
    pub fn claim(&self, worker: usize) -> Option<Morsel> {
        loop {
            if let Some(m) = self.claim_front(worker) {
                return Some(m);
            }
            if !self.steal_enabled || !self.try_steal(worker) {
                return None;
            }
        }
    }

    /// CAS a morsel off the front of `worker`'s own range and advance the
    /// growth schedule (×2 every power-of-two morsel count, capped).
    fn claim_front(&self, worker: usize) -> Option<Morsel> {
        let slot = &self.slots[worker];
        loop {
            let cur = slot.range.load(Ordering::Acquire);
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            let want = slot.morsel_size.load(Ordering::Relaxed);
            let take = want.min(end - start);
            if slot
                .range
                .compare_exchange(cur, pack(start + take, end), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let n = slot.morsels.fetch_add(1, Ordering::Relaxed) + 1;
                if n.is_power_of_two() && want < self.max_morsel {
                    slot.morsel_size.store((want * 2).min(self.max_morsel), Ordering::Relaxed);
                }
                return Some(Morsel { begin: start, end: start + take });
            }
            // A thief shrank our range between load and CAS; retry.
        }
    }

    /// Steal the upper half of the fullest other range and install it as
    /// `worker`'s new range. Returns whether any rows were acquired.
    ///
    /// Installing into our own (empty) slot with a plain store is safe: a
    /// concurrent thief CASes against the value it *observed*, and an
    /// observed-empty slot is never chosen as a victim, so the store
    /// cannot be clobbered by a stale transition on the empty value. A
    /// range *can* bit-recur in a slot (e.g. a whole single-row range is
    /// stolen away and later stolen back), but that ABA is benign: every
    /// transition here is a pure function of the observed packed value —
    /// claim takes the same front morsel, steal takes the same upper half
    /// — so a CAS that succeeds against a recurred value performs exactly
    /// the transition that is valid for the range now in the slot.
    fn try_steal(&self, worker: usize) -> bool {
        loop {
            // Pick the victim with the most remaining work.
            let mut best: Option<(usize, u64, u64, u64)> = None; // (victim, cur, start, end)
            let mut best_rem = 0u64;
            for (v, slot) in self.slots.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let cur = slot.range.load(Ordering::Acquire);
                let (s, e) = unpack(cur);
                let rem = e.saturating_sub(s);
                if rem > best_rem {
                    best_rem = rem;
                    best = Some((v, cur, s, e));
                }
            }
            let Some((victim, cur, s, e)) = best else {
                return false;
            };
            let rem = e - s;
            let take = rem.div_ceil(2);
            if self.slots[victim]
                .range
                .compare_exchange(cur, pack(s, e - take), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.slots[worker].range.store(pack(e - take, e), Ordering::Release);
                self.slots[worker].morsel_size.store(self.min_morsel, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.stolen_tuples.fetch_add(take, Ordering::Relaxed);
                return true;
            }
            // Victim's range moved under us; rescan.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(d: &MorselDispenser, worker: usize) -> Vec<Morsel> {
        let mut out = Vec::new();
        while let Some(m) = d.claim(worker) {
            out.push(m);
        }
        out
    }

    fn assert_exact_coverage(mut ms: Vec<Morsel>, total: u64) {
        ms.sort_by_key(|m| m.begin);
        let mut at = 0;
        for m in &ms {
            assert_eq!(m.begin, at, "gap or overlap at {at} in {ms:?}");
            assert!(m.end > m.begin);
            at = m.end;
        }
        assert_eq!(at, total);
    }

    #[test]
    fn single_worker_drains_in_order_with_growth() {
        let d = MorselDispenser::new(10_000, 1, 16, 256, true);
        let ms = drain_all(&d, 0);
        assert_eq!(ms[0].tuples(), 16);
        assert!(ms.iter().any(|m| m.tuples() == 256), "morsel size must grow to the cap");
        assert_exact_coverage(ms, 10_000);
        assert_eq!(d.steals(), 0);
    }

    #[test]
    fn idle_worker_steals_the_tail() {
        let d = MorselDispenser::new(1_000, 2, 8, 8, true);
        // Worker 1 never touches its own partition; worker 0 drains its own
        // half, then steals from worker 1 until everything is done.
        let ms = drain_all(&d, 0);
        assert_exact_coverage(ms, 1_000);
        assert!(d.steals() >= 1);
        assert!(d.stolen_tuples() > 0);
        assert!(d.claim(1).is_none());
    }

    #[test]
    fn steal_disabled_leaves_foreign_partitions_alone() {
        let d = MorselDispenser::new(1_000, 2, 64, 64, false);
        let ms = drain_all(&d, 0);
        let own = d.initial_partition(0);
        assert_exact_coverage(ms, own.end);
        assert_eq!(d.remaining(), 1_000 - own.end);
        assert_eq!(d.steals(), 0);
    }

    #[test]
    fn more_workers_than_rows() {
        let d = MorselDispenser::new(3, 8, 1024, 4096, true);
        let mut all = Vec::new();
        for w in 0..8 {
            all.extend(drain_all(&d, w));
        }
        assert_exact_coverage(all, 3);
    }

    #[test]
    fn empty_pipeline_yields_nothing() {
        let d = MorselDispenser::new(0, 4, 1024, 4096, true);
        for w in 0..4 {
            assert!(d.claim(w).is_none());
        }
    }

    #[test]
    fn steal_takes_upper_half_lifo() {
        let d = MorselDispenser::new(100, 2, 1, 1, true);
        // Partition: worker 0 owns 0..50, worker 1 owns 50..100.
        // Drain worker 0's own range only (claim_front), then one steal.
        for _ in 0..50 {
            d.claim_front(0).unwrap();
        }
        assert!(d.try_steal(0));
        // The thief took the *upper* half of 50..100.
        let m = d.claim_front(0).unwrap();
        assert_eq!(m.begin, 75);
        // The victim still owns its lower half.
        let v = d.claim_front(1).unwrap();
        assert_eq!(v.begin, 50);
    }
}
