//! The adaptive controller: Fig. 7 as a first-class type.
//!
//! PR 1 ran the whole decision — rate sampling, extrapolation, compile
//! claim, trace emission — as an inline block in the worker loop, and
//! detached its background-compile threads (`std::thread::spawn` handles
//! were dropped: a compile finishing after the pipeline ended could push a
//! trace event after `compile_events` was drained, and its work was
//! silently wasted). [`AdaptiveController`] owns all of it: workers call
//! [`maybe_decide`] after each morsel, the controller polls on a cadence,
//! extrapolates from the lock-free progress window, claims the (single)
//! compilation slot, spawns the compile on a *tracked* thread, and
//! [`finalize`] joins every in-flight compile before the pipeline's
//! results are read — no leaks, no lost trace events, and measured compile
//! times plus observed post-switch rates flow into the per-query
//! [`CostCalibrator`].
//!
//! [`maybe_decide`]: AdaptiveController::maybe_decide
//! [`finalize`]: AdaptiveController::finalize

use crate::cancel::CancelToken;
use crate::exec::{FunctionHandle, RetainedSlot, TraceEvent};
use crate::sched::calibrate::{CostCalibrator, CostModel};
use crate::sched::morsel::MorselDispenser;
use crate::sched::progress::PipelineProgress;
use crate::sched::quarantine::PipelineQuarantine;
use crate::simd::{self, ScanKernel, SimdScanBackend};
use aqe_ir::{ExternDecl, Function};
use aqe_jit::compile::{compile, OptLevel};
use aqe_vm::backend::ExecMode;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The execution level a pipeline is currently running at, derived from
/// the hot-swap handle's rank. This is the *typed* form of what PR 1
/// passed to the extrapolation as a misleading `unopt_available: bool`
/// (which actually meant "already at unoptimized rank or above").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ExecLevel {
    /// Bytecode or naive-IR interpretation (speedup factor 1).
    Interpreted,
    Unoptimized,
    Optimized,
    /// Real machine code (`aqe_jit::native`, rank 4).
    Native,
    /// Native code behind a vectorized scan-kernel pre-pass (rank 5).
    Simd,
}

impl ExecLevel {
    /// Classify a backend rank (see `ExecMode::rank`).
    pub fn from_rank(rank: u8) -> ExecLevel {
        if rank >= ExecMode::Simd.rank() {
            ExecLevel::Simd
        } else if rank >= ExecMode::Native.rank() {
            ExecLevel::Native
        } else if rank >= ExecMode::Optimized.rank() {
            ExecLevel::Optimized
        } else if rank >= ExecMode::Unoptimized.rank() {
            ExecLevel::Unoptimized
        } else {
            ExecLevel::Interpreted
        }
    }

    /// Modelled speedup over bytecode at this level.
    pub fn speedup(self, model: &CostModel) -> f64 {
        model.speedup(self)
    }

    /// The levels a compilation can target, in rank order.
    pub const COMPILED: [ExecLevel; 4] =
        [ExecLevel::Unoptimized, ExecLevel::Optimized, ExecLevel::Native, ExecLevel::Simd];
}

/// Fig. 7's decision outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModeChoice {
    DoNothing,
    Unoptimized,
    Optimized,
    Native,
    Simd,
}

impl ModeChoice {
    fn of(level: ExecLevel) -> ModeChoice {
        match level {
            ExecLevel::Interpreted => ModeChoice::DoNothing,
            ExecLevel::Unoptimized => ModeChoice::Unoptimized,
            ExecLevel::Optimized => ModeChoice::Optimized,
            ExecLevel::Native => ModeChoice::Native,
            ExecLevel::Simd => ModeChoice::Simd,
        }
    }
}

/// `extrapolatePipelineDurations` (Fig. 7, verbatim structure): given the
/// remaining tuples `n`, the number of active workers `w`, the observed
/// current processing rate `r0` (tuples/s per thread), the model, and the
/// level the pipeline is *currently* executing at, pick the cheapest plan.
///
/// A compilation level is only a candidate when it lies strictly above
/// `current` — the hot-swap handle refuses downgrades, so proposing the
/// current level or below would waste the (single) compile slot — and at
/// or below `ceiling`, the highest level this process can actually
/// compile (`Native` only where `aqe_jit::native` has an emitter and
/// `AQE_NATIVE` does not force the fallback).
pub fn extrapolate_pipeline_durations(
    model: &CostModel,
    instrs: usize,
    n: f64,
    w: f64,
    r0: f64,
    current: ExecLevel,
    ceiling: ExecLevel,
) -> ModeChoice {
    if r0 <= 0.0 || n <= 0.0 {
        return ModeChoice::DoNothing;
    }
    let cur_speedup = current.speedup(model);
    let t0 = n / r0 / w;
    let mut best = (t0, ModeChoice::DoNothing);
    for cand in ExecLevel::COMPILED {
        if cand <= current || cand > ceiling {
            continue;
        }
        let r = r0 * (model.speedup(cand) / cur_speedup);
        let c = model.ctime(cand, instrs);
        // While compiling, w-1 workers keep processing at the current rate.
        let t = c + (n - (w - 1.0) * r0 * c).max(0.0) / r / w;
        if t < best.0 && r > r0 {
            best = (t, ModeChoice::of(cand));
        }
    }
    best.1
}

/// Per-pipeline scheduler summary, surfaced in `Report::sched`.
#[derive(Clone, Debug)]
pub struct PipelineSchedReport {
    pub pipeline: usize,
    /// The [`ExecLevel`] the pipeline's first morsel ran at. Cold queries
    /// always start [`Interpreted`](ExecLevel::Interpreted); a warm
    /// prepared-query re-execution starts at the highest level a prior run
    /// reached.
    pub start_level: ExecLevel,
    pub total_rows: u64,
    pub morsels: u64,
    /// Work-stealing transitions between workers.
    pub steals: u64,
    pub stolen_tuples: u64,
    /// Fig. 7 evaluations performed.
    pub decisions: u64,
    pub compiles_started: u64,
    /// Tuples processed per worker — individually observable thanks to the
    /// per-worker partitions (a global cursor could not attribute them).
    pub worker_tuples: Vec<u64>,
    /// Whether this pipeline's controller decided with a model that had
    /// already received feedback from earlier pipelines of the query.
    pub calibrated: bool,
    /// Background compiles that failed (or panicked) and were contained:
    /// the pipeline kept running at its current level and the broken
    /// tier was quarantined.
    pub degraded: u64,
    /// The model the controller decided with.
    pub model: CostModel,
}

/// Everything a pipeline's controller needs that outlives the worker loop
/// (shared query-level channels plus this pipeline's identity).
pub struct ControllerCtx {
    /// The execution's cooperative cancellation token. The controller
    /// checks it at poll cadence — a poisoned query stops *claiming*
    /// compilations — and every tracked background `CompileJob`
    /// re-checks it before compiling, so a cancelled query also stops
    /// paying for compiles that have not started yet. (A compile that
    /// already ran to completion is still published into the retained
    /// slot: it is paid for, valid, and keeps the next execution warm.)
    pub cancel: CancelToken,
    pub pid: usize,
    pub function: Arc<Function>,
    pub externs: Arc<Vec<ExternDecl>>,
    pub handle: Arc<FunctionHandle>,
    /// The prepared query's retained slot for this pipeline, when one
    /// exists: a finished background compile publishes here *in addition
    /// to* the per-run handle, so concurrent executions of the same
    /// prepared query warm-start from it mid-flight instead of waiting
    /// for this run's end-of-query harvest.
    pub retained: Option<Arc<RetainedSlot>>,
    /// The pipeline's vectorized filter pre-pass, when one was extracted
    /// from the plan: its presence is what raises the controller's
    /// ceiling from `Native` to `Simd`, and the background compile wraps
    /// the freshly compiled scalar backend in it.
    pub kernel: Option<Arc<ScanKernel>>,
    pub progress: Arc<PipelineProgress>,
    pub calibrator: Arc<CostCalibrator>,
    pub compile_events: Arc<Mutex<Vec<TraceEvent>>>,
    pub background_compiles: Arc<AtomicUsize>,
    /// Query start (trace timestamps are relative to it).
    pub exec_start: Instant,
    pub total_rows: u64,
    pub threads: usize,
    /// This execution's quarantine view of the pipeline: tiers whose
    /// compiles failed recently are skipped by `decide` (the ladder
    /// degrades one rung instead), and compile outcomes are recorded
    /// back into the engine-shared store.
    pub quarantine: Option<PipelineQuarantine>,
    /// `false` pins the initial backend (static modes): `maybe_decide`
    /// becomes a no-op and only the sched report is produced.
    pub adaptive: bool,
    /// Delay before the first evaluation (paper: 1 ms); later evaluations
    /// poll on the same cadence (floored at 50 µs).
    pub first_eval: Duration,
}

/// A claimed compilation whose post-switch rate is still to be observed.
struct PendingSwitch {
    /// Per-thread rate and level at claim time.
    pre_rate: f64,
    pre_level: ExecLevel,
    level: ExecLevel,
    /// Set by the compile thread once the backend is installed (it resets
    /// the rate window at that moment, so the window measures the new
    /// level only).
    installed: Arc<AtomicBool>,
}

/// One pipeline run's adaptive controller (Fig. 7).
pub struct AdaptiveController {
    ctx: ControllerCtx,
    /// Snapshot of the calibrator's model at pipeline start: decisions
    /// within one pipeline are stable even while feedback accrues.
    model: CostModel,
    calibrated: bool,
    /// Backend level installed when the controller was constructed.
    start_level: ExecLevel,
    /// Highest level this process can compile to (snapshotted once: the
    /// `AQE_NATIVE` gate is not re-read on the per-morsel decision path).
    ceiling: ExecLevel,
    instrs: usize,
    pipeline_start: Instant,
    poll_us: u64,
    next_eval_us: AtomicU64,
    deciding: AtomicBool,
    decisions: AtomicU64,
    compiles_started: AtomicU64,
    pending: Mutex<Option<PendingSwitch>>,
    compile_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Failed/panicked background compiles, contained (see
    /// [`PipelineSchedReport::degraded`]). Shared with the compile jobs.
    degraded: Arc<AtomicU64>,
}

impl AdaptiveController {
    pub fn new(ctx: ControllerCtx) -> AdaptiveController {
        let model = ctx.calibrator.model();
        let calibrated = ctx.calibrator.is_calibrated();
        let start_level = ExecLevel::from_rank(ctx.handle.rank());
        let instrs = ctx.function.instruction_count();
        let first_us = ctx.first_eval.as_micros() as u64;
        let ceiling = if ctx.kernel.is_some() && simd::enabled() {
            ExecLevel::Simd
        } else if aqe_jit::native::enabled() {
            ExecLevel::Native
        } else {
            ExecLevel::Optimized
        };
        AdaptiveController {
            model,
            calibrated,
            start_level,
            ceiling,
            instrs,
            pipeline_start: Instant::now(),
            poll_us: first_us.max(50),
            next_eval_us: AtomicU64::new(first_us),
            deciding: AtomicBool::new(false),
            decisions: AtomicU64::new(0),
            compiles_started: AtomicU64::new(0),
            pending: Mutex::new(None),
            compile_threads: Mutex::new(Vec::new()),
            degraded: Arc::new(AtomicU64::new(0)),
            ctx,
        }
    }

    /// The model this pipeline decides with (calibrated when earlier
    /// pipelines of the query recorded feedback).
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Called by workers after every morsel: cheap cadence check, then at
    /// most one worker at a time runs the Fig. 7 evaluation.
    pub fn maybe_decide(&self) {
        if !self.ctx.adaptive {
            return;
        }
        let now_us = self.pipeline_start.elapsed().as_micros() as u64;
        if now_us < self.next_eval_us.load(Ordering::Relaxed) {
            return;
        }
        if self.deciding.swap(true, Ordering::AcqRel) {
            return;
        }
        self.next_eval_us.store(now_us + self.poll_us, Ordering::Relaxed);
        self.decide();
        self.deciding.store(false, Ordering::Release);
    }

    fn decide(&self) {
        // The controller-cadence cancellation check: a poisoned query
        // must not claim the compile slot or burn a background thread —
        // the workers are about to observe the poison on their next
        // claim anyway.
        if self.ctx.cancel.is_cancelled() {
            return;
        }
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let progress = &self.ctx.progress;
        let (win_tuples, win_secs) = progress.window();
        let w = self.ctx.threads as f64;
        let r0 = if win_secs > 0.0 { win_tuples as f64 / win_secs / w } else { 0.0 };
        let n = self.ctx.total_rows.saturating_sub(progress.total()) as f64;
        // Lock-free poll of the current backend via the cached rank — the
        // decision path never touches the handle's lock.
        let current = ExecLevel::from_rank(self.ctx.handle.rank());
        let choice = extrapolate_pipeline_durations(
            &self.model,
            self.instrs,
            n,
            w,
            r0,
            current,
            self.ceiling,
        );
        let target = match choice {
            ModeChoice::DoNothing => None,
            ModeChoice::Unoptimized if current < ExecLevel::Unoptimized => {
                Some(ExecLevel::Unoptimized)
            }
            ModeChoice::Optimized if current < ExecLevel::Optimized => Some(ExecLevel::Optimized),
            ModeChoice::Native if current < ExecLevel::Native => Some(ExecLevel::Native),
            ModeChoice::Simd if current < ExecLevel::Simd => Some(ExecLevel::Simd),
            _ => None,
        };
        let Some(mut level) = target else { return };
        // Ladder degradation: a tier whose compile failed recently is
        // quarantined — fall to the next-lower rung that is still an
        // upgrade, or do nothing this round (the next execution after
        // the skip budget is spent probes the tier again).
        if let Some(q) = &self.ctx.quarantine {
            while q.blocked(level) {
                level = match level {
                    ExecLevel::Simd => ExecLevel::Native,
                    ExecLevel::Native => ExecLevel::Optimized,
                    ExecLevel::Optimized => ExecLevel::Unoptimized,
                    _ => return,
                };
                if level <= current {
                    return;
                }
            }
        }
        // A concurrent execution of the same prepared query may already
        // have compiled this pipeline at (or above) the target level and
        // published it into the shared retained slot — install that for
        // free instead of burning a background thread on an identical
        // compile. Rate bookkeeping mirrors a compile install: reset the
        // window so the post-switch rate is measured at the new level.
        if let Some(retained) = &self.ctx.retained {
            let needed = match level {
                ExecLevel::Interpreted => ExecMode::Bytecode.rank(),
                ExecLevel::Unoptimized => ExecMode::Unoptimized.rank(),
                ExecLevel::Optimized => ExecMode::Optimized.rank(),
                ExecLevel::Native => ExecMode::Native.rank(),
                ExecLevel::Simd => ExecMode::Simd.rank(),
            };
            if retained.rank() >= needed {
                if let Some(b) = retained.load() {
                    if self.ctx.handle.install(b) {
                        progress.reset_window();
                    }
                    return;
                }
            }
        }
        if !self.ctx.handle.try_begin_compile() {
            return;
        }
        // "the thread compiles the worker function and resets all
        // processing rates" — we hand the compile to a background thread
        // (§III: compilation is single-threaded, the other workers keep
        // going) but keep its JoinHandle: `finalize` joins it, so a
        // compile can never outlive the pipeline's bookkeeping.
        self.compiles_started.fetch_add(1, Ordering::Relaxed);
        let installed = Arc::new(AtomicBool::new(false));
        // An earlier switch may still be awaiting its post-switch rate; the
        // current window rate *is* that rate (the window was reset at its
        // install), so harvest the observation before displacing it.
        let displaced = self.pending.lock().replace(PendingSwitch {
            pre_rate: r0,
            pre_level: current,
            level,
            installed: installed.clone(),
        });
        if let Some(p) = displaced {
            self.record_switch_observation(&p, r0);
        }
        let job = CompileJob {
            cancel: self.ctx.cancel.clone(),
            function: self.ctx.function.clone(),
            externs: self.ctx.externs.clone(),
            handle: self.ctx.handle.clone(),
            retained: self.ctx.retained.clone(),
            kernel: self.ctx.kernel.clone(),
            progress: progress.clone(),
            calibrator: self.ctx.calibrator.clone(),
            events: self.ctx.compile_events.clone(),
            counter: self.ctx.background_compiles.clone(),
            exec_start: self.ctx.exec_start,
            pid: self.ctx.pid,
            instrs: self.instrs,
            level,
            installed,
            quarantine: self.ctx.quarantine.clone(),
            degraded: self.degraded.clone(),
        };
        match std::thread::Builder::new()
            .name(format!("aqe-compile-p{}", self.ctx.pid))
            .spawn(move || job.run())
        {
            Ok(handle) => {
                self.compile_threads.lock().push(handle);
                progress.reset_window();
            }
            Err(_) => {
                // Thread exhaustion is a fault like any other: re-open
                // the claim slot and keep running at the current level.
                self.ctx.handle.cancel_compile();
            }
        }
    }

    /// Feed one observed post-switch rate into the calibrator. The window
    /// ratio measures new-level vs claim-time rate; rebase to "over
    /// bytecode" via the level the pipeline ran at when the compile was
    /// claimed.
    fn record_switch_observation(&self, p: &PendingSwitch, post_rate: f64) {
        if p.installed.load(Ordering::Acquire) && p.pre_rate > 0.0 && post_rate > 0.0 {
            let observed = (post_rate / p.pre_rate) * p.pre_level.speedup(&self.model);
            self.ctx.calibrator.record_speedup(p.level, observed);
        }
    }

    /// End of the pipeline run: join every in-flight compile (their trace
    /// events and calibration feedback land before the report is read),
    /// record the observed post-switch rate, and summarise.
    pub fn finalize(self, dispenser: &MorselDispenser) -> PipelineSchedReport {
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *self.compile_threads.lock());
        for t in threads {
            let _ = t.join();
        }
        if let Some(p) = self.pending.lock().take() {
            let (tuples, secs) = self.ctx.progress.window();
            if tuples > 0 && secs > 1e-6 {
                let post_rate = tuples as f64 / secs / self.ctx.threads as f64;
                self.record_switch_observation(&p, post_rate);
            }
        }
        PipelineSchedReport {
            pipeline: self.ctx.pid,
            start_level: self.start_level,
            total_rows: self.ctx.total_rows,
            morsels: self.ctx.progress.morsels(),
            steals: dispenser.steals(),
            stolen_tuples: dispenser.stolen_tuples(),
            decisions: self.decisions.load(Ordering::Relaxed),
            compiles_started: self.compiles_started.load(Ordering::Relaxed),
            worker_tuples: (0..self.ctx.progress.worker_count())
                .map(|i| self.ctx.progress.worker(i).tuples())
                .collect(),
            calibrated: self.calibrated,
            degraded: self.degraded.load(Ordering::Relaxed),
            model: self.model,
        }
    }
}

/// The body of one tracked background-compile thread.
struct CompileJob {
    /// The owning execution's cancel token (see [`ControllerCtx::cancel`]):
    /// checked once more on the compile thread before any work happens,
    /// closing the race where the query is cancelled between the
    /// controller's claim and the thread actually starting.
    cancel: CancelToken,
    function: Arc<Function>,
    externs: Arc<Vec<ExternDecl>>,
    handle: Arc<FunctionHandle>,
    retained: Option<Arc<RetainedSlot>>,
    kernel: Option<Arc<ScanKernel>>,
    progress: Arc<PipelineProgress>,
    calibrator: Arc<CostCalibrator>,
    events: Arc<Mutex<Vec<TraceEvent>>>,
    counter: Arc<AtomicUsize>,
    exec_start: Instant,
    pid: usize,
    instrs: usize,
    level: ExecLevel,
    installed: Arc<AtomicBool>,
    /// Records compile success/failure into the per-fingerprint
    /// quarantine so later executions skip a broken tier.
    quarantine: Option<PipelineQuarantine>,
    /// Controller-shared count of contained compile failures.
    degraded: Arc<AtomicU64>,
}

impl CompileJob {
    /// Compile to the claimed level. `Native` goes through the machine-code
    /// emitter; the threaded levels through the classic driver. Returns
    /// the backend plus its measured compile wall time.
    fn compile_to_level(
        &self,
    ) -> Result<(Arc<dyn aqe_vm::backend::PipelineBackend>, std::time::Duration), String> {
        match self.level {
            ExecLevel::Interpreted => Err("interpretation is not a compile target".to_string()),
            ExecLevel::Unoptimized | ExecLevel::Optimized => {
                let level = if self.level == ExecLevel::Unoptimized {
                    OptLevel::Unoptimized
                } else {
                    OptLevel::Optimized
                };
                let cf =
                    compile(&self.function, &self.externs, level).map_err(|e| e.to_string())?;
                let t = cf.stats.compile_time;
                Ok((Arc::new(cf), t))
            }
            ExecLevel::Native => {
                let nf = aqe_jit::native::compile_native(&self.function, &self.externs)
                    .map_err(|e| e.to_string())?;
                let t = nf.stats.compile_time;
                Ok((Arc::new(nf), t))
            }
            ExecLevel::Simd => {
                aqe_fault::failpoint("simd_compile")?;
                let kernel =
                    self.kernel.clone().ok_or("simd claimed without a scan kernel".to_string())?;
                // The scalar code under the kernel: native where the
                // emitter works, optimized threaded code otherwise — the
                // kernel only pre-filters, so any scalar backend is a
                // correct inner.
                let (inner, t): (Arc<dyn aqe_vm::backend::PipelineBackend>, Duration) =
                    match aqe_jit::native::compile_native(&self.function, &self.externs) {
                        Ok(nf) => {
                            let t = nf.stats.compile_time;
                            (Arc::new(nf), t)
                        }
                        Err(_) => {
                            let cf = compile(&self.function, &self.externs, OptLevel::Optimized)
                                .map_err(|e| e.to_string())?;
                            let t = cf.stats.compile_time;
                            (Arc::new(cf), t)
                        }
                    };
                Ok((Arc::new(SimdScanBackend::new(inner, kernel)), t))
            }
        }
    }

    fn run(self) {
        // The unified cancel path for compilation: a query cancelled
        // while this thread was being spawned abandons the compile the
        // same way a failed compile does — `cancel_compile` re-opens the
        // handle's claim slot, nothing is published, and the query stops
        // paying for work it will never use.
        if self.cancel.is_cancelled() {
            self.handle.cancel_compile();
            return;
        }
        let t_c0 = self.exec_start.elapsed().as_micros() as u64;
        // The compile runs under `catch_unwind`: a panicking emitter (or
        // an injected `compile_job=panic` fault) is contained on this
        // thread and handled exactly like a failed compile — the claim
        // slot re-opens, the tier is quarantined, the query keeps
        // running at its current level.
        let compiled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            aqe_fault::failpoint("compile_job")?;
            self.compile_to_level()
        }))
        .unwrap_or_else(|_| Err("background compile thread panicked".to_string()));
        match compiled {
            Ok((backend, compile_time)) => {
                let t_c1 = self.exec_start.elapsed().as_micros() as u64;
                self.events.lock().push(TraceEvent {
                    thread: u16::MAX,
                    pipeline: self.pid as u16,
                    kind: 255,
                    start_us: t_c0,
                    end_us: t_c1,
                    tuples: 0,
                });
                // Actual ctime feedback: measured wall time per IR
                // instruction.
                self.calibrator.record_compile(self.level, self.instrs, compile_time);
                // Publish into the handle: all workers switch on their next
                // morsel. Reset the rate window so the post-switch rate is
                // measured at the new level only. The retained slot gets
                // the backend either way — even when this *run* already
                // outranks it, a slower concurrent execution may not.
                if let Some(retained) = &self.retained {
                    retained.install(backend.clone());
                }
                if self.handle.install(backend) {
                    self.counter.fetch_add(1, Ordering::Relaxed);
                    self.installed.store(true, Ordering::Release);
                    self.progress.reset_window();
                }
                // A successful compile clears any quarantine on the tier
                // (this is how a probe recovers it).
                if let Some(q) = &self.quarantine {
                    q.record_success(self.level);
                }
            }
            Err(_) => {
                // Re-open the compile slot: leaving `compiling` set would
                // permanently disable upgrades for this pipeline. The
                // failure degrades, never surfaces: quarantine the tier
                // and count it.
                self.handle.cancel_compile();
                self.degraded.fetch_add(1, Ordering::Relaxed);
                if let Some(q) = &self.quarantine {
                    q.record_failure(self.level);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelKind;

    #[test]
    fn cancelled_compile_job_publishes_nothing_and_reopens_the_slot() {
        use aqe_ir::{FunctionBuilder, Type};
        use aqe_vm::translate::{translate, TranslateOptions};

        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let p = b.param(0);
        b.ret(Some(p.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &[], TranslateOptions::default()).unwrap();
        let handle = Arc::new(FunctionHandle::new(Arc::new(bc)));
        let retained = Arc::new(RetainedSlot::new());
        assert!(handle.try_begin_compile());

        let cancel = CancelToken::new();
        cancel.cancel(CancelKind::Client);
        let job = CompileJob {
            cancel,
            function: Arc::new(f),
            externs: Arc::new(Vec::new()),
            handle: handle.clone(),
            retained: Some(retained.clone()),
            kernel: None,
            progress: Arc::new(PipelineProgress::new(1)),
            calibrator: Arc::new(CostCalibrator::new(CostModel::default())),
            events: Arc::new(Mutex::new(Vec::new())),
            counter: Arc::new(AtomicUsize::new(0)),
            exec_start: Instant::now(),
            pid: 0,
            instrs: 2,
            level: ExecLevel::Optimized,
            installed: Arc::new(AtomicBool::new(false)),
            quarantine: None,
            degraded: Arc::new(AtomicU64::new(0)),
        };
        job.run();
        // Nothing published anywhere — the query stopped paying — and the
        // compile claim is re-opened (same discipline as a failed compile).
        assert_eq!(handle.kind(), ExecMode::Bytecode);
        assert_eq!(retained.rank(), 0, "a cancelled compile must not warm the retained slot");
        assert!(handle.try_begin_compile(), "cancelled job must re-open the compile slot");
    }

    #[test]
    fn exec_level_classifies_ranks() {
        assert_eq!(ExecLevel::from_rank(ExecMode::NaiveIr.rank()), ExecLevel::Interpreted);
        assert_eq!(ExecLevel::from_rank(ExecMode::Bytecode.rank()), ExecLevel::Interpreted);
        assert_eq!(ExecLevel::from_rank(ExecMode::Unoptimized.rank()), ExecLevel::Unoptimized);
        assert_eq!(ExecLevel::from_rank(ExecMode::Optimized.rank()), ExecLevel::Optimized);
        assert_eq!(ExecLevel::from_rank(ExecMode::Native.rank()), ExecLevel::Native);
        assert_eq!(ExecLevel::from_rank(ExecMode::Simd.rank()), ExecLevel::Simd);
        assert!(ExecLevel::Interpreted < ExecLevel::Unoptimized);
        assert!(ExecLevel::Unoptimized < ExecLevel::Optimized);
        assert!(ExecLevel::Optimized < ExecLevel::Native);
        assert!(ExecLevel::Native < ExecLevel::Simd);
    }

    #[test]
    fn extrapolation_prefers_interpretation_for_tiny_work() {
        let m = CostModel::default();
        // 1k remaining tuples at 1M tuples/s: finishes in 1ms — never worth
        // hundreds of µs of compilation.
        let c = extrapolate_pipeline_durations(
            &m,
            5000,
            1e3,
            4.0,
            1e6,
            ExecLevel::Interpreted,
            ExecLevel::Native,
        );
        assert_eq!(c, ModeChoice::DoNothing);
    }

    #[test]
    fn extrapolation_compiles_for_large_work() {
        let m = CostModel::default();
        // 100M tuples at 10M tuples/s/thread: worth compiling.
        let c = extrapolate_pipeline_durations(
            &m,
            5000,
            1e8,
            4.0,
            1e7,
            ExecLevel::Interpreted,
            ExecLevel::Native,
        );
        assert_ne!(c, ModeChoice::DoNothing);
    }

    #[test]
    fn extrapolation_upgrades_from_unopt_to_opt() {
        let m = CostModel::default();
        // Already running unoptimized code; for huge remaining work the
        // optimized mode should still win — and unoptimized must never be
        // re-proposed.
        let c = extrapolate_pipeline_durations(
            &m,
            2000,
            1e9,
            4.0,
            2e7,
            ExecLevel::Unoptimized,
            ExecLevel::Optimized,
        );
        assert_eq!(c, ModeChoice::Optimized);
    }

    #[test]
    fn extrapolation_never_downgrades_from_optimized() {
        let m = CostModel::default();
        let c = extrapolate_pipeline_durations(
            &m,
            2000,
            1e9,
            4.0,
            2e7,
            ExecLevel::Optimized,
            ExecLevel::Optimized,
        );
        assert_eq!(c, ModeChoice::DoNothing);
    }

    #[test]
    fn extrapolation_reaches_native_for_huge_work() {
        let m = CostModel::default();
        // Enormous remaining work: the native tier's higher compile cost
        // amortizes and its higher speedup wins outright.
        let c = extrapolate_pipeline_durations(
            &m,
            2000,
            1e9,
            4.0,
            2e7,
            ExecLevel::Interpreted,
            ExecLevel::Native,
        );
        assert_eq!(c, ModeChoice::Native);
        // From optimized code the only remaining upgrade is native.
        let c = extrapolate_pipeline_durations(
            &m,
            2000,
            1e9,
            4.0,
            5e7,
            ExecLevel::Optimized,
            ExecLevel::Native,
        );
        assert_eq!(c, ModeChoice::Native);
    }

    #[test]
    fn ceiling_caps_the_choice_below_native() {
        let m = CostModel::default();
        let c = extrapolate_pipeline_durations(
            &m,
            2000,
            1e9,
            4.0,
            2e7,
            ExecLevel::Interpreted,
            ExecLevel::Optimized,
        );
        assert_ne!(c, ModeChoice::Native, "the fallback ceiling must exclude native");
        let c = extrapolate_pipeline_durations(
            &m,
            2000,
            1e9,
            4.0,
            2e7,
            ExecLevel::Optimized,
            ExecLevel::Optimized,
        );
        assert_eq!(c, ModeChoice::DoNothing);
    }
}
