//! Query runtime: join hash tables, aggregation hash tables, output and
//! materialisation buffers, and the runtime functions generated code calls
//! (§IV-E: "we can call existing C++ code from both generated machine code
//! and from our VM" — here the "C++ runtime" is this module).
//!
//! Threading model (morsel-driven, §III-A):
//! * join builds append rows to *thread-local* buffers; the pipeline-end
//!   finalize step builds an immutable chained hash table that probes read
//!   lock-free;
//! * aggregations run in *thread-local* tables (no atomics on the hot
//!   accumulate path); the finalize step merges them;
//! * output/materialisation buffers are thread-local and concatenated.
//!
//! Generated code stages a row in the worker context's row buffer, then
//! makes one runtime call — except probes and accumulator updates, which are
//! fully inlined by the code generator.

use crate::plan::{AggFunc, SortKey};
use aqe_vm::interp::ExecError;

/// FNV-1a over 64-bit lanes with a final avalanche; the code generator emits
/// exactly this sequence, so host-built tables and generated probes agree.
#[inline]
pub fn hash_keys(keys: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &k in keys {
        h = (h ^ k).wrapping_mul(0x100_0000_01b3);
    }
    h ^ (h >> 32)
}

pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

// ---------------------------------------------------------------------------
// Join hash table
// ---------------------------------------------------------------------------

/// An immutable chained hash table built once per join (two-phase build).
/// Entry layout in the arena: `[next_addr, key0.., payload0..]`.
pub struct JoinHt {
    pub buckets: Vec<u64>,
    pub entries: Vec<u64>,
    pub mask: u64,
    pub nkeys: usize,
    pub stride: usize,
    pub rows: usize,
}

impl JoinHt {
    /// Build from concatenated thread-local row buffers (each row is
    /// `nkeys + payload` u64s).
    pub fn build(nkeys: usize, payload: usize, thread_rows: &[Vec<u64>]) -> JoinHt {
        let width = nkeys + payload;
        let stride = width + 1; // + next pointer
        let rows: usize =
            if width == 0 { 0 } else { thread_rows.iter().map(|b| b.len() / width).sum() };
        let nbuckets = (rows * 2).next_power_of_two().max(8);
        let mut buckets = vec![0u64; nbuckets];
        let mask = (nbuckets - 1) as u64;
        let mut entries = vec![0u64; rows * stride];
        let base = entries.as_ptr() as u64;
        let mut e = 0usize;
        for buf in thread_rows {
            for row in buf.chunks_exact(width) {
                let addr = base + (e * stride * 8) as u64;
                let h = hash_keys(&row[..nkeys]);
                let b = (h & mask) as usize;
                entries[e * stride] = buckets[b];
                entries[e * stride + 1..e * stride + 1 + width].copy_from_slice(row);
                buckets[b] = addr;
                e += 1;
            }
        }
        JoinHt { buckets, entries, mask, nkeys, stride, rows }
    }

    /// Probe on the host side (used by finalize steps and tests).
    pub fn probe(&self, keys: &[u64]) -> Vec<&[u64]> {
        let mut out = Vec::new();
        if self.buckets.is_empty() {
            return out;
        }
        let h = hash_keys(keys);
        let mut addr = self.buckets[(h & self.mask) as usize];
        while addr != 0 {
            let entry = unsafe { std::slice::from_raw_parts(addr as *const u64, self.stride) };
            if &entry[1..1 + self.nkeys] == keys {
                out.push(&entry[1..]);
            }
            addr = entry[0];
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Aggregation hash table (thread-local)
// ---------------------------------------------------------------------------

/// The raw header generated code reads on every tuple; `rt_agg_insert`
/// updates it on rehash. Field order is load-bearing (codegen offsets).
#[repr(C)]
pub struct AggHeader {
    pub buckets_ptr: u64,
    pub mask: u64,
    /// Pre-created single group for key-less aggregations.
    pub group0: u64,
}

const AGG_CHUNK_ROWS: usize = 1024;

/// A thread-local aggregation table. Entries live in chunked arenas so their
/// addresses stay stable across growth; layout `[next, keys.., accs..]`.
pub struct AggTable {
    pub header: Box<AggHeader>,
    buckets: Vec<u64>,
    chunks: Vec<Vec<u64>>,
    pub nkeys: usize,
    pub naccs: usize,
    pub stride: usize,
    pub count: usize,
    init: Vec<u64>,
}

impl AggTable {
    pub fn new(nkeys: usize, aggs: &[AggFunc]) -> AggTable {
        let naccs = aggs.len();
        let stride = 1 + nkeys + naccs;
        let nbuckets = 64usize;
        let buckets = vec![0u64; nbuckets];
        let mut t = AggTable {
            header: Box::new(AggHeader { buckets_ptr: 0, mask: (nbuckets - 1) as u64, group0: 0 }),
            buckets,
            chunks: vec![Vec::with_capacity(AGG_CHUNK_ROWS * stride)],
            nkeys,
            naccs,
            stride,
            count: 0,
            init: aggs.iter().map(|a| a.init_bits()).collect(),
        };
        t.header.buckets_ptr = t.buckets.as_ptr() as u64;
        if nkeys == 0 {
            let g = t.alloc_entry(&[]);
            t.header.group0 = g;
        }
        t
    }

    fn alloc_entry(&mut self, keys: &[u64]) -> u64 {
        let stride = self.stride;
        if self.chunks.last().unwrap().len() + stride > AGG_CHUNK_ROWS * stride {
            self.chunks.push(Vec::with_capacity(AGG_CHUNK_ROWS * stride));
        }
        let chunk = self.chunks.last_mut().unwrap();
        let at = chunk.len();
        chunk.push(0); // next
        chunk.extend_from_slice(keys);
        chunk.extend_from_slice(&self.init);
        debug_assert_eq!(chunk.len(), at + stride);
        self.count += 1;
        unsafe { chunk.as_ptr().add(at) as u64 }
    }

    /// Insert a new group for `keys` with `hash` and return its entry
    /// address. Called from generated code only after an inline probe
    /// missed.
    pub fn insert(&mut self, keys: &[u64], hash: u64) -> u64 {
        if (self.count + 1) * 10 > self.buckets.len() * 7 {
            self.grow();
        }
        let addr = self.alloc_entry(keys);
        let b = (hash & self.header.mask) as usize;
        unsafe { *(addr as *mut u64) = self.buckets[b] };
        self.buckets[b] = addr;
        addr
    }

    fn grow(&mut self) {
        let nbuckets = self.buckets.len() * 2;
        let mut buckets = vec![0u64; nbuckets];
        let mask = (nbuckets - 1) as u64;
        for chunk in &self.chunks {
            for e in (0..chunk.len()).step_by(self.stride) {
                let addr = unsafe { chunk.as_ptr().add(e) as u64 };
                let keys = &chunk[e + 1..e + 1 + self.nkeys];
                let b = (hash_keys(keys) & mask) as usize;
                unsafe { *(addr as *mut u64) = buckets[b] };
                buckets[b] = addr;
            }
        }
        self.buckets = buckets;
        self.header.buckets_ptr = self.buckets.as_ptr() as u64;
        self.header.mask = mask;
    }

    /// Iterate group rows as `[keys.., accs..]` slices.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        self.chunks.iter().flat_map(move |c| c.chunks_exact(self.stride).map(move |e| &e[1..]))
    }
}

/// Merge thread-local aggregation tables into dense result rows
/// `[keys.., accs..]` (the source of the post-aggregation scan pipeline).
pub fn merge_agg_tables(
    tables: &[AggTable],
    nkeys: usize,
    aggs: &[AggFunc],
) -> Result<Vec<u64>, ExecError> {
    use std::collections::HashMap;
    let width = nkeys + aggs.len();
    let mut merged: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
    for t in tables {
        debug_assert_eq!(t.nkeys, nkeys);
        for row in t.rows() {
            let (keys, accs) = row.split_at(nkeys);
            match merged.get_mut(keys) {
                None => {
                    merged.insert(keys.to_vec(), accs.to_vec());
                }
                Some(m) => {
                    for (i, a) in aggs.iter().enumerate() {
                        m[i] = merge_acc(a, m[i], accs[i])?;
                    }
                }
            }
        }
    }
    // For key-less aggregations an empty input still yields one row (the
    // initial accumulators) — tables pre-create group0, so merged is
    // non-empty already.
    let mut rows = Vec::with_capacity(merged.len() * width);
    for (k, accs) in merged {
        rows.extend_from_slice(&k);
        rows.extend_from_slice(&accs);
    }
    Ok(rows)
}

fn merge_acc(f: &AggFunc, a: u64, b: u64) -> Result<u64, ExecError> {
    Ok(match f {
        AggFunc::SumI | AggFunc::CountStar => {
            (a as i64).checked_add(b as i64).ok_or(ExecError::Overflow)? as u64
        }
        AggFunc::SumF => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        AggFunc::MinI => (a as i64).min(b as i64) as u64,
        AggFunc::MaxI => (a as i64).max(b as i64) as u64,
        AggFunc::MinF => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            (if y < x { y } else { x }).to_bits()
        }
        AggFunc::MaxF => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            (if y > x { y } else { x }).to_bits()
        }
    })
}

// ---------------------------------------------------------------------------
// Sorting & output
// ---------------------------------------------------------------------------

/// Sort dense rows (width u64s each) by the given keys; truncate to `limit`.
pub fn sort_rows(rows: &mut Vec<u64>, width: usize, keys: &[SortKey], limit: Option<usize>) {
    if width == 0 {
        return;
    }
    let mut idx: Vec<usize> = (0..rows.len() / width).collect();
    idx.sort_by(|&x, &y| {
        for k in keys {
            let (a, b) = (rows[x * width + k.field], rows[y * width + k.field]);
            let ord = if k.float {
                f64::from_bits(a).total_cmp(&f64::from_bits(b))
            } else {
                (a as i64).cmp(&(b as i64))
            };
            let ord = if k.asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(l) = limit {
        idx.truncate(l);
    }
    let mut out = Vec::with_capacity(idx.len() * width);
    for i in idx {
        out.extend_from_slice(&rows[i * width..(i + 1) * width]);
    }
    *rows = out;
}

// ---------------------------------------------------------------------------
// Worker context & runtime functions
// ---------------------------------------------------------------------------

/// Minimum number of u64 slots in the staging row buffer (the engine sizes
/// it to the widest row of the plan, with this floor).
pub const ROW_BUF_SLOTS: usize = 48;

/// Raw worker-context slot indices (codegen contract):
/// `[0]` = pointer to the Rust [`WorkerRt`], `[1]` = pointer to the row
/// buffer, `[2 + i]` = pointer to the [`AggHeader`] of aggregation `i`.
pub const WCTX_RT: usize = 0;
pub const WCTX_ROWBUF: usize = 1;
pub const WCTX_AGG_BASE: usize = 2;

/// Per-thread runtime state addressed from generated code.
pub struct WorkerRt {
    pub join_bufs: Vec<Vec<u64>>,
    pub agg_tables: Vec<AggTable>,
    pub mat_bufs: Vec<Vec<u64>>,
    pub out_buf: Vec<u64>,
    pub row_buf: Vec<u64>,
    /// Raw slot array handed to generated code as the `wctx` parameter.
    pub raw: Vec<u64>,
}

impl WorkerRt {
    pub fn new(njoins: usize, agg_shapes: &[(usize, Vec<AggFunc>)], nmats: usize) -> Box<WorkerRt> {
        Self::with_row_buf(njoins, agg_shapes, nmats, ROW_BUF_SLOTS)
    }

    pub fn with_row_buf(
        njoins: usize,
        agg_shapes: &[(usize, Vec<AggFunc>)],
        nmats: usize,
        row_buf_slots: usize,
    ) -> Box<WorkerRt> {
        let mut w = Box::new(WorkerRt {
            join_bufs: vec![Vec::new(); njoins],
            agg_tables: agg_shapes.iter().map(|(nk, a)| AggTable::new(*nk, a)).collect(),
            mat_bufs: vec![Vec::new(); nmats],
            out_buf: Vec::new(),
            row_buf: vec![0; row_buf_slots.max(ROW_BUF_SLOTS)],
            raw: Vec::new(),
        });
        let mut raw = vec![0u64; WCTX_AGG_BASE + agg_shapes.len()];
        raw[WCTX_RT] = &*w as *const WorkerRt as u64;
        raw[WCTX_ROWBUF] = w.row_buf.as_ptr() as u64;
        for (i, t) in w.agg_tables.iter().enumerate() {
            raw[WCTX_AGG_BASE + i] = &*t.header as *const AggHeader as u64;
        }
        w.raw = raw;
        w
    }

    pub fn wctx_ptr(&mut self) -> u64 {
        self.raw.as_ptr() as u64
    }
}

#[inline]
unsafe fn worker_of(args: *const u64) -> &'static mut WorkerRt {
    unsafe {
        let wctx = *args as *const u64;
        &mut *(*wctx.add(WCTX_RT) as *mut WorkerRt)
    }
}

/// `rt_join_append(wctx, ht_idx, nfields)`: append the staged row to the
/// thread-local build buffer of join `ht_idx`.
///
/// # Safety
/// Part of the generated-code runtime ABI (`codegen::runtime_fns`):
/// `args` must point at the argument slots the translator staged for this
/// call (first slot a valid worker-context pointer) and `ret` at a writable
/// return slot — guarantees the validated bytecode upholds.
pub unsafe fn rt_join_append(args: *const u64, _ret: *mut u64) {
    unsafe {
        let w = worker_of(args);
        let ht = *args.add(1) as usize;
        let n = *args.add(2) as usize;
        let row = &w.row_buf[..n];
        w.join_bufs[ht].extend_from_slice(row);
    }
}

/// `rt_agg_insert(wctx, agg_idx, hash) -> entry_ptr`: insert a new group
/// with the staged keys.
///
/// # Safety
/// Part of the generated-code runtime ABI (`codegen::runtime_fns`):
/// `args` must point at the argument slots the translator staged for this
/// call (first slot a valid worker-context pointer) and `ret` at a writable
/// return slot — guarantees the validated bytecode upholds.
pub unsafe fn rt_agg_insert(args: *const u64, ret: *mut u64) {
    unsafe {
        let w = worker_of(args);
        let agg = *args.add(1) as usize;
        let hash = *args.add(2);
        let nkeys = w.agg_tables[agg].nkeys;
        let keys: Vec<u64> = w.row_buf[..nkeys].to_vec();
        let addr = w.agg_tables[agg].insert(&keys, hash);
        *ret = addr;
    }
}

/// `rt_mat_append(wctx, mat_idx, nfields)`.
///
/// # Safety
/// Part of the generated-code runtime ABI (`codegen::runtime_fns`):
/// `args` must point at the argument slots the translator staged for this
/// call (first slot a valid worker-context pointer) and `ret` at a writable
/// return slot — guarantees the validated bytecode upholds.
pub unsafe fn rt_mat_append(args: *const u64, _ret: *mut u64) {
    unsafe {
        let w = worker_of(args);
        let mat = *args.add(1) as usize;
        let n = *args.add(2) as usize;
        let row = &w.row_buf[..n];
        w.mat_bufs[mat].extend_from_slice(row);
    }
}

/// `rt_emit(wctx, nfields)`.
///
/// # Safety
/// Part of the generated-code runtime ABI (`codegen::runtime_fns`):
/// `args` must point at the argument slots the translator staged for this
/// call (first slot a valid worker-context pointer) and `ret` at a writable
/// return slot — guarantees the validated bytecode upholds.
pub unsafe fn rt_emit(args: *const u64, _ret: *mut u64) {
    unsafe {
        let w = worker_of(args);
        let n = *args.add(1) as usize;
        let row = &w.row_buf[..n];
        w.out_buf.extend_from_slice(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_ht_build_and_probe() {
        // rows: key, payload
        let t0 = vec![1u64, 100, 2, 200, 1, 101];
        let t1 = vec![3u64, 300];
        let ht = JoinHt::build(1, 1, &[t0, t1]);
        assert_eq!(ht.rows, 4);
        let m1 = ht.probe(&[1]);
        assert_eq!(m1.len(), 2);
        let payloads: Vec<u64> = m1.iter().map(|e| e[1]).collect();
        assert!(payloads.contains(&100) && payloads.contains(&101));
        assert_eq!(ht.probe(&[3]).len(), 1);
        assert!(ht.probe(&[99]).is_empty());
    }

    #[test]
    fn join_ht_multi_key() {
        let rows = vec![1u64, 2, 77, 1, 3, 88];
        let ht = JoinHt::build(2, 1, &[rows]);
        assert_eq!(ht.probe(&[1, 2])[0][2], 77);
        assert!(ht.probe(&[2, 1]).is_empty(), "key order matters");
    }

    #[test]
    fn agg_table_groups_and_grows() {
        let aggs = [AggFunc::SumI, AggFunc::CountStar];
        let mut t = AggTable::new(1, &aggs);
        // Insert 1000 distinct groups to force several rehashes.
        for k in 0..1000u64 {
            let h = hash_keys(&[k]);
            let addr = t.insert(&[k], h);
            unsafe {
                *(addr as *mut u64).add(2) = k * 2; // sum
                *(addr as *mut u64).add(3) = 1; // count
            }
        }
        assert_eq!(t.count, 1000);
        let rows = merge_agg_tables(&[t], 1, &aggs).unwrap();
        assert_eq!(rows.len(), 1000 * 3);
        // find group 7
        let g7 = rows.chunks_exact(3).find(|r| r[0] == 7).unwrap();
        assert_eq!(g7[1], 14);
        assert_eq!(g7[2], 1);
    }

    #[test]
    fn keyless_agg_has_group0() {
        let aggs = [AggFunc::SumI];
        let t = AggTable::new(0, &aggs);
        assert_ne!(t.header.group0, 0);
        let rows = merge_agg_tables(&[t], 0, &aggs).unwrap();
        assert_eq!(rows, vec![0]);
    }

    #[test]
    fn merge_combines_thread_tables() {
        let aggs = [AggFunc::SumI, AggFunc::MinI, AggFunc::MaxF];
        let mk = |k: u64, s: i64, mn: i64, mx: f64| {
            let mut t = AggTable::new(1, &aggs);
            let addr = t.insert(&[k], hash_keys(&[k]));
            unsafe {
                *(addr as *mut u64).add(2) = s as u64;
                *(addr as *mut u64).add(3) = mn as u64;
                *(addr as *mut u64).add(4) = mx.to_bits();
            }
            t
        };
        let rows = merge_agg_tables(&[mk(5, 10, -3, 1.5), mk(5, 32, 7, 9.5)], 1, &aggs).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], 5);
        assert_eq!(rows[1] as i64, 42);
        assert_eq!(rows[2] as i64, -3);
        assert_eq!(f64::from_bits(rows[3]), 9.5);
    }

    #[test]
    fn merge_detects_sum_overflow() {
        let aggs = [AggFunc::SumI];
        let mk = |s: i64| {
            let mut t = AggTable::new(1, &aggs);
            let addr = t.insert(&[1], hash_keys(&[1]));
            unsafe { *(addr as *mut u64).add(2) = s as u64 };
            t
        };
        let r = merge_agg_tables(&[mk(i64::MAX), mk(1)], 1, &aggs);
        assert_eq!(r.unwrap_err(), ExecError::Overflow);
    }

    #[test]
    fn sort_rows_multi_key() {
        // (a, b): sort a asc, b desc
        let mut rows = vec![2u64, 10, 1, 20, 2, 30, 1, 5];
        sort_rows(
            &mut rows,
            2,
            &[
                SortKey { field: 0, asc: true, float: false },
                SortKey { field: 1, asc: false, float: false },
            ],
            None,
        );
        assert_eq!(rows, vec![1, 20, 1, 5, 2, 30, 2, 10]);
    }

    #[test]
    fn sort_rows_float_desc_with_limit() {
        let mut rows: Vec<u64> = [3.5f64, 1.5, 9.0, -2.0].iter().map(|f| f.to_bits()).collect();
        sort_rows(&mut rows, 1, &[SortKey { field: 0, asc: false, float: true }], Some(2));
        let vals: Vec<f64> = rows.iter().map(|&b| f64::from_bits(b)).collect();
        assert_eq!(vals, vec![9.0, 3.5]);
    }

    #[test]
    fn worker_rt_layout() {
        let mut w = WorkerRt::new(2, &[(1, vec![AggFunc::SumI])], 1);
        let ptr = w.wctx_ptr() as *const u64;
        unsafe {
            assert_eq!(*ptr.add(WCTX_RT), &*w as *const WorkerRt as u64);
            assert_eq!(*ptr.add(WCTX_ROWBUF), w.row_buf.as_ptr() as u64);
            assert_ne!(*ptr.add(WCTX_AGG_BASE), 0);
        }
    }

    #[test]
    fn rt_calls_append_rows() {
        let mut w = WorkerRt::new(1, &[], 0);
        w.row_buf[0] = 11;
        w.row_buf[1] = 22;
        let args = [w.wctx_ptr(), 0, 2];
        unsafe { rt_join_append(args.as_ptr(), std::ptr::null_mut()) };
        assert_eq!(w.join_bufs[0], vec![11, 22]);

        w.row_buf[0] = 77;
        let args = [w.wctx_ptr(), 1];
        unsafe { rt_emit(args.as_ptr(), std::ptr::null_mut()) };
        assert_eq!(w.out_buf, vec![77]);
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        assert_eq!(hash_keys(&[1, 2]), hash_keys(&[1, 2]));
        assert_ne!(hash_keys(&[1, 2]), hash_keys(&[2, 1]));
        // a crude spread check over sequential keys
        let mut buckets = [0u32; 16];
        for k in 0..16000u64 {
            buckets[(hash_keys(&[k]) & 15) as usize] += 1;
        }
        for b in buckets {
            assert!((500..=1500).contains(&b), "skewed bucket: {b}");
        }
    }
}
