//! # aqe-queries — the evaluation query corpus
//!
//! * [`tpch`] — hand-planned implementations of all 22 TPC-H queries
//!   (decorrelated where the original uses subqueries; per-query deviations
//!   are documented on each builder);
//! * [`tpcds`] — eight TPC-DS-style star-schema queries (the second series
//!   of the paper's Fig. 6);
//! * [`synthetic`] — the machine-generated wide-aggregate queries of §V-E
//!   (Fig. 15): a single table scan with 10…1900 aggregate expressions;
//! * [`meta`] — pgAdmin-style catalog queries (the paper's introduction);
//! * [`handwritten`] — the hand-written Q1 of Fig. 2 (no overflow checks).

pub mod handwritten;
pub mod meta;
pub mod synthetic;
pub mod tpcds;
pub mod tpch;

use aqe_engine::plan::{DictTable, PlanNode};

/// A named query: its plan tree plus any plan-time dictionary tables.
pub struct Query {
    pub name: String,
    pub root: PlanNode,
    pub dicts: Vec<DictTable>,
}
