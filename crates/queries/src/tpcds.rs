//! TPC-DS-style star-schema queries (the second series of Fig. 6).

use crate::Query;
use aqe_engine::plan::{AggFunc, AggSpec, ArithOp, CmpOp, JoinKind, PExpr, PlanNode, SortKey};
use aqe_storage::Catalog;

fn c(i: usize) -> PExpr {
    PExpr::Col(i)
}
fn ci(v: i64) -> PExpr {
    PExpr::ConstI(v)
}
fn scan(t: &str, cols: &[usize], f: Option<PExpr>) -> PlanNode {
    PlanNode::Scan { table: t.into(), cols: cols.to_vec(), filter: f }
}
fn eq(a: PExpr, b: PExpr) -> PExpr {
    PExpr::cmp(CmpOp::Eq, false, a, b)
}
fn join(b: PlanNode, p: PlanNode, bk: &[usize], pk: &[usize], pay: &[usize]) -> PlanNode {
    PlanNode::HashJoin {
        build: Box::new(b),
        probe: Box::new(p),
        build_keys: bk.to_vec(),
        probe_keys: pk.to_vec(),
        build_payload: pay.to_vec(),
        kind: JoinKind::Inner,
    }
}
fn agg(i: PlanNode, g: &[usize], a: Vec<AggSpec>) -> PlanNode {
    PlanNode::HashAgg { input: Box::new(i), group_by: g.to_vec(), aggs: a }
}
fn sum_i(e: PExpr) -> AggSpec {
    AggSpec { func: AggFunc::SumI, arg: Some(e) }
}
fn cnt() -> AggSpec {
    AggSpec { func: AggFunc::CountStar, arg: None }
}
fn sort(i: PlanNode, keys: &[(usize, bool)], limit: Option<usize>) -> PlanNode {
    PlanNode::Sort {
        input: Box::new(i),
        keys: keys.iter().map(|&(f, asc)| SortKey { field: f, asc, float: false }).collect(),
        limit,
    }
}
fn mul(a: PExpr, b: PExpr) -> PExpr {
    PExpr::arith(ArithOp::Mul, true, false, a, b)
}

/// d55-style: brand revenue for one month.
pub fn d1(_cat: &Catalog) -> Query {
    let dd = scan("date_dim", &[0, 1, 2], Some(PExpr::and(eq(c(1), ci(1999)), eq(c(2), ci(11)))));
    let ss = scan("store_sales", &[0, 1, 5], None);
    let j = join(dd, ss, &[0], &[0], &[]);
    let item = scan("item", &[0, 1], None);
    let j = join(item, j, &[0], &[1], &[1]);
    let a = agg(j, &[3], vec![sum_i(c(2))]);
    Query { name: "d1".into(), root: sort(a, &[(1, false), (0, true)], Some(100)), dicts: vec![] }
}

/// Category revenue by year.
pub fn d2(_cat: &Catalog) -> Query {
    let dd = scan("date_dim", &[0, 1], None);
    let ss = scan("store_sales", &[0, 1, 5], None);
    let j = join(dd, ss, &[0], &[0], &[1]);
    let item = scan("item", &[0, 3], None);
    let j = join(item, j, &[0], &[1], &[1]);
    let a = agg(j, &[3, 4], vec![sum_i(c(2)), cnt()]);
    Query { name: "d2".into(), root: sort(a, &[(0, true), (1, true)], None), dicts: vec![] }
}

/// Store revenue by state.
pub fn d3(_cat: &Catalog) -> Query {
    let st = scan("store", &[0, 2], None);
    let ss = scan("store_sales", &[3, 5, 4], None);
    let j = join(st, ss, &[0], &[0], &[1]);
    let rev = mul(c(1), PExpr::IToF(Box::new(c(2))));
    let _ = rev;
    let a = agg(j, &[3], vec![sum_i(c(1)), cnt()]);
    Query { name: "d3".into(), root: sort(a, &[(1, false)], None), dicts: vec![] }
}

/// Age-band revenue (CASE buckets).
pub fn d4(_cat: &Catalog) -> Query {
    let cu = scan("customer_ds", &[0, 1], None);
    let ss = scan("store_sales", &[2, 5], None);
    let j = join(cu, ss, &[0], &[0], &[1]);
    let band = PExpr::Case {
        cond: Box::new(PExpr::cmp(CmpOp::Lt, false, c(2), ci(1960))),
        t: Box::new(ci(0)),
        f: Box::new(PExpr::Case {
            cond: Box::new(PExpr::cmp(CmpOp::Lt, false, c(2), ci(1980))),
            t: Box::new(ci(1)),
            f: Box::new(ci(2)),
            float: false,
        }),
        float: false,
    };
    let p = PlanNode::Project { input: Box::new(j), exprs: vec![band, c(1)] };
    let a = agg(p, &[0], vec![sum_i(c(1)), cnt()]);
    Query { name: "d4".into(), root: sort(a, &[(0, true)], None), dicts: vec![] }
}

/// Average price per category (sum/count post-projection).
pub fn d5(_cat: &Catalog) -> Query {
    let item = scan("item", &[0, 3], None);
    let ss = scan("store_sales", &[1, 5], None);
    let j = join(item, ss, &[0], &[0], &[1]);
    let a = agg(j, &[2], vec![sum_i(c(1)), cnt()]);
    let p = PlanNode::Project {
        input: Box::new(a),
        exprs: vec![c(0), PExpr::arith(ArithOp::Div, false, false, c(1), c(2))],
    };
    Query { name: "d5".into(), root: sort(p, &[(1, false)], None), dicts: vec![] }
}

/// Sales count by store and month.
pub fn d6(_cat: &Catalog) -> Query {
    let dd = scan("date_dim", &[0, 2], None);
    let ss = scan("store_sales", &[0, 3], None);
    let j = join(dd, ss, &[0], &[0], &[1]);
    let a = agg(j, &[1, 2], vec![cnt()]);
    Query { name: "d6".into(), root: sort(a, &[(0, true), (1, true)], None), dicts: vec![] }
}

/// Top items by revenue.
pub fn d7(_cat: &Catalog) -> Query {
    let ss = scan("store_sales", &[1, 5, 6], None);
    let rev = mul(c(1), PExpr::arith(ArithOp::Sub, true, false, ci(100), c(2)));
    let a = agg(ss, &[0], vec![sum_i(rev)]);
    Query { name: "d7".into(), root: sort(a, &[(1, false)], Some(25)), dicts: vec![] }
}

/// Discount effect by brand.
pub fn d8(_cat: &Catalog) -> Query {
    let item = scan("item", &[0, 1], None);
    let ss = scan("store_sales", &[1, 5, 6], None);
    let j = join(item, ss, &[0], &[0], &[1]);
    let disc_amt = PExpr::arith(ArithOp::Div, false, false, mul(c(1), c(2)), ci(100));
    let a = agg(j, &[3], vec![sum_i(disc_amt), sum_i(c(1))]);
    Query { name: "d8".into(), root: sort(a, &[(0, true)], None), dicts: vec![] }
}

/// All DS-style queries.
pub fn all(cat: &Catalog) -> Vec<Query> {
    vec![d1(cat), d2(cat), d3(cat), d4(cat), d5(cat), d6(cat), d7(cat), d8(cat)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::plan::decompose;

    #[test]
    fn all_ds_queries_compile() {
        let cat = aqe_storage::tpcds::generate(0.01);
        for query in all(&cat) {
            let phys = decompose(&cat, &query.root, query.dicts.clone());
            let module = aqe_engine::codegen::generate(&phys, &cat);
            aqe_ir::verify::verify_module(&module)
                .unwrap_or_else(|e| panic!("{}: {e}", query.name));
        }
    }
}
