//! pgAdmin-style metadata queries (the paper's introduction): complex plans
//! over tiny catalog tables, where compilation time dwarfs execution time by
//! 50× and interpretation wins outright.

use crate::Query;
use aqe_engine::plan::{AggFunc, AggSpec, CmpOp, JoinKind, PExpr, PlanNode, SortKey};

fn c(i: usize) -> PExpr {
    PExpr::Col(i)
}
fn scan(t: &str, cols: &[usize], f: Option<PExpr>) -> PlanNode {
    PlanNode::Scan { table: t.into(), cols: cols.to_vec(), filter: f }
}
fn join(b: PlanNode, p: PlanNode, bk: &[usize], pk: &[usize], pay: &[usize]) -> PlanNode {
    PlanNode::HashJoin {
        build: Box::new(b),
        probe: Box::new(p),
        build_keys: bk.to_vec(),
        probe_keys: pk.to_vec(),
        build_payload: pay.to_vec(),
        kind: JoinKind::Inner,
    }
}

/// The paper's example query:
/// `SELECT c.oid, c.relname, n.nspname FROM pg_inherits i JOIN pg_class c ON
/// c.oid = i.inhparent JOIN pg_namespace n ON n.oid = c.relnamespace WHERE
/// i.inhrelid = 16490 ORDER BY inhseqno` (the constant adapted to generated
/// oids).
pub fn inherits_lookup(relid: i64) -> Query {
    let inh = scan(
        "pg_inherits",
        &[0, 1, 2],
        Some(PExpr::cmp(CmpOp::Eq, false, c(0), PExpr::ConstI(relid))),
    );
    let cls = scan("pg_class", &[0, 1, 2], None);
    let j = join(inh, cls, &[1], &[0], &[2]);
    // fields: oid, relname, relnamespace, inhseqno
    let ns = scan("pg_namespace", &[0, 1], None);
    let j = join(ns, j, &[0], &[2], &[1]);
    Query {
        name: "pg_inherits_lookup".into(),
        root: PlanNode::Sort {
            input: Box::new(j),
            keys: vec![SortKey { field: 3, asc: true, float: false }],
            limit: None,
        },
        dicts: vec![],
    }
}

/// Attribute counts per namespace — a wider catalog join.
pub fn attribute_summary() -> Query {
    let cls = scan("pg_class", &[0, 2, 4], None);
    let att = scan("pg_attribute", &[0, 2], None);
    let j = join(cls, att, &[0], &[0], &[1]);
    let ns = scan("pg_namespace", &[0], None);
    let j = join(ns, j, &[0], &[2], &[]);
    let a = PlanNode::HashAgg {
        input: Box::new(j),
        group_by: vec![2],
        aggs: vec![
            AggSpec { func: AggFunc::CountStar, arg: None },
            AggSpec { func: AggFunc::MaxI, arg: Some(c(1)) },
        ],
    };
    Query {
        name: "pg_attribute_summary".into(),
        root: PlanNode::Sort {
            input: Box::new(a),
            keys: vec![SortKey { field: 0, asc: true, float: false }],
            limit: None,
        },
        dicts: vec![],
    }
}

/// A deliberately join-heavy catalog query (pgAdmin sends "up to 22 joins";
/// this chains `n` self-joins of pg_class through pg_namespace).
pub fn wide_catalog_join(n: usize) -> Query {
    let mut plan = scan("pg_class", &[0, 2], None);
    for _ in 0..n {
        let ns = scan("pg_namespace", &[0], None);
        plan = join(ns, plan, &[0], &[1], &[0]);
        // re-project to (oid, relnamespace)
        plan = PlanNode::Project { input: Box::new(plan), exprs: vec![c(0), c(2)] };
    }
    let a = PlanNode::HashAgg {
        input: Box::new(plan),
        group_by: vec![],
        aggs: vec![AggSpec { func: AggFunc::CountStar, arg: None }],
    };
    Query { name: format!("pg_wide_join_{n}"), root: a, dicts: vec![] }
}

/// The pgAdmin startup batch.
pub fn startup_batch() -> Vec<Query> {
    let mut v = vec![
        inherits_lookup(3),
        inherits_lookup(13),
        attribute_summary(),
        wide_catalog_join(4),
        wide_catalog_join(8),
        wide_catalog_join(16),
    ];
    for k in 0..6 {
        v.push(inherits_lookup(23 + 10 * k));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::exec::{ExecMode, ExecOptions};
    use aqe_engine::session::Engine;
    use aqe_storage::meta;

    #[test]
    fn metadata_queries_run_in_all_relevant_modes() {
        let cat = meta::generate(300);
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        for q in startup_batch() {
            let prepared = session.prepare(&q.root, q.dicts.clone());
            let mut last = None;
            for mode in [ExecMode::Bytecode, ExecMode::Unoptimized, ExecMode::Adaptive] {
                let opts =
                    ExecOptions { mode, threads: 1, cache_results: false, ..Default::default() };
                let (res, _) = session
                    .execute_with(&prepared, &opts)
                    .unwrap_or_else(|e| panic!("{}: {e}", q.name));
                if let Some(prev) = &last {
                    assert_eq!(prev, &res.rows, "{} mode {:?}", q.name, mode);
                }
                last = Some(res.rows);
            }
        }
    }
}
