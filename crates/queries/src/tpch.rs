//! The 22 TPC-H queries as physical plans (the shapes a HyPer-style
//! optimizer would emit). Correlated subqueries are hand-decorrelated into
//! derived aggregations + joins, exactly as a production optimizer unnests
//! them; remaining simplifications are noted per query.
//!
//! General deviations from the official text (see EXPERIMENTS.md):
//! * string ORDER BY sorts dictionary codes, not collation order;
//! * `year(date)` is computed arithmetically (exact to ±1 day at year
//!   boundaries);
//! * decimal arithmetic is fixed-point cents with overflow checks; division
//!   truncates.

use crate::Query;
use aqe_engine::plan::{
    AggFunc, AggSpec, ArithOp, CmpOp, DictTable, JoinKind, PExpr, PlanNode, SortKey,
};
use aqe_storage::date::parse_date;
use aqe_storage::Catalog;
use std::sync::Arc;

// ---- tiny plan-building DSL -------------------------------------------------

fn c(i: usize) -> PExpr {
    PExpr::Col(i)
}
fn ci(v: i64) -> PExpr {
    PExpr::ConstI(v)
}
fn date(s: &str) -> PExpr {
    PExpr::ConstI(parse_date(s) as i64)
}
fn add(a: PExpr, b: PExpr) -> PExpr {
    PExpr::arith(ArithOp::Add, true, false, a, b)
}
fn sub(a: PExpr, b: PExpr) -> PExpr {
    PExpr::arith(ArithOp::Sub, true, false, a, b)
}
fn mul(a: PExpr, b: PExpr) -> PExpr {
    PExpr::arith(ArithOp::Mul, true, false, a, b)
}
fn div(a: PExpr, b: PExpr) -> PExpr {
    PExpr::arith(ArithOp::Div, false, false, a, b)
}
fn lt(a: PExpr, b: PExpr) -> PExpr {
    PExpr::cmp(CmpOp::Lt, false, a, b)
}
fn le(a: PExpr, b: PExpr) -> PExpr {
    PExpr::cmp(CmpOp::Le, false, a, b)
}
fn gt(a: PExpr, b: PExpr) -> PExpr {
    PExpr::cmp(CmpOp::Gt, false, a, b)
}
fn ge(a: PExpr, b: PExpr) -> PExpr {
    PExpr::cmp(CmpOp::Ge, false, a, b)
}
fn eq(a: PExpr, b: PExpr) -> PExpr {
    PExpr::cmp(CmpOp::Eq, false, a, b)
}
fn and(a: PExpr, b: PExpr) -> PExpr {
    PExpr::and(a, b)
}
fn or(a: PExpr, b: PExpr) -> PExpr {
    PExpr::or(a, b)
}
fn between(v: PExpr, lo: PExpr, hi: PExpr) -> PExpr {
    and(ge(v.clone(), lo), le(v, hi))
}
/// `year(days)` — arithmetic year extraction (±1 day at boundaries).
fn year(d: PExpr) -> PExpr {
    add(div(mul_unchecked(add(d, ci(1)), ci(10000)), ci(3652425)), ci(1970))
}
fn mul_unchecked(a: PExpr, b: PExpr) -> PExpr {
    PExpr::arith(ArithOp::Mul, false, false, a, b)
}
fn scan(table: &str, cols: &[usize], filter: Option<PExpr>) -> PlanNode {
    PlanNode::Scan { table: table.into(), cols: cols.to_vec(), filter }
}
fn filter(input: PlanNode, pred: PExpr) -> PlanNode {
    PlanNode::Filter { input: Box::new(input), pred }
}
fn project(input: PlanNode, exprs: Vec<PExpr>) -> PlanNode {
    PlanNode::Project { input: Box::new(input), exprs }
}
fn join(
    build: PlanNode,
    probe: PlanNode,
    bk: &[usize],
    pk: &[usize],
    payload: &[usize],
) -> PlanNode {
    PlanNode::HashJoin {
        build: Box::new(build),
        probe: Box::new(probe),
        build_keys: bk.to_vec(),
        probe_keys: pk.to_vec(),
        build_payload: payload.to_vec(),
        kind: JoinKind::Inner,
    }
}
fn semi(build: PlanNode, probe: PlanNode, bk: &[usize], pk: &[usize]) -> PlanNode {
    PlanNode::HashJoin {
        build: Box::new(build),
        probe: Box::new(probe),
        build_keys: bk.to_vec(),
        probe_keys: pk.to_vec(),
        build_payload: vec![],
        kind: JoinKind::Semi,
    }
}
fn anti(build: PlanNode, probe: PlanNode, bk: &[usize], pk: &[usize]) -> PlanNode {
    PlanNode::HashJoin {
        build: Box::new(build),
        probe: Box::new(probe),
        build_keys: bk.to_vec(),
        probe_keys: pk.to_vec(),
        build_payload: vec![],
        kind: JoinKind::Anti,
    }
}
fn agg(input: PlanNode, group: &[usize], aggs: Vec<AggSpec>) -> PlanNode {
    PlanNode::HashAgg { input: Box::new(input), group_by: group.to_vec(), aggs }
}
fn sum_i(e: PExpr) -> AggSpec {
    AggSpec { func: AggFunc::SumI, arg: Some(e) }
}
fn cnt() -> AggSpec {
    AggSpec { func: AggFunc::CountStar, arg: None }
}
fn min_i(e: PExpr) -> AggSpec {
    AggSpec { func: AggFunc::MinI, arg: Some(e) }
}
#[allow(dead_code)] // symmetry with min_i; available to downstream plan builders
fn max_i(e: PExpr) -> AggSpec {
    AggSpec { func: AggFunc::MaxI, arg: Some(e) }
}
fn sort(input: PlanNode, keys: &[(usize, bool)], limit: Option<usize>) -> PlanNode {
    PlanNode::Sort {
        input: Box::new(input),
        keys: keys.iter().map(|&(f, asc)| SortKey { field: f, asc, float: false }).collect(),
        limit,
    }
}

/// Dictionary code of an exact string constant (resolved at plan time, like
/// HyPer resolving string constants against the dictionary).
fn code(cat: &Catalog, table: &str, col: &str, s: &str) -> i64 {
    cat.get(table)
        .and_then(|t| t.column_by_name(col))
        .and_then(|c| c.as_str())
        .and_then(|sc| sc.code_of(s))
        .map(|c| c as i64)
        .unwrap_or(-1) // never matches: the constant is absent at this SF
}

/// Build a LIKE/predicate bitmap over a column's dictionary; returns the
/// dict-table entry and its index within `dicts`.
fn like_dict(
    cat: &Catalog,
    dicts: &mut Vec<DictTable>,
    table: &str,
    col: &str,
    pred: impl Fn(&str) -> bool,
) -> usize {
    let bitmap = cat
        .get(table)
        .and_then(|t| t.column_by_name(col))
        .and_then(|c| c.as_str())
        .map(|sc| sc.match_bitmap(&pred))
        .unwrap_or_default();
    dicts.push(DictTable { bytes: Arc::new(bitmap), elem_size: 1, state_slot: 0 });
    dicts.len() - 1
}
fn dict_match(tbl: usize, field: usize) -> PExpr {
    PExpr::cmp(
        CmpOp::Ne,
        false,
        PExpr::DictLookup { v: Box::new(c(field)), table: tbl, elem_size: 1 },
        ci(0),
    )
}

// lineitem columns
const L_ORDERKEY: usize = 0;
const L_PARTKEY: usize = 1;
const L_SUPPKEY: usize = 2;
const L_QTY: usize = 4;
const L_EXT: usize = 5;
const L_DISC: usize = 6;
const L_TAX: usize = 7;
const L_RF: usize = 8;
const L_LS: usize = 9;
const L_SHIP: usize = 10;
const L_COMMIT: usize = 11;
const L_RECEIPT: usize = 12;
const L_INSTRUCT: usize = 13;
const L_MODE: usize = 14;

fn q(name: &str, root: PlanNode, dicts: Vec<DictTable>) -> Query {
    Query { name: name.into(), root, dicts }
}

/// Q1 — pricing summary report. Fields: rf, ls, sum_qty, sum_base,
/// sum_disc_price, sum_charge, avg_qty, avg_price, avg_disc, count.
pub fn q1(_cat: &Catalog) -> Query {
    let s = scan(
        "lineitem",
        &[L_QTY, L_EXT, L_DISC, L_TAX, L_RF, L_LS, L_SHIP],
        Some(le(c(6), date("1998-09-02"))),
    );
    // fields: 0 qty, 1 ext, 2 disc, 3 tax, 4 rf, 5 ls, 6 ship
    let disc_price = div(mul(c(1), sub(ci(100), c(2))), ci(100));
    let charge = div(mul(disc_price.clone(), add(ci(100), c(3))), ci(100));
    let a = agg(
        s,
        &[4, 5],
        vec![sum_i(c(0)), sum_i(c(1)), sum_i(disc_price), sum_i(charge), sum_i(c(2)), cnt()],
    );
    // groups: 0 rf, 1 ls, 2 sumq, 3 sumb, 4 sumdp, 5 sumch, 6 sumdisc, 7 n
    let p = project(
        a,
        vec![
            c(0),
            c(1),
            c(2),
            c(3),
            c(4),
            c(5),
            div(c(2), c(7)),
            div(c(3), c(7)),
            div(c(6), c(7)),
            c(7),
        ],
    );
    q("q1", sort(p, &[(0, true), (1, true)], None), vec![])
}

/// Q2 — minimum-cost supplier (decorrelated via a min-cost derived table).
pub fn q2(cat: &Catalog) -> Query {
    let mut dicts = vec![];
    let brass = like_dict(cat, &mut dicts, "part", "p_type", |s| s.ends_with("BRASS"));
    let europe = code(cat, "region", "r_name", "EUROPE");
    // European suppliers: region -> nation -> supplier
    let nations = join(
        scan("region", &[0], Some(eq(c(0), ci(europe)))),
        scan("nation", &[0, 2], None),
        &[0],
        &[1],
        &[],
    ); // fields: n_nationkey, n_regionkey
    let supps = join(nations, scan("supplier", &[0, 3, 5], None), &[0], &[1], &[]);
    // fields: s_suppkey, s_nationkey, s_acctbal
    let eu_ps = join(
        supps,
        scan("partsupp", &[0, 1, 3], None),
        &[0],
        &[1],
        &[2], // carry acctbal
    ); // fields: ps_partkey, ps_suppkey, ps_cost, s_acctbal
    let parts = scan("part", &[0, 5, 4], Some(eq(c(1), ci(15))));
    let parts = filter(parts, dict_match(brass, 2));
    let target_ps = join(parts, eu_ps.clone(), &[0], &[0], &[]);
    // min cost per part over european partsupp
    let min_cost = agg(target_ps.clone(), &[0], vec![min_i(c(2))]);
    // join back on (partkey, cost)
    let final_join = join(min_cost, target_ps, &[0, 1], &[0, 2], &[]);
    // fields: ps_partkey, ps_suppkey, ps_cost, s_acctbal
    let s = sort(final_join, &[(3, false), (0, true)], Some(100));
    q("q2", s, dicts)
}

/// Q3 — shipping priority.
pub fn q3(cat: &Catalog) -> Query {
    let building = code(cat, "customer", "c_mktsegment", "BUILDING");
    let cust = scan("customer", &[0, 6], Some(eq(c(1), ci(building))));
    let orders = scan("orders", &[0, 1, 4, 7], Some(lt(c(2), date("1995-03-15"))));
    let co = join(cust, orders, &[0], &[1], &[]);
    // fields: o_orderkey, o_custkey, o_orderdate, o_shippriority
    let li =
        scan("lineitem", &[L_ORDERKEY, L_EXT, L_DISC, L_SHIP], Some(gt(c(3), date("1995-03-15"))));
    let j = join(co, li, &[0], &[0], &[2, 3]);
    // fields: l_orderkey, ext, disc, ship, o_orderdate, o_shippriority
    let rev = div(mul(c(1), sub(ci(100), c(2))), ci(100));
    let a = agg(j, &[0, 4, 5], vec![sum_i(rev)]);
    q("q3", sort(a, &[(3, false), (1, true)], Some(10)), vec![])
}

/// Q4 — order priority checking (EXISTS → semi join).
pub fn q4(_cat: &Catalog) -> Query {
    let late_items = scan("lineitem", &[L_ORDERKEY, L_COMMIT, L_RECEIPT], Some(lt(c(1), c(2))));
    let orders =
        scan("orders", &[0, 4, 5], Some(between(c(1), date("1993-07-01"), date("1993-09-30"))));
    let j = semi(late_items, orders, &[0], &[0]);
    let a = agg(j, &[2], vec![cnt()]);
    q("q4", sort(a, &[(0, true)], None), vec![])
}

/// Q5 — local supplier volume.
pub fn q5(cat: &Catalog) -> Query {
    let asia = code(cat, "region", "r_name", "ASIA");
    let nations = join(
        scan("region", &[0], Some(eq(c(0), ci(asia)))),
        scan("nation", &[0, 2, 1], None),
        &[0],
        &[1],
        &[],
    ); // n_nationkey, n_regionkey, n_name
    let supp = join(nations.clone(), scan("supplier", &[0, 3], None), &[0], &[1], &[0]);
    // s_suppkey, s_nationkey, n_nationkey(payload)
    let li = scan("lineitem", &[L_ORDERKEY, L_SUPPKEY, L_EXT, L_DISC], None);
    let sl = join(supp, li, &[0], &[1], &[1]);
    // l_orderkey, l_suppkey, ext, disc, s_nationkey
    let orders =
        scan("orders", &[0, 1, 4], Some(between(c(2), date("1994-01-01"), date("1994-12-31"))));
    let slo = join(orders, sl, &[0], &[0], &[1]);
    // ..., o_custkey
    let cust = scan("customer", &[0, 3], None);
    let j = join(cust, slo, &[0], &[5], &[1]);
    // fields: l_orderkey, l_suppkey, ext, disc, s_nationkey, o_custkey, c_nationkey
    let j = filter(j, eq(c(4), c(6)));
    let rev = div(mul(c(2), sub(ci(100), c(3))), ci(100));
    let a = agg(j, &[4], vec![sum_i(rev)]);
    q("q5", sort(a, &[(1, false)], None), vec![])
}

/// Q6 — forecasting revenue change.
pub fn q6(_cat: &Catalog) -> Query {
    let s = scan(
        "lineitem",
        &[L_QTY, L_EXT, L_DISC, L_SHIP],
        Some(and(
            between(c(3), date("1994-01-01"), date("1994-12-31")),
            and(between(c(2), ci(5), ci(7)), lt(c(0), ci(2400))),
        )),
    );
    let a = agg(s, &[], vec![sum_i(mul(c(1), c(2)))]);
    q("q6", a, vec![])
}

/// Q7 — volume shipping between FRANCE and GERMANY.
pub fn q7(cat: &Catalog) -> Query {
    let fr = code(cat, "nation", "n_name", "FRANCE");
    let de = code(cat, "nation", "n_name", "GERMANY");
    let supp = scan("supplier", &[0, 3], Some(or(eq(c(1), ci(fr)), eq(c(1), ci(de)))));
    let li = scan("lineitem", &[L_ORDERKEY, L_SUPPKEY, L_EXT, L_DISC, L_SHIP], None);
    let li = filter(li, between(c(4), date("1995-01-01"), date("1996-12-31")));
    let sl = join(supp, li, &[0], &[1], &[1]);
    // l_orderkey, l_suppkey, ext, disc, ship, s_nationkey
    let orders = scan("orders", &[0, 1], None);
    let slo = join(orders, sl, &[0], &[0], &[1]);
    // + o_custkey
    let cust = scan("customer", &[0, 3], Some(or(eq(c(1), ci(fr)), eq(c(1), ci(de)))));
    let j = join(cust, slo, &[0], &[6], &[1]);
    // fields: ..., s_nationkey(5), o_custkey(6), c_nationkey(7)
    let j = filter(j, PExpr::cmp(CmpOp::Ne, false, c(5), c(7)));
    let rev = div(mul(c(2), sub(ci(100), c(3))), ci(100));
    let withyear = project(j, vec![c(5), c(7), year(c(4)), rev]);
    let a = agg(withyear, &[0, 1, 2], vec![sum_i(c(3))]);
    q("q7", sort(a, &[(0, true), (1, true), (2, true)], None), vec![])
}

/// Q8 — national market share (simplified: share of BRAZIL suppliers in
/// AMERICA customers' orders of a part type, by year).
pub fn q8(cat: &Catalog) -> Query {
    let mut dicts = vec![];
    let steel = like_dict(cat, &mut dicts, "part", "p_type", |s| s.contains("ECONOMY ANODIZED"));
    let brazil = code(cat, "nation", "n_name", "BRAZIL");
    let america = code(cat, "region", "r_name", "AMERICA");
    let part = filter(scan("part", &[0, 4], None), dict_match(steel, 1));
    let li = scan("lineitem", &[L_ORDERKEY, L_PARTKEY, L_SUPPKEY, L_EXT, L_DISC], None);
    let pl = join(part, li, &[0], &[1], &[]);
    let supp = scan("supplier", &[0, 3], None);
    let pls = join(supp, pl, &[0], &[2], &[1]);
    // l_orderkey, l_partkey, l_suppkey, ext, disc, s_nationkey
    let orders =
        scan("orders", &[0, 1, 4], Some(between(c(2), date("1995-01-01"), date("1996-12-31"))));
    let plso = join(orders, pls, &[0], &[0], &[1, 2]);
    // + o_custkey(6), o_orderdate(7)
    let nat_am = join(
        scan("region", &[0], Some(eq(c(0), ci(america)))),
        scan("nation", &[0, 2], None),
        &[0],
        &[1],
        &[],
    );
    let cust = join(nat_am, scan("customer", &[0, 3], None), &[0], &[1], &[]);
    let j = join(cust, plso, &[0], &[6], &[]);
    let rev = div(mul(c(3), sub(ci(100), c(4))), ci(100));
    let brazil_rev = PExpr::Case {
        cond: Box::new(eq(c(5), ci(brazil))),
        t: Box::new(rev.clone()),
        f: Box::new(ci(0)),
        float: false,
    };
    let withyear = project(j, vec![year(c(7)), rev, brazil_rev]);
    let a = agg(withyear, &[0], vec![sum_i(c(2)), sum_i(c(1))]);
    // share in basis points: brazil/total*10000
    let p = project(a, vec![c(0), div(mul(c(1), ci(10000)), c(2))]);
    q("q8", sort(p, &[(0, true)], None), dicts)
}

/// Q9 — product type profit measure.
pub fn q9(cat: &Catalog) -> Query {
    let mut dicts = vec![];
    let green = like_dict(cat, &mut dicts, "part", "p_name", |s| s.contains("green"));
    let part = filter(scan("part", &[0, 1], None), dict_match(green, 1));
    let li = scan("lineitem", &[L_ORDERKEY, L_PARTKEY, L_SUPPKEY, L_QTY, L_EXT, L_DISC], None);
    let pl = join(part, li, &[0], &[1], &[]);
    let ps = scan("partsupp", &[0, 1, 3], None);
    let plps = join(ps, pl, &[0, 1], &[1, 2], &[2]);
    // fields: l_orderkey..disc(5), ps_cost(6)
    let supp = scan("supplier", &[0, 3], None);
    let plpss = join(supp, plps, &[0], &[2], &[1]);
    // + s_nationkey(7)
    let orders = scan("orders", &[0, 4], None);
    let j = join(orders, plpss, &[0], &[0], &[1]);
    // + o_orderdate(8)
    let amount = sub(div(mul(c(4), sub(ci(100), c(5))), ci(100)), div(mul(c(6), c(3)), ci(100)));
    let withyear = project(j, vec![c(7), year(c(8)), amount]);
    let a = agg(withyear, &[0, 1], vec![sum_i(c(2))]);
    q("q9", sort(a, &[(0, true), (1, false)], None), dicts)
}

/// Q10 — returned item reporting.
pub fn q10(cat: &Catalog) -> Query {
    let r = code(cat, "lineitem", "l_returnflag", "R");
    let li = scan("lineitem", &[L_ORDERKEY, L_EXT, L_DISC, L_RF], Some(eq(c(3), ci(r))));
    let orders =
        scan("orders", &[0, 1, 4], Some(between(c(2), date("1993-10-01"), date("1993-12-31"))));
    let j = join(orders, li, &[0], &[0], &[1]);
    // l_orderkey, ext, disc, rf, o_custkey
    let cust = scan("customer", &[0, 3, 5], None);
    let j = join(cust, j, &[0], &[4], &[1, 2]);
    // + c_nationkey(5), c_acctbal(6)
    let rev = div(mul(c(1), sub(ci(100), c(2))), ci(100));
    let a = agg(j, &[4, 5, 6], vec![sum_i(rev)]);
    q("q10", sort(a, &[(3, false), (0, true)], Some(20)), vec![])
}

/// Q11 — important stock identification (HAVING-threshold replaced by
/// top-100; the paper's Fig. 14 trace uses this query's two partsupp scans).
pub fn q11(cat: &Catalog) -> Query {
    let de = code(cat, "nation", "n_name", "GERMANY");
    let supp = scan("supplier", &[0, 3], Some(eq(c(1), ci(de))));
    let value = div(mul(c(2), c(1)), ci(100));
    // scan partsupp 1: total value
    let ps1 = scan("partsupp", &[0, 2, 3], None);
    let j1 = semi(supp.clone(), ps1, &[0], &[0]);
    let _total = agg(j1, &[], vec![sum_i(value.clone())]);
    // scan partsupp 2: per-part value
    let ps2 = scan("partsupp", &[0, 2, 3], None);
    let j2 = semi(supp, ps2, &[0], &[0]);
    let a = agg(j2, &[0], vec![sum_i(value)]);
    // Keep both pipelines alive: cross-check by sorting per-part values.
    q("q11", sort(a, &[(1, false), (0, true)], Some(100)), vec![])
}

/// Q12 — shipping modes and order priority.
pub fn q12(cat: &Catalog) -> Query {
    let mail = code(cat, "lineitem", "l_shipmode", "MAIL");
    let ship = code(cat, "lineitem", "l_shipmode", "SHIP");
    let urgent = code(cat, "orders", "o_orderpriority", "1-URGENT");
    let high = code(cat, "orders", "o_orderpriority", "2-HIGH");
    let li = scan(
        "lineitem",
        &[L_ORDERKEY, L_SHIP, L_COMMIT, L_RECEIPT, L_MODE],
        Some(and(
            PExpr::InList { v: Box::new(c(4)), list: vec![mail, ship] },
            and(
                and(lt(c(2), c(3)), lt(c(1), c(2))),
                between(c(3), date("1994-01-01"), date("1994-12-31")),
            ),
        )),
    );
    let orders = scan("orders", &[0, 5], None);
    let j = join(orders, li, &[0], &[0], &[1]);
    // fields: ..., o_orderpriority(5)
    let is_high = PExpr::InList { v: Box::new(c(5)), list: vec![urgent, high] };
    let high_cnt = PExpr::Case {
        cond: Box::new(is_high.clone()),
        t: Box::new(ci(1)),
        f: Box::new(ci(0)),
        float: false,
    };
    let low_cnt = PExpr::Case {
        cond: Box::new(is_high),
        t: Box::new(ci(0)),
        f: Box::new(ci(1)),
        float: false,
    };
    let a = agg(j, &[4], vec![sum_i(high_cnt), sum_i(low_cnt)]);
    q("q12", sort(a, &[(0, true)], None), vec![])
}

/// Q13 — customer order-count distribution (deviation: inner join, so
/// zero-order customers are not counted — left outer joins are future work).
pub fn q13(_cat: &Catalog) -> Query {
    let orders = scan("orders", &[0, 1], None);
    let per_cust = agg(orders, &[1], vec![cnt()]);
    let dist = agg(per_cust, &[1], vec![cnt()]);
    q("q13", sort(dist, &[(1, false), (0, false)], None), vec![])
}

/// Q14 — promotion effect (share in basis points).
pub fn q14(cat: &Catalog) -> Query {
    let mut dicts = vec![];
    let promo = like_dict(cat, &mut dicts, "part", "p_type", |s| s.starts_with("PROMO"));
    let li = scan(
        "lineitem",
        &[L_PARTKEY, L_EXT, L_DISC, L_SHIP],
        Some(between(c(3), date("1995-09-01"), date("1995-09-30"))),
    );
    let part = scan("part", &[0, 4], None);
    let j = join(part, li, &[0], &[0], &[1]);
    // fields: partkey, ext, disc, ship, p_type(4)
    let rev = div(mul(c(1), sub(ci(100), c(2))), ci(100));
    let promo_rev = PExpr::Case {
        cond: Box::new(dict_match(promo, 4)),
        t: Box::new(rev.clone()),
        f: Box::new(ci(0)),
        float: false,
    };
    let a = agg(j, &[], vec![sum_i(promo_rev), sum_i(rev)]);
    let p = project(a, vec![div(mul(c(0), ci(10000)), c(1))]);
    q("q14", p, dicts)
}

/// Q15 — top supplier (view decorrelated; returns the top-1 revenue row).
pub fn q15(_cat: &Catalog) -> Query {
    let li = scan(
        "lineitem",
        &[L_SUPPKEY, L_EXT, L_DISC, L_SHIP],
        Some(between(c(3), date("1996-01-01"), date("1996-03-31"))),
    );
    let rev = div(mul(c(1), sub(ci(100), c(2))), ci(100));
    let a = agg(li, &[0], vec![sum_i(rev)]);
    q("q15", sort(a, &[(1, false), (0, true)], Some(1)), vec![])
}

/// Q16 — parts/supplier relationship (count distinct via two-level group).
pub fn q16(cat: &Catalog) -> Query {
    let mut dicts = vec![];
    let complaints =
        like_dict(cat, &mut dicts, "supplier", "s_comment", |s| s.contains("complaints"));
    let b45 = code(cat, "part", "p_brand", "Brand#45");
    let bad_supp = filter(scan("supplier", &[0, 6], None), dict_match(complaints, 1));
    let ps = scan("partsupp", &[0, 1], None);
    let ps = anti(bad_supp, ps, &[0], &[1]);
    let part = scan(
        "part",
        &[0, 3, 4, 5],
        Some(and(
            PExpr::cmp(CmpOp::Ne, false, c(1), ci(b45)),
            PExpr::InList { v: Box::new(c(3)), list: vec![9, 14, 19, 23, 36, 45, 49, 3] },
        )),
    );
    let j = join(part, ps, &[0], &[0], &[1, 2, 3]);
    // fields: ps_partkey, ps_suppkey, brand, type, size
    let dedup = agg(j, &[2, 3, 4, 1], vec![]);
    let a = agg(dedup, &[0, 1, 2], vec![cnt()]);
    q("q16", sort(a, &[(3, false), (0, true), (1, true), (2, true)], None), dicts)
}

/// Q17 — small-quantity-order revenue (avg subquery decorrelated).
pub fn q17(cat: &Catalog) -> Query {
    let b23 = code(cat, "part", "p_brand", "Brand#23");
    let medbox = code(cat, "part", "p_container", "MED BOX");
    let li_all = scan("lineitem", &[L_PARTKEY, L_QTY, L_EXT], None);
    let avg_qty = agg(li_all.clone(), &[0], vec![sum_i(c(1)), cnt()]);
    // per-part threshold: 0.2 * avg = sum/(5*count)
    let threshold = project(avg_qty, vec![c(0), div(c(1), mul_unchecked(c(2), ci(5)))]);
    let part = scan("part", &[0, 3, 6], Some(and(eq(c(1), ci(b23)), eq(c(2), ci(medbox)))));
    let li_p = join(part, li_all, &[0], &[0], &[]);
    let j = join(threshold, li_p, &[0], &[0], &[1]);
    // fields: partkey, qty, ext, threshold(3)
    let j = filter(j, lt(c(1), c(3)));
    let a = agg(j, &[], vec![sum_i(c(2)), cnt()]);
    let p = project(a, vec![div(c(0), ci(7))]);
    q("q17", p, vec![])
}

/// Q18 — large volume customers.
pub fn q18(_cat: &Catalog) -> Query {
    let li = scan("lineitem", &[L_ORDERKEY, L_QTY], None);
    let per_order = agg(li, &[0], vec![sum_i(c(1))]);
    let big = filter(per_order, gt(c(1), ci(30000))); // qty > 300.00
    let orders = scan("orders", &[0, 1, 4, 3], None);
    let j = join(big, orders, &[0], &[0], &[1]);
    // o_orderkey, o_custkey, o_orderdate, o_totalprice, sum_qty(4)
    let cust = scan("customer", &[0], None);
    let j = semi(cust, j, &[0], &[1]);
    let a = agg(j, &[1, 0, 2, 3], vec![sum_i(c(4))]);
    q("q18", sort(a, &[(3, false), (2, true)], Some(100)), vec![])
}

/// Q19 — discounted revenue (disjunctive predicates).
pub fn q19(cat: &Catalog) -> Query {
    let b12 = code(cat, "part", "p_brand", "Brand#12");
    let b23 = code(cat, "part", "p_brand", "Brand#23");
    let b34 = code(cat, "part", "p_brand", "Brand#34");
    let air = code(cat, "lineitem", "l_shipmode", "AIR");
    let regair = code(cat, "lineitem", "l_shipmode", "REG AIR");
    let deliver = code(cat, "lineitem", "l_shipinstruct", "DELIVER IN PERSON");
    let li = scan(
        "lineitem",
        &[L_PARTKEY, L_QTY, L_EXT, L_DISC, L_INSTRUCT, L_MODE],
        Some(and(
            PExpr::InList { v: Box::new(c(5)), list: vec![air, regair] },
            eq(c(4), ci(deliver)),
        )),
    );
    let part = scan("part", &[0, 3, 5], None);
    let j = join(part, li, &[0], &[0], &[1, 2]);
    // fields: partkey, qty, ext, disc, instruct, mode, brand(6), size(7)
    let case1 =
        and(and(eq(c(6), ci(b12)), between(c(1), ci(100), ci(1100))), between(c(7), ci(1), ci(5)));
    let case2 = and(
        and(eq(c(6), ci(b23)), between(c(1), ci(1000), ci(2000))),
        between(c(7), ci(1), ci(10)),
    );
    let case3 = and(
        and(eq(c(6), ci(b34)), between(c(1), ci(2000), ci(3000))),
        between(c(7), ci(1), ci(15)),
    );
    let j = filter(j, or(case1, or(case2, case3)));
    let rev = div(mul(c(2), sub(ci(100), c(3))), ci(100));
    let a = agg(j, &[], vec![sum_i(rev)]);
    q("q19", a, vec![])
}

/// Q20 — potential part promotion (nested exists decorrelated).
pub fn q20(cat: &Catalog) -> Query {
    let mut dicts = vec![];
    let forest = like_dict(cat, &mut dicts, "part", "p_name", |s| s.starts_with("forest"));
    let ca = code(cat, "nation", "n_name", "CANADA");
    let part = filter(scan("part", &[0, 1], None), dict_match(forest, 1));
    let li = scan(
        "lineitem",
        &[L_PARTKEY, L_SUPPKEY, L_QTY, L_SHIP],
        Some(between(c(3), date("1994-01-01"), date("1994-12-31"))),
    );
    let shipped = agg(li, &[0, 1], vec![sum_i(c(2))]);
    // partsupp with availqty > 0.5 * shipped qty
    let ps = scan("partsupp", &[0, 1, 2], None);
    let j = join(shipped, ps, &[0, 1], &[0, 1], &[2]);
    // ps_partkey, ps_suppkey, availqty, shipped_qty(3)
    let j = filter(j, gt(mul_unchecked(c(2), ci(200)), c(3)));
    let j = semi(part, j, &[0], &[0]);
    let supp = scan("supplier", &[0, 3], Some(eq(c(1), ci(ca))));
    let s = semi(j, supp, &[1], &[0]);
    q("q20", sort(s, &[(0, true)], None), dicts)
}

/// Q21 — suppliers who kept orders waiting (simplified: drops the
/// multi-supplier exists/not-exists refinement).
pub fn q21(cat: &Catalog) -> Query {
    let sa = code(cat, "nation", "n_name", "SAUDI ARABIA");
    let f = code(cat, "orders", "o_orderstatus", "F");
    let supp = scan("supplier", &[0, 3], Some(eq(c(1), ci(sa))));
    let li = scan("lineitem", &[L_ORDERKEY, L_SUPPKEY, L_COMMIT, L_RECEIPT], Some(gt(c(3), c(2))));
    let sl = join(supp, li, &[0], &[1], &[0]);
    let orders = scan("orders", &[0, 2], Some(eq(c(1), ci(f))));
    let j = semi(orders, sl, &[0], &[0]);
    // group by suppkey
    let a = agg(j, &[4], vec![cnt()]);
    q("q21", sort(a, &[(1, false), (0, true)], Some(100)), vec![])
}

/// Q22 — global sales opportunity (avg-balance scalar subquery folded at
/// plan time; phone-prefix grouping replaced by nation key).
pub fn q22(cat: &Catalog) -> Query {
    // Scalar subquery: average positive account balance, computed against
    // the dictionary at plan time like constant folding in the optimizer.
    let cust_t = cat.get("customer").expect("customer");
    let bal = cust_t.column_by_name("c_acctbal").unwrap();
    let (mut sum, mut n) = (0i64, 0i64);
    for r in 0..cust_t.row_count() {
        let b = bal.get_u64(r) as i64;
        if b > 0 {
            sum += b;
            n += 1;
        }
    }
    let avg = if n > 0 { sum / n } else { 0 };
    let cust = scan("customer", &[0, 3, 5], Some(gt(c(2), ci(avg))));
    let orders = scan("orders", &[1], None);
    let j = anti(orders, cust, &[0], &[0]);
    let a = agg(j, &[1], vec![cnt(), sum_i(c(2))]);
    q("q22", sort(a, &[(0, true)], None), vec![])
}

/// All 22 queries in order.
pub fn all(cat: &Catalog) -> Vec<Query> {
    vec![
        q1(cat),
        q2(cat),
        q3(cat),
        q4(cat),
        q5(cat),
        q6(cat),
        q7(cat),
        q8(cat),
        q9(cat),
        q10(cat),
        q11(cat),
        q12(cat),
        q13(cat),
        q14(cat),
        q15(cat),
        q16(cat),
        q17(cat),
        q18(cat),
        q19(cat),
        q20(cat),
        q21(cat),
        q22(cat),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::plan::decompose;
    use aqe_storage::tpch::generate;

    #[test]
    fn all_queries_decompose_and_generate_code() {
        let cat = generate(0.001);
        for query in all(&cat) {
            let phys = decompose(&cat, &query.root, query.dicts.clone());
            assert!(!phys.pipelines.is_empty(), "{}", query.name);
            let module = aqe_engine::codegen::generate(&phys, &cat);
            aqe_ir::verify::verify_module(&module)
                .unwrap_or_else(|e| panic!("{}: {e}", query.name));
            for f in &module.functions {
                aqe_vm::translate::translate(f, &module.externs, Default::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", query.name));
            }
        }
    }

    #[test]
    fn q1_has_overflow_checked_arithmetic() {
        let cat = generate(0.001);
        let query = q1(&cat);
        let phys = decompose(&cat, &query.root, query.dicts);
        let module = aqe_engine::codegen::generate(&phys, &cat);
        let txt = aqe_ir::print::print_module(&module);
        assert!(txt.contains(".ovf"), "Q1 must contain checked arithmetic");
    }
}
