//! The hand-written TPC-H Q1 of Fig. 2 — a native Rust implementation over
//! the columnar storage. "Note that the handwritten version does not
//! implement overflow checks, which explains its slightly faster runtime":
//! this implementation uses wrapping arithmetic for exactly that reason.

use aqe_storage::{date_to_days, Catalog};
use std::collections::HashMap;

/// One Q1 result group.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Q1Group {
    pub returnflag: u64,
    pub linestatus: u64,
    pub sum_qty: i64,
    pub sum_base: i64,
    pub sum_disc_price: i64,
    pub sum_charge: i64,
    pub count: i64,
}

/// Execute Q1 directly (no IR, no interpretation, no overflow checks).
pub fn q1_handwritten(cat: &Catalog) -> Vec<Q1Group> {
    let li = cat.get("lineitem").expect("lineitem");
    let qty = match li.column_by_name("l_quantity").unwrap() {
        aqe_storage::Column::I64(v) => v.as_slice(),
        _ => unreachable!(),
    };
    let ext = match li.column_by_name("l_extendedprice").unwrap() {
        aqe_storage::Column::I64(v) => v.as_slice(),
        _ => unreachable!(),
    };
    let disc = match li.column_by_name("l_discount").unwrap() {
        aqe_storage::Column::I64(v) => v.as_slice(),
        _ => unreachable!(),
    };
    let tax = match li.column_by_name("l_tax").unwrap() {
        aqe_storage::Column::I64(v) => v.as_slice(),
        _ => unreachable!(),
    };
    let rf = li.column_by_name("l_returnflag").unwrap().as_str().unwrap();
    let ls = li.column_by_name("l_linestatus").unwrap().as_str().unwrap();
    let ship = match li.column_by_name("l_shipdate").unwrap() {
        aqe_storage::Column::I32(v) => v.as_slice(),
        _ => unreachable!(),
    };
    let cutoff = date_to_days(1998, 9, 2);

    let mut groups: HashMap<(u64, u64), Q1Group> = HashMap::new();
    for i in 0..li.row_count() {
        if ship[i] > cutoff {
            continue;
        }
        let key = (rf.codes[i] as u64, ls.codes[i] as u64);
        let g = groups.entry(key).or_insert_with(|| Q1Group {
            returnflag: key.0,
            linestatus: key.1,
            sum_qty: 0,
            sum_base: 0,
            sum_disc_price: 0,
            sum_charge: 0,
            count: 0,
        });
        let disc_price = ext[i].wrapping_mul(100 - disc[i]) / 100;
        let charge = disc_price.wrapping_mul(100 + tax[i]) / 100;
        g.sum_qty = g.sum_qty.wrapping_add(qty[i]);
        g.sum_base = g.sum_base.wrapping_add(ext[i]);
        g.sum_disc_price = g.sum_disc_price.wrapping_add(disc_price);
        g.sum_charge = g.sum_charge.wrapping_add(charge);
        g.count += 1;
    }
    let mut out: Vec<Q1Group> = groups.into_values().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_storage::tpch;

    #[test]
    fn handwritten_q1_matches_engine_q1() {
        use aqe_engine::exec::{ExecMode, ExecOptions};
        use aqe_engine::session::Engine;
        let cat = tpch::generate(0.001);
        let hw = q1_handwritten(&cat);
        assert!(!hw.is_empty());

        let q = crate::tpch::q1(&cat);
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        let prepared = session.prepare(&q.root, q.dicts);
        let (res, _) = session
            .execute_with(
                &prepared,
                &ExecOptions { mode: ExecMode::Bytecode, threads: 1, ..Default::default() },
            )
            .unwrap();
        // Engine rows: rf, ls, sum_qty, sum_base, sum_dp, sum_ch, avgs…, n
        let width = res.tys.len();
        let mut engine: Vec<(u64, u64, i64, i64, i64)> = res
            .rows
            .chunks_exact(width)
            .map(|r| (r[0], r[1], r[2] as i64, r[3] as i64, r[9] as i64))
            .collect();
        engine.sort();
        let mut expect: Vec<(u64, u64, i64, i64, i64)> = hw
            .iter()
            .map(|g| (g.returnflag, g.linestatus, g.sum_qty, g.sum_base, g.count))
            .collect();
        expect.sort();
        assert_eq!(engine, expect);
    }
}
