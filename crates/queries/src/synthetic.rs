//! Machine-generated wide-aggregate queries (§V-E, Fig. 15).
//!
//! "Our sample queries consist of a single table scan and an increasing
//! number of aggregate expressions. By scaling this number from 10 to 1900,
//! we receive query plans that contain between 1,000 and 160,000
//! \[IR\] instructions, most of which are in a single large function."

use crate::Query;
use aqe_engine::plan::{AggFunc, AggSpec, ArithOp, PExpr, PlanNode};

fn c(i: usize) -> PExpr {
    PExpr::Col(i)
}
fn ci(v: i64) -> PExpr {
    PExpr::ConstI(v)
}

/// A keyless aggregation over `lineitem` with `n` distinct overflow-checked
/// aggregate expressions; instruction count grows linearly with `n`.
pub fn wide_agg(n: usize) -> Query {
    // fields: 0 qty, 1 extprice, 2 discount, 3 tax
    let scan = PlanNode::Scan { table: "lineitem".into(), cols: vec![4, 5, 6, 7], filter: None };
    let mut aggs = Vec::with_capacity(n);
    for k in 0..n {
        let a = c(k % 4);
        let b = c((k / 4 + 1) % 4);
        // Distinct shape per aggregate: (a * w + b) - k, overflow-checked.
        let w = (k % 7 + 1) as i64;
        let e = PExpr::arith(
            ArithOp::Sub,
            true,
            false,
            PExpr::arith(
                ArithOp::Add,
                true,
                false,
                PExpr::arith(ArithOp::Mul, false, false, a, ci(w)),
                b,
            ),
            ci(k as i64),
        );
        aggs.push(AggSpec { func: AggFunc::SumI, arg: Some(e) });
    }
    Query {
        name: format!("wide_agg_{n}"),
        root: PlanNode::HashAgg { input: Box::new(scan), group_by: vec![], aggs },
        dicts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_engine::plan::decompose;
    use aqe_storage::tpch;

    #[test]
    fn instruction_count_scales_linearly() {
        let cat = tpch::generate(0.001);
        let mut counts = Vec::new();
        for n in [10, 100, 400] {
            let q = wide_agg(n);
            let phys = decompose(&cat, &q.root, vec![]);
            let module = aqe_engine::codegen::generate(&phys, &cat);
            counts.push(module.instruction_count());
        }
        assert!(counts[1] > counts[0] * 5, "{counts:?}");
        assert!(counts[2] > counts[1] * 3, "{counts:?}");
    }

    #[test]
    fn wide_agg_runs_correctly_small() {
        use aqe_engine::exec::{ExecMode, ExecOptions};
        use aqe_engine::session::Engine;
        let cat = tpch::generate(0.001);
        let q = wide_agg(16);
        let phys = decompose(&cat, &q.root, vec![]);
        let engine = Engine::new(cat.clone());
        let session = engine.session();
        // One prepared query, two modes: the result cache must be off for
        // the second run to actually exercise the unoptimized backend.
        let prepared = session.prepare_plan(phys);
        let run = |mode| {
            let opts = ExecOptions { mode, threads: 1, cache_results: false, ..Default::default() };
            session.execute_with(&prepared, &opts).unwrap().0
        };
        let bc = run(ExecMode::Bytecode);
        let un = run(ExecMode::Unoptimized);
        assert_eq!(bc.rows, un.rows);
        assert_eq!(bc.row_count(), 1);
    }
}
