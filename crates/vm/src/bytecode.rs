//! The bytecode format (§IV-A).
//!
//! "The instruction set of the VM is fixed length, statically typed, and in
//! most places mimics the \[IR\] instruction set. … the LLVM instructions are
//! annotated with types, while the VM instructions have the type baked into
//! the opcode itself."
//!
//! Every instruction is 16 bytes: a 2-byte opcode, three 2-byte register
//! byte-offsets (`a` is the destination where applicable), and an 8-byte
//! literal used for immediates, branch targets, memory displacements, and
//! call indices. Register offsets address a byte-array register file whose
//! slots are 8-byte aligned; typed opcodes read and write exactly their
//! operand width, like the paper's `*((int32_t*)(regs + ip->a1))` accesses.

use std::fmt;

/// Operation codes. Variants are grouped by family; the type or width is
/// part of the opcode name (the paper's VM handles "about 500
/// instruction/type combinations"; this set is the same idea restricted to
/// the types our code generator emits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u16)]
#[allow(missing_docs)]
pub enum Op {
    // ---- integer/float arithmetic: dst=a, lhs=b, rhs=c -----------------
    AddI8,
    AddI16,
    AddI32,
    AddI64,
    AddF64,
    SubI8,
    SubI16,
    SubI32,
    SubI64,
    SubF64,
    MulI8,
    MulI16,
    MulI32,
    MulI64,
    MulF64,
    SDivI8,
    SDivI16,
    SDivI32,
    SDivI64,
    UDivI8,
    UDivI16,
    UDivI32,
    UDivI64,
    SRemI8,
    SRemI16,
    SRemI32,
    SRemI64,
    URemI8,
    URemI16,
    URemI32,
    URemI64,
    FDivF64,
    AndI8,
    AndI16,
    AndI32,
    AndI64,
    OrI8,
    OrI16,
    OrI32,
    OrI64,
    XorI8,
    XorI16,
    XorI32,
    XorI64,
    ShlI8,
    ShlI16,
    ShlI32,
    ShlI64,
    AShrI8,
    AShrI16,
    AShrI32,
    AShrI64,
    LShrI8,
    LShrI16,
    LShrI32,
    LShrI64,

    // ---- immediate forms: dst=a, lhs=b, rhs=lit -------------------------
    AddImmI32,
    AddImmI64,
    AddImmF64,
    SubImmI32,
    SubImmI64,
    MulImmI32,
    MulImmI64,
    MulImmF64,
    AndImmI32,
    AndImmI64,
    OrImmI32,
    OrImmI64,
    XorImmI32,
    XorImmI64,
    ShlImmI32,
    ShlImmI64,
    AShrImmI32,
    AShrImmI64,
    LShrImmI32,
    LShrImmI64,

    // ---- comparisons: dst=a (writes u8 0/1), lhs=b, rhs=c ---------------
    CmpEqI8,
    CmpEqI16,
    CmpEqI32,
    CmpEqI64,
    CmpNeI8,
    CmpNeI16,
    CmpNeI32,
    CmpNeI64,
    CmpSltI8,
    CmpSltI16,
    CmpSltI32,
    CmpSltI64,
    CmpSleI8,
    CmpSleI16,
    CmpSleI32,
    CmpSleI64,
    CmpSgtI8,
    CmpSgtI16,
    CmpSgtI32,
    CmpSgtI64,
    CmpSgeI8,
    CmpSgeI16,
    CmpSgeI32,
    CmpSgeI64,
    CmpUltI8,
    CmpUltI16,
    CmpUltI32,
    CmpUltI64,
    CmpUleI8,
    CmpUleI16,
    CmpUleI32,
    CmpUleI64,
    CmpUgtI8,
    CmpUgtI16,
    CmpUgtI32,
    CmpUgtI64,
    CmpUgeI8,
    CmpUgeI16,
    CmpUgeI32,
    CmpUgeI64,
    CmpEqF64,
    CmpNeF64,
    CmpLtF64,
    CmpLeF64,
    CmpGtF64,
    CmpGeF64,

    // ---- immediate comparisons: dst=a, lhs=b, rhs=lit --------------------
    CmpImmEqI32,
    CmpImmEqI64,
    CmpImmNeI32,
    CmpImmNeI64,
    CmpImmSltI32,
    CmpImmSltI64,
    CmpImmSleI32,
    CmpImmSleI64,
    CmpImmSgtI32,
    CmpImmSgtI64,
    CmpImmSgeI32,
    CmpImmSgeI64,
    CmpImmUltI32,
    CmpImmUltI64,
    CmpImmUleI32,
    CmpImmUleI64,
    CmpImmUgtI32,
    CmpImmUgtI64,
    CmpImmUgeI32,
    CmpImmUgeI64,

    // ---- overflow-checked arithmetic (§IV-F macro ops) -------------------
    // Fused form: performs the op, traps on overflow ("replaces [the
    // 4-instruction sequence] with a single VM bytecode that performs all
    // four steps at once").
    AddOvfTrapI32,
    AddOvfTrapI64,
    SubOvfTrapI32,
    SubOvfTrapI64,
    MulOvfTrapI32,
    MulOvfTrapI64,
    // Unfused fallbacks when the flag escapes the canonical pattern.
    AddOvfValI32,
    AddOvfValI64,
    SubOvfValI32,
    SubOvfValI64,
    MulOvfValI32,
    MulOvfValI64,
    AddOvfFlagI32,
    AddOvfFlagI64,
    SubOvfFlagI32,
    SubOvfFlagI64,
    MulOvfFlagI32,
    MulOvfFlagI64,

    // ---- conversions: dst=a, src=b ---------------------------------------
    SExtI8I16,
    SExtI8I32,
    SExtI8I64,
    SExtI16I32,
    SExtI16I64,
    SExtI32I64,
    ZExtI8I16,
    ZExtI8I32,
    ZExtI8I64,
    ZExtI16I32,
    ZExtI16I64,
    ZExtI32I64,
    SiToFpI32,
    SiToFpI64,
    FpToSiI32,
    FpToSiI64,

    // ---- moves / constants ------------------------------------------------
    /// Copy a full 8-byte slot (also implements `trunc` and `bitcast`).
    Mov64,
    /// Write the 8-byte literal into the destination slot.
    Const64,
    /// `dst = cond ? t : f` (full-slot copy); cond=b, t=c, f=lit-as-offset.
    Select64,

    // ---- memory: loads dst=a, base=b --------------------------------------
    Load8,
    Load16,
    Load32,
    Load64,
    // base=b, displacement=lit (signed)
    Load8Disp,
    Load16Disp,
    Load32Disp,
    Load64Disp,
    // base=b, index=c, lit = scale(high u32, signed) | disp(low u32, signed)
    Load8Idx,
    Load16Idx,
    Load32Idx,
    Load64Idx,
    // stores: base=a, src=b
    Store8,
    Store16,
    Store32,
    Store64,
    Store8Disp,
    Store16Disp,
    Store32Disp,
    Store64Disp,
    // base=a, src=b, index=c, lit packed as above
    Store8Idx,
    Store16Idx,
    Store32Idx,
    Store64Idx,
    /// dst=a, base=b, index=c, lit packed: `dst = base + index*scale + disp`.
    GepIdx,

    // ---- control flow -------------------------------------------------------
    /// Unconditional jump; lit = target pc.
    Br,
    /// cond=b (reads u8); lit = then-pc (low u32) | else-pc (high u32).
    CondBr,
    /// Return void.
    Ret,
    /// Return the 8-byte slot at a.
    RetVal,
    /// Abort with a trap; lit = encoded `TrapKind`.
    TrapOp,

    // ---- runtime calls -------------------------------------------------------
    /// dst=a (scratch slot when void), argbase=b, nargs=c, lit = fn index.
    CallRt,
}

/// One fixed-length bytecode instruction ("We use a fixed length encoding
/// for the opcodes to improve the decoding speed").
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BcInstr {
    pub op: Op,
    pub a: u16,
    pub b: u16,
    pub c: u16,
    pub lit: u64,
}

impl BcInstr {
    pub fn new(op: Op, a: u16, b: u16, c: u16, lit: u64) -> Self {
        BcInstr { op, a, b, c, lit }
    }

    /// Pack an indexed-address literal: scale and displacement.
    pub fn pack_idx(scale: i32, disp: i32) -> u64 {
        ((scale as u32 as u64) << 32) | disp as u32 as u64
    }

    /// Unpack the scale component of an indexed-address literal.
    #[inline(always)]
    pub fn idx_scale(lit: u64) -> i64 {
        (lit >> 32) as u32 as i32 as i64
    }

    /// Unpack the displacement component of an indexed-address literal.
    #[inline(always)]
    pub fn idx_disp(lit: u64) -> i64 {
        lit as u32 as i32 as i64
    }

    /// Pack a conditional-branch literal (then/else instruction indices).
    pub fn pack_branch(then_pc: u32, else_pc: u32) -> u64 {
        ((else_pc as u64) << 32) | then_pc as u64
    }

    #[inline(always)]
    pub fn branch_then(lit: u64) -> usize {
        lit as u32 as usize
    }

    #[inline(always)]
    pub fn branch_else(lit: u64) -> usize {
        (lit >> 32) as usize
    }
}

/// Trap reasons, encoded into `TrapOp`'s literal.
pub const TRAP_OVERFLOW: u64 = 0;
pub const TRAP_DIV_ZERO: u64 = 1;
pub const TRAP_USER_BASE: u64 = 1 << 32;

/// Translation statistics (macro-op fusion counters, §IV-F).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TranslateStats {
    /// Overflow-check sequences fused into a single trapping opcode.
    pub fused_ovf: u32,
    /// `gep`+`load`/`store` pairs fused into indexed memory opcodes.
    pub fused_gep: u32,
}

/// A translated function, ready for interpretation.
#[derive(Clone, Debug)]
pub struct BcFunction {
    pub name: String,
    pub code: Vec<BcInstr>,
    /// Register file size in bytes (the §IV-C metric: 36 KB / 21 KB / 6 KB
    /// for the three allocation strategies on TPC-DS q55).
    pub frame_size: u32,
    /// Byte offsets of the parameter slots, in declaration order.
    pub param_slots: Vec<u16>,
    /// Whether the function returns a value.
    pub has_ret: bool,
    /// Fusion statistics collected during translation.
    pub stats: TranslateStats,
}

impl BcFunction {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Disassemble for debugging and tests.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fn {} (frame {} bytes, params at {:?}):",
            self.name, self.frame_size, self.param_slots
        );
        for (pc, i) in self.code.iter().enumerate() {
            let _ =
                writeln!(s, "  {pc:4}: {:?} a={} b={} c={} lit={:#x}", i.op, i.a, i.b, i.c, i.lit);
        }
        s
    }
}

impl fmt::Display for BcFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

/// Reserved register-file layout (byte offsets): the first two slots hold
/// the constants 0 and 1 ("The first two entries in the register file are
/// initialized to 0 and 1, such that these constants are always readily
/// available"), the third is the scratch slot used for φ-cycle breaking and
/// void call returns.
pub const SLOT_ZERO: u16 = 0;
pub const SLOT_ONE: u16 = 8;
pub const SLOT_SCRATCH: u16 = 16;
/// First allocatable byte offset.
pub const FIRST_FREE_SLOT: u16 = 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_is_16_bytes() {
        assert_eq!(std::mem::size_of::<BcInstr>(), 16);
    }

    #[test]
    fn idx_packing_round_trips() {
        for (scale, disp) in [(8, 0), (1, -4), (4, 1024), (16, -65536), (0, i32::MAX)] {
            let lit = BcInstr::pack_idx(scale, disp);
            assert_eq!(BcInstr::idx_scale(lit), scale as i64);
            assert_eq!(BcInstr::idx_disp(lit), disp as i64);
        }
    }

    #[test]
    fn branch_packing_round_trips() {
        let lit = BcInstr::pack_branch(7, 123456);
        assert_eq!(BcInstr::branch_then(lit), 7);
        assert_eq!(BcInstr::branch_else(lit), 123456);
    }

    // Compile-time layout invariants of the reserved register slots.
    const _: () =
        assert!(SLOT_ZERO < SLOT_ONE && SLOT_ONE < SLOT_SCRATCH && SLOT_SCRATCH < FIRST_FREE_SLOT);
    const _: () = assert!(FIRST_FREE_SLOT.is_multiple_of(8));

    #[test]
    fn disassembly_mentions_ops() {
        let f = BcFunction {
            name: "t".into(),
            code: vec![BcInstr::new(Op::AddI64, 24, 8, 8, 0), BcInstr::new(Op::Ret, 0, 0, 0, 0)],
            frame_size: 32,
            param_slots: vec![],
            has_ret: false,
            stats: TranslateStats::default(),
        };
        let d = f.disassemble();
        assert!(d.contains("AddI64"), "{d}");
        assert!(d.contains("Ret"), "{d}");
    }
}
