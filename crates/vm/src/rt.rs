//! Runtime-call ABI (§IV-E "Interoperability").
//!
//! Generated code — interpreted or compiled — calls into the engine's
//! runtime (hash tables, output writers, string machinery) through a uniform
//! gather-args ABI: the translator copies the call arguments into
//! consecutive 64-bit register slots and the opcode carries the runtime
//! function index. "As we know all exported functions, we can identify
//! missing opcodes at compile time": registration checks the declared
//! signature against the IR module's extern table during translation.

use aqe_ir::{ExternDecl, Type};
use std::fmt;

/// A runtime function: receives a pointer to `nargs` consecutive 64-bit
/// argument slots and a pointer to a 64-bit return slot.
///
/// # Safety contract
/// The implementation must read exactly the declared number of arguments,
/// interpret each with its declared type (narrow integers live in the low
/// bits of their slot), and write the return slot iff the signature declares
/// a return type.
pub type RtFn = unsafe fn(args: *const u64, ret: *mut u64);

/// The registry mapping extern indices (as used by `Instr::Call`) to
/// callable functions. Built once per query by the engine.
#[derive(Clone, Default)]
pub struct Registry {
    fns: Vec<RtFn>,
    decls: Vec<ExternDecl>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry").field("len", &self.fns.len()).finish()
    }
}

/// Registration failure: the provided function table does not line up with
/// the module's extern declarations.
#[derive(Clone, Debug, PartialEq)]
pub struct RegistryError(pub String);

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime registry error: {}", self.0)
    }
}

impl std::error::Error for RegistryError {}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the implementation for the next extern declaration. Must be
    /// called in declaration order; the declaration is retained for
    /// signature checks at translation time.
    pub fn register(&mut self, decl: ExternDecl, f: RtFn) {
        self.decls.push(decl);
        self.fns.push(f);
    }

    /// Build a registry for a module's extern table, pairing each
    /// declaration with its implementation by name.
    pub fn for_externs(
        externs: &[ExternDecl],
        lookup: impl Fn(&str) -> Option<RtFn>,
    ) -> Result<Registry, RegistryError> {
        let mut r = Registry::new();
        for d in externs {
            let f = lookup(&d.name)
                .ok_or_else(|| RegistryError(format!("no implementation for @{}", d.name)))?;
            r.register(d.clone(), f);
        }
        Ok(r)
    }

    pub fn len(&self) -> usize {
        self.fns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    pub fn decl(&self, idx: usize) -> Option<&ExternDecl> {
        self.decls.get(idx)
    }

    /// The function pointer for extern `idx`.
    ///
    /// # Panics
    /// If the index was never registered (translation validates indices, so
    /// reaching this with a bad index is an engine bug).
    #[inline]
    pub fn fn_ptr(&self, idx: usize) -> RtFn {
        self.fns[idx]
    }

    /// Base pointer of the function table, for generated machine code that
    /// indexes runtime calls directly (`aqe-jit`'s native backend). Only
    /// indices the translator validated may be dereferenced through it.
    #[inline]
    pub fn fns_ptr(&self) -> *const RtFn {
        self.fns.as_ptr()
    }

    /// Validate that a call with `idx` and `nargs` matches a registered
    /// declaration; used by the translator.
    pub fn check_call(
        &self,
        idx: usize,
        nargs: usize,
        ret: Option<Type>,
    ) -> Result<(), RegistryError> {
        let d = self
            .decls
            .get(idx)
            .ok_or_else(|| RegistryError(format!("extern #{idx} not registered")))?;
        if d.params.len() != nargs {
            return Err(RegistryError(format!(
                "@{}: call has {nargs} args, declared {}",
                d.name,
                d.params.len()
            )));
        }
        if d.ret != ret {
            return Err(RegistryError(format!(
                "@{}: call return {ret:?}, declared {:?}",
                d.name, d.ret
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    unsafe fn double_it(args: *const u64, ret: *mut u64) {
        unsafe { *ret = (*args).wrapping_mul(2) }
    }

    fn decl() -> ExternDecl {
        ExternDecl { name: "dbl".into(), params: vec![Type::I64], ret: Some(Type::I64) }
    }

    #[test]
    fn register_and_call() {
        let mut r = Registry::new();
        r.register(decl(), double_it);
        assert_eq!(r.len(), 1);
        let args = [21u64];
        let mut ret = 0u64;
        unsafe { (r.fn_ptr(0))(args.as_ptr(), &mut ret) };
        assert_eq!(ret, 42);
    }

    #[test]
    fn check_call_validates_arity_and_return() {
        let mut r = Registry::new();
        r.register(decl(), double_it);
        assert!(r.check_call(0, 1, Some(Type::I64)).is_ok());
        assert!(r.check_call(0, 2, Some(Type::I64)).is_err());
        assert!(r.check_call(0, 1, None).is_err());
        assert!(r.check_call(1, 0, None).is_err());
    }

    #[test]
    fn for_externs_pairs_by_name() {
        let externs = vec![decl()];
        let r = Registry::for_externs(&externs, |n| (n == "dbl").then_some(double_it as RtFn));
        assert!(r.is_ok());
        let missing = Registry::for_externs(&externs, |_| None);
        assert!(missing.is_err());
    }
}
