//! Register-slot allocation (§IV-C).
//!
//! The allocator assigns byte offsets in the register file to SSA values so
//! that (1) every value has a slot, (2) a slot is shared only between values
//! whose live intervals do not overlap, (3) the total file stays small
//! enough to be cache-resident, and (4) allocation runs in linear time.
//!
//! Three strategies are provided, mirroring the paper's comparison on
//! TPC-DS q55 (36 KB without reuse, 21 KB with a fixed-window greedy
//! assignment, 6 KB with the loop-aware linear-time algorithm):
//!
//! * [`AllocStrategy::PaperLinear`] — frees a slot exactly when the
//!   loop-extended live interval ends (the paper's algorithm; default);
//! * [`AllocStrategy::FixedWindow`] — only values whose entire interval fits
//!   within a window of `w` blocks after their definition are ever freed
//!   (what "some JIT systems" do);
//! * [`AllocStrategy::NoReuse`] — every value keeps its slot forever.

use aqe_ir::analysis::LiveRange;

/// Slot-reuse strategy (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AllocStrategy {
    #[default]
    PaperLinear,
    FixedWindow(u32),
    NoReuse,
}

/// The effective lifetime the translator enforces for a value under a given
/// strategy. `end == u32::MAX` means "never freed".
pub fn effective_end(strategy: AllocStrategy, r: LiveRange) -> u32 {
    match strategy {
        AllocStrategy::PaperLinear => r.end,
        AllocStrategy::NoReuse => u32::MAX,
        AllocStrategy::FixedWindow(w) => {
            if r.end.saturating_sub(r.def_pos) <= w && r.start >= r.def_pos.saturating_sub(w) {
                r.end
            } else {
                u32::MAX
            }
        }
    }
}

/// A bump allocator over 8-byte register slots with a free list.
///
/// Offsets are bytes (matching the bytecode operand encoding); the u16
/// operand width caps the file at 64 KiB — far above anything the paper's
/// loop-aware reuse needs, but reachable by the no-reuse strategy on huge
/// generated queries, in which case allocation fails gracefully.
#[derive(Debug)]
pub struct SlotAllocator {
    free: Vec<u16>,
    next: u32,
    high_water: u32,
}

/// Allocation failure: the register file exceeded the addressable 64 KiB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfSlots;

impl SlotAllocator {
    /// Start allocating at `first_free` (byte offset past the reserved
    /// constant/scratch slots).
    pub fn new(first_free: u16) -> Self {
        debug_assert_eq!(first_free % 8, 0);
        SlotAllocator { free: Vec::new(), next: first_free as u32, high_water: first_free as u32 }
    }

    /// Allocate one 8-byte slot, reusing a freed slot when available.
    pub fn alloc(&mut self) -> Result<u16, OutOfSlots> {
        if let Some(off) = self.free.pop() {
            return Ok(off);
        }
        let off = self.next;
        if off + 8 > u16::MAX as u32 + 1 {
            return Err(OutOfSlots);
        }
        self.next += 8;
        self.high_water = self.high_water.max(self.next);
        Ok(off as u16)
    }

    /// Allocate `n` guaranteed-consecutive slots (for call argument areas);
    /// never drawn from the free list.
    pub fn alloc_contiguous(&mut self, n: usize) -> Result<u16, OutOfSlots> {
        let off = self.next;
        let bytes = n as u32 * 8;
        if off + bytes > u16::MAX as u32 + 1 {
            return Err(OutOfSlots);
        }
        self.next += bytes;
        self.high_water = self.high_water.max(self.next);
        Ok(off as u16)
    }

    /// Return a slot to the free list.
    pub fn free(&mut self, off: u16) {
        debug_assert!((off as u32) < self.next && off.is_multiple_of(8));
        debug_assert!(!self.free.contains(&off), "double free of slot {off}");
        self.free.push(off);
    }

    /// Register file size in bytes (high-water mark).
    pub fn frame_size(&self) -> u32 {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_then_reuse() {
        let mut a = SlotAllocator::new(24);
        let s1 = a.alloc().unwrap();
        let s2 = a.alloc().unwrap();
        assert_eq!((s1, s2), (24, 32));
        a.free(s1);
        assert_eq!(a.alloc().unwrap(), 24, "freed slot is reused");
        assert_eq!(a.frame_size(), 40);
    }

    #[test]
    fn contiguous_area() {
        let mut a = SlotAllocator::new(24);
        let base = a.alloc_contiguous(4).unwrap();
        assert_eq!(base, 24);
        let after = a.alloc().unwrap();
        assert_eq!(after, 24 + 32);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut a = SlotAllocator::new(0);
        // 8192 slots of 8 bytes fill the 64 KiB space.
        for _ in 0..8192 {
            a.alloc().unwrap();
        }
        assert_eq!(a.alloc(), Err(OutOfSlots));
    }

    #[test]
    fn effective_end_strategies() {
        let r = LiveRange { start: 2, end: 10, def_pos: 3 };
        assert_eq!(effective_end(AllocStrategy::PaperLinear, r), 10);
        assert_eq!(effective_end(AllocStrategy::NoReuse, r), u32::MAX);
        assert_eq!(effective_end(AllocStrategy::FixedWindow(20), r), 10);
        assert_eq!(effective_end(AllocStrategy::FixedWindow(2), r), u32::MAX);
    }
}
