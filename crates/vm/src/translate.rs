//! Single-pass IR→bytecode translation (§IV-B, Fig. 9).
//!
//! ```text
//! compute liveness and order blocks
//! for each block b:
//!     allocate registers for values that become live in b
//!     for each instruction i in b:
//!         if i is not subsumed:
//!             translate i into VM opcodes
//!     propagate values in φ nodes
//!     release register for values that ended in b
//! ```
//!
//! The translation is strictly linear in the size of the function — the
//! property §V-E depends on ("the bytecode interpreter scales perfectly and
//! is able to process this very large query in only 0.9 seconds"). Liveness
//! comes from the loop-aware linear algorithm in `aqe-ir`; register slots
//! are reused through a free list; φ nodes become parallel-copy groups at
//! predecessor ends (with edge trampolines on critical edges and a scratch
//! slot for cycle breaking); and the two §IV-F macro-op fusions are applied:
//! overflow-check sequences and `gep`+`load`/`store` pairs.

use crate::bytecode::{
    BcFunction, BcInstr, Op, TranslateStats, FIRST_FREE_SLOT, SLOT_ONE, SLOT_SCRATCH, SLOT_ZERO,
    TRAP_DIV_ZERO, TRAP_OVERFLOW, TRAP_USER_BASE,
};
use crate::regalloc::{effective_end, AllocStrategy, SlotAllocator};
use aqe_ir::analysis::Analyses;
use aqe_ir::{
    BinOp, CastKind, CmpPred, Constant, ExternDecl, Function, Instr, Operand, OvfOp, Terminator,
    TrapKind, Type, ValueId,
};
use std::fmt;

/// Translation options.
#[derive(Clone, Copy, Debug)]
pub struct TranslateOptions {
    pub strategy: AllocStrategy,
    /// Fuse the 4-instruction overflow-check pattern into one opcode.
    pub fuse_ovf: bool,
    /// Fuse `gep`+`load`/`store` pairs into indexed memory opcodes.
    pub fuse_gep: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions { strategy: AllocStrategy::PaperLinear, fuse_ovf: true, fuse_gep: true }
    }
}

/// Translation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum TranslateError {
    /// The register file exceeded the addressable 64 KiB (only reachable
    /// with the no-reuse ablation strategy on enormous functions).
    OutOfRegisters(String),
    /// A call does not match the extern declarations.
    BadCall(String),
    /// IR construct the VM does not support.
    Unsupported(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::OutOfRegisters(m) => write!(f, "out of registers: {m}"),
            TranslateError::BadCall(m) => write!(f, "bad call: {m}"),
            TranslateError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for TranslateError {}

const NO_SLOT: u16 = u16::MAX;

#[derive(Clone, Copy)]
enum CopySrc {
    Slot(u16),
    Const(u64),
}

enum Target {
    Block(u32),
    Tramp(u32),
}

struct Fixup {
    pc: usize,
    then_t: Target,
    else_t: Option<Target>,
}

struct Trampoline {
    copies: Vec<(u16, CopySrc)>,
    target_pos: u32,
    pc: u32,
}

struct Tx<'a> {
    f: &'a Function,
    externs: &'a [ExternDecl],
    opts: TranslateOptions,
    an: Analyses,
    code: Vec<BcInstr>,
    alloc: SlotAllocator,
    slot: Vec<u16>,
    /// Unfused overflow pairs occupy two slots (value, flag); dense per
    /// value id, `(NO_SLOT, NO_SLOT)` = unassigned.
    pair_slot: Vec<(u16, u16)>,
    uses_left: Vec<u32>,
    eff_end: Vec<u32>,
    /// Whether the live interval is confined to a single block. Only such
    /// values may be released mid-block at their last use; anything whose
    /// lifetime was extended across blocks (in particular loop-extended
    /// lifetimes, §IV-D) is released at the block boundary — "we consider
    /// block boundaries only when the control flow forces us to extend the
    /// lifetime of a value".
    point_range: Vec<bool>,
    freed: Vec<bool>,
    subsumed: Vec<bool>,
    /// Values whose interval starts/ends at each RPO position, CSR-packed
    /// (`*_off[pos]..*_off[pos+1]` indexes the flat list).
    starts: Vec<ValueId>,
    starts_off: Vec<u32>,
    ends: Vec<ValueId>,
    ends_off: Vec<u32>,
    block_pc: Vec<u32>,
    fixups: Vec<Fixup>,
    trampolines: Vec<Trampoline>,
    arg_base: u16,
    stats: TranslateStats,
}

/// Translate one function into VM bytecode.
pub fn translate(
    f: &Function,
    externs: &[ExternDecl],
    opts: TranslateOptions,
) -> Result<BcFunction, TranslateError> {
    let an = Analyses::compute(f);
    let nv = f.value_count();
    let npos = an.rpo.len();

    let mut uses_left = vec![0u32; nv];
    let mut eff_end = vec![u32::MAX; nv];
    let mut point_range = vec![false; nv];
    // Start/end lists per RPO position, packed CSR-style: count, prefix-sum,
    // fill — three flat allocations instead of `2 × npos` growing vectors.
    let mut range_start = vec![u32::MAX; nv];
    let mut starts_off = vec![0u32; npos + 2];
    let mut ends_off = vec![0u32; npos + 2];
    for i in 0..nv {
        let v = ValueId(i as u32);
        uses_left[i] = an.live.use_count(v);
        if let Some(r) = an.live.range(v) {
            if f.value_type(v).has_slot() {
                range_start[i] = r.start;
                starts_off[r.start as usize + 2] += 1;
                point_range[i] = r.start == r.end;
                let e = effective_end(opts.strategy, r);
                eff_end[i] = e;
                if e != u32::MAX {
                    ends_off[e as usize + 2] += 1;
                }
            }
        }
    }
    for p in 2..npos + 2 {
        starts_off[p] += starts_off[p - 1];
        ends_off[p] += ends_off[p - 1];
    }
    // The shifted-by-one prefix sums leave `*_off[pos + 1]` as the running
    // cursor for bucket `pos` during the fill; afterwards `*_off[pos]` /
    // `*_off[pos + 1]` bound bucket `pos`, values in ascending id order.
    let mut starts = vec![ValueId(0); starts_off[npos + 1] as usize];
    let mut ends = vec![ValueId(0); ends_off[npos + 1] as usize];
    for i in 0..nv {
        if range_start[i] != u32::MAX {
            let cur = &mut starts_off[range_start[i] as usize + 1];
            starts[*cur as usize] = ValueId(i as u32);
            *cur += 1;
            if eff_end[i] != u32::MAX {
                let cur = &mut ends_off[eff_end[i] as usize + 1];
                ends[*cur as usize] = ValueId(i as u32);
                *cur += 1;
            }
        }
    }
    starts_off.truncate(npos + 1);
    ends_off.truncate(npos + 1);

    // Pre-scan for the largest call arity so the gather area can be placed
    // contiguously at the bottom of the frame.
    let mut max_args = 0usize;
    for (_, b) in f.blocks() {
        for &vid in &b.instrs {
            if let Some(Instr::Call { args, .. }) = f.instr(vid) {
                max_args = max_args.max(args.len());
            }
        }
    }

    let mut alloc = SlotAllocator::new(FIRST_FREE_SLOT);
    let arg_base = alloc
        .alloc_contiguous(max_args)
        .map_err(|_| TranslateError::OutOfRegisters("call argument area".into()))?;

    let tx = Tx {
        f,
        externs,
        opts,
        an,
        code: Vec::with_capacity(f.instruction_count() * 2),
        alloc,
        slot: vec![NO_SLOT; nv],
        pair_slot: vec![(NO_SLOT, NO_SLOT); nv],
        uses_left,
        eff_end,
        point_range,
        freed: vec![false; nv],
        subsumed: vec![false; nv],
        starts,
        starts_off,
        ends,
        ends_off,
        block_pc: vec![0; npos],
        fixups: Vec::new(),
        trampolines: Vec::new(),
        arg_base,
        stats: TranslateStats::default(),
    };
    tx.run()
}

impl<'a> Tx<'a> {
    fn run(mut self) -> Result<BcFunction, TranslateError> {
        // Parameters get their slots first, in declaration order.
        let mut param_slots = Vec::with_capacity(self.f.param_count());
        for i in 0..self.f.param_count() {
            let v = ValueId(i as u32);
            let s = self.ensure_slot(v)?;
            param_slots.push(s);
        }

        if self.opts.fuse_ovf || self.opts.fuse_gep {
            self.mark_fusions();
        }

        for pos in 0..self.an.rpo.len() {
            self.translate_block(pos as u32)?;
        }
        self.emit_trampolines();
        self.patch_fixups();

        Ok(BcFunction {
            name: self.f.name.clone(),
            code: self.code,
            frame_size: self.alloc.frame_size(),
            param_slots,
            has_ret: self.f.ret.is_some(),
            stats: self.stats,
        })
    }

    // ---- fusion marking (§IV-F) -----------------------------------------

    /// Mark instructions subsumed by macro ops. Overflow pattern: a
    /// `BinOvf` whose two extracts sit in the same block, whose flag feeds
    /// this block's `CondBr` into a bare trap block. Gep pattern: a `gep`
    /// immediately followed by its only consumer (`load` or `store`).
    fn mark_fusions(&mut self) {
        for p in 0..self.an.rpo.order.len() {
            let bid = self.an.rpo.order[p];
            let block = self.f.block(bid);
            for (i, &vid) in block.instrs.iter().enumerate() {
                match self.f.instr(vid).unwrap() {
                    Instr::BinOvf { .. } if self.opts.fuse_ovf => {
                        // Expect: extract0, extract1 (either order) right
                        // after, flag used once by the terminator CondBr
                        // whose one arm is a trap block.
                        if i + 2 >= block.instrs.len() {
                            continue;
                        }
                        let (e1, e2) = (block.instrs[i + 1], block.instrs[i + 2]);
                        let (val, flag) = match (self.f.instr(e1), self.f.instr(e2)) {
                            (
                                Some(Instr::Extract { pair: p1, field: 0 }),
                                Some(Instr::Extract { pair: p2, field: 1 }),
                            ) if *p1 == vid && *p2 == vid => (e1, e2),
                            (
                                Some(Instr::Extract { pair: p1, field: 1 }),
                                Some(Instr::Extract { pair: p2, field: 0 }),
                            ) if *p1 == vid && *p2 == vid => (e2, e1),
                            _ => continue,
                        };
                        if self.an.live.use_count(vid) != 2
                            || self.an.live.use_count(flag) != 1
                            || i + 2 != block.instrs.len() - 1
                        {
                            continue;
                        }
                        let Terminator::CondBr { cond, then_bb, else_bb } = &block.term else {
                            continue;
                        };
                        if cond.as_value() != Some(flag) {
                            continue;
                        }
                        let trap_is_then = self.is_overflow_trap_block(*then_bb);
                        let trap_is_else = self.is_overflow_trap_block(*else_bb);
                        if !trap_is_then && !trap_is_else {
                            continue;
                        }
                        // Subsume the pair and the flag; `val` becomes the
                        // fused destination; the CondBr is rewritten during
                        // emission (detected via `subsumed[flag]`).
                        self.subsumed[vid.index()] = true;
                        self.subsumed[flag.index()] = true;
                        let _ = val;
                        self.stats.fused_ovf += 1;
                    }
                    Instr::Gep { .. } if self.opts.fuse_gep => {
                        if self.an.live.use_count(vid) != 1 || i + 1 >= block.instrs.len() {
                            continue;
                        }
                        let next = block.instrs[i + 1];
                        let consumes = match self.f.instr(next) {
                            Some(Instr::Load { ptr, .. }) => ptr.as_value() == Some(vid),
                            Some(Instr::Store { ptr, .. }) => ptr.as_value() == Some(vid),
                            _ => false,
                        };
                        if consumes && self.gep_fits_packed(vid) {
                            self.subsumed[vid.index()] = true;
                            self.stats.fused_gep += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn gep_fits_packed(&self, gep: ValueId) -> bool {
        let Some(Instr::Gep { offset, index, .. }) = self.f.instr(gep) else {
            return false;
        };
        match index {
            None => true, // plain displacement uses the full 64-bit literal
            Some((_, scale)) => i32::try_from(*offset).is_ok() && i32::try_from(*scale).is_ok(),
        }
    }

    fn is_overflow_trap_block(&self, b: aqe_ir::BlockId) -> bool {
        let blk = self.f.block(b);
        blk.instrs.is_empty() && matches!(blk.term, Terminator::Trap { kind: TrapKind::Overflow })
    }

    // ---- slots ------------------------------------------------------------

    fn ensure_slot(&mut self, v: ValueId) -> Result<u16, TranslateError> {
        if self.slot[v.index()] == NO_SLOT {
            self.slot[v.index()] = self
                .alloc
                .alloc()
                .map_err(|_| TranslateError::OutOfRegisters(format!("allocating {v}")))?;
        }
        Ok(self.slot[v.index()])
    }

    fn ensure_pair_slots(&mut self, v: ValueId) -> Result<(u16, u16), TranslateError> {
        let p = self.pair_slot[v.index()];
        if p.0 != NO_SLOT {
            return Ok(p);
        }
        let a =
            self.alloc.alloc().map_err(|_| TranslateError::OutOfRegisters(format!("pair {v}")))?;
        let b =
            self.alloc.alloc().map_err(|_| TranslateError::OutOfRegisters(format!("pair {v}")))?;
        self.pair_slot[v.index()] = (a, b);
        Ok((a, b))
    }

    fn use_slot(&self, v: ValueId) -> u16 {
        let s = self.slot[v.index()];
        debug_assert_ne!(s, NO_SLOT, "use of {v} before a slot was assigned");
        s
    }

    /// Account for one use of `v` at block position `pos`, freeing its slot
    /// when this was the last use of a block-local value. Values whose
    /// interval spans blocks are released only at the end of their last
    /// block (see `point_range`).
    fn dec_use(&mut self, v: ValueId, pos: u32) {
        let i = v.index();
        debug_assert!(self.uses_left[i] > 0, "use count underflow for {v}");
        self.uses_left[i] -= 1;
        if self.uses_left[i] == 0 && self.eff_end[i] == pos && self.point_range[i] && !self.freed[i]
        {
            self.free_value(v);
        }
    }

    fn free_value(&mut self, v: ValueId) {
        let i = v.index();
        if self.freed[i] {
            return;
        }
        self.freed[i] = true;
        let (pa, pb) = self.pair_slot[i];
        if pa != NO_SLOT {
            self.alloc.free(pa);
            self.alloc.free(pb);
        } else if self.slot[i] != NO_SLOT {
            self.alloc.free(self.slot[i]);
        }
    }

    /// Resolve an operand: the slot of a value, or a materialised constant.
    /// Constants 0 and 1 hit the preloaded slots; other constants go to a
    /// temp slot freed after the consuming instruction.
    fn operand_slot(&mut self, op: Operand, temps: &mut Vec<u16>) -> Result<u16, TranslateError> {
        match op {
            Operand::Value(v) => Ok(self.use_slot(v)),
            Operand::Const(c) => self.materialize(c, temps),
        }
    }

    fn materialize(&mut self, c: Constant, temps: &mut Vec<u16>) -> Result<u16, TranslateError> {
        match c.bits {
            0 => Ok(SLOT_ZERO),
            1 => Ok(SLOT_ONE),
            bits => {
                let t = self
                    .alloc
                    .alloc()
                    .map_err(|_| TranslateError::OutOfRegisters("constant temp".into()))?;
                self.emit(Op::Const64, t, 0, 0, bits);
                temps.push(t);
                Ok(t)
            }
        }
    }

    fn emit(&mut self, op: Op, a: u16, b: u16, c: u16, lit: u64) {
        self.code.push(BcInstr::new(op, a, b, c, lit));
    }

    // ---- block translation --------------------------------------------------

    fn translate_block(&mut self, pos: u32) -> Result<(), TranslateError> {
        self.block_pc[pos as usize] = self.code.len() as u32;
        let bid = self.an.rpo.order[pos as usize];

        // "allocate registers for values that become live in b" — values
        // whose interval starts here but whose definition lies elsewhere
        // (loop-extended lifetimes, forward-pred φ results).
        for idx in
            self.starts_off[pos as usize] as usize..self.starts_off[pos as usize + 1] as usize
        {
            let v = self.starts[idx];
            let r = self.an.live.range(v).unwrap();
            if r.def_pos != pos && !self.subsumed[v.index()] {
                if self.f.value_type(v).ovf_value_type().is_some() {
                    self.ensure_pair_slots(v)?;
                } else {
                    self.ensure_slot(v)?;
                }
            }
        }

        let n_instrs = self.f.block(bid).instrs.len();
        let mut fused_ovf_condbr = false;
        let mut i = 0usize;
        while i < n_instrs {
            // Per-iteration re-borrow (instrs stay unmodified; only slot
            // state mutates) — no block clone.
            let vid = self.f.block(bid).instrs[i];
            let instr = *self.f.instr(vid).unwrap();
            if self.subsumed[vid.index()] {
                if let Instr::BinOvf { op, ty, a, b } = instr {
                    // Fused overflow check: the next two instructions are
                    // the extracts; emit one trapping opcode writing the
                    // value extract's slot (§IV-F).
                    let (val, flag) = self.fused_extracts(bid, i);
                    let mut temps = Vec::new();
                    let sa = self.operand_slot(a, &mut temps)?;
                    let sb = self.operand_slot(b, &mut temps)?;
                    let dst = self.ensure_slot(val)?;
                    let opcode = match (op, ty) {
                        (OvfOp::Add, Type::I32) => Op::AddOvfTrapI32,
                        (OvfOp::Add, Type::I64) => Op::AddOvfTrapI64,
                        (OvfOp::Sub, Type::I32) => Op::SubOvfTrapI32,
                        (OvfOp::Sub, Type::I64) => Op::SubOvfTrapI64,
                        (OvfOp::Mul, Type::I32) => Op::MulOvfTrapI32,
                        (OvfOp::Mul, Type::I64) => Op::MulOvfTrapI64,
                        _ => unreachable!("verifier enforces i32/i64"),
                    };
                    self.emit(opcode, dst, sa, sb, 0);
                    for t in temps {
                        self.alloc.free(t);
                    }
                    self.dec_operand(a, pos);
                    self.dec_operand(b, pos);
                    // The pair's two uses (the extracts) and the flag's use
                    // (the condbr) are all folded into the macro op.
                    self.uses_left[vid.index()] = 0;
                    self.uses_left[flag.index()] = 0;
                    self.maybe_free_dead(val, pos);
                    fused_ovf_condbr = true;
                    // Skip the two extracts.
                    i += 3;
                    continue;
                }
                // Subsumed geps are re-materialised by their consumer.
                i += 1;
                continue;
            }
            self.translate_instr(vid, &instr, pos)?;
            i += 1;
        }

        // "propagate values in φ nodes", then the terminator.
        self.translate_terminator(bid, pos, fused_ovf_condbr)?;

        // "release register for values that ended in b".
        for idx in self.ends_off[pos as usize] as usize..self.ends_off[pos as usize + 1] as usize {
            let v = self.ends[idx];
            if !self.freed[v.index()] && !self.subsumed[v.index()] {
                debug_assert_eq!(
                    self.uses_left[v.index()],
                    0,
                    "{v} still has uses but its interval ends at {pos}"
                );
                self.free_value(v);
            }
        }
        Ok(())
    }

    fn fused_extracts(&self, bid: aqe_ir::BlockId, i: usize) -> (ValueId, ValueId) {
        let instrs = &self.f.block(bid).instrs;
        let (e1, e2) = (instrs[i + 1], instrs[i + 2]);
        match self.f.instr(e1) {
            Some(Instr::Extract { field: 0, .. }) => (e1, e2),
            _ => (e2, e1),
        }
    }

    fn dec_operand(&mut self, op: Operand, pos: u32) {
        if let Operand::Value(v) = op {
            self.dec_use(v, pos);
        }
    }

    /// Free a just-defined value that is never used (still computed, e.g.
    /// for calls with ignored results).
    fn maybe_free_dead(&mut self, v: ValueId, pos: u32) {
        let i = v.index();
        if self.uses_left[i] == 0 && self.eff_end[i] == pos && self.point_range[i] && !self.freed[i]
        {
            self.free_value(v);
        }
    }

    fn translate_instr(
        &mut self,
        vid: ValueId,
        instr: &Instr,
        pos: u32,
    ) -> Result<(), TranslateError> {
        let mut temps: Vec<u16> = Vec::new();
        match instr {
            Instr::Bin { op, ty, a, b } => {
                self.emit_bin(vid, *op, *ty, *a, *b, &mut temps, pos)?;
            }
            Instr::BinOvf { op, ty, a, b } => {
                // Unfused path: compute value and flag into a slot pair.
                let sa = self.operand_slot(*a, &mut temps)?;
                let sb = self.operand_slot(*b, &mut temps)?;
                let (vslot, fslot) = self.ensure_pair_slots(vid)?;
                let (vop, fop) = match (op, ty) {
                    (OvfOp::Add, Type::I32) => (Op::AddOvfValI32, Op::AddOvfFlagI32),
                    (OvfOp::Add, Type::I64) => (Op::AddOvfValI64, Op::AddOvfFlagI64),
                    (OvfOp::Sub, Type::I32) => (Op::SubOvfValI32, Op::SubOvfFlagI32),
                    (OvfOp::Sub, Type::I64) => (Op::SubOvfValI64, Op::SubOvfFlagI64),
                    (OvfOp::Mul, Type::I32) => (Op::MulOvfValI32, Op::MulOvfFlagI32),
                    (OvfOp::Mul, Type::I64) => (Op::MulOvfValI64, Op::MulOvfFlagI64),
                    _ => unreachable!(),
                };
                self.emit(fop, fslot, sa, sb, 0);
                self.emit(vop, vslot, sa, sb, 0);
                self.dec_operand(*a, pos);
                self.dec_operand(*b, pos);
                self.maybe_free_dead(vid, pos);
            }
            Instr::Extract { pair, field } => {
                let (vslot, fslot) = self.pair_slot[pair.index()];
                debug_assert_ne!(vslot, NO_SLOT, "extract from pair without slots");
                let src = if *field == 0 { vslot } else { fslot };
                let dst = self.ensure_slot(vid)?;
                self.emit(Op::Mov64, dst, src, 0, 0);
                self.dec_use(*pair, pos);
                self.maybe_free_dead(vid, pos);
            }
            Instr::Cmp { pred, ty, a, b } => {
                self.emit_cmp(vid, *pred, *ty, *a, *b, &mut temps, pos)?;
            }
            Instr::Select { cond, t, f: fv, .. } => {
                let sc = self.operand_slot(*cond, &mut temps)?;
                let st = self.operand_slot(*t, &mut temps)?;
                let sf = self.operand_slot(*fv, &mut temps)?;
                let dst = self.ensure_slot(vid)?;
                self.emit(Op::Select64, dst, sc, st, sf as u64);
                self.dec_operand(*cond, pos);
                self.dec_operand(*t, pos);
                self.dec_operand(*fv, pos);
                self.maybe_free_dead(vid, pos);
            }
            Instr::Cast { kind, to, v, from } => {
                self.emit_cast(vid, *kind, *from, *to, *v, &mut temps, pos)?;
            }
            Instr::Load { ty, ptr } => {
                self.emit_load(vid, *ty, *ptr, &mut temps, pos)?;
            }
            Instr::Store { ty, ptr, val } => {
                self.emit_store(*ty, *ptr, *val, &mut temps, pos)?;
            }
            Instr::Gep { base, offset, index } => {
                let dst = self.ensure_slot(vid)?;
                let sb = self.operand_slot(*base, &mut temps)?;
                match index {
                    None => {
                        self.emit(Op::AddImmI64, dst, sb, 0, *offset as u64);
                    }
                    Some((iop, scale)) => {
                        if let Some(c) = iop.as_const() {
                            let disp = offset + c.as_i64() * scale;
                            self.emit(Op::AddImmI64, dst, sb, 0, disp as u64);
                        } else if let (Ok(s32), Ok(d32)) =
                            (i32::try_from(*scale), i32::try_from(*offset))
                        {
                            let si = self.operand_slot(*iop, &mut temps)?;
                            self.emit(Op::GepIdx, dst, sb, si, BcInstr::pack_idx(s32, d32));
                        } else {
                            // Rare general fallback: dst = base + idx*scale + off
                            let si = self.operand_slot(*iop, &mut temps)?;
                            self.emit(Op::MulImmI64, SLOT_SCRATCH, si, 0, *scale as u64);
                            self.emit(Op::AddI64, dst, sb, SLOT_SCRATCH, 0);
                            self.emit(Op::AddImmI64, dst, dst, 0, *offset as u64);
                        }
                        self.dec_operand(*iop, pos);
                    }
                }
                self.dec_operand(*base, pos);
                self.maybe_free_dead(vid, pos);
            }
            Instr::Call { func, args } => {
                let decl = self.externs.get(func.index()).ok_or_else(|| {
                    TranslateError::BadCall(format!("extern #{} not declared", func.0))
                })?;
                if decl.params.len() != args.len() {
                    return Err(TranslateError::BadCall(format!(
                        "@{}: {} args, declared {}",
                        decl.name,
                        args.len(),
                        decl.params.len()
                    )));
                }
                let has_ret = decl.ret.is_some();
                // Gather arguments into the contiguous call area. Indexed
                // pool reads: each access re-borrows `self.f` briefly so the
                // `self.emit` calls in between stay legal.
                for k in 0..args.len() {
                    let a = self.f.operands(*args)[k];
                    let dst = self.arg_base + (k as u16) * 8;
                    match a {
                        Operand::Const(c) => self.emit(Op::Const64, dst, 0, 0, c.bits),
                        Operand::Value(v) => {
                            let s = self.use_slot(v);
                            self.emit(Op::Mov64, dst, s, 0, 0);
                        }
                    }
                }
                let dst = if has_ret { self.ensure_slot(vid)? } else { SLOT_SCRATCH };
                self.emit(Op::CallRt, dst, self.arg_base, args.len() as u16, func.0 as u64);
                for k in 0..args.len() {
                    let a = self.f.operands(*args)[k];
                    self.dec_operand(a, pos);
                }
                if has_ret {
                    self.maybe_free_dead(vid, pos);
                }
            }
            Instr::Phi { .. } => {
                // φ values materialise through predecessor-end copies; here
                // we only make sure the destination slot exists.
                self.ensure_slot(vid)?;
            }
        }
        for t in temps {
            self.alloc.free(t);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_bin(
        &mut self,
        vid: ValueId,
        op: BinOp,
        ty: Type,
        mut a: Operand,
        mut b: Operand,
        temps: &mut Vec<u16>,
        pos: u32,
    ) -> Result<(), TranslateError> {
        let commutative =
            matches!(op, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor);
        if commutative && a.as_const().is_some() && b.as_const().is_none() {
            std::mem::swap(&mut a, &mut b);
        }
        // Immediate form when the rhs is constant and the type supports it.
        if let Some(c) = b.as_const() {
            if let Some(imm_op) = imm_bin_op(op, ty) {
                let sa = self.operand_slot(a, temps)?;
                let dst = self.ensure_slot(vid)?;
                self.emit(imm_op, dst, sa, 0, c.bits);
                self.dec_operand(a, pos);
                self.maybe_free_dead(vid, pos);
                return Ok(());
            }
        }
        let sa = self.operand_slot(a, temps)?;
        let sb = self.operand_slot(b, temps)?;
        let dst = self.ensure_slot(vid)?;
        let opcode = reg_bin_op(op, ty)
            .ok_or_else(|| TranslateError::Unsupported(format!("{} on {ty}", op.name())))?;
        self.emit(opcode, dst, sa, sb, 0);
        self.dec_operand(a, pos);
        self.dec_operand(b, pos);
        self.maybe_free_dead(vid, pos);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_cmp(
        &mut self,
        vid: ValueId,
        mut pred: CmpPred,
        ty: Type,
        mut a: Operand,
        mut b: Operand,
        temps: &mut Vec<u16>,
        pos: u32,
    ) -> Result<(), TranslateError> {
        if a.as_const().is_some() && b.as_const().is_none() {
            std::mem::swap(&mut a, &mut b);
            pred = pred.swapped();
        }
        if let Some(c) = b.as_const() {
            if let Some(imm_op) = imm_cmp_op(pred, ty) {
                let sa = self.operand_slot(a, temps)?;
                let dst = self.ensure_slot(vid)?;
                self.emit(imm_op, dst, sa, 0, c.bits);
                self.dec_operand(a, pos);
                self.maybe_free_dead(vid, pos);
                return Ok(());
            }
        }
        let sa = self.operand_slot(a, temps)?;
        let sb = self.operand_slot(b, temps)?;
        let dst = self.ensure_slot(vid)?;
        let opcode = reg_cmp_op(pred, ty)
            .ok_or_else(|| TranslateError::Unsupported(format!("cmp {} on {ty}", pred.name())))?;
        self.emit(opcode, dst, sa, sb, 0);
        self.dec_operand(a, pos);
        self.dec_operand(b, pos);
        self.maybe_free_dead(vid, pos);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_cast(
        &mut self,
        vid: ValueId,
        kind: CastKind,
        from: Type,
        to: Type,
        v: Operand,
        temps: &mut Vec<u16>,
        pos: u32,
    ) -> Result<(), TranslateError> {
        let sv = self.operand_slot(v, temps)?;
        let dst = self.ensure_slot(vid)?;
        match kind {
            CastKind::Trunc | CastKind::Bitcast => {
                // Little-endian slot semantics make truncation and bit
                // reinterpretation plain 8-byte copies.
                self.emit(Op::Mov64, dst, sv, 0, 0);
            }
            CastKind::ZExt | CastKind::SExt => {
                let opcode = ext_op(kind, from, to).ok_or_else(|| {
                    TranslateError::Unsupported(format!("{} {from} -> {to}", kind.name()))
                })?;
                self.emit(opcode, dst, sv, 0, 0);
            }
            CastKind::SiToFp => match from {
                Type::I32 => self.emit(Op::SiToFpI32, dst, sv, 0, 0),
                Type::I64 => self.emit(Op::SiToFpI64, dst, sv, 0, 0),
                Type::I8 | Type::I16 => {
                    let widen = if from == Type::I8 { Op::SExtI8I64 } else { Op::SExtI16I64 };
                    self.emit(widen, SLOT_SCRATCH, sv, 0, 0);
                    self.emit(Op::SiToFpI64, dst, SLOT_SCRATCH, 0, 0);
                }
                _ => {
                    return Err(TranslateError::Unsupported(format!("sitofp from {from}")));
                }
            },
            CastKind::FpToSi => match to {
                Type::I64 => self.emit(Op::FpToSiI64, dst, sv, 0, 0),
                _ => self.emit(Op::FpToSiI32, dst, sv, 0, 0),
            },
        }
        self.dec_operand(v, pos);
        self.maybe_free_dead(vid, pos);
        Ok(())
    }

    fn emit_load(
        &mut self,
        vid: ValueId,
        ty: Type,
        ptr: Operand,
        temps: &mut Vec<u16>,
        pos: u32,
    ) -> Result<(), TranslateError> {
        let width_ops = load_ops(ty);
        // Fused gep? (§IV-F: "the GetElementPtr instruction followed by a
        // load or store … merged into one VM opcode".)
        if let Some(gv) = ptr.as_value() {
            if self.subsumed[gv.index()] {
                let Some(Instr::Gep { base, offset, index }) = self.f.instr(gv).cloned() else {
                    unreachable!("subsumed non-gep");
                };
                let sb = self.operand_slot(base, temps)?;
                let dst = self.ensure_slot(vid)?;
                match index {
                    None => self.emit(width_ops.disp, dst, sb, 0, offset as u64),
                    Some((iop, scale)) => {
                        if let Some(c) = iop.as_const() {
                            let disp = offset + c.as_i64() * scale;
                            self.emit(width_ops.disp, dst, sb, 0, disp as u64);
                        } else {
                            let si = self.operand_slot(iop, temps)?;
                            self.emit(
                                width_ops.idx,
                                dst,
                                sb,
                                si,
                                BcInstr::pack_idx(scale as i32, offset as i32),
                            );
                            self.dec_operand(iop, pos);
                        }
                    }
                }
                self.dec_operand(base, pos);
                // The gep value's single use is this load.
                self.uses_left[gv.index()] = 0;
                self.maybe_free_dead(vid, pos);
                return Ok(());
            }
        }
        let sp = self.operand_slot(ptr, temps)?;
        let dst = self.ensure_slot(vid)?;
        self.emit(width_ops.plain, dst, sp, 0, 0);
        self.dec_operand(ptr, pos);
        self.maybe_free_dead(vid, pos);
        Ok(())
    }

    fn emit_store(
        &mut self,
        ty: Type,
        ptr: Operand,
        val: Operand,
        temps: &mut Vec<u16>,
        pos: u32,
    ) -> Result<(), TranslateError> {
        let width_ops = store_ops(ty);
        let sv = self.operand_slot(val, temps)?;
        if let Some(gv) = ptr.as_value() {
            if self.subsumed[gv.index()] {
                let Some(Instr::Gep { base, offset, index }) = self.f.instr(gv).cloned() else {
                    unreachable!("subsumed non-gep");
                };
                let sb = self.operand_slot(base, temps)?;
                match index {
                    None => self.emit(width_ops.disp, sb, sv, 0, offset as u64),
                    Some((iop, scale)) => {
                        if let Some(c) = iop.as_const() {
                            let disp = offset + c.as_i64() * scale;
                            self.emit(width_ops.disp, sb, sv, 0, disp as u64);
                        } else {
                            let si = self.operand_slot(iop, temps)?;
                            self.emit(
                                width_ops.idx,
                                sb,
                                sv,
                                si,
                                BcInstr::pack_idx(scale as i32, offset as i32),
                            );
                            self.dec_operand(iop, pos);
                        }
                    }
                }
                self.dec_operand(base, pos);
                self.uses_left[gv.index()] = 0;
                self.dec_operand(val, pos);
                return Ok(());
            }
        }
        let sp = self.operand_slot(ptr, temps)?;
        self.emit(width_ops.plain, sp, sv, 0, 0);
        self.dec_operand(ptr, pos);
        self.dec_operand(val, pos);
        Ok(())
    }

    // ---- terminators and φ propagation ---------------------------------

    fn phi_copies_for_edge(
        &mut self,
        pred: aqe_ir::BlockId,
        succ: aqe_ir::BlockId,
        pos: u32,
    ) -> Vec<(u16, CopySrc)> {
        let mut copies = Vec::new();
        for j in 0..self.f.block(succ).instrs.len() {
            let pvid = self.f.block(succ).instrs[j];
            let Some(&Instr::Phi { incomings, .. }) = self.f.instr(pvid) else {
                break;
            };
            for k in 0..incomings.len() {
                let (pb, op) = self.f.phi_incomings(incomings)[k];
                if pb != pred {
                    continue;
                }
                let dst = self.use_slot(pvid);
                let src = match op {
                    Operand::Const(c) => CopySrc::Const(c.bits),
                    Operand::Value(v) => CopySrc::Slot(self.use_slot(v)),
                };
                copies.push((dst, src));
                // Bookkeeping: the argument is read here. (The φ *write* is
                // not a use; the φ slot is released when its interval ends.)
                if let Operand::Value(v) = op {
                    self.dec_use(v, pos);
                }
            }
        }
        copies
    }

    /// Emit a parallel-copy group: ordinary copies first in dependency
    /// order, cycles broken through the scratch slot, constants last.
    fn emit_copies(code: &mut Vec<BcInstr>, copies: &[(u16, CopySrc)]) {
        let mut pending: Vec<(u16, u16)> = Vec::new();
        let mut consts: Vec<(u16, u64)> = Vec::new();
        for &(dst, src) in copies {
            match src {
                CopySrc::Const(c) => consts.push((dst, c)),
                CopySrc::Slot(s) => {
                    if s != dst {
                        pending.push((dst, s));
                    }
                }
            }
        }
        while !pending.is_empty() {
            let free_idx =
                pending.iter().position(|&(dst, _)| pending.iter().all(|&(_, src)| src != dst));
            match free_idx {
                Some(i) => {
                    let (dst, src) = pending.swap_remove(i);
                    code.push(BcInstr::new(Op::Mov64, dst, src, 0, 0));
                }
                None => {
                    // Cycle: save one destination's current value in scratch
                    // and retarget its readers.
                    let (_, victim_src) = pending[0];
                    code.push(BcInstr::new(Op::Mov64, SLOT_SCRATCH, victim_src, 0, 0));
                    for p in pending.iter_mut() {
                        if p.1 == victim_src {
                            p.1 = SLOT_SCRATCH;
                        }
                    }
                }
            }
        }
        for (dst, c) in consts {
            code.push(BcInstr::new(Op::Const64, dst, 0, 0, c));
        }
    }

    fn translate_terminator(
        &mut self,
        bid: aqe_ir::BlockId,
        pos: u32,
        fused_ovf_condbr: bool,
    ) -> Result<(), TranslateError> {
        let term = self.f.block(bid).term.clone();
        match term {
            Terminator::Br { target } => {
                let copies = self.phi_copies_for_edge(bid, target, pos);
                Self::emit_copies(&mut self.code, &copies);
                let tpos = self.an.rpo.position(target);
                if tpos != pos + 1 {
                    let pc = self.code.len();
                    self.emit(Op::Br, 0, 0, 0, 0);
                    self.fixups.push(Fixup { pc, then_t: Target::Block(tpos), else_t: None });
                }
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                if fused_ovf_condbr {
                    // The overflow-check CondBr was folded into the trapping
                    // macro op; fall through to the non-trap arm.
                    let cont = if self.is_overflow_trap_block(then_bb) { else_bb } else { then_bb };
                    let copies = self.phi_copies_for_edge(bid, cont, pos);
                    Self::emit_copies(&mut self.code, &copies);
                    let tpos = self.an.rpo.position(cont);
                    if tpos != pos + 1 {
                        let pc = self.code.len();
                        self.emit(Op::Br, 0, 0, 0, 0);
                        self.fixups.push(Fixup { pc, then_t: Target::Block(tpos), else_t: None });
                    }
                    return Ok(());
                }
                if let Some(c) = cond.as_const() {
                    // Constant condition folds to an unconditional jump.
                    let target = if c.bits != 0 { then_bb } else { else_bb };
                    let copies = self.phi_copies_for_edge(bid, target, pos);
                    Self::emit_copies(&mut self.code, &copies);
                    let tpos = self.an.rpo.position(target);
                    if tpos != pos + 1 {
                        let pc = self.code.len();
                        self.emit(Op::Br, 0, 0, 0, 0);
                        self.fixups.push(Fixup { pc, then_t: Target::Block(tpos), else_t: None });
                    }
                    return Ok(());
                }
                let sc = self.use_slot(cond.as_value().unwrap());
                self.dec_operand(cond, pos);
                let then_t = self.edge_target(bid, then_bb, pos)?;
                let else_t = self.edge_target(bid, else_bb, pos)?;
                let pc = self.code.len();
                self.emit(Op::CondBr, 0, sc, 0, 0);
                self.fixups.push(Fixup { pc, then_t, else_t: Some(else_t) });
            }
            Terminator::Ret { value } => match value {
                None => self.emit(Op::Ret, 0, 0, 0, 0),
                Some(op) => {
                    let mut temps = Vec::new();
                    let s = self.operand_slot(op, &mut temps)?;
                    self.emit(Op::RetVal, s, 0, 0, 0);
                    self.dec_operand(op, pos);
                    for t in temps {
                        self.alloc.free(t);
                    }
                }
            },
            Terminator::Trap { kind } => {
                let code = match kind {
                    TrapKind::Overflow => TRAP_OVERFLOW,
                    TrapKind::DivByZero => TRAP_DIV_ZERO,
                    TrapKind::User(c) => TRAP_USER_BASE | c as u64,
                };
                self.emit(Op::TrapOp, 0, 0, 0, code);
            }
            Terminator::None => {
                return Err(TranslateError::Unsupported("unterminated block".into()));
            }
        }
        Ok(())
    }

    /// Resolve a conditional edge: direct block target, or a trampoline when
    /// the edge carries φ copies.
    fn edge_target(
        &mut self,
        pred: aqe_ir::BlockId,
        succ: aqe_ir::BlockId,
        pos: u32,
    ) -> Result<Target, TranslateError> {
        let copies = self.phi_copies_for_edge(pred, succ, pos);
        let tpos = self.an.rpo.position(succ);
        if copies.is_empty() {
            Ok(Target::Block(tpos))
        } else {
            let id = self.trampolines.len() as u32;
            self.trampolines.push(Trampoline { copies, target_pos: tpos, pc: 0 });
            Ok(Target::Tramp(id))
        }
    }

    fn emit_trampolines(&mut self) {
        for t in 0..self.trampolines.len() {
            self.trampolines[t].pc = self.code.len() as u32;
            let copies = std::mem::take(&mut self.trampolines[t].copies);
            Self::emit_copies(&mut self.code, &copies);
            let pc = self.code.len();
            self.emit(Op::Br, 0, 0, 0, 0);
            let target_pos = self.trampolines[t].target_pos;
            self.fixups.push(Fixup { pc, then_t: Target::Block(target_pos), else_t: None });
        }
    }

    fn patch_fixups(&mut self) {
        let resolve = |t: &Target, block_pc: &[u32], tramps: &[Trampoline]| -> u32 {
            match t {
                Target::Block(pos) => block_pc[*pos as usize],
                Target::Tramp(i) => tramps[*i as usize].pc,
            }
        };
        for fx in &self.fixups {
            let then_pc = resolve(&fx.then_t, &self.block_pc, &self.trampolines);
            match &fx.else_t {
                None => self.code[fx.pc].lit = then_pc as u64,
                Some(e) => {
                    let else_pc = resolve(e, &self.block_pc, &self.trampolines);
                    self.code[fx.pc].lit = BcInstr::pack_branch(then_pc, else_pc);
                }
            }
        }
    }
}

// ---- opcode selection tables ------------------------------------------------

struct MemOps {
    plain: Op,
    disp: Op,
    idx: Op,
}

fn load_ops(ty: Type) -> MemOps {
    match ty.mem_size() {
        1 => MemOps { plain: Op::Load8, disp: Op::Load8Disp, idx: Op::Load8Idx },
        2 => MemOps { plain: Op::Load16, disp: Op::Load16Disp, idx: Op::Load16Idx },
        4 => MemOps { plain: Op::Load32, disp: Op::Load32Disp, idx: Op::Load32Idx },
        _ => MemOps { plain: Op::Load64, disp: Op::Load64Disp, idx: Op::Load64Idx },
    }
}

fn store_ops(ty: Type) -> MemOps {
    match ty.mem_size() {
        1 => MemOps { plain: Op::Store8, disp: Op::Store8Disp, idx: Op::Store8Idx },
        2 => MemOps { plain: Op::Store16, disp: Op::Store16Disp, idx: Op::Store16Idx },
        4 => MemOps { plain: Op::Store32, disp: Op::Store32Disp, idx: Op::Store32Idx },
        _ => MemOps { plain: Op::Store64, disp: Op::Store64Disp, idx: Op::Store64Idx },
    }
}

/// Integer/boolean types map onto the width-typed opcode families; `i1`
/// shares the `i8` family (values are canonical 0/1) and `ptr` the `i64`
/// family.
fn reg_bin_op(op: BinOp, ty: Type) -> Option<Op> {
    use BinOp::*;
    use Op::*;
    let t = match ty {
        Type::I1 | Type::I8 => 0,
        Type::I16 => 1,
        Type::I32 => 2,
        Type::I64 | Type::Ptr => 3,
        Type::F64 => 4,
        _ => return None,
    };
    let table4 = |ops: [Op; 4]| if t < 4 { Some(ops[t]) } else { None };
    match op {
        Add => [AddI8, AddI16, AddI32, AddI64, AddF64].get(t).copied(),
        Sub => [SubI8, SubI16, SubI32, SubI64, SubF64].get(t).copied(),
        Mul => [MulI8, MulI16, MulI32, MulI64, MulF64].get(t).copied(),
        SDiv => table4([SDivI8, SDivI16, SDivI32, SDivI64]),
        UDiv => table4([UDivI8, UDivI16, UDivI32, UDivI64]),
        SRem => table4([SRemI8, SRemI16, SRemI32, SRemI64]),
        URem => table4([URemI8, URemI16, URemI32, URemI64]),
        FDiv => (t == 4).then_some(FDivF64),
        And => table4([AndI8, AndI16, AndI32, AndI64]),
        Or => table4([OrI8, OrI16, OrI32, OrI64]),
        Xor => table4([XorI8, XorI16, XorI32, XorI64]),
        Shl => table4([ShlI8, ShlI16, ShlI32, ShlI64]),
        AShr => table4([AShrI8, AShrI16, AShrI32, AShrI64]),
        LShr => table4([LShrI8, LShrI16, LShrI32, LShrI64]),
    }
}

fn imm_bin_op(op: BinOp, ty: Type) -> Option<Op> {
    use BinOp::*;
    use Op::*;
    match (op, ty) {
        (Add, Type::I32) => Some(AddImmI32),
        (Add, Type::I64) | (Add, Type::Ptr) => Some(AddImmI64),
        (Add, Type::F64) => Some(AddImmF64),
        (Sub, Type::I32) => Some(SubImmI32),
        (Sub, Type::I64) => Some(SubImmI64),
        (Mul, Type::I32) => Some(MulImmI32),
        (Mul, Type::I64) => Some(MulImmI64),
        (Mul, Type::F64) => Some(MulImmF64),
        (And, Type::I32) => Some(AndImmI32),
        (And, Type::I64) => Some(AndImmI64),
        (Or, Type::I32) => Some(OrImmI32),
        (Or, Type::I64) => Some(OrImmI64),
        (Xor, Type::I32) => Some(XorImmI32),
        (Xor, Type::I64) => Some(XorImmI64),
        (Shl, Type::I32) => Some(ShlImmI32),
        (Shl, Type::I64) => Some(ShlImmI64),
        (AShr, Type::I32) => Some(AShrImmI32),
        (AShr, Type::I64) => Some(AShrImmI64),
        (LShr, Type::I32) => Some(LShrImmI32),
        (LShr, Type::I64) => Some(LShrImmI64),
        _ => None,
    }
}

fn reg_cmp_op(pred: CmpPred, ty: Type) -> Option<Op> {
    use CmpPred::*;
    use Op::*;
    if ty == Type::F64 {
        return Some(match pred {
            Eq => CmpEqF64,
            Ne => CmpNeF64,
            SLt => CmpLtF64,
            SLe => CmpLeF64,
            SGt => CmpGtF64,
            SGe => CmpGeF64,
            _ => return None,
        });
    }
    let t = match ty {
        Type::I1 | Type::I8 => 0,
        Type::I16 => 1,
        Type::I32 => 2,
        Type::I64 | Type::Ptr => 3,
        _ => return None,
    };
    let tbl = match pred {
        Eq => [CmpEqI8, CmpEqI16, CmpEqI32, CmpEqI64],
        Ne => [CmpNeI8, CmpNeI16, CmpNeI32, CmpNeI64],
        SLt => [CmpSltI8, CmpSltI16, CmpSltI32, CmpSltI64],
        SLe => [CmpSleI8, CmpSleI16, CmpSleI32, CmpSleI64],
        SGt => [CmpSgtI8, CmpSgtI16, CmpSgtI32, CmpSgtI64],
        SGe => [CmpSgeI8, CmpSgeI16, CmpSgeI32, CmpSgeI64],
        ULt => [CmpUltI8, CmpUltI16, CmpUltI32, CmpUltI64],
        ULe => [CmpUleI8, CmpUleI16, CmpUleI32, CmpUleI64],
        UGt => [CmpUgtI8, CmpUgtI16, CmpUgtI32, CmpUgtI64],
        UGe => [CmpUgeI8, CmpUgeI16, CmpUgeI32, CmpUgeI64],
    };
    Some(tbl[t])
}

fn imm_cmp_op(pred: CmpPred, ty: Type) -> Option<Op> {
    use CmpPred::*;
    use Op::*;
    let w = match ty {
        Type::I32 => 0,
        Type::I64 | Type::Ptr => 1,
        _ => return None,
    };
    let tbl = match pred {
        Eq => [CmpImmEqI32, CmpImmEqI64],
        Ne => [CmpImmNeI32, CmpImmNeI64],
        SLt => [CmpImmSltI32, CmpImmSltI64],
        SLe => [CmpImmSleI32, CmpImmSleI64],
        SGt => [CmpImmSgtI32, CmpImmSgtI64],
        SGe => [CmpImmSgeI32, CmpImmSgeI64],
        ULt => [CmpImmUltI32, CmpImmUltI64],
        ULe => [CmpImmUleI32, CmpImmUleI64],
        UGt => [CmpImmUgtI32, CmpImmUgtI64],
        UGe => [CmpImmUgeI32, CmpImmUgeI64],
    };
    Some(tbl[w])
}

fn ext_op(kind: CastKind, from: Type, to: Type) -> Option<Op> {
    use Op::*;
    let sext = kind == CastKind::SExt;
    // i1 sources are canonical 0/1 bytes: zero-extension via the i8 family.
    let from = if from == Type::I1 { Type::I8 } else { from };
    match (from, to, sext) {
        (Type::I8, Type::I16, true) => Some(SExtI8I16),
        (Type::I8, Type::I32, true) => Some(SExtI8I32),
        (Type::I8, Type::I64, true) => Some(SExtI8I64),
        (Type::I16, Type::I32, true) => Some(SExtI16I32),
        (Type::I16, Type::I64, true) => Some(SExtI16I64),
        (Type::I32, Type::I64, true) => Some(SExtI32I64),
        (Type::I8, Type::I16, false) => Some(ZExtI8I16),
        (Type::I8, Type::I32, false) => Some(ZExtI8I32),
        (Type::I8, Type::I64, false) => Some(ZExtI8I64),
        (Type::I16, Type::I32, false) => Some(ZExtI16I32),
        (Type::I16, Type::I64, false) => Some(ZExtI16I64),
        (Type::I32, Type::I64, false) => Some(ZExtI32I64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_ir::FunctionBuilder;

    fn no_externs() -> Vec<ExternDecl> {
        vec![]
    }

    #[test]
    fn translates_add_function() {
        let mut b = FunctionBuilder::new("add", &[Type::I64, Type::I64], Some(Type::I64));
        let s = b.bin(BinOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &no_externs(), TranslateOptions::default()).unwrap();
        assert_eq!(bc.param_slots.len(), 2);
        assert!(bc.code.iter().any(|i| i.op == Op::AddI64));
        assert!(bc.code.iter().any(|i| i.op == Op::RetVal));
        // "add_i32 24 16 20": params at 24/32, result reuses a freed slot.
        assert!(bc.frame_size >= FIRST_FREE_SLOT as u32 + 16);
    }

    #[test]
    fn immediate_forms_are_selected() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let s = b.bin(BinOp::Add, Type::I64, b.param(0).into(), Constant::i64(42).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &no_externs(), TranslateOptions::default()).unwrap();
        let add = bc.code.iter().find(|i| i.op == Op::AddImmI64).expect("imm form");
        assert_eq!(add.lit, 42);
    }

    #[test]
    fn constant_lhs_swaps_commutative() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let s = b.bin(BinOp::Mul, Type::I64, Constant::i64(3).into(), b.param(0).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &no_externs(), TranslateOptions::default()).unwrap();
        assert!(bc.code.iter().any(|i| i.op == Op::MulImmI64 && i.lit == 3));
    }

    #[test]
    fn ovf_pattern_fuses_to_trap_op() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I64));
        let s = b.checked_arith(OvfOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &no_externs(), TranslateOptions::default()).unwrap();
        assert_eq!(bc.stats.fused_ovf, 1);
        assert!(bc.code.iter().any(|i| i.op == Op::AddOvfTrapI64));
        // No unfused pieces remain.
        assert!(!bc.code.iter().any(|i| matches!(i.op, Op::AddOvfValI64 | Op::AddOvfFlagI64)));
    }

    #[test]
    fn ovf_fusion_can_be_disabled() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I64));
        let s = b.checked_arith(OvfOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let opts = TranslateOptions { fuse_ovf: false, ..Default::default() };
        let bc = translate(&f, &no_externs(), opts).unwrap();
        assert_eq!(bc.stats.fused_ovf, 0);
        assert!(bc.code.iter().any(|i| i.op == Op::AddOvfValI64));
        assert!(bc.code.iter().any(|i| i.op == Op::AddOvfFlagI64));
    }

    #[test]
    fn gep_load_fuses() {
        let mut b = FunctionBuilder::new("f", &[Type::Ptr, Type::I64], Some(Type::I64));
        let g = b.gep_indexed(b.param(0).into(), 16, b.param(1).into(), 8);
        let v = b.load(Type::I64, g.into());
        b.ret(Some(v.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &no_externs(), TranslateOptions::default()).unwrap();
        assert_eq!(bc.stats.fused_gep, 1);
        let l = bc.code.iter().find(|i| i.op == Op::Load64Idx).expect("fused load");
        assert_eq!(BcInstr::idx_scale(l.lit), 8);
        assert_eq!(BcInstr::idx_disp(l.lit), 16);
    }

    #[test]
    fn gep_with_two_uses_does_not_fuse() {
        let mut b = FunctionBuilder::new("f", &[Type::Ptr], Some(Type::I64));
        let g = b.gep(b.param(0).into(), 8);
        let v1 = b.load(Type::I64, g.into());
        let v2 = b.load(Type::I64, g.into());
        let s = b.bin(BinOp::Add, Type::I64, v1.into(), v2.into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &no_externs(), TranslateOptions::default()).unwrap();
        assert_eq!(bc.stats.fused_gep, 0);
        assert!(bc.code.iter().any(|i| i.op == Op::AddImmI64)); // the gep itself
    }

    #[test]
    fn loop_translates_with_phi_copies() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        b.counted_loop(Constant::i64(0).into(), n.into(), |_, _| {});
        b.ret(Some(Constant::i64(0).into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &no_externs(), TranslateOptions::default()).unwrap();
        // φ propagation shows up as Mov64/Const64 copies and a back edge.
        assert!(bc.code.iter().any(|i| i.op == Op::Br));
        assert!(bc.code.iter().any(|i| i.op == Op::CondBr));
    }

    #[test]
    fn no_reuse_strategy_grows_frame() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let mut acc: Operand = b.param(0).into();
        for k in 0..32 {
            acc = b.bin(BinOp::Add, Type::I64, acc, Constant::i64(k).into()).into();
        }
        b.ret(Some(acc));
        let f = b.finish().unwrap();
        let reuse = translate(&f, &no_externs(), TranslateOptions::default()).unwrap().frame_size;
        let no_reuse = translate(
            &f,
            &no_externs(),
            TranslateOptions { strategy: AllocStrategy::NoReuse, ..Default::default() },
        )
        .unwrap()
        .frame_size;
        assert!(
            no_reuse > reuse,
            "no-reuse frame ({no_reuse}) must exceed reusing frame ({reuse})"
        );
    }

    #[test]
    fn call_gathers_args() {
        let mut m = aqe_ir::Module::new();
        let ext = m.declare_extern("rt", vec![Type::I64, Type::I64], Some(Type::I64));
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let r = b.call(ext, vec![b.param(0).into(), Constant::i64(7).into()], Some(Type::I64));
        b.ret(Some(r.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &m.externs, TranslateOptions::default()).unwrap();
        let call = bc.code.iter().find(|i| i.op == Op::CallRt).unwrap();
        assert_eq!(call.c, 2);
        assert_eq!(call.lit, ext.0 as u64);
        // Args gathered contiguously right before the call.
        assert!(bc.code.iter().any(|i| i.op == Op::Mov64 && i.a == call.b));
        assert!(bc.code.iter().any(|i| i.op == Op::Const64 && i.a == call.b + 8 && i.lit == 7));
    }

    #[test]
    fn call_arity_mismatch_fails() {
        let mut m = aqe_ir::Module::new();
        let ext = m.declare_extern("rt", vec![Type::I64], Some(Type::I64));
        let mut b = FunctionBuilder::new("f", &[], Some(Type::I64));
        let r = b.call(ext, vec![], Some(Type::I64));
        b.ret(Some(r.into()));
        let f = b.finish_unverified();
        let err = translate(&f, &m.externs, TranslateOptions::default()).unwrap_err();
        assert!(matches!(err, TranslateError::BadCall(_)));
    }
}
