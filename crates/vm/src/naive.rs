//! Direct IR interpretation — the "LLVM interpreter" stand-in of Fig. 2.
//!
//! "LLVM … also contains an interpreter. This interpreter directly executes
//! the LLVM IR without any additional compilation step. … the built-in
//! interpreter is extremely slow. The reason is that LLVM IR was designed as
//! a versatile and generic format … Its pointer-based in-memory
//! representation allows easy code transformations but is highly cache
//! unfriendly. Furthermore, the execution of an instruction involves a
//! costly runtime dispatch as there is only a single instruction (e.g.,
//! integer addition) for all operand widths."
//!
//! This module reproduces that execution mode honestly: it walks the SSA
//! structures directly, dispatches on the generic instruction enum, performs
//! width selection at runtime, and resolves φ nodes by scanning incoming
//! lists — no translation, no register file, no fusion. It exists to anchor
//! the latency end of the latency/throughput tradeoff (and as a semantics
//! oracle for differential tests). Being a purpose-built walker rather than
//! LLVM's pointer-chasing `ExecutionEngine`, its slowdown relative to the
//! bytecode VM is smaller than the paper's 800×; EXPERIMENTS.md reports the
//! measured ratio.

use crate::interp::ExecError;
use crate::rt::Registry;
use aqe_ir::{
    BinOp, CastKind, CmpPred, Function, Instr, Operand, OvfOp, Terminator, TrapKind, Type, ValueId,
};

/// Interpret `f` directly over its SSA form.
pub fn interpret(f: &Function, args: &[u64], rt: &Registry) -> Result<Option<u64>, ExecError> {
    assert_eq!(args.len(), f.param_count(), "argument count mismatch");
    // Value environment: (value, flag) — the flag doubles as the overflow
    // bit for pair values.
    let mut env: Vec<(u64, bool)> = vec![(0, false); f.value_count()];
    for (i, &a) in args.iter().enumerate() {
        env[i] = (a, false);
    }

    let operand = |env: &[(u64, bool)], op: Operand| -> u64 {
        match op {
            Operand::Value(v) => env[v.index()].0,
            Operand::Const(c) => c.bits,
        }
    };

    let mut block = Function::ENTRY;
    let mut prev = Function::ENTRY;
    let mut arg_buf: Vec<u64> = Vec::with_capacity(8);
    loop {
        let blk = f.block(block);
        // φ nodes first, with parallel-read semantics.
        let mut phi_vals: Vec<(ValueId, u64)> = Vec::new();
        for &vid in &blk.instrs {
            let Some(Instr::Phi { incomings, .. }) = f.instr(vid) else {
                break;
            };
            let (_, op) = f
                .phi_incomings(*incomings)
                .iter()
                .find(|(b, _)| *b == prev)
                .expect("verified φ covers all predecessors");
            phi_vals.push((vid, operand(&env, *op)));
        }
        let phi_count = phi_vals.len();
        for (vid, v) in phi_vals {
            env[vid.index()] = (v, false);
        }

        for &vid in &blk.instrs[phi_count..] {
            let instr = f.instr(vid).unwrap();
            let result: (u64, bool) = match instr {
                Instr::Phi { .. } => unreachable!("φs are a block prefix"),
                Instr::Bin { op, ty, a, b } => {
                    (eval_bin(*op, *ty, operand(&env, *a), operand(&env, *b))?, false)
                }
                Instr::BinOvf { op, ty, a, b } => {
                    eval_ovf(*op, *ty, operand(&env, *a), operand(&env, *b))
                }
                Instr::Extract { pair, field } => {
                    let (v, o) = env[pair.index()];
                    if *field == 0 {
                        (v, false)
                    } else {
                        (o as u64, false)
                    }
                }
                Instr::Cmp { pred, ty, a, b } => {
                    (eval_cmp(*pred, *ty, operand(&env, *a), operand(&env, *b)) as u64, false)
                }
                Instr::Select { cond, t, f: fv, .. } => {
                    let c = operand(&env, *cond) & 1;
                    (if c != 0 { operand(&env, *t) } else { operand(&env, *fv) }, false)
                }
                Instr::Cast { kind, to, v, from } => {
                    (eval_cast(*kind, *from, *to, operand(&env, *v)), false)
                }
                Instr::Load { ty, ptr } => {
                    let p = operand(&env, *ptr);
                    let v = unsafe {
                        match ty.mem_size() {
                            1 => std::ptr::read_unaligned(p as *const u8) as u64,
                            2 => std::ptr::read_unaligned(p as *const u16) as u64,
                            4 => std::ptr::read_unaligned(p as *const u32) as u64,
                            _ => std::ptr::read_unaligned(p as *const u64),
                        }
                    };
                    (v, false)
                }
                Instr::Store { ty, ptr, val } => {
                    let p = operand(&env, *ptr);
                    let v = operand(&env, *val);
                    unsafe {
                        match ty.mem_size() {
                            1 => std::ptr::write_unaligned(p as *mut u8, v as u8),
                            2 => std::ptr::write_unaligned(p as *mut u16, v as u16),
                            4 => std::ptr::write_unaligned(p as *mut u32, v as u32),
                            _ => std::ptr::write_unaligned(p as *mut u64, v),
                        }
                    }
                    (0, false)
                }
                Instr::Gep { base, offset, index } => {
                    let mut p = operand(&env, *base) as i64 + offset;
                    if let Some((iop, scale)) = index {
                        p += operand(&env, *iop) as i64 * scale;
                    }
                    (p as u64, false)
                }
                Instr::Call { func, args: call_args } => {
                    arg_buf.clear();
                    for a in f.operands(*call_args) {
                        arg_buf.push(operand(&env, *a));
                    }
                    let mut ret = 0u64;
                    let fptr = rt.fn_ptr(func.index());
                    unsafe { fptr(arg_buf.as_ptr(), &mut ret) };
                    (ret, false)
                }
            };
            env[vid.index()] = result;
        }

        match &blk.term {
            Terminator::Br { target } => {
                prev = block;
                block = *target;
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let c = operand(&env, *cond) & 1;
                prev = block;
                block = if c != 0 { *then_bb } else { *else_bb };
            }
            Terminator::Ret { value } => {
                return Ok(value.map(|v| operand(&env, v)));
            }
            Terminator::Trap { kind } => {
                return Err(match kind {
                    TrapKind::Overflow => ExecError::Overflow,
                    TrapKind::DivByZero => ExecError::DivByZero,
                    TrapKind::User(c) => ExecError::User(*c),
                });
            }
            Terminator::None => unreachable!("verifier rejects unterminated blocks"),
        }
    }
}

/// Width-generic binary evaluation: the runtime width dispatch the paper
/// criticises LLVM's interpreter for is exactly what happens here.
/// Public: the constant folder in `aqe-jit` reuses these semantics.
pub fn eval_bin(op: BinOp, ty: Type, a: u64, b: u64) -> Result<u64, ExecError> {
    if ty == Type::F64 {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::FDiv => x / y,
            _ => unreachable!("verifier rejects {op:?} on f64"),
        };
        return Ok(r.to_bits());
    }
    let bits = ty.bits().max(8);
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let sext = |v: u64| -> i64 {
        let shift = 64 - bits;
        ((v << shift) as i64) >> shift
    };
    let (sa, sb) = (sext(a), sext(b));
    let (ua, ub) = (a & mask, b & mask);
    let r: u64 = match op {
        BinOp::Add => (sa.wrapping_add(sb)) as u64,
        BinOp::Sub => (sa.wrapping_sub(sb)) as u64,
        BinOp::Mul => (sa.wrapping_mul(sb)) as u64,
        BinOp::SDiv => {
            if sb == 0 {
                return Err(ExecError::DivByZero);
            }
            let min = (-1i64) << (bits - 1);
            if sa == min && sb == -1 {
                return Err(ExecError::Overflow);
            }
            (sa / sb) as u64
        }
        BinOp::UDiv => {
            if ub == 0 {
                return Err(ExecError::DivByZero);
            }
            ua / ub
        }
        BinOp::SRem => {
            if sb == 0 {
                return Err(ExecError::DivByZero);
            }
            sa.wrapping_rem(sb) as u64
        }
        BinOp::URem => {
            if ub == 0 {
                return Err(ExecError::DivByZero);
            }
            ua % ub
        }
        BinOp::FDiv => unreachable!("verifier rejects fdiv on ints"),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => (ua.wrapping_shl((ub as u32) % bits)) & mask,
        BinOp::AShr => (sext(a) >> ((ub as u32) % bits)) as u64,
        BinOp::LShr => ua.wrapping_shr((ub as u32) % bits),
    };
    Ok(r)
}

pub fn eval_ovf(op: OvfOp, ty: Type, a: u64, b: u64) -> (u64, bool) {
    match ty {
        Type::I32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            let (v, o) = match op {
                OvfOp::Add => x.overflowing_add(y),
                OvfOp::Sub => x.overflowing_sub(y),
                OvfOp::Mul => x.overflowing_mul(y),
            };
            (v as u32 as u64, o)
        }
        _ => {
            let (x, y) = (a as i64, b as i64);
            let (v, o) = match op {
                OvfOp::Add => x.overflowing_add(y),
                OvfOp::Sub => x.overflowing_sub(y),
                OvfOp::Mul => x.overflowing_mul(y),
            };
            (v as u64, o)
        }
    }
}

pub fn eval_cmp(pred: CmpPred, ty: Type, a: u64, b: u64) -> bool {
    if ty == Type::F64 {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        return match pred {
            CmpPred::Eq => x == y,
            CmpPred::Ne => x != y,
            CmpPred::SLt => x < y,
            CmpPred::SLe => x <= y,
            CmpPred::SGt => x > y,
            CmpPred::SGe => x >= y,
            _ => unreachable!("verifier rejects unsigned float cmp"),
        };
    }
    let bits = ty.bits().max(8);
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let sext = |v: u64| -> i64 {
        let shift = 64 - bits;
        ((v << shift) as i64) >> shift
    };
    let (sa, sb) = (sext(a), sext(b));
    let (ua, ub) = (a & mask, b & mask);
    match pred {
        CmpPred::Eq => ua == ub,
        CmpPred::Ne => ua != ub,
        CmpPred::SLt => sa < sb,
        CmpPred::SLe => sa <= sb,
        CmpPred::SGt => sa > sb,
        CmpPred::SGe => sa >= sb,
        CmpPred::ULt => ua < ub,
        CmpPred::ULe => ua <= ub,
        CmpPred::UGt => ua > ub,
        CmpPred::UGe => ua >= ub,
    }
}

pub fn eval_cast(kind: CastKind, from: Type, to: Type, v: u64) -> u64 {
    let sext_from = |v: u64| -> i64 {
        let bits = from.bits().max(8);
        let shift = 64 - bits;
        ((v << shift) as i64) >> shift
    };
    match kind {
        CastKind::ZExt => {
            let bits = from.bits().max(8);
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            // i1 sources are canonical 0/1 in the environment.
            if from == Type::I1 {
                v & 1
            } else {
                v & mask
            }
        }
        CastKind::SExt => sext_from(v) as u64,
        CastKind::Trunc => {
            let bits = to.bits().max(8);
            if bits == 64 {
                v
            } else {
                v & ((1u64 << bits) - 1)
            }
        }
        CastKind::Bitcast => v,
        CastKind::SiToFp => (sext_from(v) as f64).to_bits(),
        CastKind::FpToSi => {
            let x = f64::from_bits(v);
            match to {
                Type::I64 => (x as i64) as u64,
                _ => (x as i32) as u32 as u64,
            }
        }
    }
}

/// Convenience for tests: interpret with an empty runtime registry.
pub fn interpret_pure(f: &Function, args: &[u64]) -> Result<Option<u64>, ExecError> {
    interpret(f, args, &Registry::new())
}

/// The direct IR interpreter as a uniform execution backend. Holds the IR
/// function it walks; the caller's register-file `frame` is unused because
/// this mode evaluates straight over the SSA value environment.
pub struct NaiveBackend {
    function: std::sync::Arc<Function>,
}

impl NaiveBackend {
    pub fn new(function: std::sync::Arc<Function>) -> Self {
        NaiveBackend { function }
    }
}

impl crate::backend::PipelineBackend for NaiveBackend {
    fn call(
        &self,
        args: &[u64],
        rt: &Registry,
        _frame: &mut crate::interp::Frame,
    ) -> Result<Option<u64>, ExecError> {
        interpret(&self.function, args, rt)
    }

    fn kind(&self) -> crate::backend::ExecMode {
        crate::backend::ExecMode::NaiveIr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_ir::{Constant, FunctionBuilder};

    #[test]
    fn add_and_loop() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        let head = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        let pre = b.current_block();
        b.br(head);
        b.switch_to(head);
        let iv = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
        let acc = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
        let done = b.cmp(CmpPred::SGe, Type::I64, iv.into(), n.into());
        b.cond_br(done.into(), exit, body);
        b.switch_to(body);
        let acc2 = b.bin(BinOp::Add, Type::I64, acc.into(), iv.into());
        let iv2 = b.bin(BinOp::Add, Type::I64, iv.into(), Constant::i64(1).into());
        b.phi_add_incoming(iv, body, iv2.into());
        b.phi_add_incoming(acc, body, acc2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let f = b.finish().unwrap();
        assert_eq!(interpret_pure(&f, &[100]).unwrap(), Some(4950));
    }

    #[test]
    fn traps_match_vm_semantics() {
        let mut b = FunctionBuilder::new("f", &[Type::I32, Type::I32], Some(Type::I32));
        let q = b.bin(BinOp::SDiv, Type::I32, b.param(0).into(), b.param(1).into());
        b.ret(Some(q.into()));
        let f = b.finish().unwrap();
        assert_eq!(interpret_pure(&f, &[7, 2]).unwrap(), Some(3));
        assert_eq!(interpret_pure(&f, &[7, 0]), Err(ExecError::DivByZero));
        assert_eq!(
            interpret_pure(&f, &[i32::MIN as u32 as u64, (-1i32) as u32 as u64]),
            Err(ExecError::Overflow)
        );
    }

    #[test]
    fn narrow_width_semantics() {
        let mut b = FunctionBuilder::new("f", &[Type::I8, Type::I8], Some(Type::I8));
        let s = b.bin(BinOp::Add, Type::I8, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        // 127 + 1 wraps to -128 at i8 width.
        let r = interpret_pure(&f, &[127, 1]).unwrap().unwrap();
        assert_eq!(r as u8 as i8, -128);
    }

    #[test]
    fn overflow_pair_extracts() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I1));
        let pair = b.bin_ovf(OvfOp::Mul, Type::I64, b.param(0).into(), b.param(1).into());
        let flag = b.extract(pair, 1);
        b.ret(Some(flag.into()));
        let f = b.finish().unwrap();
        assert_eq!(interpret_pure(&f, &[3, 4]).unwrap(), Some(0));
        assert_eq!(interpret_pure(&f, &[i64::MAX as u64, 2]).unwrap(), Some(1));
    }
}
