//! # aqe-vm — fast bytecode interpretation (paper §IV)
//!
//! "To make interpretation a viable strategy, we translate the native
//! \[IR\] into an optimized bytecode format for a virtual machine that can be
//! interpreted much more efficiently."
//!
//! This crate contains:
//!
//! * [`backend`] — the [`backend::PipelineBackend`] trait: the uniform,
//!   hot-swappable seam through which the engine invokes *any* executable
//!   representation of a worker function (VM bytecode, direct IR walking,
//!   or `aqe-jit`'s threaded code), plus the [`backend::ExecMode`]
//!   vocabulary shared by all of them;
//! * [`bytecode`] — the fixed-length, statically-typed instruction format
//!   (16 bytes per instruction: opcode + three register byte-offsets + a
//!   64-bit literal) and the compiled [`bytecode::BcFunction`] container;
//! * [`regalloc`] — register-slot allocation driven by the linear-time
//!   loop-aware live ranges of `aqe-ir`, including the two alternative
//!   strategies of §IV-C (no-reuse and fixed-window greedy) used for the
//!   register-file-size ablation;
//! * [`translate`](mod@translate) — the single-pass IR→bytecode
//!   translator (Fig. 9) with
//!   the paper's macro-op fusion: the 4-instruction overflow-check sequence
//!   becomes one trapping opcode and `gep`+`load`/`store` pairs fuse into
//!   indexed memory ops (§IV-F);
//! * [`interp`] — the switch-dispatch interpreter loop (Fig. 8), reading and
//!   writing a byte-addressed register file whose first two slots always
//!   hold the constants 0 and 1 (§IV-A);
//! * [`naive`] — a direct IR-walking interpreter standing in for the
//!   LLVM interpreter of Fig. 2 (no translation step, much slower);
//! * [`rt`] — the runtime-call ABI shared with the engine and the
//!   threaded-code backends: every callable helper is registered with its
//!   signature up front, so unsupported signatures are a translation-time
//!   error, not a runtime surprise (§IV-E).

// The interpreter's public single-instruction dispatch (`interp::exec_one`)
// intentionally takes a raw register-file pointer: validated translator
// output is the safety boundary (see the module docs of `interp`), exactly
// like generated machine code in the paper's engine. Marking these `unsafe`
// would force `unsafe` onto every safe internal caller without adding a
// checkable contract, so the clippy lint is disabled crate-wide.
#![allow(clippy::not_unsafe_ptr_arg_deref)]

pub mod backend;
pub mod bytecode;
pub mod interp;
pub mod naive;
pub mod regalloc;
pub mod rt;
pub mod translate;

pub use backend::{ExecMode, PipelineBackend};
pub use bytecode::{BcFunction, BcInstr, Op};
pub use interp::{execute, ExecError, Frame};
pub use regalloc::AllocStrategy;
pub use rt::{Registry, RtFn};
pub use translate::{translate, TranslateError, TranslateOptions};
