//! The unified execution-backend seam (paper Fig. 5).
//!
//! Every way of running a worker function — direct IR walking, the
//! bytecode VM, and the threaded-code levels of `aqe-jit` — implements
//! [`PipelineBackend`]. The engine's morsel loop calls through a single
//! `Arc<dyn PipelineBackend>` handle and never branches on the mode; the
//! adaptive controller switches a pipeline mid-flight by atomically
//! publishing a different backend into that handle. The native x86-64
//! machine-code tier (`aqe-jit`'s `native` module) plugged in exactly
//! this way; future backends (remote execution) would too.
//!
//! The trait lives here, at the bottom of the crate stack, because its
//! vocabulary types ([`Frame`], [`Registry`], [`ExecError`]) do and because
//! both `aqe-vm` and `aqe-jit` provide implementations.

use crate::interp::{ExecError, Frame};
use crate::rt::Registry;

/// How to execute a query (Fig. 3's modes plus the two interpreter
/// baselines of Fig. 2). The first five name concrete backends; `Adaptive`
/// is the engine policy that starts at `Bytecode` and upgrades at runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExecMode {
    /// Direct IR interpretation (the "LLVM interpreter" stand-in).
    NaiveIr,
    /// Bytecode VM for every morsel.
    Bytecode,
    /// Compile every pipeline without optimization up front.
    Unoptimized,
    /// Compile every pipeline with optimization up front.
    Optimized,
    /// Real machine code: the x86-64 emitter in `aqe-jit`'s `native`
    /// module. On targets without the emitter the engine aliases this
    /// mode to `Optimized` threaded code.
    Native,
    /// Vectorized scan kernels layered over a compiled scalar worker: a
    /// packed-compare filter pre-pass (SSE2/AVX2) produces a selection
    /// bitmask and only the surviving row runs enter the scalar code. On
    /// pipelines without a vectorizable filter — or with `AQE_SIMD=0` —
    /// the engine aliases this mode to `Native`.
    Simd,
    /// The paper's contribution: start in bytecode, switch adaptively.
    Adaptive,
}

impl ExecMode {
    /// Total order of backend quality used by the hot-swap handle: a
    /// backend may only ever be replaced by a higher-ranked one.
    /// `Adaptive` ranks as its starting backend (bytecode).
    pub fn rank(self) -> u8 {
        match self {
            ExecMode::NaiveIr => 0,
            ExecMode::Bytecode | ExecMode::Adaptive => 1,
            ExecMode::Unoptimized => 2,
            ExecMode::Optimized => 3,
            ExecMode::Native => 4,
            ExecMode::Simd => 5,
        }
    }

    /// Compact code used in execution traces (Fig. 14): 0 = bytecode,
    /// 1 = unoptimized, 2 = optimized, 3 = naive IR, 4 = native machine
    /// code, 5 = vectorized scan kernel. (255 marks a compilation event
    /// and never names a backend.)
    pub fn trace_kind(self) -> u8 {
        match self {
            ExecMode::Bytecode | ExecMode::Adaptive => 0,
            ExecMode::Unoptimized => 1,
            ExecMode::Optimized => 2,
            ExecMode::NaiveIr => 3,
            ExecMode::Native => 4,
            ExecMode::Simd => 5,
        }
    }
}

/// One executable representation of a worker function.
///
/// Object-safe on purpose: the engine stores `Arc<dyn PipelineBackend>` in
/// its hot-swappable function handles and treats every representation
/// identically. Implementations must be freely callable from many worker
/// threads at once (`Send + Sync`) and — the §III-B contract — behave
/// *identically* for identical inputs, traps included, so a pipeline can
/// switch representation between two morsels without changing results.
pub trait PipelineBackend: Send + Sync {
    /// Run the function over one morsel. `args` follow the worker ABI
    /// (context pointer, state pointer, morsel begin, morsel end); `frame`
    /// is the caller's reusable register-file buffer (backends that do not
    /// use a register file simply ignore it).
    fn call(
        &self,
        args: &[u64],
        rt: &Registry,
        frame: &mut Frame,
    ) -> Result<Option<u64>, ExecError>;

    /// Which backend this is (never `Adaptive` — that is a policy, not a
    /// backend).
    fn kind(&self) -> ExecMode;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_ordered_and_adaptive_starts_at_bytecode() {
        assert!(ExecMode::NaiveIr.rank() < ExecMode::Bytecode.rank());
        assert!(ExecMode::Bytecode.rank() < ExecMode::Unoptimized.rank());
        assert!(ExecMode::Unoptimized.rank() < ExecMode::Optimized.rank());
        assert!(ExecMode::Optimized.rank() < ExecMode::Native.rank());
        assert!(ExecMode::Native.rank() < ExecMode::Simd.rank());
        assert_eq!(ExecMode::Adaptive.rank(), ExecMode::Bytecode.rank());
    }

    #[test]
    fn trace_kinds_match_fig14_legend() {
        assert_eq!(ExecMode::Bytecode.trace_kind(), 0);
        assert_eq!(ExecMode::Unoptimized.trace_kind(), 1);
        assert_eq!(ExecMode::Optimized.trace_kind(), 2);
        assert_eq!(ExecMode::NaiveIr.trace_kind(), 3);
        assert_eq!(ExecMode::Native.trace_kind(), 4);
        assert_eq!(ExecMode::Simd.trace_kind(), 5);
    }

    #[test]
    fn trait_is_object_safe() {
        struct Null;
        impl PipelineBackend for Null {
            fn call(
                &self,
                _args: &[u64],
                _rt: &Registry,
                _frame: &mut Frame,
            ) -> Result<Option<u64>, ExecError> {
                Ok(None)
            }
            fn kind(&self) -> ExecMode {
                ExecMode::Bytecode
            }
        }
        let b: std::sync::Arc<dyn PipelineBackend> = std::sync::Arc::new(Null);
        let mut frame = Frame::new();
        assert_eq!(b.call(&[], &Registry::new(), &mut frame), Ok(None));
    }
}
