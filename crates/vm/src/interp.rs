//! The VM interpreter loop (§IV-A, Fig. 8).
//!
//! "The VM code itself then consists of a large switch statement that
//! evaluates all supported instructions … each consisting of a single and
//! fairly simple line of C++."
//!
//! The register file is a byte array whose slots are 8-byte aligned; typed
//! opcodes read and write exactly their operand width via raw pointers, just
//! like the paper's `*((int32_t*)(regs + ip->a1))` accesses. Register file
//! allocation "happens on the stack if possible, falling back to heap
//! allocation if the register file is too large": frames up to
//! [`STACK_FRAME_BYTES`] live in a stack buffer.
//!
//! # Safety
//! Bytecode produced by [`crate::translate`](mod@crate::translate) is the
//! safety boundary: the
//! translator guarantees that every register offset is within the frame,
//! every branch target is a valid instruction index, and every runtime call
//! index was validated against the extern table. Load/store opcodes
//! dereference raw addresses computed by the query engine's code generator —
//! the same trust model as any compiling query engine.

use crate::bytecode::{BcFunction, BcInstr, Op, TRAP_DIV_ZERO, TRAP_OVERFLOW, TRAP_USER_BASE};
use crate::rt::Registry;
use std::fmt;

/// Frames at most this large use the stack buffer.
pub const STACK_FRAME_BYTES: usize = 4096;

/// Execution aborted with a trap (SQL runtime error), or query setup
/// failed before any morsel ran.
///
/// The first three variants are the VM traps proper. The remaining ones
/// surface *preparation* failures — a module that does not translate, a
/// compilation that fails, a missing runtime helper or table — as values
/// through the engine's session API instead of aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    Overflow,
    DivByZero,
    User(u32),
    /// IR → bytecode translation rejected the module.
    Translate(String),
    /// Compilation to a higher execution level failed.
    Compile(String),
    /// Query/session setup failed (missing runtime helper, unknown table,
    /// prepared statement used with the wrong engine).
    Setup(String),
    /// Bind-variable mismatch: wrong parameter arity, a value of the
    /// wrong type, or values supplied for a non-parameterized query.
    Bind(String),
    /// The execution was cooperatively cancelled: a client cancel
    /// request, an expired deadline, or a dropped connection poisoned
    /// the query's cancel token and the morsel loop observed it on a
    /// range claim. The query's prepared state stays warm-reusable.
    Cancelled {
        reason: String,
    },
    /// A worker or executor thread panicked mid-query and the panic was
    /// contained at the thread boundary (`catch_unwind`): the query
    /// fails with this typed error instead of aborting the process.
    /// `site` names the boundary that caught it. Prepared state and
    /// caches are left exactly as a clean run would leave them.
    Internal {
        site: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Overflow => write!(f, "numeric overflow"),
            ExecError::DivByZero => write!(f, "division by zero"),
            ExecError::User(c) => write!(f, "query error #{c}"),
            ExecError::Translate(m) => write!(f, "bytecode translation failed: {m}"),
            ExecError::Compile(m) => write!(f, "compilation failed: {m}"),
            ExecError::Setup(m) => write!(f, "query setup failed: {m}"),
            ExecError::Bind(m) => write!(f, "parameter binding failed: {m}"),
            ExecError::Cancelled { reason } => write!(f, "query cancelled: {reason}"),
            ExecError::Internal { site } => write!(f, "internal execution error at {site}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A reusable register-file buffer. Each worker thread keeps one so that
/// morsel-sized invocations never allocate.
#[derive(Default)]
pub struct Frame {
    heap: Vec<u64>,
}

impl Frame {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pointer to a heap register file of at least `bytes` bytes (public
    /// for the threaded-code executor in `aqe-jit`).
    pub fn heap_ptr_pub(&mut self, bytes: usize) -> *mut u8 {
        self.heap_ptr(bytes)
    }

    fn heap_ptr(&mut self, bytes: usize) -> *mut u8 {
        let words = bytes.div_ceil(8);
        if self.heap.len() < words {
            self.heap.resize(words, 0);
        }
        self.heap.as_mut_ptr() as *mut u8
    }
}

macro_rules! rd {
    ($regs:expr, $T:ty, $off:expr) => {
        unsafe { std::ptr::read($regs.add($off as usize) as *const $T) }
    };
}

macro_rules! wr {
    ($regs:expr, $T:ty, $off:expr, $v:expr) => {
        unsafe { std::ptr::write($regs.add($off as usize) as *mut $T, $v) }
    };
}

/// Execute a translated function.
///
/// `args` are the parameter values (narrow integers in the low bits of
/// their slot); returns the 8-byte return slot for value-returning
/// functions. The provided [`Frame`] is reused across calls; small frames
/// run out of a stack buffer (paper §IV-A).
pub fn execute(
    bc: &BcFunction,
    args: &[u64],
    rt: &Registry,
    frame: &mut Frame,
) -> Result<Option<u64>, ExecError> {
    assert_eq!(args.len(), bc.param_slots.len(), "argument count mismatch");
    let size = bc.frame_size as usize;
    if size <= STACK_FRAME_BYTES {
        let mut stack_buf = [0u64; STACK_FRAME_BYTES / 8];
        run(bc, args, rt, stack_buf.as_mut_ptr() as *mut u8)
    } else {
        let ptr = frame.heap_ptr(size);
        run(bc, args, rt, ptr)
    }
}

/// Control-flow outcome of a single instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Jump to an instruction index.
    Jump(u32),
    /// Return (void).
    RetNone,
    /// Return a value (raw 8-byte slot contents).
    RetVal(u64),
}

fn run(
    bc: &BcFunction,
    args: &[u64],
    rt: &Registry,
    regs: *mut u8,
) -> Result<Option<u64>, ExecError> {
    // Preloaded constants 0 and 1 (§IV-A) and the parameters.
    wr!(regs, u64, 0u16, 0u64);
    wr!(regs, u64, 8u16, 1u64);
    for (&slot, &v) in bc.param_slots.iter().zip(args) {
        wr!(regs, u64, slot, v);
    }

    let code = bc.code.as_ptr();
    let mut pc = 0usize;
    loop {
        debug_assert!(pc < bc.code.len(), "pc out of bounds");
        let i: &BcInstr = unsafe { &*code.add(pc) };
        match exec_one(i, regs, rt)? {
            Ctl::Next => pc += 1,
            Ctl::Jump(t) => pc = t as usize,
            Ctl::RetNone => return Ok(None),
            Ctl::RetVal(v) => return Ok(Some(v)),
        }
    }
}

/// Execute one instruction against the register file. This is the body of
/// the paper's Fig. 8 switch; it is shared between the VM loop above and the
/// threaded-code executor in `aqe-jit` (plain, non-fused steps).
///
/// # Safety
/// See the module docs: `i` must come from validated translator output and
/// `regs` must point at a frame of at least the translated frame size.
#[allow(clippy::too_many_lines)]
#[inline(always)]
pub fn exec_one(i: &BcInstr, regs: *mut u8, rt: &Registry) -> Result<Ctl, ExecError> {
    macro_rules! bin {
        ($i:expr, $T:ty, $f:expr) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            wr!(regs, $T, $i.a, $f(a, b));
        }};
    }
    macro_rules! bin_imm {
        ($i:expr, $T:ty, $f:expr) => {{
            let a: $T = rd!(regs, $T, $i.b);
            wr!(regs, $T, $i.a, $f(a, $i.lit as $T));
        }};
    }
    macro_rules! sdiv {
        ($i:expr, $T:ty) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            if a == <$T>::MIN && b == -1 {
                return Err(ExecError::Overflow);
            }
            wr!(regs, $T, $i.a, a / b);
        }};
    }
    macro_rules! udiv {
        ($i:expr, $T:ty, $U:ty) => {{
            let a = rd!(regs, $T, $i.b) as $U;
            let b = rd!(regs, $T, $i.c) as $U;
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            wr!(regs, $T, $i.a, (a / b) as $T);
        }};
    }
    macro_rules! srem {
        ($i:expr, $T:ty) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            wr!(regs, $T, $i.a, a.wrapping_rem(b));
        }};
    }
    macro_rules! urem {
        ($i:expr, $T:ty, $U:ty) => {{
            let a = rd!(regs, $T, $i.b) as $U;
            let b = rd!(regs, $T, $i.c) as $U;
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            wr!(regs, $T, $i.a, (a % b) as $T);
        }};
    }
    macro_rules! shift {
        ($i:expr, $T:ty, $f:ident) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            wr!(regs, $T, $i.a, a.$f(b as u32));
        }};
    }
    macro_rules! shift_imm {
        ($i:expr, $T:ty, $f:ident) => {{
            let a: $T = rd!(regs, $T, $i.b);
            wr!(regs, $T, $i.a, a.$f($i.lit as u32));
        }};
    }
    macro_rules! cmp {
        ($i:expr, $T:ty, $op:tt) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            wr!(regs, u8, $i.a, (a $op b) as u8);
        }};
    }
    macro_rules! cmpu {
        ($i:expr, $T:ty, $U:ty, $op:tt) => {{
            let a = rd!(regs, $T, $i.b) as $U;
            let b = rd!(regs, $T, $i.c) as $U;
            wr!(regs, u8, $i.a, (a $op b) as u8);
        }};
    }
    macro_rules! cmp_imm {
        ($i:expr, $T:ty, $op:tt) => {{
            let a: $T = rd!(regs, $T, $i.b);
            wr!(regs, u8, $i.a, (a $op ($i.lit as $T)) as u8);
        }};
    }
    macro_rules! cmpu_imm {
        ($i:expr, $T:ty, $U:ty, $op:tt) => {{
            let a = rd!(regs, $T, $i.b) as $U;
            wr!(regs, u8, $i.a, (a $op ($i.lit as $T as $U)) as u8);
        }};
    }
    macro_rules! ovf_trap {
        ($i:expr, $T:ty, $f:ident) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            match a.$f(b) {
                Some(v) => wr!(regs, $T, $i.a, v),
                None => return Err(ExecError::Overflow),
            }
        }};
    }
    macro_rules! ovf_val {
        ($i:expr, $T:ty, $f:ident) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            let (v, _) = a.$f(b);
            wr!(regs, $T, $i.a, v);
        }};
    }
    macro_rules! ovf_flag {
        ($i:expr, $T:ty, $f:ident) => {{
            let a: $T = rd!(regs, $T, $i.b);
            let b: $T = rd!(regs, $T, $i.c);
            let (_, o) = a.$f(b);
            wr!(regs, u8, $i.a, o as u8);
        }};
    }
    macro_rules! ext {
        ($i:expr, $From:ty, $To:ty) => {{
            let v: $From = rd!(regs, $From, $i.b);
            wr!(regs, $To, $i.a, v as $To);
        }};
    }
    macro_rules! load {
        ($i:expr, $T:ty) => {{
            let p = rd!(regs, u64, $i.b) as *const $T;
            wr!(regs, $T, $i.a, std::ptr::read_unaligned(p));
        }};
    }
    macro_rules! load_disp {
        ($i:expr, $T:ty) => {{
            let p = (rd!(regs, u64, $i.b) as i64 + $i.lit as i64) as *const $T;
            wr!(regs, $T, $i.a, std::ptr::read_unaligned(p));
        }};
    }
    macro_rules! load_idx {
        ($i:expr, $T:ty) => {{
            let base = rd!(regs, u64, $i.b) as i64;
            let idx = rd!(regs, i64, $i.c);
            let p =
                (base + idx * BcInstr::idx_scale($i.lit) + BcInstr::idx_disp($i.lit)) as *const $T;
            wr!(regs, $T, $i.a, std::ptr::read_unaligned(p));
        }};
    }
    macro_rules! store {
        ($i:expr, $T:ty) => {{
            let p = rd!(regs, u64, $i.a) as *mut $T;
            let v: $T = rd!(regs, $T, $i.b);
            unsafe { std::ptr::write_unaligned(p, v) };
        }};
    }
    macro_rules! store_disp {
        ($i:expr, $T:ty) => {{
            let p = (rd!(regs, u64, $i.a) as i64 + $i.lit as i64) as *mut $T;
            let v: $T = rd!(regs, $T, $i.b);
            unsafe { std::ptr::write_unaligned(p, v) };
        }};
    }
    macro_rules! store_idx {
        ($i:expr, $T:ty) => {{
            let base = rd!(regs, u64, $i.a) as i64;
            let idx = rd!(regs, i64, $i.c);
            let p =
                (base + idx * BcInstr::idx_scale($i.lit) + BcInstr::idx_disp($i.lit)) as *mut $T;
            let v: $T = rd!(regs, $T, $i.b);
            unsafe { std::ptr::write_unaligned(p, v) };
        }};
    }

    match i.op {
        Op::AddI8 => bin!(i, i8, i8::wrapping_add),
        Op::AddI16 => bin!(i, i16, i16::wrapping_add),
        Op::AddI32 => bin!(i, i32, i32::wrapping_add),
        Op::AddI64 => bin!(i, i64, i64::wrapping_add),
        Op::AddF64 => bin!(i, f64, |a, b| a + b),
        Op::SubI8 => bin!(i, i8, i8::wrapping_sub),
        Op::SubI16 => bin!(i, i16, i16::wrapping_sub),
        Op::SubI32 => bin!(i, i32, i32::wrapping_sub),
        Op::SubI64 => bin!(i, i64, i64::wrapping_sub),
        Op::SubF64 => bin!(i, f64, |a, b| a - b),
        Op::MulI8 => bin!(i, i8, i8::wrapping_mul),
        Op::MulI16 => bin!(i, i16, i16::wrapping_mul),
        Op::MulI32 => bin!(i, i32, i32::wrapping_mul),
        Op::MulI64 => bin!(i, i64, i64::wrapping_mul),
        Op::MulF64 => bin!(i, f64, |a, b| a * b),
        Op::SDivI8 => sdiv!(i, i8),
        Op::SDivI16 => sdiv!(i, i16),
        Op::SDivI32 => sdiv!(i, i32),
        Op::SDivI64 => sdiv!(i, i64),
        Op::UDivI8 => udiv!(i, i8, u8),
        Op::UDivI16 => udiv!(i, i16, u16),
        Op::UDivI32 => udiv!(i, i32, u32),
        Op::UDivI64 => udiv!(i, i64, u64),
        Op::SRemI8 => srem!(i, i8),
        Op::SRemI16 => srem!(i, i16),
        Op::SRemI32 => srem!(i, i32),
        Op::SRemI64 => srem!(i, i64),
        Op::URemI8 => urem!(i, i8, u8),
        Op::URemI16 => urem!(i, i16, u16),
        Op::URemI32 => urem!(i, i32, u32),
        Op::URemI64 => urem!(i, i64, u64),
        Op::FDivF64 => bin!(i, f64, |a, b| a / b),
        Op::AndI8 => bin!(i, i8, |a, b| a & b),
        Op::AndI16 => bin!(i, i16, |a, b| a & b),
        Op::AndI32 => bin!(i, i32, |a, b| a & b),
        Op::AndI64 => bin!(i, i64, |a, b| a & b),
        Op::OrI8 => bin!(i, i8, |a, b| a | b),
        Op::OrI16 => bin!(i, i16, |a, b| a | b),
        Op::OrI32 => bin!(i, i32, |a, b| a | b),
        Op::OrI64 => bin!(i, i64, |a, b| a | b),
        Op::XorI8 => bin!(i, i8, |a, b| a ^ b),
        Op::XorI16 => bin!(i, i16, |a, b| a ^ b),
        Op::XorI32 => bin!(i, i32, |a, b| a ^ b),
        Op::XorI64 => bin!(i, i64, |a, b| a ^ b),
        Op::ShlI8 => shift!(i, i8, wrapping_shl),
        Op::ShlI16 => shift!(i, i16, wrapping_shl),
        Op::ShlI32 => shift!(i, i32, wrapping_shl),
        Op::ShlI64 => shift!(i, i64, wrapping_shl),
        Op::AShrI8 => shift!(i, i8, wrapping_shr),
        Op::AShrI16 => shift!(i, i16, wrapping_shr),
        Op::AShrI32 => shift!(i, i32, wrapping_shr),
        Op::AShrI64 => shift!(i, i64, wrapping_shr),
        Op::LShrI8 => {
            let a = rd!(regs, i8, i.b) as u8;
            let b = rd!(regs, i8, i.c) as u8;
            wr!(regs, u8, i.a, a.wrapping_shr(b as u32));
        }
        Op::LShrI16 => {
            let a = rd!(regs, i16, i.b) as u16;
            let b = rd!(regs, i16, i.c) as u16;
            wr!(regs, u16, i.a, a.wrapping_shr(b as u32));
        }
        Op::LShrI32 => {
            let a = rd!(regs, i32, i.b) as u32;
            let b = rd!(regs, i32, i.c) as u32;
            wr!(regs, u32, i.a, a.wrapping_shr(b as u32));
        }
        Op::LShrI64 => {
            let a = rd!(regs, i64, i.b) as u64;
            let b = rd!(regs, i64, i.c) as u64;
            wr!(regs, u64, i.a, a.wrapping_shr(b as u32));
        }

        Op::AddImmI32 => bin_imm!(i, i32, i32::wrapping_add),
        Op::AddImmI64 => bin_imm!(i, i64, i64::wrapping_add),
        Op::AddImmF64 => {
            let a: f64 = rd!(regs, f64, i.b);
            wr!(regs, f64, i.a, a + f64::from_bits(i.lit));
        }
        Op::SubImmI32 => bin_imm!(i, i32, i32::wrapping_sub),
        Op::SubImmI64 => bin_imm!(i, i64, i64::wrapping_sub),
        Op::MulImmI32 => bin_imm!(i, i32, i32::wrapping_mul),
        Op::MulImmI64 => bin_imm!(i, i64, i64::wrapping_mul),
        Op::MulImmF64 => {
            let a: f64 = rd!(regs, f64, i.b);
            wr!(regs, f64, i.a, a * f64::from_bits(i.lit));
        }
        Op::AndImmI32 => bin_imm!(i, i32, |a, b| a & b),
        Op::AndImmI64 => bin_imm!(i, i64, |a, b| a & b),
        Op::OrImmI32 => bin_imm!(i, i32, |a, b| a | b),
        Op::OrImmI64 => bin_imm!(i, i64, |a, b| a | b),
        Op::XorImmI32 => bin_imm!(i, i32, |a, b| a ^ b),
        Op::XorImmI64 => bin_imm!(i, i64, |a, b| a ^ b),
        Op::ShlImmI32 => shift_imm!(i, i32, wrapping_shl),
        Op::ShlImmI64 => shift_imm!(i, i64, wrapping_shl),
        Op::AShrImmI32 => shift_imm!(i, i32, wrapping_shr),
        Op::AShrImmI64 => shift_imm!(i, i64, wrapping_shr),
        Op::LShrImmI32 => {
            let a = rd!(regs, i32, i.b) as u32;
            wr!(regs, u32, i.a, a.wrapping_shr(i.lit as u32));
        }
        Op::LShrImmI64 => {
            let a = rd!(regs, i64, i.b) as u64;
            wr!(regs, u64, i.a, a.wrapping_shr(i.lit as u32));
        }

        Op::CmpEqI8 => cmp!(i, i8, ==),
        Op::CmpEqI16 => cmp!(i, i16, ==),
        Op::CmpEqI32 => cmp!(i, i32, ==),
        Op::CmpEqI64 => cmp!(i, i64, ==),
        Op::CmpNeI8 => cmp!(i, i8, !=),
        Op::CmpNeI16 => cmp!(i, i16, !=),
        Op::CmpNeI32 => cmp!(i, i32, !=),
        Op::CmpNeI64 => cmp!(i, i64, !=),
        Op::CmpSltI8 => cmp!(i, i8, <),
        Op::CmpSltI16 => cmp!(i, i16, <),
        Op::CmpSltI32 => cmp!(i, i32, <),
        Op::CmpSltI64 => cmp!(i, i64, <),
        Op::CmpSleI8 => cmp!(i, i8, <=),
        Op::CmpSleI16 => cmp!(i, i16, <=),
        Op::CmpSleI32 => cmp!(i, i32, <=),
        Op::CmpSleI64 => cmp!(i, i64, <=),
        Op::CmpSgtI8 => cmp!(i, i8, >),
        Op::CmpSgtI16 => cmp!(i, i16, >),
        Op::CmpSgtI32 => cmp!(i, i32, >),
        Op::CmpSgtI64 => cmp!(i, i64, >),
        Op::CmpSgeI8 => cmp!(i, i8, >=),
        Op::CmpSgeI16 => cmp!(i, i16, >=),
        Op::CmpSgeI32 => cmp!(i, i32, >=),
        Op::CmpSgeI64 => cmp!(i, i64, >=),
        Op::CmpUltI8 => cmpu!(i, i8, u8, <),
        Op::CmpUltI16 => cmpu!(i, i16, u16, <),
        Op::CmpUltI32 => cmpu!(i, i32, u32, <),
        Op::CmpUltI64 => cmpu!(i, i64, u64, <),
        Op::CmpUleI8 => cmpu!(i, i8, u8, <=),
        Op::CmpUleI16 => cmpu!(i, i16, u16, <=),
        Op::CmpUleI32 => cmpu!(i, i32, u32, <=),
        Op::CmpUleI64 => cmpu!(i, i64, u64, <=),
        Op::CmpUgtI8 => cmpu!(i, i8, u8, >),
        Op::CmpUgtI16 => cmpu!(i, i16, u16, >),
        Op::CmpUgtI32 => cmpu!(i, i32, u32, >),
        Op::CmpUgtI64 => cmpu!(i, i64, u64, >),
        Op::CmpUgeI8 => cmpu!(i, i8, u8, >=),
        Op::CmpUgeI16 => cmpu!(i, i16, u16, >=),
        Op::CmpUgeI32 => cmpu!(i, i32, u32, >=),
        Op::CmpUgeI64 => cmpu!(i, i64, u64, >=),
        Op::CmpEqF64 => cmp!(i, f64, ==),
        Op::CmpNeF64 => cmp!(i, f64, !=),
        Op::CmpLtF64 => cmp!(i, f64, <),
        Op::CmpLeF64 => cmp!(i, f64, <=),
        Op::CmpGtF64 => cmp!(i, f64, >),
        Op::CmpGeF64 => cmp!(i, f64, >=),

        Op::CmpImmEqI32 => cmp_imm!(i, i32, ==),
        Op::CmpImmEqI64 => cmp_imm!(i, i64, ==),
        Op::CmpImmNeI32 => cmp_imm!(i, i32, !=),
        Op::CmpImmNeI64 => cmp_imm!(i, i64, !=),
        Op::CmpImmSltI32 => cmp_imm!(i, i32, <),
        Op::CmpImmSltI64 => cmp_imm!(i, i64, <),
        Op::CmpImmSleI32 => cmp_imm!(i, i32, <=),
        Op::CmpImmSleI64 => cmp_imm!(i, i64, <=),
        Op::CmpImmSgtI32 => cmp_imm!(i, i32, >),
        Op::CmpImmSgtI64 => cmp_imm!(i, i64, >),
        Op::CmpImmSgeI32 => cmp_imm!(i, i32, >=),
        Op::CmpImmSgeI64 => cmp_imm!(i, i64, >=),
        Op::CmpImmUltI32 => cmpu_imm!(i, i32, u32, <),
        Op::CmpImmUltI64 => cmpu_imm!(i, i64, u64, <),
        Op::CmpImmUleI32 => cmpu_imm!(i, i32, u32, <=),
        Op::CmpImmUleI64 => cmpu_imm!(i, i64, u64, <=),
        Op::CmpImmUgtI32 => cmpu_imm!(i, i32, u32, >),
        Op::CmpImmUgtI64 => cmpu_imm!(i, i64, u64, >),
        Op::CmpImmUgeI32 => cmpu_imm!(i, i32, u32, >=),
        Op::CmpImmUgeI64 => cmpu_imm!(i, i64, u64, >=),

        Op::AddOvfTrapI32 => ovf_trap!(i, i32, checked_add),
        Op::AddOvfTrapI64 => ovf_trap!(i, i64, checked_add),
        Op::SubOvfTrapI32 => ovf_trap!(i, i32, checked_sub),
        Op::SubOvfTrapI64 => ovf_trap!(i, i64, checked_sub),
        Op::MulOvfTrapI32 => ovf_trap!(i, i32, checked_mul),
        Op::MulOvfTrapI64 => ovf_trap!(i, i64, checked_mul),
        Op::AddOvfValI32 => ovf_val!(i, i32, overflowing_add),
        Op::AddOvfValI64 => ovf_val!(i, i64, overflowing_add),
        Op::SubOvfValI32 => ovf_val!(i, i32, overflowing_sub),
        Op::SubOvfValI64 => ovf_val!(i, i64, overflowing_sub),
        Op::MulOvfValI32 => ovf_val!(i, i32, overflowing_mul),
        Op::MulOvfValI64 => ovf_val!(i, i64, overflowing_mul),
        Op::AddOvfFlagI32 => ovf_flag!(i, i32, overflowing_add),
        Op::AddOvfFlagI64 => ovf_flag!(i, i64, overflowing_add),
        Op::SubOvfFlagI32 => ovf_flag!(i, i32, overflowing_sub),
        Op::SubOvfFlagI64 => ovf_flag!(i, i64, overflowing_sub),
        Op::MulOvfFlagI32 => ovf_flag!(i, i32, overflowing_mul),
        Op::MulOvfFlagI64 => ovf_flag!(i, i64, overflowing_mul),

        Op::SExtI8I16 => ext!(i, i8, i16),
        Op::SExtI8I32 => ext!(i, i8, i32),
        Op::SExtI8I64 => ext!(i, i8, i64),
        Op::SExtI16I32 => ext!(i, i16, i32),
        Op::SExtI16I64 => ext!(i, i16, i64),
        Op::SExtI32I64 => ext!(i, i32, i64),
        Op::ZExtI8I16 => ext!(i, u8, u16),
        Op::ZExtI8I32 => ext!(i, u8, u32),
        Op::ZExtI8I64 => ext!(i, u8, u64),
        Op::ZExtI16I32 => ext!(i, u16, u32),
        Op::ZExtI16I64 => ext!(i, u16, u64),
        Op::ZExtI32I64 => ext!(i, u32, u64),
        Op::SiToFpI32 => ext!(i, i32, f64),
        Op::SiToFpI64 => ext!(i, i64, f64),
        Op::FpToSiI32 => ext!(i, f64, i32),
        Op::FpToSiI64 => ext!(i, f64, i64),

        Op::Mov64 => {
            let v: u64 = rd!(regs, u64, i.b);
            wr!(regs, u64, i.a, v);
        }
        Op::Const64 => wr!(regs, u64, i.a, i.lit),
        Op::Select64 => {
            let c: u8 = rd!(regs, u8, i.b);
            let src = if c != 0 { i.c } else { i.lit as u16 };
            let v: u64 = rd!(regs, u64, src);
            wr!(regs, u64, i.a, v);
        }

        Op::Load8 => load!(i, u8),
        Op::Load16 => load!(i, u16),
        Op::Load32 => load!(i, u32),
        Op::Load64 => load!(i, u64),
        Op::Load8Disp => load_disp!(i, u8),
        Op::Load16Disp => load_disp!(i, u16),
        Op::Load32Disp => load_disp!(i, u32),
        Op::Load64Disp => load_disp!(i, u64),
        Op::Load8Idx => load_idx!(i, u8),
        Op::Load16Idx => load_idx!(i, u16),
        Op::Load32Idx => load_idx!(i, u32),
        Op::Load64Idx => load_idx!(i, u64),
        Op::Store8 => store!(i, u8),
        Op::Store16 => store!(i, u16),
        Op::Store32 => store!(i, u32),
        Op::Store64 => store!(i, u64),
        Op::Store8Disp => store_disp!(i, u8),
        Op::Store16Disp => store_disp!(i, u16),
        Op::Store32Disp => store_disp!(i, u32),
        Op::Store64Disp => store_disp!(i, u64),
        Op::Store8Idx => store_idx!(i, u8),
        Op::Store16Idx => store_idx!(i, u16),
        Op::Store32Idx => store_idx!(i, u32),
        Op::Store64Idx => store_idx!(i, u64),
        Op::GepIdx => {
            let base = rd!(regs, u64, i.b) as i64;
            let idx = rd!(regs, i64, i.c);
            wr!(regs, i64, i.a, base + idx * BcInstr::idx_scale(i.lit) + BcInstr::idx_disp(i.lit));
        }

        Op::Br => return Ok(Ctl::Jump(i.lit as u32)),
        Op::CondBr => {
            let c: u8 = rd!(regs, u8, i.b);
            let t = if c != 0 { BcInstr::branch_then(i.lit) } else { BcInstr::branch_else(i.lit) };
            return Ok(Ctl::Jump(t as u32));
        }
        Op::Ret => return Ok(Ctl::RetNone),
        Op::RetVal => return Ok(Ctl::RetVal(rd!(regs, u64, i.a))),
        Op::TrapOp => {
            return Err(match i.lit {
                TRAP_OVERFLOW => ExecError::Overflow,
                TRAP_DIV_ZERO => ExecError::DivByZero,
                other => ExecError::User((other & !TRAP_USER_BASE) as u32),
            });
        }
        Op::CallRt => {
            let f = rt.fn_ptr(i.lit as usize);
            unsafe { f(regs.add(i.b as usize) as *const u64, regs.add(i.a as usize) as *mut u64) };
        }
    }
    Ok(Ctl::Next)
}

/// The bytecode VM as a uniform execution backend: translated functions
/// are directly installable into the engine's hot-swap handles.
impl crate::backend::PipelineBackend for BcFunction {
    fn call(
        &self,
        args: &[u64],
        rt: &Registry,
        frame: &mut Frame,
    ) -> Result<Option<u64>, ExecError> {
        execute(self, args, rt, frame)
    }

    fn kind(&self) -> crate::backend::ExecMode {
        crate::backend::ExecMode::Bytecode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, TranslateOptions};
    use aqe_ir::{BinOp, CmpPred, Constant, FunctionBuilder, OvfOp, Type};

    fn run1(f: &aqe_ir::Function, args: &[u64]) -> Result<Option<u64>, ExecError> {
        let bc = translate(f, &[], TranslateOptions::default()).unwrap();
        let rt = Registry::new();
        let mut frame = Frame::new();
        execute(&bc, args, &rt, &mut frame)
    }

    #[test]
    fn add_function_runs() {
        let mut b = FunctionBuilder::new("add", &[Type::I64, Type::I64], Some(Type::I64));
        let s = b.bin(BinOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        assert_eq!(run1(&f, &[20, 22]).unwrap(), Some(42));
    }

    #[test]
    fn narrow_arithmetic_wraps_at_width() {
        let mut b = FunctionBuilder::new("f", &[Type::I32, Type::I32], Some(Type::I32));
        let s = b.bin(BinOp::Add, Type::I32, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let r = run1(&f, &[i32::MAX as u64, 1]).unwrap().unwrap();
        assert_eq!(r as u32 as i32, i32::MIN);
    }

    #[test]
    fn loop_sums_range() {
        // sum of 0..n via accumulator φ
        let mut b = FunctionBuilder::new("sum", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        let head = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        let pre = b.current_block();
        b.br(head);
        b.switch_to(head);
        let iv = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
        let acc = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
        let done = b.cmp(CmpPred::SGe, Type::I64, iv.into(), n.into());
        b.cond_br(done.into(), exit, body);
        b.switch_to(body);
        let acc2 = b.bin(BinOp::Add, Type::I64, acc.into(), iv.into());
        let iv2 = b.bin(BinOp::Add, Type::I64, iv.into(), Constant::i64(1).into());
        b.phi_add_incoming(iv, body, iv2.into());
        b.phi_add_incoming(acc, body, acc2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let f = b.finish().unwrap();
        assert_eq!(run1(&f, &[10]).unwrap(), Some(45));
        assert_eq!(run1(&f, &[0]).unwrap(), Some(0));
        assert_eq!(run1(&f, &[1000]).unwrap(), Some(499500));
    }

    #[test]
    fn overflow_traps() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I64));
        let s = b.checked_arith(OvfOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        assert_eq!(run1(&f, &[1, 2]).unwrap(), Some(3));
        assert_eq!(run1(&f, &[i64::MAX as u64, 1]), Err(ExecError::Overflow));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I64));
        let s = b.bin(BinOp::SDiv, Type::I64, b.param(0).into(), b.param(1).into());
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        assert_eq!(run1(&f, &[10, 3]).unwrap(), Some(3));
        assert_eq!(run1(&f, &[10, 0]), Err(ExecError::DivByZero));
        assert_eq!(run1(&f, &[i64::MIN as u64, (-1i64) as u64]), Err(ExecError::Overflow));
    }

    #[test]
    fn memory_roundtrip() {
        let mut b = FunctionBuilder::new("f", &[Type::Ptr, Type::I64], Some(Type::I64));
        // data[1] = v; return data[1] * 2
        let slot = b.gep_indexed(b.param(0).into(), 0, Constant::i64(1).into(), 8);
        b.store(Type::I64, b.param(1).into(), slot.into());
        let slot2 = b.gep(b.param(0).into(), 8);
        let v = b.load(Type::I64, slot2.into());
        let r = b.bin(BinOp::Mul, Type::I64, v.into(), Constant::i64(2).into());
        b.ret(Some(r.into()));
        let f = b.finish().unwrap();
        let mut data = [0u64; 2];
        let r = run1(&f, &[data.as_mut_ptr() as u64, 21]).unwrap();
        assert_eq!(r, Some(42));
        assert_eq!(data[1], 21);
    }

    #[test]
    fn select_works() {
        let mut b = FunctionBuilder::new("max", &[Type::I64, Type::I64], Some(Type::I64));
        let c = b.cmp(CmpPred::SGt, Type::I64, b.param(0).into(), b.param(1).into());
        let m = b.select(Type::I64, c.into(), b.param(0).into(), b.param(1).into());
        b.ret(Some(m.into()));
        let f = b.finish().unwrap();
        assert_eq!(run1(&f, &[3, 9]).unwrap(), Some(9));
        assert_eq!(run1(&f, &[9, 3]).unwrap(), Some(9));
    }

    #[test]
    fn runtime_call_from_bytecode() {
        unsafe fn rt_add3(args: *const u64, ret: *mut u64) {
            unsafe { *ret = *args + *args.add(1) + *args.add(2) }
        }
        let mut m = aqe_ir::Module::new();
        let ext =
            m.declare_extern("rt_add3", vec![Type::I64, Type::I64, Type::I64], Some(Type::I64));
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let r = b.call(
            ext,
            vec![b.param(0).into(), Constant::i64(10).into(), Constant::i64(100).into()],
            Some(Type::I64),
        );
        b.ret(Some(r.into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &m.externs, TranslateOptions::default()).unwrap();
        let mut rt = Registry::new();
        rt.register(m.externs[0].clone(), rt_add3);
        let mut frame = Frame::new();
        assert_eq!(execute(&bc, &[1], &rt, &mut frame).unwrap(), Some(111));
    }

    #[test]
    fn float_pipeline() {
        let mut b = FunctionBuilder::new("f", &[Type::F64, Type::F64], Some(Type::F64));
        let s = b.bin(BinOp::Add, Type::F64, b.param(0).into(), b.param(1).into());
        let q = b.bin(BinOp::FDiv, Type::F64, s.into(), Constant::f64(2.0).into());
        b.ret(Some(q.into()));
        let f = b.finish().unwrap();
        let r = run1(&f, &[3.0f64.to_bits(), 5.0f64.to_bits()]).unwrap().unwrap();
        assert_eq!(f64::from_bits(r), 4.0);
    }

    #[test]
    fn casts_round_trip() {
        let mut b = FunctionBuilder::new("f", &[Type::I32], Some(Type::I64));
        let w = b.cast(aqe_ir::CastKind::SExt, Type::I32, Type::I64, b.param(0).into());
        let fl = b.cast(aqe_ir::CastKind::SiToFp, Type::I64, Type::F64, w.into());
        let half = b.bin(BinOp::FDiv, Type::F64, fl.into(), Constant::f64(2.0).into());
        let back = b.cast(aqe_ir::CastKind::FpToSi, Type::F64, Type::I64, half.into());
        b.ret(Some(back.into()));
        let f = b.finish().unwrap();
        let r = run1(&f, &[(-10i32) as u32 as u64]).unwrap().unwrap();
        assert_eq!(r as i64, -5);
    }

    #[test]
    fn diamond_with_phi() {
        let mut b = FunctionBuilder::new("abs", &[Type::I64], Some(Type::I64));
        let neg = b.add_block();
        let join = b.add_block();
        let p = b.param(0);
        let c = b.cmp(CmpPred::SLt, Type::I64, p.into(), Constant::i64(0).into());
        let entry = b.current_block();
        b.cond_br(c.into(), neg, join);
        b.switch_to(neg);
        let negated = b.bin(BinOp::Sub, Type::I64, Constant::i64(0).into(), p.into());
        b.br(join);
        b.switch_to(join);
        let phi = b.phi(Type::I64, vec![(entry, p.into()), (neg, negated.into())]);
        b.ret(Some(phi.into()));
        let f = b.finish().unwrap();
        assert_eq!(run1(&f, &[(-7i64) as u64]).unwrap(), Some(7));
        assert_eq!(run1(&f, &[7]).unwrap(), Some(7));
    }

    #[test]
    fn phi_swap_cycle_is_resolved() {
        // Classic swap loop: (a, b) = (b, a) every iteration.
        let mut b = FunctionBuilder::new("swap", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        let head = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        let pre = b.current_block();
        b.br(head);
        b.switch_to(head);
        let iv = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
        let x = b.phi(Type::I64, vec![(pre, Constant::i64(1).into())]);
        let y = b.phi(Type::I64, vec![(pre, Constant::i64(2).into())]);
        let done = b.cmp(CmpPred::SGe, Type::I64, iv.into(), n.into());
        b.cond_br(done.into(), exit, body);
        b.switch_to(body);
        let iv2 = b.bin(BinOp::Add, Type::I64, iv.into(), Constant::i64(1).into());
        b.phi_add_incoming(iv, body, iv2.into());
        b.phi_add_incoming(x, body, y.into()); // swap!
        b.phi_add_incoming(y, body, x.into());
        b.br(head);
        b.switch_to(exit);
        // return x * 10 + y
        let x10 = b.bin(BinOp::Mul, Type::I64, x.into(), Constant::i64(10).into());
        let r = b.bin(BinOp::Add, Type::I64, x10.into(), y.into());
        b.ret(Some(r.into()));
        let f = b.finish().unwrap();
        assert_eq!(run1(&f, &[0]).unwrap(), Some(12));
        assert_eq!(run1(&f, &[1]).unwrap(), Some(21));
        assert_eq!(run1(&f, &[2]).unwrap(), Some(12));
        assert_eq!(run1(&f, &[3]).unwrap(), Some(21));
    }
}
