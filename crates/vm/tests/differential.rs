//! Differential testing: the bytecode VM must behave *identically* to the
//! direct IR interpreter ("the VM must behave 100% identical to native
//! machine code as we want to seamlessly switch", §IV).
//!
//! Random structured programs (arithmetic, comparisons, selects, diamonds
//! with φ merges, bounded loops with accumulator φs, overflow-checked ops)
//! are generated from a proptest seed and executed under both engines; the
//! results — including traps — must match exactly, for every allocation
//! strategy and with fusion on and off.

use aqe_ir::{BinOp, CmpPred, Constant, Function, FunctionBuilder, Operand, OvfOp, Type, ValueId};
use aqe_vm::backend::{ExecMode, PipelineBackend};
use aqe_vm::interp::{execute, ExecError, Frame};
use aqe_vm::naive::{self, NaiveBackend};
use aqe_vm::regalloc::AllocStrategy;
use aqe_vm::rt::Registry;
use aqe_vm::translate::{translate, TranslateOptions};
use proptest::prelude::*;
use std::sync::Arc;

/// A little structured-program AST that proptest can generate and that
/// always terminates.
#[derive(Clone, Debug)]
enum Stmt {
    /// new value = binop(pick(a), pick(b))
    Bin(BinOp, u8, u8),
    /// new value = binop(pick(a), literal) — boundary constants included
    BinConst(BinOp, u8, i64),
    /// new value = checked add/sub/mul (may trap with Overflow)
    Checked(OvfOp, u8, u8),
    /// new value = select(cmp(a, b), c, d)
    CmpSelect(CmpPred, u8, u8, u8, u8),
    /// diamond: if cmp(a,0) { x = pick(b) op1 c } else { x = pick(d) }; φ
    Diamond(u8, u8, u8, u8),
    /// bounded loop: acc = Σ f(i, pick(a)) for i in 0..trips
    Loop { trips: u8, a: u8 },
    /// new value = pick(a) / pick(b) — may trap with DivByZero/Overflow
    Div(u8, u8),
    /// new value = select(cmp(pick(a), literal), c, d) — the literal pool
    /// leans on i32/i64 extremes so widening/sign bugs can't hide
    CmpConst(CmpPred, u8, i64, u8, u8),
}

/// Literal pool biased toward representation boundaries: the i32/i64 type
/// extremes, the first values *past* the i32 range, and sign flips.
fn const_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        any::<i16>().prop_map(i64::from),
        Just(i64::MIN),
        Just(i64::MAX),
        Just(i32::MIN as i64),
        Just(i32::MAX as i64),
        Just(i32::MIN as i64 - 1),
        Just(i32::MAX as i64 + 1),
        Just(-1i64),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let bin_ops = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ];
    let ovf_ops = prop_oneof![Just(OvfOp::Add), Just(OvfOp::Sub), Just(OvfOp::Mul)];
    let preds = prop_oneof![
        Just(CmpPred::Eq),
        Just(CmpPred::Ne),
        Just(CmpPred::SLt),
        Just(CmpPred::SLe),
        Just(CmpPred::SGt),
        Just(CmpPred::UGe),
        Just(CmpPred::ULt),
    ];
    let bin_ops2 = bin_ops.clone();
    let preds2 = preds.clone();
    prop_oneof![
        (bin_ops, any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Stmt::Bin(o, a, b)),
        (bin_ops2, any::<u8>(), const_strategy()).prop_map(|(o, a, c)| Stmt::BinConst(o, a, c)),
        (ovf_ops, any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Stmt::Checked(o, a, b)),
        (preds, any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(p, a, b, c, d)| Stmt::CmpSelect(p, a, b, c, d)),
        (preds2, any::<u8>(), const_strategy(), any::<u8>(), any::<u8>())
            .prop_map(|(p, a, k, c, d)| Stmt::CmpConst(p, a, k, c, d)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(a, b, c, d)| Stmt::Diamond(a, b, c, d)),
        (0u8..6, any::<u8>()).prop_map(|(trips, a)| Stmt::Loop { trips, a }),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Stmt::Div(a, b)),
    ]
}

/// Lower a statement list into a verified IR function of two i64 params.
fn lower(stmts: &[Stmt]) -> Function {
    let mut b = FunctionBuilder::new("prog", &[Type::I64, Type::I64], Some(Type::I64));
    let mut vals: Vec<ValueId> = vec![b.param(0), b.param(1)];
    let pick = |vals: &[ValueId], i: u8| vals[i as usize % vals.len()];
    for s in stmts {
        match *s {
            Stmt::Bin(op, a, bi) => {
                let (x, y) = (pick(&vals, a), pick(&vals, bi));
                let v = b.bin(op, Type::I64, x.into(), y.into());
                vals.push(v);
            }
            Stmt::BinConst(op, a, c) => {
                let v = b.bin(op, Type::I64, pick(&vals, a).into(), Constant::i64(c).into());
                vals.push(v);
            }
            Stmt::CmpConst(p, a, k, c, d) => {
                let cond = b.cmp(p, Type::I64, pick(&vals, a).into(), Constant::i64(k).into());
                let v =
                    b.select(Type::I64, cond.into(), pick(&vals, c).into(), pick(&vals, d).into());
                vals.push(v);
            }
            Stmt::Checked(op, a, bi) => {
                let (x, y) = (pick(&vals, a), pick(&vals, bi));
                let v = b.checked_arith(op, Type::I64, x.into(), y.into());
                vals.push(v);
            }
            Stmt::CmpSelect(p, a, bi, c, d) => {
                let cond = b.cmp(p, Type::I64, pick(&vals, a).into(), pick(&vals, bi).into());
                let v =
                    b.select(Type::I64, cond.into(), pick(&vals, c).into(), pick(&vals, d).into());
                vals.push(v);
            }
            Stmt::Diamond(a, bi, c, d) => {
                let cond =
                    b.cmp(CmpPred::SGt, Type::I64, pick(&vals, a).into(), Constant::i64(0).into());
                let t_bb = b.add_block();
                let e_bb = b.add_block();
                let j_bb = b.add_block();
                b.cond_br(cond.into(), t_bb, e_bb);
                b.switch_to(t_bb);
                let tv =
                    b.bin(BinOp::Add, Type::I64, pick(&vals, bi).into(), pick(&vals, c).into());
                b.br(j_bb);
                b.switch_to(e_bb);
                let ev = b.bin(
                    BinOp::Xor,
                    Type::I64,
                    pick(&vals, d).into(),
                    Constant::i64(0x5a5a).into(),
                );
                b.br(j_bb);
                b.switch_to(j_bb);
                let phi = b.phi(Type::I64, vec![(t_bb, tv.into()), (e_bb, ev.into())]);
                vals.push(phi);
            }
            Stmt::Loop { trips, a } => {
                let seed = pick(&vals, a);
                let head = b.add_block();
                let body = b.add_block();
                let exit = b.add_block();
                let pre = b.current_block();
                b.br(head);
                b.switch_to(head);
                let iv = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
                let acc = b.phi(Type::I64, vec![(pre, seed.into())]);
                let done =
                    b.cmp(CmpPred::SGe, Type::I64, iv.into(), Constant::i64(trips as i64).into());
                b.cond_br(done.into(), exit, body);
                b.switch_to(body);
                // acc' = acc*3 ^ iv (wrapping, never traps)
                let acc3 = b.bin(BinOp::Mul, Type::I64, acc.into(), Constant::i64(3).into());
                let acc2 = b.bin(BinOp::Xor, Type::I64, acc3.into(), iv.into());
                let iv2 = b.bin(BinOp::Add, Type::I64, iv.into(), Constant::i64(1).into());
                b.phi_add_incoming(iv, body, iv2.into());
                b.phi_add_incoming(acc, body, acc2.into());
                b.br(head);
                b.switch_to(exit);
                vals.push(acc);
            }
            Stmt::Div(a, bi) => {
                let v =
                    b.bin(BinOp::SDiv, Type::I64, pick(&vals, a).into(), pick(&vals, bi).into());
                vals.push(v);
            }
        }
    }
    // Fold everything into one result so no value is trivially dead.
    let mut acc: Operand = vals[0].into();
    for &v in &vals[1..] {
        acc = b.bin(BinOp::Xor, Type::I64, acc, v.into()).into();
    }
    b.ret(Some(acc));
    b.finish().expect("generated program must verify")
}

fn run_vm(f: &Function, args: &[u64], opts: TranslateOptions) -> Result<Option<u64>, ExecError> {
    let bc = translate(f, &[], opts).expect("translation");
    let rt = Registry::new();
    let mut frame = Frame::new();
    execute(&bc, args, &rt, &mut frame)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// VM ≡ naive interpreter, with default options.
    #[test]
    fn vm_matches_naive(
        stmts in prop::collection::vec(stmt_strategy(), 1..24),
        x in any::<i64>(),
        y in any::<i64>(),
    ) {
        let f = lower(&stmts);
        let expect = naive::interpret_pure(&f, &[x as u64, y as u64]);
        let got = run_vm(&f, &[x as u64, y as u64], TranslateOptions::default());
        prop_assert_eq!(expect, got);
    }

    /// Both of this crate's backends, dispatched uniformly through the
    /// engine's `Arc<dyn PipelineBackend>` seam, agree — results *and*
    /// traps (the §III-B hot-swap contract).
    #[test]
    fn backends_agree_through_trait_dispatch(
        stmts in prop::collection::vec(stmt_strategy(), 1..16),
        x in any::<i64>(),
        y in any::<i64>(),
    ) {
        let f = lower(&stmts);
        let bc = translate(&f, &[], TranslateOptions::default()).expect("translation");
        let backends: [Arc<dyn PipelineBackend>; 2] =
            [Arc::new(NaiveBackend::new(Arc::new(f))), Arc::new(bc)];
        prop_assert_eq!(backends[0].kind(), ExecMode::NaiveIr);
        prop_assert_eq!(backends[1].kind(), ExecMode::Bytecode);
        let rt = Registry::new();
        let mut frame = Frame::new();
        let args = [x as u64, y as u64];
        let results: Vec<_> =
            backends.iter().map(|b| b.call(&args, &rt, &mut frame)).collect();
        prop_assert_eq!(&results[0], &results[1], "naive vs bytecode via dyn dispatch");
    }

    /// Fusion must not change semantics.
    #[test]
    fn fusion_is_semantics_preserving(
        stmts in prop::collection::vec(stmt_strategy(), 1..16),
        x in any::<i64>(),
    ) {
        let f = lower(&stmts);
        let fused = run_vm(&f, &[x as u64, 1], TranslateOptions::default());
        let unfused = run_vm(
            &f,
            &[x as u64, 1],
            TranslateOptions { fuse_ovf: false, fuse_gep: false, ..Default::default() },
        );
        prop_assert_eq!(fused, unfused);
    }

    /// Register reuse must not change semantics (no-reuse as the oracle).
    #[test]
    fn slot_reuse_is_semantics_preserving(
        stmts in prop::collection::vec(stmt_strategy(), 1..16),
        x in any::<i64>(),
        y in any::<i64>(),
    ) {
        let f = lower(&stmts);
        let reuse = run_vm(&f, &[x as u64, y as u64], TranslateOptions::default());
        let no_reuse = run_vm(
            &f,
            &[x as u64, y as u64],
            TranslateOptions { strategy: AllocStrategy::NoReuse, ..Default::default() },
        );
        prop_assert_eq!(reuse, no_reuse);
        let windowed = run_vm(
            &f,
            &[x as u64, y as u64],
            TranslateOptions { strategy: AllocStrategy::FixedWindow(3), ..Default::default() },
        );
        prop_assert_eq!(reuse, windowed);
    }

    /// The register file with reuse never exceeds the no-reuse file, and the
    /// linear live ranges keep it dramatically smaller on loop-heavy code.
    #[test]
    fn reuse_never_larger(stmts in prop::collection::vec(stmt_strategy(), 1..24)) {
        let f = lower(&stmts);
        let reuse = translate(&f, &[], TranslateOptions::default()).unwrap().frame_size;
        let no_reuse = translate(
            &f,
            &[],
            TranslateOptions { strategy: AllocStrategy::NoReuse, ..Default::default() },
        )
        .unwrap()
        .frame_size;
        prop_assert!(reuse <= no_reuse);
    }
}

/// Deterministic regression corpus: a few shapes that exercised bugs during
/// development, pinned exactly.
#[test]
fn regression_shapes() {
    use Stmt::*;
    let cases: Vec<Vec<Stmt>> = vec![
        vec![Loop { trips: 3, a: 0 }, Div(0, 1), Checked(OvfOp::Mul, 2, 2)],
        vec![Diamond(0, 1, 0, 1), Loop { trips: 0, a: 2 }],
        vec![Checked(OvfOp::Add, 0, 0), Checked(OvfOp::Sub, 1, 2), Bin(BinOp::Mul, 3, 3)],
        vec![Loop { trips: 5, a: 1 }, Loop { trips: 2, a: 2 }, Diamond(3, 2, 1, 0)],
        vec![
            BinConst(BinOp::Add, 0, i64::MIN),
            CmpConst(CmpPred::SLt, 2, i32::MAX as i64 + 1, 0, 1),
            BinConst(BinOp::Xor, 3, i32::MIN as i64 - 1),
            CmpConst(CmpPred::UGe, 1, -1, 3, 2),
        ],
    ];
    for stmts in cases {
        let f = lower(&stmts);
        for &(x, y) in &[(0i64, 0i64), (1, -1), (i64::MAX, 2), (i64::MIN, -1), (12345, -67890)] {
            let expect = naive::interpret_pure(&f, &[x as u64, y as u64]);
            let got = run_vm(&f, &[x as u64, y as u64], TranslateOptions::default());
            assert_eq!(expect, got, "stmts={stmts:?} x={x} y={y}");
        }
    }
}
