//! # aqe-fault — deterministic fault injection
//!
//! Named failpoints threaded through the engine's high-risk sites
//! (compiles, W^X mapping, bytecode translation, morsel workers,
//! server syscalls). Disarmed, a failpoint is a single relaxed atomic
//! load. Armed — via the `AQE_FAULT` environment variable or the
//! programmatic [`arm`] guard — each site consults its rule and either
//! passes, returns an injected error, or panics, so the surrounding
//! containment machinery (catch_unwind boundaries, ladder degradation,
//! connection poisoning) can be driven deterministically.
//!
//! ## Schedule grammar
//!
//! ```text
//! AQE_FAULT="site=action[:spec],site=action[:spec],..."
//! ```
//!
//! * `action` is `err` (the failpoint returns `Err`) or `panic` (the
//!   failpoint panics with a recognizable message).
//! * `spec` selects which hits fire:
//!   * absent — every hit fires;
//!   * an integer `n` — the first `n` hits fire, later hits pass;
//!   * a decimal in `[0,1]` (contains a `.`) — each hit fires with that
//!     probability, drawn from a per-site splitmix64 stream seeded by
//!     `AQE_FAULT_SEED` (default `0xA0E`), so a given seed replays the
//!     exact same firing sequence per site.
//!
//! Example: `AQE_FAULT="native_compile=err,worker=panic:0.01"` fails
//! every native compile and panics ~1% of morsel-worker loop entries.
//!
//! ## Failpoint catalog
//!
//! | site             | location                                   |
//! |------------------|--------------------------------------------|
//! | `native_compile` | `aqe_jit::native::compile_native` entry    |
//! | `wx_map`         | `ExecMem::map` (W^X mmap/mprotect)         |
//! | `simd_compile`   | SIMD backend assembly (session + controller)|
//! | `bc_translate`   | bytecode translation in the session        |
//! | `worker`         | morsel-worker loop, once per claim round   |
//! | `compile_job`    | background `CompileJob` thread entry       |
//! | `server_accept`  | server accept path                         |
//! | `server_read`    | per-connection read readiness              |
//! | `server_write`   | per-connection flush                       |
//! | `server_worker`  | server executor thread, per job            |

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// What an armed failpoint does when its rule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    Err,
    Panic,
}

/// Which hits of a site fire.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Trigger {
    /// Every hit fires.
    Always,
    /// The first `n` hits fire; later hits pass.
    FirstN(u64),
    /// Each hit fires independently with this probability.
    Prob(f64),
}

#[derive(Debug)]
struct SiteRule {
    action: Action,
    trigger: Trigger,
    /// Times the site was reached while this schedule was armed.
    hits: AtomicU64,
    /// Times the rule actually fired.
    fired: AtomicU64,
    /// Per-site splitmix64 state for probabilistic triggers.
    rng: AtomicU64,
}

#[derive(Debug, Default)]
struct Schedule {
    sites: HashMap<String, SiteRule>,
}

/// Fast disarmed check: a single relaxed load on the hot path.
static ARMED: AtomicBool = AtomicBool::new(false);
static ACTIVE: OnceLock<Mutex<Option<Arc<Schedule>>>> = OnceLock::new();
static ENV_INIT: Once = Once::new();

fn active() -> &'static Mutex<Option<Arc<Schedule>>> {
    ACTIVE.get_or_init(|| Mutex::new(None))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Parse an `AQE_FAULT`-style schedule string. Errors describe the
/// offending entry.
fn parse_schedule(spec: &str, seed: u64) -> Result<Schedule, String> {
    let mut sched = Schedule::default();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, rule) = entry
            .split_once('=')
            .ok_or_else(|| format!("fault entry `{entry}`: expected site=action[:spec]"))?;
        let (action, trig) = match rule.split_once(':') {
            Some((a, t)) => (a, Some(t)),
            None => (rule, None),
        };
        let action = match action {
            "err" => Action::Err,
            "panic" => Action::Panic,
            other => return Err(format!("fault entry `{entry}`: unknown action `{other}`")),
        };
        let trigger = match trig {
            None => Trigger::Always,
            Some(t) if t.contains('.') => {
                let p: f64 = t
                    .parse()
                    .map_err(|_| format!("fault entry `{entry}`: bad probability `{t}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault entry `{entry}`: probability out of [0,1]"));
                }
                Trigger::Prob(p)
            }
            Some(t) => {
                let n: u64 =
                    t.parse().map_err(|_| format!("fault entry `{entry}`: bad count `{t}`"))?;
                Trigger::FirstN(n)
            }
        };
        sched.sites.insert(
            site.trim().to_string(),
            SiteRule {
                action,
                trigger,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                rng: AtomicU64::new(seed ^ fnv1a(site.trim())),
            },
        );
    }
    Ok(sched)
}

/// Default seed when `AQE_FAULT_SEED` is absent.
pub const DEFAULT_SEED: u64 = 0xA0E;

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(spec) = std::env::var("AQE_FAULT") else {
            return;
        };
        if spec.trim().is_empty() {
            return;
        }
        let seed = std::env::var("AQE_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(DEFAULT_SEED);
        match parse_schedule(&spec, seed) {
            Ok(sched) => {
                *active().lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(sched));
                ARMED.store(true, Ordering::Release);
            }
            Err(msg) => eprintln!("AQE_FAULT ignored: {msg}"),
        }
    });
}

/// A failpoint. Call at a site that should be injectable; the returned
/// `Err` carries a human-readable description of the injected fault
/// (always prefixed `injected`). With a `panic` action the call panics
/// instead — the surrounding thread boundary is expected to contain it.
///
/// Disarmed (the common case) this is one relaxed atomic load.
pub fn failpoint(site: &str) -> Result<(), String> {
    init_from_env();
    if !ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let sched = {
        let guard = active().lock().unwrap_or_else(|e| e.into_inner());
        match &*guard {
            Some(s) => Arc::clone(s),
            None => return Ok(()),
        }
    };
    let Some(rule) = sched.sites.get(site) else {
        return Ok(());
    };
    let hit = rule.hits.fetch_add(1, Ordering::Relaxed);
    let fire = match rule.trigger {
        Trigger::Always => true,
        Trigger::FirstN(n) => hit < n,
        Trigger::Prob(p) => {
            // Advance the per-site stream atomically so concurrent hits
            // draw distinct values; the sequence is seed-deterministic
            // even if which *thread* sees which draw is not.
            let mut cur = rule.rng.load(Ordering::Relaxed);
            let draw = loop {
                let mut next = cur;
                let draw = splitmix64(&mut next);
                match rule.rng.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break draw,
                    Err(actual) => cur = actual,
                }
            };
            // Top 53 bits → uniform in [0,1).
            ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
        }
    };
    if !fire {
        return Ok(());
    }
    rule.fired.fetch_add(1, Ordering::Relaxed);
    match rule.action {
        Action::Err => Err(format!("injected fault at {site} (hit {hit})")),
        Action::Panic => panic!("injected panic at {site} (hit {hit})"),
    }
}

/// True if any schedule is currently armed.
pub fn armed() -> bool {
    init_from_env();
    ARMED.load(Ordering::Acquire)
}

/// Times `site` fired (injected an error or panic) under the currently
/// armed schedule. Zero when disarmed or the site has no rule.
pub fn fired(site: &str) -> u64 {
    site_stat(site, |r| r.fired.load(Ordering::Relaxed))
}

/// Times `site` was reached under the currently armed schedule.
pub fn hits(site: &str) -> u64 {
    site_stat(site, |r| r.hits.load(Ordering::Relaxed))
}

fn site_stat(site: &str, f: impl Fn(&SiteRule) -> u64) -> u64 {
    let guard = active().lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(|s| s.sites.get(site)).map(f).unwrap_or(0)
}

/// Arms `schedule` programmatically, replacing whatever was armed
/// before. The previous schedule is restored when the returned [`Guard`]
/// drops, so tests can scope chaos precisely. The schedule is
/// process-global: tests that arm must serialize among themselves.
pub fn arm(schedule: &str, seed: u64) -> Result<Guard, String> {
    init_from_env();
    let sched = parse_schedule(schedule, seed)?;
    let mut guard = active().lock().unwrap_or_else(|e| e.into_inner());
    let prev = guard.take();
    *guard = Some(Arc::new(sched));
    ARMED.store(true, Ordering::Release);
    Ok(Guard { prev })
}

/// Restores the previously armed schedule (usually none) on drop.
#[must_use = "dropping the guard immediately disarms the schedule"]
pub struct Guard {
    prev: Option<Arc<Schedule>>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        let mut guard = active().lock().unwrap_or_else(|e| e.into_inner());
        *guard = self.prev.take();
        ARMED.store(guard.is_some(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The schedule is process-global; serialize the tests that arm it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_failpoints_pass() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(failpoint("nowhere"), Ok(()));
    }

    #[test]
    fn always_err_fires_every_hit() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _armed = arm("x=err", 1).unwrap();
        for _ in 0..3 {
            assert!(failpoint("x").is_err());
        }
        assert_eq!(failpoint("other"), Ok(()));
        assert_eq!(fired("x"), 3);
        assert_eq!(hits("x"), 3);
    }

    #[test]
    fn first_n_then_passes() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _armed = arm("x=err:2", 1).unwrap();
        assert!(failpoint("x").is_err());
        assert!(failpoint("x").is_err());
        assert!(failpoint("x").is_ok());
        assert_eq!(fired("x"), 2);
    }

    #[test]
    fn probability_replays_with_same_seed() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut runs = Vec::new();
        for _ in 0..2 {
            let _armed = arm("x=err:0.5", 42).unwrap();
            let seq: Vec<bool> = (0..64).map(|_| failpoint("x").is_err()).collect();
            runs.push(seq);
        }
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].iter().any(|f| *f));
        assert!(runs[0].iter().any(|f| !*f));
    }

    #[test]
    fn panic_action_panics_with_marker() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _armed = arm("x=panic:1", 1).unwrap();
        let err = std::panic::catch_unwind(|| failpoint("x")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic at x"));
        assert!(failpoint("x").is_ok());
    }

    #[test]
    fn guard_restores_previous_schedule() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let outer = arm("a=err", 1).unwrap();
        {
            let _inner = arm("b=err", 1).unwrap();
            assert!(failpoint("a").is_ok());
            assert!(failpoint("b").is_err());
        }
        assert!(failpoint("a").is_err());
        assert!(failpoint("b").is_ok());
        drop(outer);
        assert!(failpoint("a").is_ok());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_schedule("x", 1).is_err());
        assert!(parse_schedule("x=boom", 1).is_err());
        assert!(parse_schedule("x=err:1.5", 1).is_err());
        assert!(parse_schedule("x=err:abc", 1).is_err());
        assert!(parse_schedule("x=err:0.25,y=panic:3,z=err", 1).is_ok());
    }
}
