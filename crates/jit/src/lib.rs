//! # aqe-jit — "machine code" backends (paper §II–III)
//!
//! The paper compiles worker functions to machine code with LLVM at two
//! levels: **unoptimized** ("fast instruction selection, no IR optimization
//! passes, low backend optimization level") and **optimized** (hand-picked
//! IR passes + full backend optimization). No machine-code JIT is available
//! in this environment, so this crate substitutes the closest synthetic
//! equivalent (see DESIGN.md §2): translation to *pre-decoded threaded code*
//! executed with superinstruction packing.
//!
//! The substitution preserves the three properties the paper's evaluation
//! depends on:
//!
//! 1. **Cost ordering & scaling** — unoptimized compilation is a strictly
//!    linear pipeline (lowering + packing), while optimized compilation runs
//!    a real optimization pass pipeline plus an interference-graph register
//!    coalescer whose super-linear cost reproduces why LLVM `-O2` explodes
//!    on huge machine-generated queries (§V-E, Fig. 15).
//! 2. **Speed ordering** — optimized code executes fewer, fatter steps than
//!    unoptimized code, which executes fewer dispatches than the bytecode
//!    VM; absolute ratios are smaller than real machine code and are
//!    reported honestly in EXPERIMENTS.md.
//! 3. **Identical semantics** — all backends execute the same IR with the
//!    same traps, so the adaptive engine can switch a pipeline mid-flight
//!    without losing work (§III-B).

pub mod coalesce;
pub mod compile;
pub mod emit;
pub mod exec;
pub mod passes;

pub use compile::{compile, CompileStats, CompiledFunction, OptLevel};
pub use exec::execute_compiled;
pub use passes::{optimize, PassStats};
