//! # aqe-jit — machine-code backends (paper §II–III)
//!
//! The paper compiles worker functions to machine code with LLVM at two
//! levels: **unoptimized** ("fast instruction selection, no IR optimization
//! passes, low backend optimization level") and **optimized** (hand-picked
//! IR passes + full backend optimization). This crate provides three
//! compiled tiers above the bytecode VM (see DESIGN.md §2 and §7):
//!
//! * the two threaded-code levels ([`compile()`] at [`OptLevel`]):
//!   translation to *pre-decoded threaded code* executed with
//!   superinstruction packing — the portable stand-ins for the paper's two
//!   LLVM levels;
//! * [`mod@native`] — a real x86-64 machine-code tier ([`compile_native`],
//!   `ExecMode::Native`, rank 4): the optimized step stream lowered to
//!   actual instructions in executable pages, `cfg`-gated to x86-64 Linux
//!   with a clean fallback alias to `Optimized` elsewhere.
//!
//! The tiers preserve the three properties the paper's evaluation depends
//! on:
//!
//! 1. **Cost ordering & scaling** — unoptimized compilation is a strictly
//!    linear pipeline (lowering + packing), while optimized compilation runs
//!    a real optimization pass pipeline plus an interference-graph register
//!    coalescer whose super-linear cost reproduces why LLVM `-O2` explodes
//!    on huge machine-generated queries (§V-E, Fig. 15); native compilation
//!    adds instruction emission on top of the optimized pipeline and is the
//!    most expensive level.
//! 2. **Speed ordering** — native machine code eliminates dispatch
//!    entirely and outruns optimized threaded code, which executes fewer,
//!    fatter steps than unoptimized code, which executes fewer dispatches
//!    than the bytecode VM (measured ratios in EXPERIMENTS.md and
//!    `BENCH_PR4.json`).
//! 3. **Identical semantics** — all backends execute the same IR with the
//!    same traps, so the adaptive engine can switch a pipeline mid-flight
//!    without losing work (§III-B).

pub mod coalesce;
pub mod compile;
pub mod emit;
pub mod exec;
pub mod native;
pub mod passes;

pub use compile::{compile, CompileStats, CompiledFunction, OptLevel};
pub use exec::execute_compiled;
pub use native::{compile_native, NativeError, NativeFunction, NativeStats};
pub use passes::{optimize, PassStats};
