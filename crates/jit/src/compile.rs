//! The compilation driver: the two "machine code" modes of Fig. 3.
//!
//! * [`OptLevel::Unoptimized`] — "enables fast instruction selection, does
//!   not execute any IR optimization passes, and uses a low backend
//!   optimization level": linear lowering + superinstruction packing.
//! * [`OptLevel::Optimized`] — "enables all machine-specific (backend)
//!   optimizations after executing a number of hand-picked IR optimization
//!   passes": the pass pipeline, lowering, interference-based slot
//!   coalescing, and packing.
//!
//! Compilation time is measured and returned; the engine's adaptive
//! controller calibrates its `ctime(f)` model (Fig. 7) from these
//! measurements.

use crate::coalesce::{coalesce, CoalesceStats};
use crate::emit::{pack, PackStats, Step};
use crate::passes::{optimize, PassStats};
use aqe_ir::{ExternDecl, Function};
use aqe_vm::translate::{translate, TranslateError, TranslateOptions};
use std::time::{Duration, Instant};

/// Compilation level (paper Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OptLevel {
    Unoptimized,
    Optimized,
}

/// Everything measured about one compilation.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    pub compile_time: Duration,
    pub ir_instrs_before: usize,
    pub ir_instrs_after: usize,
    pub pack: PackStats,
    pub passes: Option<PassStats>,
    pub coalesce: Option<CoalesceStats>,
}

/// A function compiled to threaded code.
#[derive(Clone, Debug)]
pub struct CompiledFunction {
    pub name: String,
    pub level: OptLevel,
    pub steps: Vec<Step>,
    pub frame_size: u32,
    pub param_slots: Vec<u16>,
    pub has_ret: bool,
    pub stats: CompileStats,
}

/// Compile `f` at the given level.
pub fn compile(
    f: &Function,
    externs: &[ExternDecl],
    level: OptLevel,
) -> Result<CompiledFunction, TranslateError> {
    let start = Instant::now();
    let mut stats = CompileStats { ir_instrs_before: f.instruction_count(), ..Default::default() };

    let bc = match level {
        OptLevel::Unoptimized => {
            let mut bc = translate(f, externs, TranslateOptions::default())?;
            // "Low backend optimization level": packing only.
            let (steps, pstats) = pack(&bc);
            stats.ir_instrs_after = stats.ir_instrs_before;
            stats.pack = pstats;
            bc.code.clear(); // steps own the code now
            return Ok(finish(f, level, bc.frame_size, bc.param_slots, steps, stats, start));
        }
        OptLevel::Optimized => {
            let mut opt_f = f.clone();
            let pass_stats = optimize(&mut opt_f);
            stats.passes = Some(pass_stats);
            stats.ir_instrs_after = opt_f.instruction_count();
            let mut bc = translate(&opt_f, externs, TranslateOptions::default())?;
            stats.coalesce = Some(coalesce(&mut bc));
            bc
        }
    };
    let (steps, pstats) = pack(&bc);
    stats.pack = pstats;
    Ok(finish(f, level, bc.frame_size, bc.param_slots, steps, stats, start))
}

fn finish(
    f: &Function,
    level: OptLevel,
    frame_size: u32,
    param_slots: Vec<u16>,
    steps: Vec<Step>,
    mut stats: CompileStats,
    start: Instant,
) -> CompiledFunction {
    stats.compile_time = start.elapsed();
    CompiledFunction {
        name: f.name.clone(),
        level,
        steps,
        frame_size,
        param_slots,
        has_ret: f.ret.is_some(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_ir::{BinOp, Constant, FunctionBuilder, Type};

    fn wide_fn(n: usize) -> Function {
        // Lots of foldable arithmetic so the optimizer has real work.
        let mut b = FunctionBuilder::new("wide", &[Type::I64], Some(Type::I64));
        let mut acc: aqe_ir::Operand = b.param(0).into();
        for k in 0..n {
            let c1 = b.bin(
                BinOp::Add,
                Type::I64,
                Constant::i64(k as i64).into(),
                Constant::i64(1).into(),
            );
            acc = b.bin(BinOp::Add, Type::I64, acc, c1.into()).into();
        }
        b.ret(Some(acc));
        b.finish().unwrap()
    }

    #[test]
    fn optimized_reduces_ir() {
        let f = wide_fn(32);
        let cf = compile(&f, &[], OptLevel::Optimized).unwrap();
        assert!(cf.stats.ir_instrs_after < cf.stats.ir_instrs_before);
        assert!(cf.stats.passes.unwrap().folded > 0);
    }

    #[test]
    fn unoptimized_is_faster_to_compile() {
        let f = wide_fn(256);
        let u = compile(&f, &[], OptLevel::Unoptimized).unwrap();
        let o = compile(&f, &[], OptLevel::Optimized).unwrap();
        assert!(
            u.stats.compile_time <= o.stats.compile_time,
            "unopt {:?} vs opt {:?}",
            u.stats.compile_time,
            o.stats.compile_time
        );
    }

    #[test]
    fn both_levels_agree_with_each_other() {
        use aqe_vm::interp::Frame;
        use aqe_vm::rt::Registry;
        let f = wide_fn(16);
        let u = compile(&f, &[], OptLevel::Unoptimized).unwrap();
        let o = compile(&f, &[], OptLevel::Optimized).unwrap();
        let rt = Registry::new();
        let mut frame = Frame::new();
        for x in [0i64, -5, 1 << 40] {
            let ru = crate::exec::execute_compiled(&u, &[x as u64], &rt, &mut frame).unwrap();
            let ro = crate::exec::execute_compiled(&o, &[x as u64], &rt, &mut frame).unwrap();
            assert_eq!(ru, ro);
        }
    }
}
