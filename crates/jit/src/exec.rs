//! Threaded-code executor for compiled functions.
//!
//! Executes the pre-decoded step sequence produced by [`crate::emit`].
//! Plain steps delegate to the shared single-instruction dispatch of the VM
//! (`aqe_vm::interp::exec_one`); superinstructions have dedicated arms that
//! replace two or three dispatches with one.
//!
//! # Safety
//! Same boundary as the VM interpreter: steps come from the validated
//! translator/packer output; memory operations dereference engine-provided
//! raw addresses.

use crate::compile::CompiledFunction;
use crate::emit::SOp;
use aqe_vm::bytecode::BcInstr;
use aqe_vm::interp::{exec_one, Ctl, ExecError, Frame, STACK_FRAME_BYTES};
use aqe_vm::rt::Registry;

/// Execute a compiled function (same calling convention as
/// [`aqe_vm::interp::execute`]).
pub fn execute_compiled(
    cf: &CompiledFunction,
    args: &[u64],
    rt: &Registry,
    frame: &mut Frame,
) -> Result<Option<u64>, ExecError> {
    assert_eq!(args.len(), cf.param_slots.len(), "argument count mismatch");
    let size = cf.frame_size as usize;
    if size <= STACK_FRAME_BYTES {
        let mut stack_buf = [0u64; STACK_FRAME_BYTES / 8];
        run(cf, args, rt, stack_buf.as_mut_ptr() as *mut u8)
    } else {
        let ptr = frame.heap_ptr_pub(size);
        run(cf, args, rt, ptr)
    }
}

#[inline(always)]
unsafe fn rd64(regs: *mut u8, off: u16) -> u64 {
    unsafe { std::ptr::read(regs.add(off as usize) as *const u64) }
}

#[inline(always)]
unsafe fn wr64(regs: *mut u8, off: u16, v: u64) {
    unsafe { std::ptr::write(regs.add(off as usize) as *mut u64, v) }
}

fn run(
    cf: &CompiledFunction,
    args: &[u64],
    rt: &Registry,
    regs: *mut u8,
) -> Result<Option<u64>, ExecError> {
    unsafe {
        wr64(regs, 0, 0);
        wr64(regs, 8, 1);
        for (&slot, &v) in cf.param_slots.iter().zip(args) {
            wr64(regs, slot, v);
        }
    }

    let steps = cf.steps.as_ptr();
    let mut pc = 0usize;
    loop {
        debug_assert!(pc < cf.steps.len(), "step pc out of bounds");
        let s = unsafe { &*steps.add(pc) };
        match s.sup {
            SOp::Plain => match exec_one(&s.i, regs, rt)? {
                Ctl::Next => pc += 1,
                Ctl::Jump(t) => pc = t as usize,
                Ctl::RetNone => return Ok(None),
                Ctl::RetVal(v) => return Ok(Some(v)),
            },
            SOp::Jmp => pc = s.i.lit as usize,
            SOp::CmpBr => {
                // One dispatch: compute the flag, then branch on it.
                match exec_one(&s.i, regs, rt)? {
                    Ctl::Next => {}
                    _ => unreachable!("comparisons fall through"),
                }
                let c = unsafe { std::ptr::read(regs.add(s.i.a as usize) as *const u8) };
                pc = if c != 0 {
                    BcInstr::branch_then(s.lit2)
                } else {
                    BcInstr::branch_else(s.lit2)
                };
            }
            SOp::AddImmBr | SOp::MovBr | SOp::ConstBr => {
                match exec_one(&s.i, regs, rt)? {
                    Ctl::Next => {}
                    _ => unreachable!("fused ops fall through"),
                }
                pc = s.lit2 as usize;
            }
            SOp::AccumAddI64 => {
                unsafe {
                    let p = (rd64(regs, s.i.b) as i64 + s.i.lit as i64) as *mut i64;
                    let cur = std::ptr::read_unaligned(p);
                    wr64(regs, s.i.a, cur as u64);
                    let v = rd64(regs, s.i.c) as i64;
                    let sum = cur.wrapping_add(v);
                    wr64(regs, s.lit2 as u16, sum as u64);
                    std::ptr::write_unaligned(p, sum);
                }
                pc += 1;
            }
            SOp::AccumAddF64 => {
                unsafe {
                    let p = (rd64(regs, s.i.b) as i64 + s.i.lit as i64) as *mut f64;
                    let cur = std::ptr::read_unaligned(p);
                    wr64(regs, s.i.a, cur.to_bits());
                    let v = f64::from_bits(rd64(regs, s.i.c));
                    let sum = cur + v;
                    wr64(regs, s.lit2 as u16, sum.to_bits());
                    std::ptr::write_unaligned(p, sum);
                }
                pc += 1;
            }
            SOp::AccumOvfAddI64 => {
                unsafe {
                    let p = (rd64(regs, s.i.b) as i64 + s.i.lit as i64) as *mut i64;
                    let cur = std::ptr::read_unaligned(p);
                    wr64(regs, s.i.a, cur as u64);
                    let v = rd64(regs, s.i.c) as i64;
                    let Some(sum) = cur.checked_add(v) else {
                        return Err(ExecError::Overflow);
                    };
                    wr64(regs, s.lit2 as u16, sum as u64);
                    std::ptr::write_unaligned(p, sum);
                }
                pc += 1;
            }
        }
    }
}

/// Threaded code as a uniform execution backend: background compilations
/// produce a `CompiledFunction` that the engine publishes straight into a
/// pipeline's hot-swap handle.
impl aqe_vm::backend::PipelineBackend for CompiledFunction {
    fn call(
        &self,
        args: &[u64],
        rt: &Registry,
        frame: &mut Frame,
    ) -> Result<Option<u64>, ExecError> {
        execute_compiled(self, args, rt, frame)
    }

    fn kind(&self) -> aqe_vm::backend::ExecMode {
        match self.level {
            crate::compile::OptLevel::Unoptimized => aqe_vm::backend::ExecMode::Unoptimized,
            crate::compile::OptLevel::Optimized => aqe_vm::backend::ExecMode::Optimized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, OptLevel};
    use aqe_ir::{BinOp, CmpPred, Constant, FunctionBuilder, Type};

    fn sum_fn() -> aqe_ir::Function {
        let mut b = FunctionBuilder::new("sum", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        let head = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        let pre = b.current_block();
        b.br(head);
        b.switch_to(head);
        let iv = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
        let acc = b.phi(Type::I64, vec![(pre, Constant::i64(0).into())]);
        let done = b.cmp(CmpPred::SGe, Type::I64, iv.into(), n.into());
        b.cond_br(done.into(), exit, body);
        b.switch_to(body);
        let acc2 = b.bin(BinOp::Add, Type::I64, acc.into(), iv.into());
        let iv2 = b.bin(BinOp::Add, Type::I64, iv.into(), Constant::i64(1).into());
        b.phi_add_incoming(iv, body, iv2.into());
        b.phi_add_incoming(acc, body, acc2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        b.finish().unwrap()
    }

    #[test]
    fn unoptimized_runs_correctly() {
        let f = sum_fn();
        let cf = compile(&f, &[], OptLevel::Unoptimized).unwrap();
        let mut frame = Frame::new();
        let r = execute_compiled(&cf, &[100], &Registry::new(), &mut frame).unwrap();
        assert_eq!(r, Some(4950));
    }

    #[test]
    fn optimized_runs_correctly() {
        let f = sum_fn();
        let cf = compile(&f, &[], OptLevel::Optimized).unwrap();
        let mut frame = Frame::new();
        for n in [0u64, 1, 10, 777] {
            let r = execute_compiled(&cf, &[n], &Registry::new(), &mut frame).unwrap();
            assert_eq!(r, Some((0..n).sum::<u64>()));
        }
    }

    #[test]
    fn optimized_code_is_smaller() {
        let f = sum_fn();
        let unopt = compile(&f, &[], OptLevel::Unoptimized).unwrap();
        let opt = compile(&f, &[], OptLevel::Optimized).unwrap();
        assert!(
            opt.steps.len() <= unopt.steps.len(),
            "opt {} vs unopt {}",
            opt.steps.len(),
            unopt.steps.len()
        );
    }
}
