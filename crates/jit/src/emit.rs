//! Threaded-code emission with superinstruction packing.
//!
//! "Machine code" in this reproduction is a sequence of pre-decoded steps;
//! the packer fuses frequent instruction sequences into single-dispatch
//! superinstructions (the generalisation of §IV-F the paper proposes as
//! future work: "In general, it would make sense to translate a large corpus
//! of queries, and to check for frequently occurring sequences of
//! instructions in order to replace them by macro instructions"). Patterns:
//!
//! * any comparison followed by the conditional branch on its flag,
//! * the loop-latch `add-immediate` + unconditional branch,
//! * φ-copy (`mov`/`const`) + unconditional branch,
//! * the aggregation triad `load [p+d]; add v; store [p+d]` (plain, float,
//!   and overflow-checked).
//!
//! Every superinstruction performs *all* the register and memory writes of
//! the sequence it replaces, so packing is unconditionally
//! semantics-preserving — only dispatch count changes.

use aqe_vm::bytecode::{BcFunction, BcInstr, Op};

/// Superinstruction opcodes. `Plain` delegates to the shared VM dispatch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SOp {
    Plain,
    /// `i` is a comparison writing flag `i.a`; branch targets in `lit2`.
    CmpBr,
    /// `i` is an AddImm; jump to `lit2` afterwards.
    AddImmBr,
    /// `i` is a Mov64; jump to `lit2` afterwards.
    MovBr,
    /// `i` is a Const64; jump to `lit2` afterwards.
    ConstBr,
    /// Unconditional jump to `i.lit` (pre-decoded).
    Jmp,
    /// `[i.b + disp(i.lit)] += reg(i.c)` as i64; temps written to `i.a`
    /// (loaded value) and `lit2` low 16 bits (sum).
    AccumAddI64,
    /// Same as `AccumAddI64` for f64.
    AccumAddF64,
    /// Same as `AccumAddI64` with an overflow trap.
    AccumOvfAddI64,
}

/// One pre-decoded execution step.
#[derive(Clone, Copy, Debug)]
pub struct Step {
    pub sup: SOp,
    pub i: BcInstr,
    pub lit2: u64,
}

/// Packing statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackStats {
    pub vm_instrs: usize,
    pub steps: usize,
    pub fused: usize,
}

fn is_cmp_writing_flag(op: Op) -> bool {
    let o = op as u16;
    (Op::CmpEqI8 as u16..=Op::CmpImmUgeI64 as u16).contains(&o)
}

/// Pack a lowered function into threaded steps.
pub fn pack(bc: &BcFunction) -> (Vec<Step>, PackStats) {
    let n = bc.code.len();
    // Instructions that are branch targets cannot be fused into a
    // predecessor step (someone jumps right at them).
    let mut target = vec![false; n + 1];
    for i in &bc.code {
        match i.op {
            Op::Br => target[i.lit as usize] = true,
            Op::CondBr => {
                target[BcInstr::branch_then(i.lit)] = true;
                target[BcInstr::branch_else(i.lit)] = true;
            }
            _ => {}
        }
    }

    let mut steps: Vec<Step> = Vec::with_capacity(n);
    let mut pc_map = vec![0u32; n + 1];
    let mut stats = PackStats { vm_instrs: n, ..Default::default() };
    let mut pc = 0usize;
    while pc < n {
        pc_map[pc] = steps.len() as u32;
        let i = bc.code[pc];
        let next = (pc + 1 < n && !target[pc + 1]).then(|| bc.code[pc + 1]);
        let third = (pc + 2 < n && !target[pc + 1] && !target[pc + 2]).then(|| bc.code[pc + 2]);

        // Aggregation triad: Load64Disp t,[p]+d ; Add t2,t,v ; Store64Disp [p]+d, t2
        if let (Op::Load64Disp, Some(add), Some(st)) = (i.op, next, third) {
            let acc = match add.op {
                Op::AddI64 => Some(SOp::AccumAddI64),
                Op::AddF64 => Some(SOp::AccumAddF64),
                Op::AddOvfTrapI64 => Some(SOp::AccumOvfAddI64),
                _ => None,
            };
            if let Some(sup) = acc {
                let t = i.a;
                let reads_t = add.b == t || add.c == t;
                let v = if add.b == t { add.c } else { add.b };
                let stores_back =
                    st.op == Op::Store64Disp && st.a == i.b && st.lit == i.lit && st.b == add.a;
                if reads_t && stores_back {
                    steps.push(Step {
                        sup,
                        i: BcInstr::new(i.op, t, i.b, v, i.lit),
                        lit2: add.a as u64,
                    });
                    pc_map[pc + 1] = (steps.len() - 1) as u32;
                    pc_map[pc + 2] = (steps.len() - 1) as u32;
                    stats.fused += 2;
                    pc += 3;
                    continue;
                }
            }
        }

        // cmp + condbr on the produced flag
        if let Some(nx) = next {
            if nx.op == Op::CondBr && is_cmp_writing_flag(i.op) && nx.b == i.a {
                steps.push(Step { sup: SOp::CmpBr, i, lit2: nx.lit });
                pc_map[pc + 1] = (steps.len() - 1) as u32;
                stats.fused += 1;
                pc += 2;
                continue;
            }
            if nx.op == Op::Br {
                let fused = match i.op {
                    Op::AddImmI32 | Op::AddImmI64 => Some(SOp::AddImmBr),
                    Op::Mov64 => Some(SOp::MovBr),
                    Op::Const64 => Some(SOp::ConstBr),
                    _ => None,
                };
                if let Some(sup) = fused {
                    steps.push(Step { sup, i, lit2: nx.lit });
                    pc_map[pc + 1] = (steps.len() - 1) as u32;
                    stats.fused += 1;
                    pc += 2;
                    continue;
                }
            }
        }

        let sup = if i.op == Op::Br { SOp::Jmp } else { SOp::Plain };
        steps.push(Step { sup, i, lit2: 0 });
        pc += 1;
    }
    pc_map[n] = steps.len() as u32;

    // Remap branch targets (both plain lits and fused lit2s).
    for s in &mut steps {
        match s.sup {
            SOp::Jmp => s.i.lit = pc_map[s.i.lit as usize] as u64,
            SOp::Plain if s.i.op == Op::CondBr => {
                s.i.lit = BcInstr::pack_branch(
                    pc_map[BcInstr::branch_then(s.i.lit)],
                    pc_map[BcInstr::branch_else(s.i.lit)],
                );
            }
            SOp::CmpBr => {
                s.lit2 = BcInstr::pack_branch(
                    pc_map[BcInstr::branch_then(s.lit2)],
                    pc_map[BcInstr::branch_else(s.lit2)],
                );
            }
            SOp::AddImmBr | SOp::MovBr | SOp::ConstBr => {
                s.lit2 = pc_map[s.lit2 as usize] as u64;
            }
            _ => {}
        }
    }

    stats.steps = steps.len();
    (steps, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_ir::{BinOp, Constant, FunctionBuilder, Type};
    use aqe_vm::translate::{translate, TranslateOptions};

    #[test]
    fn packs_loop_control() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        b.counted_loop(Constant::i64(0).into(), n.into(), |_, _| {});
        b.ret(Some(Constant::i64(0).into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &[], TranslateOptions::default()).unwrap();
        let (steps, stats) = pack(&bc);
        assert!(stats.fused >= 1, "loop head cmp+condbr must fuse: {stats:?}");
        assert!(steps.len() < bc.code.len());
        assert!(steps.iter().any(|s| s.sup == SOp::CmpBr));
    }

    #[test]
    fn packs_accumulation_triad() {
        // acc pattern: load [p+8]; add v; store [p+8]
        let mut b = FunctionBuilder::new("f", &[Type::Ptr, Type::I64], None);
        let g = b.gep(b.param(0).into(), 8);
        let cur = b.load(Type::I64, g.into());
        let sum = b.bin(BinOp::Add, Type::I64, cur.into(), b.param(1).into());
        let g2 = b.gep(b.param(0).into(), 8);
        b.store(Type::I64, sum.into(), g2.into());
        b.ret(None);
        let f = b.finish().unwrap();
        let bc = translate(&f, &[], TranslateOptions::default()).unwrap();
        let (steps, _) = pack(&bc);
        assert!(steps.iter().any(|s| s.sup == SOp::AccumAddI64), "{}", bc.disassemble());
    }

    #[test]
    fn branch_targets_survive_packing() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        b.counted_loop(Constant::i64(0).into(), n.into(), |_, _| {});
        b.ret(Some(Constant::i64(9).into()));
        let f = b.finish().unwrap();
        let bc = translate(&f, &[], TranslateOptions::default()).unwrap();
        let (steps, _) = pack(&bc);
        // All branch targets must be in range.
        for s in &steps {
            match s.sup {
                SOp::Jmp => assert!((s.i.lit as usize) < steps.len()),
                SOp::CmpBr => {
                    assert!(BcInstr::branch_then(s.lit2) < steps.len());
                    assert!(BcInstr::branch_else(s.lit2) < steps.len());
                }
                SOp::AddImmBr | SOp::MovBr | SOp::ConstBr => {
                    assert!((s.lit2 as usize) < steps.len())
                }
                _ => {}
            }
        }
    }
}
