//! IR optimization passes — the "LLVM Opt. Passes" stage of Fig. 1.
//!
//! The paper's optimized mode runs "a number of hand-picked LLVM IR
//! optimization passes (peephole optimizations, reassociate expressions,
//! common subexpression elimination, control flow graph simplification,
//! aggressive dead code elimination)". This module implements the same
//! pipeline over our IR:
//!
//! * constant folding + algebraic peephole simplification,
//! * dominance-aware common subexpression elimination,
//! * dead code elimination (trap-preserving: a maybe-trapping instruction is
//!   never removed, so optimized code traps exactly like the interpreter),
//! * CFG simplification (constant-branch folding, jump threading, linear
//!   block merging, unreachable-block scrubbing).
//!
//! Every pass is linear; the super-linear component of optimized compilation
//! lives in [`crate::coalesce`].

use aqe_ir::analysis::{DomTree, Rpo};
use aqe_ir::hash::FnvHashMap;
use aqe_ir::{
    BinOp, BlockId, CmpPred, Constant, Function, Instr, Operand, Terminator, TrapKind, Type,
    ValueId,
};
use aqe_vm::naive as naive_semantics;

/// What the pass pipeline did (for tests, logging, and EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    pub folded: u32,
    pub cse_hits: u32,
    pub dce_removed: u32,
    pub branches_folded: u32,
    pub blocks_merged: u32,
    pub jumps_threaded: u32,
}

/// Run the full pass pipeline to a (bounded) fixpoint.
pub fn optimize(f: &mut Function) -> PassStats {
    let mut total = PassStats::default();
    for _ in 0..2 {
        let mut round = PassStats::default();
        fold_and_cse(f, &mut round);
        dce(f, &mut round);
        simplify_cfg(f, &mut round);
        let changed = round != PassStats::default();
        total.folded += round.folded;
        total.cse_hits += round.cse_hits;
        total.dce_removed += round.dce_removed;
        total.branches_folded += round.branches_folded;
        total.blocks_merged += round.blocks_merged;
        total.jumps_threaded += round.jumps_threaded;
        if !changed {
            break;
        }
    }
    total
}

/// Normalise a folded constant to the canonical (sign-extended) bit pattern
/// for its type.
fn norm_const(ty: Type, bits: u64) -> Constant {
    let bits = match ty {
        Type::I1 => bits & 1,
        Type::I8 => bits as u8 as i8 as i64 as u64,
        Type::I16 => bits as u16 as i16 as i64 as u64,
        Type::I32 => bits as u32 as i32 as i64 as u64,
        _ => bits,
    };
    Constant { ty, bits }
}

/// A key identifying a pure computation for CSE.
#[derive(Clone, PartialEq, Eq, Hash)]
enum CseKey {
    Bin(BinOp, Type, Operand, Operand),
    Cmp(CmpPred, Type, Operand, Operand),
    Cast(aqe_ir::CastKind, Type, Type, Operand),
    Gep(Operand, i64, Option<(Operand, i64)>),
    Select(Operand, Operand, Operand),
}

/// Constant folding, peephole simplification, and dominance-aware CSE in a
/// single forward pass over the reverse postorder.
fn fold_and_cse(f: &mut Function, stats: &mut PassStats) {
    let rpo = Rpo::compute(f);
    let dom = DomTree::compute(f, &rpo);
    // value -> replacement operand
    let mut repl: Vec<Option<Operand>> = vec![None; f.value_count()];
    // Pure-computation table: key -> (defining value, RPO position). Only
    // ever probed and inserted — iteration order is unobservable — so the
    // pinned FNV-1a hasher is safe here and skips SipHash's per-lookup
    // keyed setup on these short fixed-size keys.
    let mut table: FnvHashMap<CseKey, (ValueId, u32)> = FnvHashMap::default();

    // Transitive resolution: replacement targets may themselves have been
    // replaced later (e.g. a φ folded to a value that then folded further).
    fn resolve(repl: &[Option<Operand>], mut o: Operand) -> Operand {
        let mut hops = 0;
        while let Operand::Value(v) = o {
            match repl[v.index()] {
                Some(next) if next != o => {
                    o = next;
                    hops += 1;
                    debug_assert!(hops <= repl.len(), "replacement cycle");
                }
                _ => break,
            }
        }
        o
    }

    for pos in 0..rpo.order.len() {
        let bid = rpo.order[pos];
        let pos = pos as u32;
        // Take the block's id list, compact the survivors in place, and put
        // it back: the whole pass allocates nothing per block.
        let mut instr_ids = std::mem::take(&mut f.block_mut(bid).instrs);
        let mut kept = 0usize;
        for i in 0..instr_ids.len() {
            let vid = instr_ids[i];
            // Rewrite operands through the replacement map first.
            f.map_instr_operands(vid, |o| {
                *o = resolve(&repl, *o);
            });
            let instr = *f.instr(vid).unwrap();
            // 1. Try folding to a constant / existing operand.
            if let Some(r) = try_fold(f, &instr) {
                repl[vid.index()] = Some(r);
                stats.folded += 1;
                continue; // instruction dropped
            }
            // 2. Try CSE for pure instructions.
            if let Some(key) = cse_key(&instr) {
                match table.get(&key) {
                    Some(&(prev, prev_pos)) if dom.dominates_pos(prev_pos, pos) => {
                        repl[vid.index()] = Some(Operand::Value(prev));
                        stats.cse_hits += 1;
                        continue;
                    }
                    _ => {
                        table.insert(key, (vid, pos));
                    }
                }
            }
            instr_ids[kept] = vid;
            kept += 1;
        }
        instr_ids.truncate(kept);
        f.block_mut(bid).instrs = instr_ids;
        // Rewrite the terminator too.
        let term = &mut f.block_mut(bid).term;
        term.map_operands(|o| {
            *o = resolve(&repl, *o);
        });
    }
    // φ incomings in *later* blocks referencing replaced values were already
    // rewritten when their block was visited — but back-edge φs in earlier
    // blocks may still reference replaced values; fix them all.
    for bi in 0..f.block_count() {
        let bid = BlockId(bi as u32);
        for i in 0..f.block(bid).instrs.len() {
            let vid = f.block(bid).instrs[i];
            f.map_instr_operands(vid, |o| {
                *o = resolve(&repl, *o);
            });
        }
        f.block_mut(bid).term.map_operands(|o| {
            *o = resolve(&repl, *o);
        });
    }
}

/// Attempt to reduce an instruction to an operand (constant or existing
/// value). Trap-preserving: division folding is only performed when the
/// divisor is a non-zero constant and the result is representable.
fn try_fold(f: &Function, instr: &Instr) -> Option<Operand> {
    match instr {
        Instr::Bin { op, ty, a, b } => {
            if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
                // Delegate to the reference semantics used by the naive
                // interpreter, so folding can never diverge from execution.
                if op.can_trap() {
                    // Fold only trap-free cases.
                    let bits = ty.bits().max(8);
                    let shift = 64 - bits;
                    let sb = ((cb.bits << shift) as i64) >> shift;
                    if sb == 0 {
                        return None;
                    }
                    let sa = ((ca.bits << shift) as i64) >> shift;
                    let min = (-1i64) << (bits - 1);
                    if sa == min && sb == -1 {
                        return None;
                    }
                }
                let v = naive_semantics::eval_bin(*op, *ty, ca.bits, cb.bits).ok()?;
                return Some(norm_const(*ty, v).into());
            }
            // Algebraic identities (integer only; float identities are not
            // exact under NaN/-0).
            if *ty != Type::F64 {
                let (x, c) = match (a.as_const(), b.as_const()) {
                    (None, Some(c)) => (*a, c),
                    (Some(c), None)
                        if matches!(
                            op,
                            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
                        ) =>
                    {
                        (*b, c)
                    }
                    _ => return None,
                };
                return match op {
                    BinOp::Add | BinOp::Or | BinOp::Xor if c.is_zero() => Some(x),
                    BinOp::Sub if c.is_zero() && b.as_const().is_some() => Some(x),
                    BinOp::Mul if c.bits == 1 => Some(x),
                    BinOp::Mul | BinOp::And if c.is_zero() => Some(norm_const(*ty, 0).into()),
                    BinOp::Shl | BinOp::AShr | BinOp::LShr
                        if c.is_zero() && b.as_const().is_some() =>
                    {
                        Some(x)
                    }
                    _ => None,
                };
            }
            None
        }
        Instr::Cmp { pred, ty, a, b } => {
            let (ca, cb) = (a.as_const()?, b.as_const()?);
            let v = naive_semantics::eval_cmp(*pred, *ty, ca.bits, cb.bits);
            Some(Constant::bool(v).into())
        }
        Instr::Cast { kind, to, v, from } => {
            let c = v.as_const()?;
            let bits = naive_semantics::eval_cast(*kind, *from, *to, c.bits);
            Some(norm_const(*to, bits).into())
        }
        Instr::Select { cond, t, f, .. } => {
            if let Some(c) = cond.as_const() {
                return Some(if c.bits & 1 != 0 { *t } else { *f });
            }
            if t == f {
                return Some(*t);
            }
            None
        }
        Instr::Phi { incomings, .. } => {
            // A φ whose incomings all agree (ignoring self-references) is
            // that value.
            let mut unique: Option<Operand> = None;
            for (_, o) in f.phi_incomings(*incomings) {
                match unique {
                    None => unique = Some(*o),
                    Some(u) if u == *o => {}
                    _ => return None,
                }
            }
            unique
        }
        _ => None,
    }
}

fn cse_key(instr: &Instr) -> Option<CseKey> {
    match instr {
        Instr::Bin { op, ty, a, b } => {
            if op.can_trap() {
                return None; // keep trap sites intact
            }
            // Canonicalise commutative operand order for better hit rates.
            let (a, b) =
                if matches!(op, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
                    && operand_rank(b) < operand_rank(a)
                {
                    (*b, *a)
                } else {
                    (*a, *b)
                };
            Some(CseKey::Bin(*op, *ty, a, b))
        }
        Instr::Cmp { pred, ty, a, b } => Some(CseKey::Cmp(*pred, *ty, *a, *b)),
        Instr::Cast { kind, to, v, from } => Some(CseKey::Cast(*kind, *from, *to, *v)),
        Instr::Gep { base, offset, index } => Some(CseKey::Gep(*base, *offset, *index)),
        Instr::Select { cond, t, f, .. } => Some(CseKey::Select(*cond, *t, *f)),
        // Loads are not CSE'd (no alias analysis); calls/stores are effects.
        _ => None,
    }
}

fn operand_rank(o: &Operand) -> u64 {
    match o {
        Operand::Value(v) => v.0 as u64,
        Operand::Const(c) => (1 << 40) | (c.bits & 0xffff_ffff),
    }
}

/// Dead code elimination. Pure, unused instructions are removed; stores,
/// calls, and *potentially trapping* instructions always survive, so that
/// optimized execution traps exactly like interpreted execution.
fn dce(f: &mut Function, stats: &mut PassStats) {
    let mut uses = vec![0u32; f.value_count()];
    for (_, block) in f.blocks() {
        for &vid in &block.instrs {
            f.instr(vid).unwrap().for_each_value_use(f, |u| uses[u.index()] += 1);
        }
        block.term.for_each_value_use(|u| uses[u.index()] += 1);
    }
    // Iterate: removing an instruction may make its operands dead.
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..f.block_count() {
            let bid = BlockId(bi as u32);
            let mut ids = std::mem::take(&mut f.block_mut(bid).instrs);
            let mut kept = 0usize;
            for i in 0..ids.len() {
                let vid = ids[i];
                let instr = *f.instr(vid).unwrap();
                let removable =
                    uses[vid.index()] == 0 && !instr.has_side_effects() && !instr.can_trap();
                if removable {
                    instr.for_each_value_use(f, |u| uses[u.index()] -= 1);
                    stats.dce_removed += 1;
                    changed = true;
                } else {
                    ids[kept] = vid;
                    kept += 1;
                }
            }
            ids.truncate(kept);
            f.block_mut(bid).instrs = ids;
        }
    }
}

/// CFG simplification: fold constant branches, thread trivial jumps, merge
/// single-predecessor chains, scrub unreachable blocks.
fn simplify_cfg(f: &mut Function, stats: &mut PassStats) {
    // 1. Fold constant conditional branches.
    for bi in 0..f.block_count() {
        let bid = BlockId(bi as u32);
        if let Terminator::CondBr { cond, then_bb, else_bb } = f.block(bid).term.clone() {
            if let Some(c) = cond.as_const() {
                let (taken, dropped) =
                    if c.bits & 1 != 0 { (then_bb, else_bb) } else { (else_bb, then_bb) };
                if taken != dropped {
                    remove_phi_incoming(f, dropped, bid);
                }
                f.block_mut(bid).term = Terminator::Br { target: taken };
                stats.branches_folded += 1;
            } else if then_bb == else_bb {
                f.block_mut(bid).term = Terminator::Br { target: then_bb };
                stats.branches_folded += 1;
            }
        }
    }

    // 2. Thread trivial jumps: an empty block that just branches onward is
    //    bypassed when the target's φs permit it.
    let trivial: Vec<Option<BlockId>> = (0..f.block_count())
        .map(|bi| {
            let b = f.block(BlockId(bi as u32));
            match (&b.term, b.instrs.is_empty(), bi != 0) {
                (Terminator::Br { target }, true, true) if target.index() != bi => Some(*target),
                _ => None,
            }
        })
        .collect();
    // The predecessor sets change with every rewrite (e.g. both arms of a
    // CondBr reaching the same destination), so they are computed once here
    // and maintained incrementally: each applied threading moves exactly
    // one edge, `bid → from` becomes `bid → to`. (Rebuilding them per
    // candidate made this stage quadratic in block count.)
    let mut preds = f.predecessors();
    for bi in 0..f.block_count() {
        let bid = BlockId(bi as u32);
        let candidates: Vec<(BlockId, BlockId)> = f
            .block(bid)
            .term
            .successors()
            .filter_map(|succ| trivial[succ.index()].map(|dest| (succ, dest)))
            .collect();
        for (from, to) in candidates {
            // Threading replaces the incoming block of `to`'s φs from
            // `from` to `bid`; this is only unambiguous while `bid` is not
            // already a predecessor of `to`.
            if to == bid || trivial[to.index()].is_some() || preds[to.index()].contains(&bid) {
                continue;
            }
            f.block_mut(bid).term.map_successors(|s| {
                if *s == from {
                    *s = to;
                }
            });
            if let Some(pos) = preds[from.index()].iter().position(|&p| p == bid) {
                preds[from.index()].remove(pos);
            }
            preds[to.index()].push(bid);
            rename_phi_incoming(f, to, from, bid);
            stats.jumps_threaded += 1;
        }
    }

    // 3. Merge single-predecessor linear chains.
    loop {
        let rpo = Rpo::compute(f);
        let preds = f.predecessors();
        let mut merged_any = false;
        for &bid in &rpo.order {
            let Terminator::Br { target } = f.block(bid).term else {
                continue;
            };
            if target == bid || target == Function::ENTRY || !rpo.is_reachable(bid) {
                continue;
            }
            // Count only reachable preds.
            let live_preds: Vec<BlockId> =
                preds[target.index()].iter().copied().filter(|p| rpo.is_reachable(*p)).collect();
            if live_preds != [bid] {
                continue;
            }
            // Replace target's φs (single incoming) with their operand.
            let tgt_instrs = f.block(target).instrs.clone();
            let mut phi_repl: Vec<(ValueId, Operand)> = Vec::new();
            let mut moved: Vec<ValueId> = Vec::new();
            for vid in tgt_instrs {
                match f.instr(vid).unwrap() {
                    Instr::Phi { incomings, .. } => {
                        let (_, op) = f
                            .phi_incomings(*incomings)
                            .iter()
                            .find(|(p, _)| *p == bid)
                            .copied()
                            .expect("single-pred φ must reference the pred");
                        phi_repl.push((vid, op));
                    }
                    _ => moved.push(vid),
                }
            }
            if !phi_repl.is_empty() {
                let mut map: Vec<Option<Operand>> = vec![None; f.value_count()];
                for &(v, o) in &phi_repl {
                    map[v.index()] = Some(o);
                }
                rewrite_all_uses(f, &map);
            }
            let tgt_term = f.block(target).term.clone();
            f.block_mut(target).instrs.clear();
            f.block_mut(target).term = Terminator::Trap { kind: TrapKind::User(0xdead) };
            f.block_mut(bid).instrs.extend(moved);
            f.block_mut(bid).term = tgt_term;
            // Successors' φs that referenced `target` now come from `bid`.
            let succs: Vec<BlockId> = f.block(bid).term.successors().collect();
            for s in succs {
                rename_phi_incoming(f, s, target, bid);
            }
            stats.blocks_merged += 1;
            merged_any = true;
            break; // recompute RPO/preds after each merge
        }
        if !merged_any {
            break;
        }
    }

    // 4. Scrub unreachable blocks so later verification and translation see
    //    a consistent CFG (their edges would otherwise pollute φ pred sets).
    let rpo = Rpo::compute(f);
    for bi in 0..f.block_count() {
        let bid = BlockId(bi as u32);
        if !rpo.is_reachable(bid) {
            let b = f.block_mut(bid);
            if !b.instrs.is_empty() || !matches!(b.term, Terminator::Trap { .. }) {
                b.instrs.clear();
                b.term = Terminator::Trap { kind: TrapKind::User(0xdead) };
            }
            continue;
        }
        // Drop φ incomings from now-unreachable predecessors.
        for i in 0..f.block(bid).instrs.len() {
            let vid = f.block(bid).instrs[i];
            if !matches!(f.instr(vid), Some(Instr::Phi { .. })) {
                break; // φs are a block prefix
            }
            f.phi_retain_incomings(vid, |_, (p, _)| rpo.is_reachable(p));
        }
    }
}

fn remove_phi_incoming(f: &mut Function, block: BlockId, pred: BlockId) {
    for i in 0..f.block(block).instrs.len() {
        let vid = f.block(block).instrs[i];
        if !matches!(f.instr(vid), Some(Instr::Phi { .. })) {
            break;
        }
        f.phi_retain_incomings(vid, |_, (p, _)| p != pred);
    }
}

fn rename_phi_incoming(f: &mut Function, block: BlockId, from: BlockId, to: BlockId) {
    for i in 0..f.block(block).instrs.len() {
        let vid = f.block(block).instrs[i];
        let Some(&Instr::Phi { incomings, .. }) = f.instr(vid) else {
            break;
        };
        for (p, _) in f.phi_incomings_mut(incomings) {
            if *p == from {
                *p = to;
            }
        }
    }
}

/// Rewrite every use of a replaced value, `map` keyed by value index.
fn rewrite_all_uses(f: &mut Function, map: &[Option<Operand>]) {
    for bi in 0..f.block_count() {
        let bid = BlockId(bi as u32);
        for i in 0..f.block(bid).instrs.len() {
            let vid = f.block(bid).instrs[i];
            f.map_instr_operands(vid, |o| {
                if let Operand::Value(v) = *o {
                    if let Some(r) = map[v.index()] {
                        *o = r;
                    }
                }
            });
        }
        f.block_mut(bid).term.map_operands(|o| {
            if let Operand::Value(v) = *o {
                if let Some(r) = map[v.index()] {
                    *o = r;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqe_ir::{verify_function, FunctionBuilder};

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let c = b.bin(BinOp::Add, Type::I64, Constant::i64(2).into(), Constant::i64(3).into());
        let r = b.bin(BinOp::Mul, Type::I64, b.param(0).into(), c.into());
        b.ret(Some(r.into()));
        let mut f = b.finish().unwrap();
        let stats = optimize(&mut f);
        assert!(stats.folded >= 1);
        // The multiply should now have an immediate operand 5.
        let entry = f.block(Function::ENTRY);
        assert_eq!(entry.instrs.len(), 1);
        match f.instr(entry.instrs[0]).unwrap() {
            Instr::Bin { op: BinOp::Mul, b, .. } => {
                assert_eq!(b.as_const().unwrap().as_i64(), 5)
            }
            other => panic!("unexpected {other:?}"),
        }
        verify_function(&f).unwrap();
    }

    #[test]
    fn cse_removes_duplicate_computation() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I64));
        let x1 = b.bin(BinOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        let x2 = b.bin(BinOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        let r = b.bin(BinOp::Mul, Type::I64, x1.into(), x2.into());
        b.ret(Some(r.into()));
        let mut f = b.finish().unwrap();
        let stats = optimize(&mut f);
        assert_eq!(stats.cse_hits, 1);
        assert_eq!(f.block(Function::ENTRY).instrs.len(), 2);
        verify_function(&f).unwrap();
    }

    #[test]
    fn cse_is_commutative_aware() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I64));
        let x1 = b.bin(BinOp::Add, Type::I64, b.param(0).into(), b.param(1).into());
        let x2 = b.bin(BinOp::Add, Type::I64, b.param(1).into(), b.param(0).into());
        let r = b.bin(BinOp::Mul, Type::I64, x1.into(), x2.into());
        b.ret(Some(r.into()));
        let mut f = b.finish().unwrap();
        let stats = optimize(&mut f);
        assert_eq!(stats.cse_hits, 1);
    }

    #[test]
    fn dce_keeps_trapping_instructions() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Some(Type::I64));
        // dead division: must NOT be removed (could trap)
        let _dead_div = b.bin(BinOp::SDiv, Type::I64, b.param(0).into(), b.param(1).into());
        // dead add: must be removed
        let _dead_add = b.bin(BinOp::Add, Type::I64, b.param(0).into(), Constant::i64(1).into());
        b.ret(Some(b.param(0).into()));
        let mut f = b.finish().unwrap();
        let stats = optimize(&mut f);
        assert_eq!(stats.dce_removed, 1);
        let entry = f.block(Function::ENTRY);
        assert_eq!(entry.instrs.len(), 1);
        assert!(matches!(f.instr(entry.instrs[0]).unwrap(), Instr::Bin { op: BinOp::SDiv, .. }));
    }

    #[test]
    fn constant_branch_folds_and_merges() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let t = b.add_block();
        let e = b.add_block();
        let j = b.add_block();
        b.cond_br(Constant::bool(true).into(), t, e);
        b.switch_to(t);
        let x = b.bin(BinOp::Add, Type::I64, b.param(0).into(), Constant::i64(1).into());
        b.br(j);
        b.switch_to(e);
        let y = b.bin(BinOp::Add, Type::I64, b.param(0).into(), Constant::i64(2).into());
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64, vec![(t, x.into()), (e, y.into())]);
        b.ret(Some(p.into()));
        let mut f = b.finish().unwrap();
        let stats = optimize(&mut f);
        assert!(stats.branches_folded >= 1);
        // After folding + merging, the reachable code is a straight line.
        let rpo = Rpo::compute(&f);
        assert_eq!(rpo.len(), 1, "everything should merge into the entry");
        // Semantics: returns param + 1.
        let r = aqe_vm::naive::interpret_pure(&f, &[41]).unwrap();
        assert_eq!(r, Some(42));
    }

    #[test]
    fn algebraic_identities() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let a = b.bin(BinOp::Add, Type::I64, b.param(0).into(), Constant::i64(0).into());
        let m = b.bin(BinOp::Mul, Type::I64, a.into(), Constant::i64(1).into());
        let z = b.bin(BinOp::Mul, Type::I64, m.into(), Constant::i64(0).into());
        let r = b.bin(BinOp::Or, Type::I64, z.into(), m.into());
        b.ret(Some(r.into()));
        let mut f = b.finish().unwrap();
        optimize(&mut f);
        // Everything reduces to `ret %0`.
        assert_eq!(f.block(Function::ENTRY).instrs.len(), 0);
        assert_eq!(
            f.block(Function::ENTRY).term,
            Terminator::Ret { value: Some(Operand::Value(ValueId(0))) }
        );
    }

    #[test]
    fn loop_structure_survives() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Some(Type::I64));
        let n = b.param(0);
        b.counted_loop(Constant::i64(0).into(), n.into(), |b, i| {
            let _ = b.bin(BinOp::Add, Type::I64, i.into(), Constant::i64(1).into());
        });
        b.ret(Some(Constant::i64(7).into()));
        let mut f = b.finish().unwrap();
        optimize(&mut f);
        verify_function(&f).unwrap();
        assert_eq!(aqe_vm::naive::interpret_pure(&f, &[5]).unwrap(), Some(7));
    }
}
